file(REMOVE_RECURSE
  "CMakeFiles/hsu_rtunit.dir/rtunit.cc.o"
  "CMakeFiles/hsu_rtunit.dir/rtunit.cc.o.d"
  "libhsu_rtunit.a"
  "libhsu_rtunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_rtunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
