file(REMOVE_RECURSE
  "libhsu_rtunit.a"
)
