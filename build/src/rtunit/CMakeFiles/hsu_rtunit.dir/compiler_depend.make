# Empty compiler generated dependencies file for hsu_rtunit.
# This may be replaced when dependencies are built.
