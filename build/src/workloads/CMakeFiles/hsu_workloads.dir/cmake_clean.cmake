file(REMOVE_RECURSE
  "CMakeFiles/hsu_workloads.dir/datasets.cc.o"
  "CMakeFiles/hsu_workloads.dir/datasets.cc.o.d"
  "libhsu_workloads.a"
  "libhsu_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
