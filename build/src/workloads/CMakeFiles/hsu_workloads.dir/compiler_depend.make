# Empty compiler generated dependencies file for hsu_workloads.
# This may be replaced when dependencies are built.
