file(REMOVE_RECURSE
  "libhsu_workloads.a"
)
