file(REMOVE_RECURSE
  "libhsu_search.a"
)
