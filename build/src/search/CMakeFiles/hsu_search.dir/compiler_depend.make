# Empty compiler generated dependencies file for hsu_search.
# This may be replaced when dependencies are built.
