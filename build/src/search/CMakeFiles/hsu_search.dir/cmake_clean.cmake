file(REMOVE_RECURSE
  "CMakeFiles/hsu_search.dir/btree_kernel.cc.o"
  "CMakeFiles/hsu_search.dir/btree_kernel.cc.o.d"
  "CMakeFiles/hsu_search.dir/bvhnn.cc.o"
  "CMakeFiles/hsu_search.dir/bvhnn.cc.o.d"
  "CMakeFiles/hsu_search.dir/flann.cc.o"
  "CMakeFiles/hsu_search.dir/flann.cc.o.d"
  "CMakeFiles/hsu_search.dir/ggnn.cc.o"
  "CMakeFiles/hsu_search.dir/ggnn.cc.o.d"
  "CMakeFiles/hsu_search.dir/pipeline.cc.o"
  "CMakeFiles/hsu_search.dir/pipeline.cc.o.d"
  "CMakeFiles/hsu_search.dir/rtindex.cc.o"
  "CMakeFiles/hsu_search.dir/rtindex.cc.o.d"
  "CMakeFiles/hsu_search.dir/runner.cc.o"
  "CMakeFiles/hsu_search.dir/runner.cc.o.d"
  "libhsu_search.a"
  "libhsu_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
