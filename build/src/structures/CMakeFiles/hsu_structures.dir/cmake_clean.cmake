file(REMOVE_RECURSE
  "CMakeFiles/hsu_structures.dir/btree.cc.o"
  "CMakeFiles/hsu_structures.dir/btree.cc.o.d"
  "CMakeFiles/hsu_structures.dir/graph.cc.o"
  "CMakeFiles/hsu_structures.dir/graph.cc.o.d"
  "CMakeFiles/hsu_structures.dir/kdtree.cc.o"
  "CMakeFiles/hsu_structures.dir/kdtree.cc.o.d"
  "CMakeFiles/hsu_structures.dir/lbvh.cc.o"
  "CMakeFiles/hsu_structures.dir/lbvh.cc.o.d"
  "CMakeFiles/hsu_structures.dir/serialize.cc.o"
  "CMakeFiles/hsu_structures.dir/serialize.cc.o.d"
  "libhsu_structures.a"
  "libhsu_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
