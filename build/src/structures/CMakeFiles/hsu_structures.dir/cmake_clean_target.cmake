file(REMOVE_RECURSE
  "libhsu_structures.a"
)
