# Empty compiler generated dependencies file for hsu_structures.
# This may be replaced when dependencies are built.
