
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/structures/btree.cc" "src/structures/CMakeFiles/hsu_structures.dir/btree.cc.o" "gcc" "src/structures/CMakeFiles/hsu_structures.dir/btree.cc.o.d"
  "/root/repo/src/structures/graph.cc" "src/structures/CMakeFiles/hsu_structures.dir/graph.cc.o" "gcc" "src/structures/CMakeFiles/hsu_structures.dir/graph.cc.o.d"
  "/root/repo/src/structures/kdtree.cc" "src/structures/CMakeFiles/hsu_structures.dir/kdtree.cc.o" "gcc" "src/structures/CMakeFiles/hsu_structures.dir/kdtree.cc.o.d"
  "/root/repo/src/structures/lbvh.cc" "src/structures/CMakeFiles/hsu_structures.dir/lbvh.cc.o" "gcc" "src/structures/CMakeFiles/hsu_structures.dir/lbvh.cc.o.d"
  "/root/repo/src/structures/serialize.cc" "src/structures/CMakeFiles/hsu_structures.dir/serialize.cc.o" "gcc" "src/structures/CMakeFiles/hsu_structures.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsu_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/hsu/CMakeFiles/hsu_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
