file(REMOVE_RECURSE
  "libhsu_isa.a"
)
