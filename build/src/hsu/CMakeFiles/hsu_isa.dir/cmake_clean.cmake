file(REMOVE_RECURSE
  "CMakeFiles/hsu_isa.dir/device_api.cc.o"
  "CMakeFiles/hsu_isa.dir/device_api.cc.o.d"
  "CMakeFiles/hsu_isa.dir/encoding.cc.o"
  "CMakeFiles/hsu_isa.dir/encoding.cc.o.d"
  "CMakeFiles/hsu_isa.dir/functional.cc.o"
  "CMakeFiles/hsu_isa.dir/functional.cc.o.d"
  "CMakeFiles/hsu_isa.dir/isa.cc.o"
  "CMakeFiles/hsu_isa.dir/isa.cc.o.d"
  "libhsu_isa.a"
  "libhsu_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
