# Empty compiler generated dependencies file for hsu_isa.
# This may be replaced when dependencies are built.
