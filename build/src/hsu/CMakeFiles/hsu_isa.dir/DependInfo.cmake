
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsu/device_api.cc" "src/hsu/CMakeFiles/hsu_isa.dir/device_api.cc.o" "gcc" "src/hsu/CMakeFiles/hsu_isa.dir/device_api.cc.o.d"
  "/root/repo/src/hsu/encoding.cc" "src/hsu/CMakeFiles/hsu_isa.dir/encoding.cc.o" "gcc" "src/hsu/CMakeFiles/hsu_isa.dir/encoding.cc.o.d"
  "/root/repo/src/hsu/functional.cc" "src/hsu/CMakeFiles/hsu_isa.dir/functional.cc.o" "gcc" "src/hsu/CMakeFiles/hsu_isa.dir/functional.cc.o.d"
  "/root/repo/src/hsu/isa.cc" "src/hsu/CMakeFiles/hsu_isa.dir/isa.cc.o" "gcc" "src/hsu/CMakeFiles/hsu_isa.dir/isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsu_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
