# Empty dependencies file for hsu_sim.
# This may be replaced when dependencies are built.
