file(REMOVE_RECURSE
  "CMakeFiles/hsu_sim.dir/gpu.cc.o"
  "CMakeFiles/hsu_sim.dir/gpu.cc.o.d"
  "CMakeFiles/hsu_sim.dir/lsu.cc.o"
  "CMakeFiles/hsu_sim.dir/lsu.cc.o.d"
  "CMakeFiles/hsu_sim.dir/sm.cc.o"
  "CMakeFiles/hsu_sim.dir/sm.cc.o.d"
  "CMakeFiles/hsu_sim.dir/trace_stats.cc.o"
  "CMakeFiles/hsu_sim.dir/trace_stats.cc.o.d"
  "libhsu_sim.a"
  "libhsu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
