
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/hsu_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/hsu_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/lsu.cc" "src/sim/CMakeFiles/hsu_sim.dir/lsu.cc.o" "gcc" "src/sim/CMakeFiles/hsu_sim.dir/lsu.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/sim/CMakeFiles/hsu_sim.dir/sm.cc.o" "gcc" "src/sim/CMakeFiles/hsu_sim.dir/sm.cc.o.d"
  "/root/repo/src/sim/trace_stats.cc" "src/sim/CMakeFiles/hsu_sim.dir/trace_stats.cc.o" "gcc" "src/sim/CMakeFiles/hsu_sim.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hsu/CMakeFiles/hsu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hsu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rtunit/CMakeFiles/hsu_rtunit.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsu_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
