file(REMOVE_RECURSE
  "libhsu_sim.a"
)
