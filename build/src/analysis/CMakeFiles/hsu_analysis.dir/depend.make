# Empty dependencies file for hsu_analysis.
# This may be replaced when dependencies are built.
