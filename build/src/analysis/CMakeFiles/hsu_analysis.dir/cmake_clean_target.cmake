file(REMOVE_RECURSE
  "libhsu_analysis.a"
)
