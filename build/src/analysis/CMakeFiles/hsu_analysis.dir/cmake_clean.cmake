file(REMOVE_RECURSE
  "CMakeFiles/hsu_analysis.dir/datapath_cost.cc.o"
  "CMakeFiles/hsu_analysis.dir/datapath_cost.cc.o.d"
  "CMakeFiles/hsu_analysis.dir/roofline.cc.o"
  "CMakeFiles/hsu_analysis.dir/roofline.cc.o.d"
  "libhsu_analysis.a"
  "libhsu_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
