file(REMOVE_RECURSE
  "libhsu_geom.a"
)
