file(REMOVE_RECURSE
  "CMakeFiles/hsu_geom.dir/intersect.cc.o"
  "CMakeFiles/hsu_geom.dir/intersect.cc.o.d"
  "CMakeFiles/hsu_geom.dir/morton.cc.o"
  "CMakeFiles/hsu_geom.dir/morton.cc.o.d"
  "libhsu_geom.a"
  "libhsu_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
