# Empty dependencies file for hsu_geom.
# This may be replaced when dependencies are built.
