file(REMOVE_RECURSE
  "CMakeFiles/hsu_mem.dir/cache.cc.o"
  "CMakeFiles/hsu_mem.dir/cache.cc.o.d"
  "CMakeFiles/hsu_mem.dir/dram.cc.o"
  "CMakeFiles/hsu_mem.dir/dram.cc.o.d"
  "CMakeFiles/hsu_mem.dir/memsys.cc.o"
  "CMakeFiles/hsu_mem.dir/memsys.cc.o.d"
  "libhsu_mem.a"
  "libhsu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
