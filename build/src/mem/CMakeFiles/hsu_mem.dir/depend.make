# Empty dependencies file for hsu_mem.
# This may be replaced when dependencies are built.
