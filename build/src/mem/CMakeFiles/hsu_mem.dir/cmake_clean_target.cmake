file(REMOVE_RECURSE
  "libhsu_mem.a"
)
