# Empty dependencies file for hsu_common.
# This may be replaced when dependencies are built.
