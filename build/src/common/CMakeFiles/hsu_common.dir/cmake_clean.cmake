file(REMOVE_RECURSE
  "CMakeFiles/hsu_common.dir/logging.cc.o"
  "CMakeFiles/hsu_common.dir/logging.cc.o.d"
  "CMakeFiles/hsu_common.dir/rng.cc.o"
  "CMakeFiles/hsu_common.dir/rng.cc.o.d"
  "CMakeFiles/hsu_common.dir/stats.cc.o"
  "CMakeFiles/hsu_common.dir/stats.cc.o.d"
  "CMakeFiles/hsu_common.dir/table.cc.o"
  "CMakeFiles/hsu_common.dir/table.cc.o.d"
  "libhsu_common.a"
  "libhsu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
