file(REMOVE_RECURSE
  "libhsu_common.a"
)
