# Empty compiler generated dependencies file for ann_recommender.
# This may be replaced when dependencies are built.
