file(REMOVE_RECURSE
  "CMakeFiles/ann_recommender.dir/ann_recommender.cpp.o"
  "CMakeFiles/ann_recommender.dir/ann_recommender.cpp.o.d"
  "ann_recommender"
  "ann_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
