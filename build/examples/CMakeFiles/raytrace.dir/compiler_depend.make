# Empty compiler generated dependencies file for raytrace.
# This may be replaced when dependencies are built.
