# Empty dependencies file for point_cloud_registration.
# This may be replaced when dependencies are built.
