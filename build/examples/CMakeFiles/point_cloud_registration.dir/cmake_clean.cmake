file(REMOVE_RECURSE
  "CMakeFiles/point_cloud_registration.dir/point_cloud_registration.cpp.o"
  "CMakeFiles/point_cloud_registration.dir/point_cloud_registration.cpp.o.d"
  "point_cloud_registration"
  "point_cloud_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_cloud_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
