file(REMOVE_RECURSE
  "CMakeFiles/test_lbvh.dir/test_lbvh.cc.o"
  "CMakeFiles/test_lbvh.dir/test_lbvh.cc.o.d"
  "test_lbvh"
  "test_lbvh.pdb"
  "test_lbvh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
