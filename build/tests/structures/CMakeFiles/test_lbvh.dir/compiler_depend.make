# Empty compiler generated dependencies file for test_lbvh.
# This may be replaced when dependencies are built.
