file(REMOVE_RECURSE
  "CMakeFiles/test_kdtree.dir/test_kdtree.cc.o"
  "CMakeFiles/test_kdtree.dir/test_kdtree.cc.o.d"
  "test_kdtree"
  "test_kdtree.pdb"
  "test_kdtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
