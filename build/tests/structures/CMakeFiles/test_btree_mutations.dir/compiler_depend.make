# Empty compiler generated dependencies file for test_btree_mutations.
# This may be replaced when dependencies are built.
