file(REMOVE_RECURSE
  "CMakeFiles/test_btree_mutations.dir/test_btree_mutations.cc.o"
  "CMakeFiles/test_btree_mutations.dir/test_btree_mutations.cc.o.d"
  "test_btree_mutations"
  "test_btree_mutations.pdb"
  "test_btree_mutations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btree_mutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
