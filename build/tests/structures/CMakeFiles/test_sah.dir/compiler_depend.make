# Empty compiler generated dependencies file for test_sah.
# This may be replaced when dependencies are built.
