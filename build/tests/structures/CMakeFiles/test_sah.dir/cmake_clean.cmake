file(REMOVE_RECURSE
  "CMakeFiles/test_sah.dir/test_sah.cc.o"
  "CMakeFiles/test_sah.dir/test_sah.cc.o.d"
  "test_sah"
  "test_sah.pdb"
  "test_sah[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sah.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
