file(REMOVE_RECURSE
  "CMakeFiles/test_kdtree_radius.dir/test_kdtree_radius.cc.o"
  "CMakeFiles/test_kdtree_radius.dir/test_kdtree_radius.cc.o.d"
  "test_kdtree_radius"
  "test_kdtree_radius.pdb"
  "test_kdtree_radius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kdtree_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
