# Empty compiler generated dependencies file for test_kdtree_radius.
# This may be replaced when dependencies are built.
