# CMake generated Testfile for 
# Source directory: /root/repo/tests/structures
# Build directory: /root/repo/build/tests/structures
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/structures/test_lbvh[1]_include.cmake")
include("/root/repo/build/tests/structures/test_kdtree[1]_include.cmake")
include("/root/repo/build/tests/structures/test_graph[1]_include.cmake")
include("/root/repo/build/tests/structures/test_btree[1]_include.cmake")
include("/root/repo/build/tests/structures/test_sah[1]_include.cmake")
include("/root/repo/build/tests/structures/test_btree_mutations[1]_include.cmake")
include("/root/repo/build/tests/structures/test_kdtree_radius[1]_include.cmake")
include("/root/repo/build/tests/structures/test_serialize[1]_include.cmake")
