# CMake generated Testfile for 
# Source directory: /root/repo/tests/geom
# Build directory: /root/repo/build/tests/geom
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom/test_vec3[1]_include.cmake")
include("/root/repo/build/tests/geom/test_aabb[1]_include.cmake")
include("/root/repo/build/tests/geom/test_intersect[1]_include.cmake")
include("/root/repo/build/tests/geom/test_morton[1]_include.cmake")
