# Empty dependencies file for test_intersect.
# This may be replaced when dependencies are built.
