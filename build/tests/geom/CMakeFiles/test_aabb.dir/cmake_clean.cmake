file(REMOVE_RECURSE
  "CMakeFiles/test_aabb.dir/test_aabb.cc.o"
  "CMakeFiles/test_aabb.dir/test_aabb.cc.o.d"
  "test_aabb"
  "test_aabb.pdb"
  "test_aabb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aabb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
