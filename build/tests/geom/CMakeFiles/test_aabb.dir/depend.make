# Empty dependencies file for test_aabb.
# This may be replaced when dependencies are built.
