# Empty compiler generated dependencies file for test_rtunit.
# This may be replaced when dependencies are built.
