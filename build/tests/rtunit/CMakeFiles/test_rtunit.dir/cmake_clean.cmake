file(REMOVE_RECURSE
  "CMakeFiles/test_rtunit.dir/test_rtunit.cc.o"
  "CMakeFiles/test_rtunit.dir/test_rtunit.cc.o.d"
  "test_rtunit"
  "test_rtunit.pdb"
  "test_rtunit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
