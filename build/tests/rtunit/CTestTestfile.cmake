# CMake generated Testfile for 
# Source directory: /root/repo/tests/rtunit
# Build directory: /root/repo/build/tests/rtunit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rtunit/test_rtunit[1]_include.cmake")
