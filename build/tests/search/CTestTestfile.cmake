# CMake generated Testfile for 
# Source directory: /root/repo/tests/search
# Build directory: /root/repo/build/tests/search
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/search/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/search/test_runner[1]_include.cmake")
include("/root/repo/build/tests/search/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/search/test_bvh4_kernel[1]_include.cmake")
