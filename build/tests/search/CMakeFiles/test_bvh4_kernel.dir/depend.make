# Empty dependencies file for test_bvh4_kernel.
# This may be replaced when dependencies are built.
