file(REMOVE_RECURSE
  "CMakeFiles/test_bvh4_kernel.dir/test_bvh4_kernel.cc.o"
  "CMakeFiles/test_bvh4_kernel.dir/test_bvh4_kernel.cc.o.d"
  "test_bvh4_kernel"
  "test_bvh4_kernel.pdb"
  "test_bvh4_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bvh4_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
