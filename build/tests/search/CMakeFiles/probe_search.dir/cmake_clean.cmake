file(REMOVE_RECURSE
  "CMakeFiles/probe_search.dir/probe_main.cc.o"
  "CMakeFiles/probe_search.dir/probe_main.cc.o.d"
  "probe_search"
  "probe_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
