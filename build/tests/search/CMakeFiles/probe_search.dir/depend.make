# Empty dependencies file for probe_search.
# This may be replaced when dependencies are built.
