
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_determinism.cc" "tests/sim/CMakeFiles/test_determinism.dir/test_determinism.cc.o" "gcc" "tests/sim/CMakeFiles/test_determinism.dir/test_determinism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/hsu_search.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hsu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hsu_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/structures/CMakeFiles/hsu_structures.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtunit/CMakeFiles/hsu_rtunit.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hsu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hsu/CMakeFiles/hsu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsu_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
