# CMake generated Testfile for 
# Source directory: /root/repo/tests/hsu
# Build directory: /root/repo/build/tests/hsu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hsu/test_functional[1]_include.cmake")
include("/root/repo/build/tests/hsu/test_device_api[1]_include.cmake")
include("/root/repo/build/tests/hsu/test_encoding[1]_include.cmake")
