file(REMOVE_RECURSE
  "CMakeFiles/fig15_area.dir/fig15_area.cc.o"
  "CMakeFiles/fig15_area.dir/fig15_area.cc.o.d"
  "fig15_area"
  "fig15_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
