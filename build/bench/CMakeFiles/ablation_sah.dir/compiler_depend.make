# Empty compiler generated dependencies file for ablation_sah.
# This may be replaced when dependencies are built.
