# Empty dependencies file for ablation_sah.
# This may be replaced when dependencies are built.
