file(REMOVE_RECURSE
  "CMakeFiles/ablation_sah.dir/ablation_sah.cc.o"
  "CMakeFiles/ablation_sah.dir/ablation_sah.cc.o.d"
  "ablation_sah"
  "ablation_sah.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sah.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
