file(REMOVE_RECURSE
  "CMakeFiles/rtindex_compare.dir/rtindex_compare.cc.o"
  "CMakeFiles/rtindex_compare.dir/rtindex_compare.cc.o.d"
  "rtindex_compare"
  "rtindex_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtindex_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
