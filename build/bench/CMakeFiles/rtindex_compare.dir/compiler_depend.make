# Empty compiler generated dependencies file for rtindex_compare.
# This may be replaced when dependencies are built.
