file(REMOVE_RECURSE
  "CMakeFiles/fig12_l1_accesses.dir/fig12_l1_accesses.cc.o"
  "CMakeFiles/fig12_l1_accesses.dir/fig12_l1_accesses.cc.o.d"
  "fig12_l1_accesses"
  "fig12_l1_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_l1_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
