# Empty compiler generated dependencies file for fig12_l1_accesses.
# This may be replaced when dependencies are built.
