# Empty dependencies file for fig16_power.
# This may be replaced when dependencies are built.
