# Empty compiler generated dependencies file for fig8_roofline.
# This may be replaced when dependencies are built.
