file(REMOVE_RECURSE
  "CMakeFiles/fig8_roofline.dir/fig8_roofline.cc.o"
  "CMakeFiles/fig8_roofline.dir/fig8_roofline.cc.o.d"
  "fig8_roofline"
  "fig8_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
