file(REMOVE_RECURSE
  "CMakeFiles/ablation_bvh4.dir/ablation_bvh4.cc.o"
  "CMakeFiles/ablation_bvh4.dir/ablation_bvh4.cc.o.d"
  "ablation_bvh4"
  "ablation_bvh4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bvh4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
