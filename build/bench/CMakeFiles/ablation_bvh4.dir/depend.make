# Empty dependencies file for ablation_bvh4.
# This may be replaced when dependencies are built.
