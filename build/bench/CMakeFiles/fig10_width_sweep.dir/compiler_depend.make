# Empty compiler generated dependencies file for fig10_width_sweep.
# This may be replaced when dependencies are built.
