# Empty compiler generated dependencies file for fig11_warp_buffer.
# This may be replaced when dependencies are built.
