file(REMOVE_RECURSE
  "CMakeFiles/fig11_warp_buffer.dir/fig11_warp_buffer.cc.o"
  "CMakeFiles/fig11_warp_buffer.dir/fig11_warp_buffer.cc.o.d"
  "fig11_warp_buffer"
  "fig11_warp_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_warp_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
