file(REMOVE_RECURSE
  "CMakeFiles/fig14_row_locality.dir/fig14_row_locality.cc.o"
  "CMakeFiles/fig14_row_locality.dir/fig14_row_locality.cc.o.d"
  "fig14_row_locality"
  "fig14_row_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_row_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
