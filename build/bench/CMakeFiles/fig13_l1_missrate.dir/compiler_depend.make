# Empty compiler generated dependencies file for fig13_l1_missrate.
# This may be replaced when dependencies are built.
