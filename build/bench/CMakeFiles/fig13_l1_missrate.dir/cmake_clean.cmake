file(REMOVE_RECURSE
  "CMakeFiles/fig13_l1_missrate.dir/fig13_l1_missrate.cc.o"
  "CMakeFiles/fig13_l1_missrate.dir/fig13_l1_missrate.cc.o.d"
  "fig13_l1_missrate"
  "fig13_l1_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_l1_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
