# Empty dependencies file for ablation_unit.
# This may be replaced when dependencies are built.
