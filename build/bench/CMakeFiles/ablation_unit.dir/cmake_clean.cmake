file(REMOVE_RECURSE
  "CMakeFiles/ablation_unit.dir/ablation_unit.cc.o"
  "CMakeFiles/ablation_unit.dir/ablation_unit.cc.o.d"
  "ablation_unit"
  "ablation_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
