file(REMOVE_RECURSE
  "CMakeFiles/fig7_hsu_fraction.dir/fig7_hsu_fraction.cc.o"
  "CMakeFiles/fig7_hsu_fraction.dir/fig7_hsu_fraction.cc.o.d"
  "fig7_hsu_fraction"
  "fig7_hsu_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hsu_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
