# Empty dependencies file for fig7_hsu_fraction.
# This may be replaced when dependencies are built.
