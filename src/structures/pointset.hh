/**
 * @file
 * Dense N-dimensional float point storage shared by every search index.
 */

#ifndef HSU_STRUCTURES_POINTSET_HH
#define HSU_STRUCTURES_POINTSET_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "geom/vec3.hh"

namespace hsu
{

/** A row-major (point-major) array of n-dimensional float points. */
class PointSet
{
  public:
    PointSet() = default;

    /** Create an empty set of @p dim-dimensional points. */
    explicit PointSet(unsigned dim) : dim_(dim)
    {
        hsu_assert(dim > 0, "points need at least one dimension");
    }

    /** Append one point (must have dim() components). */
    void
    add(const float *coords)
    {
        data_.insert(data_.end(), coords, coords + dim_);
    }

    /** Append a 3-D point. @pre dim() == 3. */
    void
    add(const Vec3 &p)
    {
        hsu_assert(dim_ == 3, "Vec3 add on non-3D point set");
        data_.push_back(p.x);
        data_.push_back(p.y);
        data_.push_back(p.z);
    }

    /** Number of points. */
    std::size_t size() const { return dim_ ? data_.size() / dim_ : 0; }

    /** Dimensionality. */
    unsigned dim() const { return dim_; }

    /** Pointer to point @p i's coordinates. */
    const float *operator[](std::size_t i) const
    { return data_.data() + i * dim_; }

    /** Mutable pointer to point @p i's coordinates. */
    float *mutablePoint(std::size_t i) { return data_.data() + i * dim_; }

    /** Point @p i as a Vec3. @pre dim() == 3. */
    Vec3
    vec3(std::size_t i) const
    {
        hsu_assert(dim_ == 3, "vec3() on non-3D point set");
        const float *p = (*this)[i];
        return {p[0], p[1], p[2]};
    }

    /** Bytes per point (4 * dim). */
    unsigned strideBytes() const { return dim_ * 4; }

    /** Reserve capacity for @p n points. */
    void reserve(std::size_t n) { data_.reserve(n * dim_); }

  private:
    unsigned dim_ = 0;
    std::vector<float> data_;
};

/** Exact squared Euclidean distance (reference implementation). */
inline float
pointDist2(const float *a, const float *b, unsigned dim)
{
    float sum = 0.0f;
    for (unsigned i = 0; i < dim; ++i) {
        const float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

} // namespace hsu

#endif // HSU_STRUCTURES_POINTSET_HH
