#include "structures/btree.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

BTree
BTree::build(std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs,
             unsigned order, double leaf_fill)
{
    hsu_assert(order >= 3, "B+tree order must be at least 3");
    hsu_assert(leaf_fill > 0.0 && leaf_fill <= 1.0, "bad leaf fill");

    BTree tree;
    tree.order_ = order;

    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end(),
                            [](const auto &a, const auto &b) {
                                return a.first == b.first;
                            }),
                pairs.end());

    if (pairs.empty()) {
        BTreeNode leaf;
        leaf.leaf = true;
        tree.nodes_.push_back(std::move(leaf));
        tree.root_ = 0;
        return tree;
    }

    // Pack leaves at the target fill factor.
    const unsigned leaf_cap = std::max(
        1u, static_cast<unsigned>((order - 1) * leaf_fill));
    std::vector<std::int32_t> level;   // node ids of the current level
    std::vector<std::uint32_t> lowest; // smallest key under each node
    for (std::size_t i = 0; i < pairs.size(); i += leaf_cap) {
        BTreeNode leaf;
        leaf.leaf = true;
        const std::size_t end = std::min(pairs.size(), i + leaf_cap);
        for (std::size_t j = i; j < end; ++j) {
            leaf.keys.push_back(pairs[j].first);
            leaf.values.push_back(pairs[j].second);
        }
        level.push_back(static_cast<std::int32_t>(tree.nodes_.size()));
        lowest.push_back(leaf.keys.front());
        tree.nodes_.push_back(std::move(leaf));
    }

    // Build internal levels until a single root remains.
    while (level.size() > 1) {
        std::vector<std::int32_t> next;
        std::vector<std::uint32_t> next_lowest;
        const unsigned fanout = order;
        for (std::size_t i = 0; i < level.size(); i += fanout) {
            BTreeNode node;
            const std::size_t end = std::min(level.size(), i + fanout);
            for (std::size_t j = i; j < end; ++j) {
                node.children.push_back(level[j]);
                if (j > i)
                    node.keys.push_back(lowest[j]);
            }
            next.push_back(static_cast<std::int32_t>(
                tree.nodes_.size()));
            next_lowest.push_back(lowest[i]);
            tree.nodes_.push_back(std::move(node));
        }
        level = std::move(next);
        lowest = std::move(next_lowest);
    }
    tree.root_ = level.front();
    return tree;
}

unsigned
BTree::childSlot(const BTreeNode &node, std::uint32_t key)
{
    // Number of separators <= key. Separator semantics match the
    // KEY_COMPARE bit vector: bit i is 1 iff key >= keys[i].
    unsigned slot = 0;
    while (slot < node.keys.size() && key >= node.keys[slot])
        ++slot;
    return slot;
}

std::optional<std::uint32_t>
BTree::lookup(std::uint32_t key) const
{
    if (root_ < 0)
        return std::nullopt;
    const BTreeNode *node = &nodes_[static_cast<std::size_t>(root_)];
    while (!node->leaf) {
        const unsigned slot = childSlot(*node, key);
        node = &nodes_[static_cast<std::size_t>(node->children[slot])];
    }
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key)
        return std::nullopt;
    return node->values[static_cast<std::size_t>(
        it - node->keys.begin())];
}

namespace
{

/** A node is full when it holds order-1 keys. */
bool
nodeFull(const BTreeNode &node, unsigned order)
{
    return node.keys.size() >= order - 1;
}

} // namespace

void
BTree::insert(std::uint32_t key, std::uint32_t value)
{
    hsu_assert(root_ >= 0, "insert into uninitialized tree");

    // Preemptive split on the way down (single pass): splitting a
    // child of a non-full parent never cascades upward.
    auto split_child = [this](std::int32_t parent_idx, unsigned slot) {
        const auto right_idx =
            static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back(); // may invalidate references: reindex!
        BTreeNode &child = nodes_[static_cast<std::size_t>(
            nodes_[static_cast<std::size_t>(parent_idx)]
                .children[slot])];
        BTreeNode &right = nodes_.back();
        right.leaf = child.leaf;
        const std::size_t mid = child.keys.size() / 2;
        std::uint32_t separator;
        if (child.leaf) {
            // B+tree: the separator is COPIED up; the right leaf keeps
            // its first key.
            right.keys.assign(child.keys.begin() +
                                  static_cast<std::ptrdiff_t>(mid),
                              child.keys.end());
            right.values.assign(child.values.begin() +
                                    static_cast<std::ptrdiff_t>(mid),
                                child.values.end());
            child.keys.resize(mid);
            child.values.resize(mid);
            separator = right.keys.front();
        } else {
            // Internal: the middle key MOVES up.
            separator = child.keys[mid];
            right.keys.assign(child.keys.begin() +
                                  static_cast<std::ptrdiff_t>(mid) + 1,
                              child.keys.end());
            right.children.assign(
                child.children.begin() +
                    static_cast<std::ptrdiff_t>(mid) + 1,
                child.children.end());
            child.keys.resize(mid);
            child.children.resize(mid + 1);
        }
        BTreeNode &parent =
            nodes_[static_cast<std::size_t>(parent_idx)];
        parent.keys.insert(parent.keys.begin() + slot, separator);
        parent.children.insert(parent.children.begin() + slot + 1,
                               right_idx);
    };

    // Grow the root first if it is full.
    if (nodeFull(nodes_[static_cast<std::size_t>(root_)], order_)) {
        const auto new_root =
            static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
        nodes_.back().leaf = false;
        nodes_.back().children.push_back(root_);
        root_ = new_root;
        split_child(root_, 0);
    }

    std::int32_t cur = root_;
    while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
        unsigned slot =
            childSlot(nodes_[static_cast<std::size_t>(cur)], key);
        const std::int32_t child =
            nodes_[static_cast<std::size_t>(cur)].children[slot];
        if (nodeFull(nodes_[static_cast<std::size_t>(child)], order_)) {
            split_child(cur, slot);
            slot = childSlot(nodes_[static_cast<std::size_t>(cur)],
                             key);
        }
        cur = nodes_[static_cast<std::size_t>(cur)].children[slot];
    }

    BTreeNode &leaf = nodes_[static_cast<std::size_t>(cur)];
    const auto it =
        std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
    const auto pos = it - leaf.keys.begin();
    if (it != leaf.keys.end() && *it == key) {
        leaf.values[static_cast<std::size_t>(pos)] = value;
        return;
    }
    leaf.keys.insert(it, key);
    leaf.values.insert(leaf.values.begin() + pos, value);
}

bool
BTree::erase(std::uint32_t key)
{
    if (root_ < 0)
        return false;
    BTreeNode *node = &nodes_[static_cast<std::size_t>(root_)];
    while (!node->leaf) {
        node = &nodes_[static_cast<std::size_t>(
            node->children[childSlot(*node, key)])];
    }
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key)
        return false;
    const auto pos = it - node->keys.begin();
    node->keys.erase(it);
    node->values.erase(node->values.begin() + pos);
    return true;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
BTree::range(std::uint32_t lo, std::uint32_t hi) const
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    if (root_ < 0 || lo > hi)
        return out;

    // DFS visiting only children whose key range intersects [lo, hi],
    // pushed in reverse so results stream out in ascending key order.
    std::vector<std::int32_t> work{root_};
    while (!work.empty()) {
        const std::int32_t idx = work.back();
        work.pop_back();
        const BTreeNode &node = nodes_[static_cast<std::size_t>(idx)];
        if (node.leaf) {
            const auto first = std::lower_bound(node.keys.begin(),
                                                node.keys.end(), lo);
            for (auto it = first;
                 it != node.keys.end() && *it <= hi; ++it) {
                out.emplace_back(
                    *it, node.values[static_cast<std::size_t>(
                             it - node.keys.begin())]);
            }
            continue;
        }
        const unsigned first = childSlot(node, lo);
        const unsigned last = childSlot(node, hi);
        for (unsigned c = last + 1; c-- > first;)
            work.push_back(node.children[c]);
    }
    return out;
}

std::size_t
BTree::size() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_) {
        if (node.leaf)
            n += node.keys.size();
    }
    return n;
}

unsigned
BTree::height() const
{
    if (root_ < 0)
        return 0;
    unsigned h = 1;
    const BTreeNode *node = &nodes_[static_cast<std::size_t>(root_)];
    while (!node->leaf) {
        node = &nodes_[static_cast<std::size_t>(node->children[0])];
        ++h;
    }
    return h;
}

bool
BTree::validate() const
{
    if (root_ < 0)
        return false;

    struct Item
    {
        std::int32_t node;
        unsigned depth;
    };
    std::vector<Item> stack{{root_, 1}};
    int leaf_depth = -1;
    std::uint32_t last_leaf_key = 0;
    bool have_last = false;

    // Depth-first, children in order, so leaf keys stream in sorted
    // order if the tree is correct.
    while (!stack.empty()) {
        const Item item = stack.back();
        stack.pop_back();
        const BTreeNode &node =
            nodes_[static_cast<std::size_t>(item.node)];

        if (!std::is_sorted(node.keys.begin(), node.keys.end()))
            return false;

        if (node.leaf) {
            if (leaf_depth < 0)
                leaf_depth = static_cast<int>(item.depth);
            if (static_cast<int>(item.depth) != leaf_depth)
                return false;
            if (node.keys.size() != node.values.size())
                return false;
            for (const auto key : node.keys) {
                if (have_last && key <= last_leaf_key)
                    return false;
                last_leaf_key = key;
                have_last = true;
            }
            continue;
        }

        if (node.children.size() != node.keys.size() + 1)
            return false;
        if (node.children.size() > order_)
            return false;
        // Push in reverse so the leftmost child is visited first.
        for (auto it = node.children.rbegin();
             it != node.children.rend(); ++it) {
            stack.push_back({*it, item.depth + 1});
        }
    }
    return true;
}

} // namespace hsu

namespace hsu
{

BTree
BTree::fromParts(std::vector<BTreeNode> nodes, std::int32_t root,
                 unsigned order)
{
    BTree tree;
    tree.nodes_ = std::move(nodes);
    tree.root_ = root;
    tree.order_ = order;
    return tree;
}

} // namespace hsu
