#include "structures/lbvh.hh"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/logging.hh"
#include "geom/morton.hh"

namespace hsu
{

namespace
{

/** Sort keys: Morton code with the original index appended so keys are
 *  unique even when codes collide (Karras 2012, section 4). */
struct SortedPrim
{
    std::uint64_t code;
    std::uint32_t index;
};

/** Length of the common prefix between keys i and j; -1 out of range. */
int
deltaFn(const std::vector<SortedPrim> &keys, int i, int j)
{
    const int n = static_cast<int>(keys.size());
    if (j < 0 || j >= n)
        return -1;
    const std::uint64_t ci = keys[i].code;
    const std::uint64_t cj = keys[j].code;
    if (ci != cj)
        return std::countl_zero(ci ^ cj);
    // Identical codes: extend the key with the index bits.
    const std::uint32_t xi = keys[i].index ^ keys[j].index;
    return 64 + std::countl_zero(static_cast<std::uint64_t>(xi));
}

} // namespace

Lbvh
Lbvh::buildFromPoints(const PointSet &points, float leaf_half_extent)
{
    hsu_assert(points.dim() == 3, "LBVH over points requires 3-D data");
    std::vector<Aabb> boxes;
    boxes.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        boxes.push_back(Aabb::centered(points.vec3(i), leaf_half_extent));
    return buildImpl(boxes);
}

Lbvh
Lbvh::buildFromTriangles(const std::vector<Triangle> &tris)
{
    std::vector<Aabb> boxes;
    boxes.reserve(tris.size());
    for (const auto &t : tris) {
        Aabb b;
        b.expand(t.v0);
        b.expand(t.v1);
        b.expand(t.v2);
        boxes.push_back(b);
    }
    return buildImpl(boxes);
}

Lbvh
Lbvh::buildFromBoxes(const std::vector<Aabb> &boxes)
{
    return buildImpl(boxes);
}

Lbvh
Lbvh::buildImpl(const std::vector<Aabb> &leaf_boxes)
{
    Lbvh bvh;
    const int n = static_cast<int>(leaf_boxes.size());
    bvh.numLeaves_ = leaf_boxes.size();
    if (n == 0)
        return bvh;

    if (n == 1) {
        LbvhNode leaf;
        leaf.bounds = leaf_boxes[0];
        leaf.primitive = 0;
        bvh.nodes_.push_back(leaf);
        bvh.root_ = 0;
        return bvh;
    }

    // Morton-sort the primitives by centroid.
    Aabb centroid_bounds;
    for (const auto &b : leaf_boxes)
        centroid_bounds.expand(b.center());
    std::vector<SortedPrim> keys(leaf_boxes.size());
    for (std::size_t i = 0; i < leaf_boxes.size(); ++i) {
        keys[i].code = mortonCode63(leaf_boxes[i].center(),
                                    centroid_bounds);
        keys[i].index = static_cast<std::uint32_t>(i);
    }
    std::sort(keys.begin(), keys.end(),
              [](const SortedPrim &a, const SortedPrim &b) {
                  return a.code != b.code ? a.code < b.code
                                          : a.index < b.index;
              });

    // Layout: internal nodes [0, n-1), leaves [n-1, 2n-1).
    bvh.nodes_.assign(2 * static_cast<std::size_t>(n) - 1, LbvhNode{});
    const int leaf_base = n - 1;
    for (int i = 0; i < n; ++i) {
        LbvhNode &leaf = bvh.nodes_[static_cast<std::size_t>(
            leaf_base + i)];
        leaf.bounds = leaf_boxes[keys[static_cast<std::size_t>(i)].index];
        leaf.primitive = static_cast<std::int32_t>(
            keys[static_cast<std::size_t>(i)].index);
    }

    auto delta = [&keys](int i, int j) { return deltaFn(keys, i, j); };

    // Karras 2012: determine each internal node's range and split.
    for (int i = 0; i < n - 1; ++i) {
        const int d = delta(i, i + 1) - delta(i, i - 1) > 0 ? 1 : -1;
        const int delta_min = delta(i, i - d);

        int lmax = 2;
        while (delta(i, i + lmax * d) > delta_min)
            lmax *= 2;

        int l = 0;
        for (int t = lmax / 2; t >= 1; t /= 2) {
            if (delta(i, i + (l + t) * d) > delta_min)
                l += t;
        }
        const int j = i + l * d;
        const int delta_node = delta(i, j);

        int s = 0;
        for (int t = (l + 1) / 2;; t = (t + 1) / 2) {
            if (delta(i, i + (s + t) * d) > delta_node)
                s += t;
            if (t == 1)
                break;
        }
        const int gamma = i + s * d + std::min(d, 0);

        const int left = std::min(i, j) == gamma
            ? leaf_base + gamma
            : gamma;
        const int right = std::max(i, j) == gamma + 1
            ? leaf_base + gamma + 1
            : gamma + 1;

        LbvhNode &node = bvh.nodes_[static_cast<std::size_t>(i)];
        node.left = left;
        node.right = right;
        bvh.nodes_[static_cast<std::size_t>(left)].parent = i;
        bvh.nodes_[static_cast<std::size_t>(right)].parent = i;
    }
    bvh.root_ = 0;

    // Fit internal AABBs bottom-up: walk up from each leaf; a node is
    // processed the second time it is reached (both children done).
    std::vector<std::uint8_t> visits(static_cast<std::size_t>(n - 1), 0);
    for (int i = 0; i < n; ++i) {
        int cur = bvh.nodes_[static_cast<std::size_t>(leaf_base + i)]
                      .parent;
        while (cur >= 0) {
            if (++visits[static_cast<std::size_t>(cur)] < 2)
                break;
            LbvhNode &node = bvh.nodes_[static_cast<std::size_t>(cur)];
            node.bounds = Aabb{};
            node.bounds.expand(
                bvh.nodes_[static_cast<std::size_t>(node.left)].bounds);
            node.bounds.expand(
                bvh.nodes_[static_cast<std::size_t>(node.right)].bounds);
            cur = node.parent;
        }
    }
    return bvh;
}

bool
Lbvh::validate() const
{
    if (nodes_.empty())
        return numLeaves_ == 0;

    std::vector<std::uint32_t> seen;
    std::vector<std::int32_t> stack{root_};
    std::size_t visited = 0;
    while (!stack.empty()) {
        const std::int32_t idx = stack.back();
        stack.pop_back();
        ++visited;
        const LbvhNode &node = nodes_[static_cast<std::size_t>(idx)];
        if (node.isLeaf()) {
            seen.push_back(static_cast<std::uint32_t>(node.primitive));
            continue;
        }
        if (node.left < 0 || node.right < 0)
            return false;
        for (const std::int32_t c : {node.left, node.right}) {
            const LbvhNode &child = nodes_[static_cast<std::size_t>(c)];
            if (child.parent != idx)
                return false;
            // Containment must be exact: parents are unions of children.
            if (child.bounds.lo.x < node.bounds.lo.x ||
                child.bounds.lo.y < node.bounds.lo.y ||
                child.bounds.lo.z < node.bounds.lo.z ||
                child.bounds.hi.x > node.bounds.hi.x ||
                child.bounds.hi.y > node.bounds.hi.y ||
                child.bounds.hi.z > node.bounds.hi.z) {
                return false;
            }
            stack.push_back(c);
        }
    }
    if (visited != nodes_.size())
        return false;
    std::sort(seen.begin(), seen.end());
    if (seen.size() != numLeaves_)
        return false;
    for (std::size_t i = 0; i < seen.size(); ++i) {
        if (seen[i] != i)
            return false;
    }
    return true;
}

std::vector<std::uint32_t>
Lbvh::pointQuery(const Vec3 &p) const
{
    std::vector<std::uint32_t> hits;
    if (nodes_.empty())
        return hits;
    std::vector<std::int32_t> stack{root_};
    while (!stack.empty()) {
        const std::int32_t idx = stack.back();
        stack.pop_back();
        const LbvhNode &node = nodes_[static_cast<std::size_t>(idx)];
        if (!node.bounds.contains(p))
            continue;
        if (node.isLeaf()) {
            hits.push_back(static_cast<std::uint32_t>(node.primitive));
        } else {
            stack.push_back(node.left);
            stack.push_back(node.right);
        }
    }
    std::sort(hits.begin(), hits.end());
    return hits;
}

namespace
{

/** Recursive binned-SAH splitter used by Lbvh::buildSah. */
struct SahBuilder
{
    const std::vector<Aabb> &boxes;
    unsigned numBins;
    std::vector<LbvhNode> nodes;
    std::vector<std::uint32_t> order; // primitive ids, partitioned

    std::int32_t
    build(std::uint32_t first, std::uint32_t count)
    {
        const auto idx = static_cast<std::int32_t>(nodes.size());
        nodes.emplace_back();

        Aabb bounds, centroid_bounds;
        for (std::uint32_t i = first; i < first + count; ++i) {
            bounds.expand(boxes[order[i]]);
            centroid_bounds.expand(boxes[order[i]].center());
        }
        nodes[static_cast<std::size_t>(idx)].bounds = bounds;

        if (count == 1) {
            nodes[static_cast<std::size_t>(idx)].primitive =
                static_cast<std::int32_t>(order[first]);
            return idx;
        }

        // Pick the centroid-extent axis and scan SAH bins along it.
        const Vec3 ext = centroid_bounds.extent();
        int axis = 0;
        if (ext.y > ext[axis])
            axis = 1;
        if (ext.z > ext[axis])
            axis = 2;

        std::uint32_t mid = first + count / 2;
        if (ext[axis] > 0.0f) {
            struct Bin
            {
                Aabb bounds;
                unsigned count = 0;
            };
            std::vector<Bin> bins(numBins);
            const float lo = centroid_bounds.lo[axis];
            const float scale =
                static_cast<float>(numBins) / ext[axis];
            auto bin_of = [&](std::uint32_t prim) {
                const float c = boxes[prim].center()[axis];
                const auto b = static_cast<unsigned>((c - lo) * scale);
                return std::min(b, numBins - 1);
            };
            for (std::uint32_t i = first; i < first + count; ++i) {
                Bin &b = bins[bin_of(order[i])];
                b.bounds.expand(boxes[order[i]]);
                ++b.count;
            }
            // Sweep to find the cheapest split boundary.
            std::vector<double> right_cost(numBins, 0.0);
            Aabb acc;
            unsigned n = 0;
            for (unsigned b = numBins - 1; b >= 1; --b) {
                acc.expand(bins[b].bounds);
                n += bins[b].count;
                right_cost[b] = static_cast<double>(n) *
                                acc.surfaceArea();
            }
            acc = Aabb{};
            n = 0;
            double best_cost = -1.0;
            unsigned best_split = 0;
            for (unsigned b = 0; b + 1 < numBins; ++b) {
                acc.expand(bins[b].bounds);
                n += bins[b].count;
                if (n == 0 || n == count)
                    continue;
                const double cost = static_cast<double>(n) *
                                        acc.surfaceArea() +
                                    right_cost[b + 1];
                if (best_cost < 0 || cost < best_cost) {
                    best_cost = cost;
                    best_split = b;
                }
            }
            if (best_cost >= 0) {
                auto *begin = order.data() + first;
                auto *split = std::partition(
                    begin, begin + count,
                    [&](std::uint32_t prim) {
                        return bin_of(prim) <= best_split;
                    });
                const auto left =
                    static_cast<std::uint32_t>(split - begin);
                if (left > 0 && left < count)
                    mid = first + left;
            }
        }

        const std::int32_t left = build(first, mid - first);
        const std::int32_t right = build(mid, first + count - mid);
        nodes[static_cast<std::size_t>(idx)].left = left;
        nodes[static_cast<std::size_t>(idx)].right = right;
        nodes[static_cast<std::size_t>(left)].parent = idx;
        nodes[static_cast<std::size_t>(right)].parent = idx;
        return idx;
    }
};

} // namespace

Lbvh
Lbvh::buildSah(const std::vector<Aabb> &boxes, unsigned num_bins)
{
    Lbvh bvh;
    bvh.numLeaves_ = boxes.size();
    if (boxes.empty())
        return bvh;

    SahBuilder builder{boxes, std::max(2u, num_bins), {}, {}};
    builder.order.resize(boxes.size());
    for (std::size_t i = 0; i < boxes.size(); ++i)
        builder.order[i] = static_cast<std::uint32_t>(i);
    builder.nodes.reserve(2 * boxes.size());
    builder.build(0, static_cast<std::uint32_t>(boxes.size()));

    bvh.nodes_ = std::move(builder.nodes);
    bvh.root_ = 0;
    return bvh;
}

Lbvh
Lbvh::buildSahFromPoints(const PointSet &points, float leaf_half_extent,
                         unsigned num_bins)
{
    hsu_assert(points.dim() == 3, "SAH BVH over points requires 3-D");
    std::vector<Aabb> boxes;
    boxes.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        boxes.push_back(Aabb::centered(points.vec3(i), leaf_half_extent));
    return buildSah(boxes, num_bins);
}

double
Lbvh::sahCost() const
{
    if (nodes_.empty())
        return 0.0;
    const double root_area =
        nodes_[static_cast<std::size_t>(root_)].bounds.surfaceArea();
    if (root_area <= 0.0)
        return 0.0;
    double cost = 0.0;
    for (const auto &node : nodes_) {
        if (!node.isLeaf())
            cost += node.bounds.surfaceArea() / root_area;
    }
    return cost;
}

void
Lbvh::refit(const std::vector<Aabb> &new_boxes)
{
    hsu_assert(new_boxes.size() == numLeaves_,
               "refit box count mismatch");
    if (nodes_.empty())
        return;
    // Set leaves, then fix inner nodes children-before-parents: inner
    // nodes were appended before their leaves in both builders, but
    // parents always precede children in neither — walk up from leaves
    // with visit counting, as in the builder.
    std::vector<std::uint8_t> visits(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        LbvhNode &node = nodes_[i];
        if (!node.isLeaf())
            continue;
        node.bounds =
            new_boxes[static_cast<std::size_t>(node.primitive)];
        std::int32_t cur = node.parent;
        while (cur >= 0) {
            if (++visits[static_cast<std::size_t>(cur)] < 2)
                break;
            LbvhNode &inner = nodes_[static_cast<std::size_t>(cur)];
            inner.bounds = Aabb{};
            inner.bounds.expand(
                nodes_[static_cast<std::size_t>(inner.left)].bounds);
            inner.bounds.expand(
                nodes_[static_cast<std::size_t>(inner.right)].bounds);
            cur = inner.parent;
        }
    }
}

std::vector<std::uint32_t>
Lbvh::primitivePositions() const
{
    // In-order (left-to-right) leaf rank: for the Morton builder this
    // is the Morton-sorted order; for the SAH builder it is the
    // builder's spatial partitioning order. Either way, storing the
    // device point array in this order gives traversal locality.
    std::vector<std::uint32_t> pos(numLeaves_);
    if (nodes_.empty())
        return pos;
    std::uint32_t next = 0;
    std::vector<std::int32_t> stack{root_};
    while (!stack.empty()) {
        const std::int32_t idx = stack.back();
        stack.pop_back();
        const LbvhNode &node = nodes_[static_cast<std::size_t>(idx)];
        if (node.isLeaf()) {
            pos[static_cast<std::size_t>(node.primitive)] = next++;
            continue;
        }
        stack.push_back(node.right);
        stack.push_back(node.left); // left pops first
    }
    return pos;
}

Bvh4
Bvh4::fromBinary(const Lbvh &bvh)
{
    Bvh4 out;
    const auto &nodes = bvh.nodes();
    if (nodes.empty())
        return out;

    out.primBounds_.resize(bvh.numLeaves());
    for (const auto &node : nodes) {
        if (node.isLeaf()) {
            out.primBounds_[static_cast<std::size_t>(node.primitive)] =
                node.bounds;
        }
    }

    // Special case: a single-leaf tree becomes one box node whose only
    // child is the primitive.
    if (nodes.size() == 1) {
        BoxNode4 root;
        root.bounds[0] = nodes[0].bounds;
        root.child[0] = makeChildRef(
            static_cast<std::uint32_t>(nodes[0].primitive), true);
        out.nodes_.push_back(root);
        return out;
    }

    // Collapse: each BVH4 node adopts up to four binary descendants by
    // repeatedly expanding the internal slot with the largest surface
    // area (a standard greedy widening).
    struct WorkItem
    {
        std::int32_t binaryNode;
        std::uint32_t slot; // BVH4 node index to fill
    };
    std::vector<WorkItem> work;
    out.nodes_.emplace_back();
    work.push_back({bvh.root(), 0});

    while (!work.empty()) {
        const WorkItem item = work.back();
        work.pop_back();

        std::vector<std::int32_t> slots;
        const LbvhNode &root = nodes[static_cast<std::size_t>(
            item.binaryNode)];
        slots.push_back(root.left);
        slots.push_back(root.right);
        while (slots.size() < 4) {
            int expand = -1;
            float best_area = -1.0f;
            for (std::size_t i = 0; i < slots.size(); ++i) {
                const LbvhNode &cand = nodes[static_cast<std::size_t>(
                    slots[i])];
                if (cand.isLeaf())
                    continue;
                const float area = cand.bounds.surfaceArea();
                if (area > best_area) {
                    best_area = area;
                    expand = static_cast<int>(i);
                }
            }
            if (expand < 0)
                break;
            const LbvhNode &chosen = nodes[static_cast<std::size_t>(
                slots[static_cast<std::size_t>(expand)])];
            slots[static_cast<std::size_t>(expand)] = chosen.left;
            slots.push_back(chosen.right);
        }

        // Build into a local first: emplace_back below may reallocate
        // the node vector and would invalidate a held reference.
        BoxNode4 box;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            const LbvhNode &child = nodes[static_cast<std::size_t>(
                slots[i])];
            box.bounds[i] = child.bounds;
            if (child.isLeaf()) {
                box.child[i] = makeChildRef(
                    static_cast<std::uint32_t>(child.primitive), true);
            } else {
                const auto new_idx = static_cast<std::uint32_t>(
                    out.nodes_.size());
                out.nodes_.emplace_back();
                box.child[i] = makeChildRef(new_idx, false);
                work.push_back({slots[i], new_idx});
            }
        }
        out.nodes_[item.slot] = box;
    }
    return out;
}

bool
Bvh4::validate() const
{
    if (nodes_.empty())
        return primBounds_.empty();

    std::vector<bool> prim_seen(primBounds_.size(), false);
    std::vector<bool> node_seen(nodes_.size(), false);
    std::vector<std::uint32_t> stack{0};
    node_seen[0] = true;
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        const BoxNode4 &node = nodes_[idx];
        bool tail = false;
        for (unsigned i = 0; i < 4; ++i) {
            if (node.child[i] == kInvalidNode) {
                tail = true;
                continue;
            }
            if (tail)
                return false; // valid slots must be packed first
            const std::uint32_t ref = node.child[i];
            if (childIsLeaf(ref)) {
                const std::uint32_t prim = childIndex(ref);
                if (prim >= primBounds_.size() || prim_seen[prim])
                    return false;
                prim_seen[prim] = true;
            } else {
                const std::uint32_t ni = childIndex(ref);
                if (ni >= nodes_.size() || node_seen[ni])
                    return false;
                node_seen[ni] = true;
                stack.push_back(ni);
            }
        }
    }
    for (const bool seen : prim_seen) {
        if (!seen)
            return false;
    }
    for (const bool seen : node_seen) {
        if (!seen)
            return false;
    }
    return true;
}

} // namespace hsu

namespace hsu
{

Lbvh
Lbvh::fromParts(std::vector<LbvhNode> nodes, std::int32_t root,
                std::size_t num_leaves)
{
    Lbvh bvh;
    bvh.nodes_ = std::move(nodes);
    bvh.root_ = root;
    bvh.numLeaves_ = num_leaves;
    return bvh;
}

} // namespace hsu
