/**
 * @file
 * B+tree key-value index (Rodinia-style) for the KEY_COMPARE workload.
 *
 * Internal nodes hold up to `order - 1` separator keys in non-decreasing
 * order (the paper's evaluated tree has a branch factor of 256, i.e. up
 * to 255 separators); leaves hold (key, value) pairs. Built by bulk
 * loading sorted pairs. Lookup descends by counting separators <= key —
 * exactly the popcount of the KEY_COMPARE result bit vector.
 */

#ifndef HSU_STRUCTURES_BTREE_HH
#define HSU_STRUCTURES_BTREE_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace hsu
{

/** One B+tree node (internal or leaf). */
struct BTreeNode
{
    bool leaf = false;
    /** Internal: separator keys. Leaf: the stored keys. */
    std::vector<std::uint32_t> keys;
    /** Internal: child node indices (keys.size() + 1 entries). */
    std::vector<std::int32_t> children;
    /** Leaf: values parallel to keys. */
    std::vector<std::uint32_t> values;
};

/** Bulk-loaded B+tree over 32-bit keys and values. */
class BTree
{
  public:
    /**
     * Build from (key, value) pairs (will be sorted by key; duplicate
     * keys keep their first value).
     *
     * @param order      max children per internal node (paper: 256)
     * @param leaf_fill  target fraction of leaf capacity used
     */
    static BTree build(std::vector<std::pair<std::uint32_t,
                                             std::uint32_t>> pairs,
                       unsigned order = 256, double leaf_fill = 0.7);

    /** Value stored under @p key, if present. */
    std::optional<std::uint32_t> lookup(std::uint32_t key) const;

    /**
     * Insert (or overwrite) a key-value pair, splitting full nodes on
     * the way down (single-pass preemptive split, CLRS-style).
     */
    void insert(std::uint32_t key, std::uint32_t value);

    /** Remove @p key. @return true when it was present. Simple
     *  leaf-deletion scheme: separators are not rebalanced (lookups
     *  remain correct; fill factors may degrade under heavy churn). */
    bool erase(std::uint32_t key);

    /**
     * All (key, value) pairs with lo <= key <= hi in ascending key
     * order (Rodinia's findRangeK).
     */
    std::vector<std::pair<std::uint32_t, std::uint32_t>>
    range(std::uint32_t lo, std::uint32_t hi) const;

    /** Number of stored keys. */
    std::size_t size() const;

    const std::vector<BTreeNode> &nodes() const { return nodes_; }
    std::int32_t root() const { return root_; }
    unsigned order() const { return order_; }

    /** Number of levels from root to leaf (1 for a lone leaf). */
    unsigned height() const;

    /** Invariants: sorted separators, child counts, uniform leaf depth,
     *  and full key coverage. */
    bool validate() const;

    /**
     * The child slot a key selects inside an internal node: the number
     * of separators <= key. This is the popcount of the KEY_COMPARE
     * bit-vector result (Table I semantics).
     */
    static unsigned childSlot(const BTreeNode &node, std::uint32_t key);

    /** Reassemble from serialized parts (used by loadBTree). */
    static BTree fromParts(std::vector<BTreeNode> nodes,
                           std::int32_t root, unsigned order);

  private:
    std::vector<BTreeNode> nodes_;
    std::int32_t root_ = -1;
    unsigned order_ = 256;
};

} // namespace hsu

#endif // HSU_STRUCTURES_BTREE_HH
