/**
 * @file
 * Hierarchical navigable small-world graph for approximate nearest
 * neighbor search (the GGNN/HNSW family the paper's headline workload
 * uses). Points are assigned geometric random levels; each layer is a
 * bounded-degree kNN graph; search descends greedily from the top layer
 * and runs a beam search at layer 0.
 *
 * Distances are either squared Euclidean or angular (1 - cosine), the
 * two metrics the HSU accelerates.
 */

#ifndef HSU_STRUCTURES_GRAPH_HH
#define HSU_STRUCTURES_GRAPH_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "structures/kdtree.hh" // Neighbor
#include "structures/pointset.hh"

namespace hsu
{

/** Distance metric selector. */
enum class Metric : std::uint8_t
{
    Euclidean, //!< squared L2
    Angular    //!< 1 - cosine similarity
};

/** Reference distance computation for @p metric. */
float metricDist(Metric metric, const float *a, const float *b,
                 unsigned dim);

/** Construction parameters. */
struct HnswParams
{
    unsigned degree = 16;        //!< max out-degree per layer (M)
    unsigned degreeLayer0 = 24;  //!< max out-degree at the base layer
    unsigned efConstruction = 32;
    std::uint64_t seed = 7;
};

/** Per-query search parameters. */
struct HnswSearchParams
{
    unsigned ef = 32; //!< beam width at the base layer (>= k)
};

/**
 * The layered graph. Adjacency is stored per layer as fixed-degree rows
 * (padded with kNoNeighbor) so the device layout is a dense array — the
 * form the trace emitters address.
 */
class HnswGraph
{
  public:
    /** Sentinel padding for unused neighbor slots. */
    static constexpr std::uint32_t kNoNeighbor = 0xffffffffu;

    /** Build over @p points (must outlive the graph). */
    static HnswGraph build(const PointSet &points, Metric metric,
                           const HnswParams &params = HnswParams{});

    /** k-nearest-neighbor query. */
    std::vector<Neighbor> knn(const float *query, unsigned k,
                              const HnswSearchParams &sp =
                                  HnswSearchParams{}) const;

    unsigned numLayers() const
    { return static_cast<unsigned>(layers_.size()); }

    /** Entry point node id (top-layer). */
    std::uint32_t entryPoint() const { return entry_; }

    /** Padded degree of layer @p l. */
    unsigned
    layerDegree(unsigned l) const
    {
        return l == 0 ? params_.degreeLayer0 : params_.degree;
    }

    /** Neighbor row of @p node at layer @p l (layerDegree entries). */
    const std::uint32_t *neighbors(unsigned l, std::uint32_t node) const;

    /** Nodes present at layer @p l (all nodes at layer 0). */
    const std::vector<std::uint32_t> &layerNodes(unsigned l) const
    { return layers_[l].members; }

    const PointSet &points() const { return *points_; }
    Metric metric() const { return metric_; }

    /** Invariants: in-range neighbor ids, no self-loops, members of a
     *  layer also exist in all lower layers. */
    bool validate() const;

    /** One layer's raw storage (exposed for serialization). */
    struct Layer
    {
        std::vector<std::uint32_t> members;
        /** Dense adjacency: adjacency[node * degree + j]; rows exist
         *  for every node id (non-members are all-padding rows). */
        std::vector<std::uint32_t> adjacency;
    };

    /** Raw layers (serialization). */
    const std::vector<Layer> &layers() const { return layers_; }

    /** Reassemble from serialized parts (used by loadGraph). */
    static HnswGraph fromParts(const PointSet &points, Metric metric,
                               const HnswParams &params,
                               std::vector<Layer> layers,
                               std::uint32_t entry);

  private:

    /** Greedy descent within one layer toward @p query. */
    std::uint32_t greedyStep(unsigned layer, std::uint32_t start,
                             const float *query) const;

    /** Beam search at a layer; returns up to @p ef closest members. */
    std::vector<Neighbor> searchLayer(unsigned layer, std::uint32_t entry,
                                      const float *query,
                                      unsigned ef) const;

    const PointSet *points_ = nullptr;
    Metric metric_ = Metric::Euclidean;
    HnswParams params_{};
    std::vector<Layer> layers_;
    std::uint32_t entry_ = 0;
};

} // namespace hsu

#endif // HSU_STRUCTURES_GRAPH_HH
