/**
 * @file
 * N-dimensional k-d tree (FLANN-style) for (approximate) nearest
 * neighbor search. Internal nodes split one axis at the median; leaves
 * hold small point ranges. Search is best-bin-first with an optional
 * checks budget (FLANN's approximation knob); with no budget the search
 * is exact.
 */

#ifndef HSU_STRUCTURES_KDTREE_HH
#define HSU_STRUCTURES_KDTREE_HH

#include <cstdint>
#include <vector>

#include "structures/pointset.hh"

namespace hsu
{

/** A (neighbor index, squared distance) result pair. */
struct Neighbor
{
    std::uint32_t index = 0;
    float dist2 = 0.0f;

    bool
    operator<(const Neighbor &o) const
    {
        return dist2 != o.dist2 ? dist2 < o.dist2 : index < o.index;
    }
};

/** One k-d tree node. */
struct KdNode
{
    // Internal fields.
    std::int32_t axis = -1;   //!< split axis; -1 marks a leaf
    float split = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaf fields: a range in the reordered index array.
    std::uint32_t first = 0;
    std::uint32_t count = 0;

    bool isLeaf() const { return axis < 0; }
};

/** Median-split k-d tree over an external PointSet. */
class KdTree
{
  public:
    /**
     * Build over @p points with leaves of at most @p leaf_size points.
     * The PointSet must outlive the tree.
     */
    static KdTree build(const PointSet &points, unsigned leaf_size = 8);

    /**
     * k-nearest-neighbor query.
     * @param query      dim() floats
     * @param k          neighbors to return
     * @param max_checks leaf-point budget; 0 = exact search
     */
    std::vector<Neighbor> knn(const float *query, unsigned k,
                              unsigned max_checks = 0) const;

    /**
     * All points within squared distance @p radius2 of @p query,
     * sorted by distance (exact).
     */
    std::vector<Neighbor> radiusSearch(const float *query,
                                       float radius2) const;

    const std::vector<KdNode> &nodes() const { return nodes_; }

    /** Reordered point indices referenced by leaf ranges. */
    const std::vector<std::uint32_t> &pointIndex() const
    { return pointIndex_; }

    const PointSet &points() const { return *points_; }

    std::int32_t root() const { return nodes_.empty() ? -1 : 0; }

    /** Depth of the tree (diagnostics). */
    unsigned depth() const;

    /** Structural invariants: split planes separate the leaf ranges,
     *  every point appears exactly once. */
    bool validate() const;

    /** Reassemble from serialized parts (used by loadKdTree). */
    static KdTree fromParts(const PointSet &points,
                            std::vector<KdNode> nodes,
                            std::vector<std::uint32_t> point_index);

  private:
    std::int32_t buildRange(std::uint32_t first, std::uint32_t count,
                            unsigned leaf_size);
    unsigned depthFrom(std::int32_t idx) const;

    const PointSet *points_ = nullptr;
    std::vector<KdNode> nodes_;
    std::vector<std::uint32_t> pointIndex_;
};

} // namespace hsu

#endif // HSU_STRUCTURES_KDTREE_HH
