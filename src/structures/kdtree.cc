#include "structures/kdtree.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.hh"

namespace hsu
{

KdTree
KdTree::build(const PointSet &points, unsigned leaf_size)
{
    hsu_assert(leaf_size >= 1, "leaf size must be positive");
    KdTree tree;
    tree.points_ = &points;
    tree.pointIndex_.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        tree.pointIndex_[i] = static_cast<std::uint32_t>(i);
    if (!points.size())
        return tree;
    tree.nodes_.reserve(2 * points.size() / leaf_size + 2);
    tree.buildRange(0, static_cast<std::uint32_t>(points.size()),
                    leaf_size);
    return tree;
}

std::int32_t
KdTree::buildRange(std::uint32_t first, std::uint32_t count,
                   unsigned leaf_size)
{
    const auto idx = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();

    if (count <= leaf_size) {
        nodes_[static_cast<std::size_t>(idx)].first = first;
        nodes_[static_cast<std::size_t>(idx)].count = count;
        return idx;
    }

    // Split the axis with the largest spread at its median.
    const unsigned dim = points_->dim();
    unsigned best_axis = 0;
    float best_spread = -1.0f;
    for (unsigned axis = 0; axis < dim; ++axis) {
        float lo = (*points_)[pointIndex_[first]][axis];
        float hi = lo;
        for (std::uint32_t i = 1; i < count; ++i) {
            const float v = (*points_)[pointIndex_[first + i]][axis];
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        if (hi - lo > best_spread) {
            best_spread = hi - lo;
            best_axis = axis;
        }
    }

    const std::uint32_t mid = count / 2;
    auto begin = pointIndex_.begin() + first;
    std::nth_element(begin, begin + mid, begin + count,
                     [this, best_axis](std::uint32_t a, std::uint32_t b) {
                         return (*points_)[a][best_axis] <
                                (*points_)[b][best_axis];
                     });
    const float split_value =
        (*points_)[pointIndex_[first + mid]][best_axis];

    const std::int32_t left = buildRange(first, mid, leaf_size);
    const std::int32_t right =
        buildRange(first + mid, count - mid, leaf_size);

    KdNode &node = nodes_[static_cast<std::size_t>(idx)];
    node.axis = static_cast<std::int32_t>(best_axis);
    node.split = split_value;
    node.left = left;
    node.right = right;
    return idx;
}

std::vector<Neighbor>
KdTree::knn(const float *query, unsigned k, unsigned max_checks) const
{
    std::vector<Neighbor> best; // max-heap by dist2
    if (nodes_.empty() || k == 0)
        return best;
    const unsigned dim = points_->dim();

    auto worst = [&best, k]() {
        return best.size() < k ? std::numeric_limits<float>::infinity()
                               : best.front().dist2;
    };
    auto offer = [&best, k](std::uint32_t index, float d2) {
        if (best.size() < k) {
            best.push_back({index, d2});
            std::push_heap(best.begin(), best.end());
        } else if (d2 < best.front().dist2) {
            std::pop_heap(best.begin(), best.end());
            best.back() = {index, d2};
            std::push_heap(best.begin(), best.end());
        }
    };

    // Best-bin-first: a min-heap of (lower-bound distance, node).
    using Entry = std::pair<float, std::int32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
    open.push({0.0f, 0});
    unsigned checked = 0;

    while (!open.empty()) {
        const auto [bound, idx] = open.top();
        open.pop();
        if (bound >= worst())
            continue;
        std::int32_t cur = idx;
        float cur_bound = bound;
        // Descend to a leaf, queueing the far sides.
        while (!nodes_[static_cast<std::size_t>(cur)].isLeaf()) {
            const KdNode &node = nodes_[static_cast<std::size_t>(cur)];
            const float diff =
                query[node.axis] - node.split;
            const std::int32_t near = diff < 0 ? node.left : node.right;
            const std::int32_t far = diff < 0 ? node.right : node.left;
            const float far_bound =
                std::max(cur_bound, diff * diff);
            if (far_bound < worst())
                open.push({far_bound, far});
            cur = near;
        }
        const KdNode &leaf = nodes_[static_cast<std::size_t>(cur)];
        for (std::uint32_t i = 0; i < leaf.count; ++i) {
            const std::uint32_t pt = pointIndex_[leaf.first + i];
            offer(pt, pointDist2(query, (*points_)[pt], dim));
        }
        checked += leaf.count;
        if (max_checks != 0 && checked >= max_checks)
            break;
    }

    std::sort_heap(best.begin(), best.end());
    return best;
}

std::vector<Neighbor>
KdTree::radiusSearch(const float *query, float radius2) const
{
    std::vector<Neighbor> out;
    if (nodes_.empty())
        return out;
    const unsigned dim = points_->dim();

    // Depth-first with split-plane pruning: a subtree is skipped when
    // the query's squared distance to the splitting plane exceeds the
    // radius on the far side.
    struct Frame
    {
        std::int32_t node;
        float bound;
    };
    std::vector<Frame> stack{{0, 0.0f}};
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        if (f.bound > radius2)
            continue;
        const KdNode &node = nodes_[static_cast<std::size_t>(f.node)];
        if (node.isLeaf()) {
            for (std::uint32_t i = 0; i < node.count; ++i) {
                const std::uint32_t pt = pointIndex_[node.first + i];
                const float d2 = pointDist2(query, (*points_)[pt], dim);
                if (d2 <= radius2)
                    out.push_back({pt, d2});
            }
            continue;
        }
        const float diff = query[node.axis] - node.split;
        const std::int32_t near = diff < 0 ? node.left : node.right;
        const std::int32_t far = diff < 0 ? node.right : node.left;
        stack.push_back({far, diff * diff});
        stack.push_back({near, f.bound});
    }
    std::sort(out.begin(), out.end());
    return out;
}

unsigned
KdTree::depth() const
{
    return nodes_.empty() ? 0 : depthFrom(0);
}

unsigned
KdTree::depthFrom(std::int32_t idx) const
{
    const KdNode &node = nodes_[static_cast<std::size_t>(idx)];
    if (node.isLeaf())
        return 1;
    return 1 + std::max(depthFrom(node.left), depthFrom(node.right));
}

bool
KdTree::validate() const
{
    if (nodes_.empty())
        return pointIndex_.empty();

    // Every point appears exactly once across leaves.
    std::vector<bool> seen(points_->size(), false);
    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
        const std::int32_t idx = stack.back();
        stack.pop_back();
        const KdNode &node = nodes_[static_cast<std::size_t>(idx)];
        if (node.isLeaf()) {
            for (std::uint32_t i = 0; i < node.count; ++i) {
                const std::uint32_t pt = pointIndex_[node.first + i];
                if (pt >= seen.size() || seen[pt])
                    return false;
                seen[pt] = true;
            }
            continue;
        }
        // All points under left must be <= split on the split axis...
        // (median split with nth_element guarantees <= / >=).
        stack.push_back(node.left);
        stack.push_back(node.right);
    }
    for (const bool s : seen) {
        if (!s)
            return false;
    }
    return true;
}

} // namespace hsu

namespace hsu
{

KdTree
KdTree::fromParts(const PointSet &points, std::vector<KdNode> nodes,
                  std::vector<std::uint32_t> point_index)
{
    KdTree tree;
    tree.points_ = &points;
    tree.nodes_ = std::move(nodes);
    tree.pointIndex_ = std::move(point_index);
    return tree;
}

} // namespace hsu
