#include "structures/graph.hh"

#include <algorithm>
#include <memory>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/audit.hh"
#include "common/logging.hh"

namespace hsu
{

namespace
{

[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kBuildVisitedAudit, audit::NondetKind::UnorderedIteration,
    "graph.cc:visited",
    "hash set used for membership tests during HNSW build; neighbor "
    "order comes from distance-sorted heaps, never from set iteration");

} // namespace

float
metricDist(Metric metric, const float *a, const float *b, unsigned dim)
{
    if (metric == Metric::Euclidean)
        return pointDist2(a, b, dim);
    float dot = 0.0f, na = 0.0f, nb = 0.0f;
    for (unsigned i = 0; i < dim; ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    const float denom = std::sqrt(na) * std::sqrt(nb);
    if (denom == 0.0f)
        return 1.0f;
    return 1.0f - dot / denom;
}

HnswGraph
HnswGraph::build(const PointSet &points, Metric metric,
                 const HnswParams &params)
{
    HnswGraph g;
    g.points_ = &points;
    g.metric_ = metric;
    g.params_ = params;

    const std::size_t n = points.size();
    if (n == 0) {
        g.layers_.emplace_back();
        return g;
    }

    // Geometric level assignment (HNSW): P(level >= l) = (1/degree)^l.
    Rng rng(params.seed);
    const double ml = 1.0 / std::log(static_cast<double>(
        std::max(2u, params.degree)));
    std::vector<unsigned> level(n);
    unsigned max_level = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double u = std::max(rng.nextDouble(), 1e-12);
        level[i] = static_cast<unsigned>(-std::log(u) * ml);
        level[i] = std::min(level[i], 6u); // cap pathological draws
        max_level = std::max(max_level, level[i]);
    }
    // Make node 0 the top entry point.
    level[0] = max_level;

    g.layers_.resize(max_level + 1);
    for (unsigned l = 0; l <= max_level; ++l) {
        g.layers_[l].adjacency.assign(n * g.layerDegree(l), kNoNeighbor);
        for (std::size_t i = 0; i < n; ++i) {
            if (level[i] >= l)
                g.layers_[l].members.push_back(
                    static_cast<std::uint32_t>(i));
        }
    }
    g.entry_ = 0;

    const unsigned dim = points.dim();
    auto dist = [&](std::uint32_t a, std::uint32_t b) {
        return metricDist(metric, points[a], points[b], dim);
    };

    auto row = [&g](unsigned l, std::uint32_t node) {
        return g.layers_[l].adjacency.data() +
               static_cast<std::size_t>(node) * g.layerDegree(l);
    };

    // Build-time distance sidecars, discarded when build() returns.
    // Overflow re-selection (below) dominates construction cost: it is
    // O(deg^2) distance evaluations per overflow, and a node's row
    // overflows on nearly every backward edge once full — profiling
    // shows ~88% of all build-time distance calls were recomputations
    // of values already evaluated for the same row. rowDist caches each
    // row slot's distance to its owner; pairDist lazily caches the
    // pairwise distances among a row's occupants (allocated on a row's
    // first overflow, -1 = not yet computed). Reusing a float computed
    // once — including across the dist(a,b)/dist(b,a) swap, which is
    // exact for both metrics — is bit-identical to recomputing it, so
    // the resulting graph is unchanged.
    std::vector<std::vector<float>> row_dist(max_level + 1);
    std::vector<std::vector<std::unique_ptr<float[]>>> pair_dist(
        max_level + 1);
    for (unsigned l = 0; l <= max_level; ++l) {
        row_dist[l].assign(n * g.layerDegree(l), 0.0f);
        pair_dist[l].resize(n);
    }

    // Add a bidirectional edge (@p dft = dist(from, to), which every
    // caller has already evaluated). On overflow the row is re-selected
    // with the HNSW diversity heuristic over {existing + new}, which
    // preserves the long-range edges plain replace-farthest would
    // erode as the graph densifies.
    auto connect = [&](unsigned l, std::uint32_t from, std::uint32_t to,
                       float dft) {
        std::uint32_t *r = row(l, from);
        const unsigned deg = g.layerDegree(l);
        float *rd = row_dist[l].data() +
                    static_cast<std::size_t>(from) * deg;
        for (unsigned j = 0; j < deg; ++j) {
            if (r[j] == to)
                return;
            if (r[j] == kNoNeighbor) {
                r[j] = to;
                rd[j] = dft;
                return;
            }
        }

        // Overflow. Slots 0..deg-1 name the current occupants, slot
        // deg names the new candidate; pairD() resolves a slot pair to
        // its distance, computing (and memoizing) only on first use.
        // The per-row matrix stores the strict upper triangle only
        // (pair distances are symmetric), halving the sidecar.
        const std::size_t tri_size =
            static_cast<std::size_t>(deg) * (deg - 1) / 2;
        auto tri = [deg](unsigned si, unsigned sj) {
            const unsigned a = si < sj ? si : sj;
            const unsigned b = si < sj ? sj : si;
            return static_cast<std::size_t>(b) * (b - 1) / 2 + a;
        };
        auto &mat_slot = pair_dist[l][from];
        if (!mat_slot) {
            mat_slot = std::make_unique<float[]>(tri_size);
            std::fill_n(mat_slot.get(), tri_size, -1.0f);
        }
        float *mat = mat_slot.get();
        std::vector<float> new_pair(deg, -1.0f); // dist(to, r[j])
        auto pairD = [&](unsigned si, unsigned sj) -> float {
            if (si == sj)
                return 0.0f;
            if (si == deg || sj == deg) {
                float &v = new_pair[si == deg ? sj : si];
                if (v < 0.0f)
                    v = dist(to, r[si == deg ? sj : si]);
                return v;
            }
            float &v = mat[tri(si, sj)];
            if (v < 0.0f)
                v = dist(r[si], r[sj]);
            return v;
        };
        auto peekPair = [&](unsigned si, unsigned sj) -> float {
            if (si == sj)
                return 0.0f;
            if (si == deg || sj == deg)
                return new_pair[si == deg ? sj : si];
            return mat[tri(si, sj)];
        };

        // (distance, node, slot); sorted order matches the old
        // (distance, node) pair sort since slot is never compared.
        struct Cand
        {
            float d;
            std::uint32_t node;
            unsigned slot;

            bool
            operator<(const Cand &o) const
            {
                return d != o.d ? d < o.d : node < o.node;
            }
        };
        std::vector<Cand> cands;
        cands.reserve(deg + 1);
        cands.push_back({dft, to, deg});
        for (unsigned j = 0; j < deg; ++j)
            cands.push_back({rd[j], r[j], j});
        std::sort(cands.begin(), cands.end());

        std::vector<std::uint32_t> selected;
        std::vector<const Cand *> sel_cand;
        selected.reserve(deg);
        sel_cand.reserve(deg);
        for (const auto &c : cands) {
            if (selected.size() >= deg)
                break;
            bool diverse = true;
            for (const auto *s : sel_cand) {
                if (pairD(c.slot, s->slot) < c.d) {
                    diverse = false;
                    break;
                }
            }
            if (diverse) {
                selected.push_back(c.node);
                sel_cand.push_back(&c);
            }
        }
        for (const auto &c : cands) {
            if (selected.size() >= deg)
                break;
            if (std::find(selected.begin(), selected.end(), c.node) ==
                selected.end()) {
                selected.push_back(c.node);
                sel_cand.push_back(&c);
            }
        }

        // Write back the new row plus its sidecars: slot distances are
        // known from cands; pair distances carry over whatever was
        // already evaluated (still -1 where it never was).
        auto next = std::make_unique<float[]>(tri_size);
        std::fill_n(next.get(), tri_size, -1.0f);
        for (unsigned a = 1; a < selected.size(); ++a) {
            for (unsigned b = 0; b < a; ++b) {
                next[tri(b, a)] =
                    peekPair(sel_cand[a]->slot, sel_cand[b]->slot);
            }
        }
        for (unsigned j = 0; j < deg; ++j) {
            r[j] = j < selected.size() ? selected[j] : kNoNeighbor;
            rd[j] = j < selected.size() ? sel_cand[j]->d : 0.0f;
        }
        mat_slot = std::move(next);
    };

    // Incremental insertion.
    for (std::size_t i = 1; i < n; ++i) {
        const auto node = static_cast<std::uint32_t>(i);
        std::uint32_t cur = g.entry_;
        // Greedy descent through layers above the node's level.
        for (unsigned l = max_level; l > level[i]; --l)
            cur = g.greedyStep(l, cur, points[node]);
        // Connect at each layer from level[i] down to 0, picking
        // neighbors with the HNSW diversity heuristic (keep a
        // candidate only if it is closer to the new node than to any
        // already-selected neighbor) — without it, clustered data
        // yields short-range-only graphs with poor recall.
        for (int l = static_cast<int>(level[i]); l >= 0; --l) {
            const auto ul = static_cast<unsigned>(l);
            auto cands = g.searchLayer(ul, cur, points[node],
                                       params.efConstruction);
            const unsigned target = g.layerDegree(ul);
            std::vector<std::uint32_t> selected;
            std::vector<float> selected_d; //!< dist(node, selected[j])
            selected.reserve(target);
            selected_d.reserve(target);
            for (const auto &c : cands) {
                if (c.index == node)
                    continue;
                if (selected.size() >= target)
                    break;
                bool diverse = true;
                for (const auto s : selected) {
                    if (dist(c.index, s) < c.dist2) {
                        diverse = false;
                        break;
                    }
                }
                if (diverse) {
                    selected.push_back(c.index);
                    selected_d.push_back(c.dist2);
                }
            }
            // Backfill with skipped candidates if diversity pruned too
            // aggressively.
            for (const auto &c : cands) {
                if (selected.size() >= target)
                    break;
                if (c.index == node)
                    continue;
                if (std::find(selected.begin(), selected.end(),
                              c.index) == selected.end()) {
                    selected.push_back(c.index);
                    selected_d.push_back(c.dist2);
                }
            }
            for (std::size_t s = 0; s < selected.size(); ++s) {
                connect(ul, node, selected[s], selected_d[s]);
                connect(ul, selected[s], node, selected_d[s]);
            }
            if (!cands.empty())
                cur = cands.front().index == node && cands.size() > 1
                    ? cands[1].index
                    : cands.front().index;
        }
    }
    return g;
}

const std::uint32_t *
HnswGraph::neighbors(unsigned l, std::uint32_t node) const
{
    return layers_[l].adjacency.data() +
           static_cast<std::size_t>(node) * layerDegree(l);
}

std::uint32_t
HnswGraph::greedyStep(unsigned layer, std::uint32_t start,
                      const float *query) const
{
    const unsigned dim = points_->dim();
    std::uint32_t cur = start;
    float cur_d = metricDist(metric_, query, (*points_)[cur], dim);
    for (;;) {
        bool improved = false;
        const std::uint32_t *nbrs = neighbors(layer, cur);
        for (unsigned j = 0; j < layerDegree(layer); ++j) {
            if (nbrs[j] == kNoNeighbor)
                break;
            const float d =
                metricDist(metric_, query, (*points_)[nbrs[j]], dim);
            if (d < cur_d) {
                cur_d = d;
                cur = nbrs[j];
                improved = true;
            }
        }
        if (!improved)
            return cur;
    }
}

std::vector<Neighbor>
HnswGraph::searchLayer(unsigned layer, std::uint32_t entry,
                       const float *query, unsigned ef) const
{
    const unsigned dim = points_->dim();
    const float entry_d =
        metricDist(metric_, query, (*points_)[entry], dim);

    // Min-heap of candidates to expand; max-heap of the ef best found.
    using Cand = std::pair<float, std::uint32_t>;
    std::priority_queue<Cand, std::vector<Cand>, std::greater<>> open;
    std::priority_queue<Cand> best;
    std::unordered_set<std::uint32_t> visited;

    open.push({entry_d, entry});
    best.push({entry_d, entry});
    visited.insert(entry);

    while (!open.empty()) {
        const auto [d, node] = open.top();
        open.pop();
        if (d > best.top().first && best.size() >= ef)
            break;
        const std::uint32_t *nbrs = neighbors(layer, node);
        for (unsigned j = 0; j < layerDegree(layer); ++j) {
            const std::uint32_t nb = nbrs[j];
            if (nb == kNoNeighbor)
                break;
            if (!visited.insert(nb).second)
                continue;
            const float nd =
                metricDist(metric_, query, (*points_)[nb], dim);
            if (best.size() < ef || nd < best.top().first) {
                open.push({nd, nb});
                best.push({nd, nb});
                if (best.size() > ef)
                    best.pop();
            }
        }
    }

    std::vector<Neighbor> out;
    out.reserve(best.size());
    while (!best.empty()) {
        out.push_back({best.top().second, best.top().first});
        best.pop();
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Neighbor>
HnswGraph::knn(const float *query, unsigned k,
               const HnswSearchParams &sp) const
{
    std::vector<Neighbor> out;
    if (!points_ || points_->size() == 0)
        return out;

    std::uint32_t cur = entry_;
    for (unsigned l = numLayers() - 1; l > 0; --l)
        cur = greedyStep(l, cur, query);

    auto found = searchLayer(0, cur, query, std::max(k, sp.ef));
    if (found.size() > k)
        found.resize(k);
    return found;
}

bool
HnswGraph::validate() const
{
    if (!points_)
        return false;
    const std::size_t n = points_->size();
    for (unsigned l = 0; l < numLayers(); ++l) {
        std::vector<bool> member(n, false);
        for (const auto m : layers_[l].members) {
            if (m >= n)
                return false;
            member[m] = true;
        }
        // Members of layer l must be members of every lower layer.
        if (l > 0) {
            std::vector<bool> lower(n, false);
            for (const auto m : layers_[l - 1].members)
                lower[m] = true;
            for (const auto m : layers_[l].members) {
                if (!lower[m])
                    return false;
            }
        }
        for (std::size_t node = 0; node < n; ++node) {
            const std::uint32_t *nbrs =
                neighbors(l, static_cast<std::uint32_t>(node));
            for (unsigned j = 0; j < layerDegree(l); ++j) {
                const std::uint32_t nb = nbrs[j];
                if (nb == kNoNeighbor)
                    continue;
                if (nb >= n || nb == node)
                    return false;
                if (!member[nb])
                    return false;
                // Rows of non-members must be empty.
                if (!member[node])
                    return false;
            }
        }
    }
    return true;
}

} // namespace hsu

namespace hsu
{

HnswGraph
HnswGraph::fromParts(const PointSet &points, Metric metric,
                     const HnswParams &params,
                     std::vector<Layer> layers, std::uint32_t entry)
{
    HnswGraph g;
    g.points_ = &points;
    g.metric_ = metric;
    g.params_ = params;
    g.layers_ = std::move(layers);
    g.entry_ = entry;
    return g;
}

} // namespace hsu
