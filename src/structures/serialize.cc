#include "structures/serialize.hh"

#include <istream>
#include <ostream>

namespace hsu
{

namespace
{

constexpr std::uint32_t kMagic = 0x48535531; // "HSU1"

enum class BlobKind : std::uint32_t
{
    Lbvh = 1,
    KdTree = 2,
    Graph = 3,
    BTree = 4,
};

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    writeU64(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

bool
readU32(std::istream &is, std::uint32_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return is.good();
}

bool
readU64(std::istream &is, std::uint64_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return is.good();
}

template <typename T>
bool
readVec(std::istream &is, std::vector<T> &v,
        std::uint64_t max_elems = 1ull << 32)
{
    std::uint64_t n = 0;
    if (!readU64(is, n) || n > max_elems)
        return false;
    v.resize(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    return is.good() || (n == 0 && !is.bad());
}

bool
readHeader(std::istream &is, BlobKind expected)
{
    std::uint32_t magic = 0, kind = 0;
    if (!readU32(is, magic) || magic != kMagic)
        return false;
    if (!readU32(is, kind) ||
        kind != static_cast<std::uint32_t>(expected)) {
        return false;
    }
    return true;
}

void
writeHeader(std::ostream &os, BlobKind kind)
{
    writeU32(os, kMagic);
    writeU32(os, static_cast<std::uint32_t>(kind));
}

} // namespace

void
saveLbvh(std::ostream &os, const Lbvh &bvh)
{
    writeHeader(os, BlobKind::Lbvh);
    writeU32(os, static_cast<std::uint32_t>(bvh.root()));
    writeU64(os, bvh.numLeaves());
    writeVec(os, bvh.nodes());
}

std::optional<Lbvh>
loadLbvh(std::istream &is)
{
    if (!readHeader(is, BlobKind::Lbvh))
        return std::nullopt;
    std::uint32_t root = 0;
    std::uint64_t leaves = 0;
    std::vector<LbvhNode> nodes;
    if (!readU32(is, root) || !readU64(is, leaves) ||
        !readVec(is, nodes)) {
        return std::nullopt;
    }
    Lbvh bvh = Lbvh::fromParts(std::move(nodes),
                               static_cast<std::int32_t>(root),
                               leaves);
    if (!bvh.validate())
        return std::nullopt;
    return bvh;
}

void
saveKdTree(std::ostream &os, const KdTree &tree)
{
    writeHeader(os, BlobKind::KdTree);
    writeU64(os, tree.points().size());
    writeU32(os, tree.points().dim());
    writeVec(os, tree.nodes());
    writeVec(os, tree.pointIndex());
}

std::optional<KdTree>
loadKdTree(std::istream &is, const PointSet &points)
{
    if (!readHeader(is, BlobKind::KdTree))
        return std::nullopt;
    std::uint64_t n = 0;
    std::uint32_t dim = 0;
    if (!readU64(is, n) || !readU32(is, dim))
        return std::nullopt;
    if (n != points.size() || dim != points.dim())
        return std::nullopt;
    std::vector<KdNode> nodes;
    std::vector<std::uint32_t> index;
    if (!readVec(is, nodes) || !readVec(is, index))
        return std::nullopt;
    KdTree tree = KdTree::fromParts(points, std::move(nodes),
                                    std::move(index));
    if (!tree.validate())
        return std::nullopt;
    return tree;
}

void
saveGraph(std::ostream &os, const HnswGraph &graph)
{
    writeHeader(os, BlobKind::Graph);
    writeU64(os, graph.points().size());
    writeU32(os, graph.points().dim());
    writeU32(os, graph.metric() == Metric::Angular ? 1 : 0);
    writeU32(os, graph.entryPoint());
    writeU32(os, graph.numLayers());
    writeU32(os, graph.layerDegree(0));
    writeU32(os, graph.numLayers() > 1 ? graph.layerDegree(1)
                                       : graph.layerDegree(0));
    for (const auto &layer : graph.layers()) {
        writeVec(os, layer.members);
        writeVec(os, layer.adjacency);
    }
}

std::optional<HnswGraph>
loadGraph(std::istream &is, const PointSet &points)
{
    if (!readHeader(is, BlobKind::Graph))
        return std::nullopt;
    std::uint64_t n = 0;
    std::uint32_t dim = 0, metric_raw = 0, entry = 0, num_layers = 0;
    std::uint32_t deg0 = 0, deg = 0;
    if (!readU64(is, n) || !readU32(is, dim) ||
        !readU32(is, metric_raw) || !readU32(is, entry) ||
        !readU32(is, num_layers) || !readU32(is, deg0) ||
        !readU32(is, deg)) {
        return std::nullopt;
    }
    if (n != points.size() || dim != points.dim() || num_layers == 0)
        return std::nullopt;

    HnswParams params;
    params.degreeLayer0 = deg0;
    params.degree = deg;
    std::vector<HnswGraph::Layer> layers(num_layers);
    for (auto &layer : layers) {
        if (!readVec(is, layer.members) ||
            !readVec(is, layer.adjacency)) {
            return std::nullopt;
        }
    }
    HnswGraph g = HnswGraph::fromParts(
        points, metric_raw ? Metric::Angular : Metric::Euclidean,
        params, std::move(layers), entry);
    if (!g.validate())
        return std::nullopt;
    return g;
}

void
saveBTree(std::ostream &os, const BTree &tree)
{
    writeHeader(os, BlobKind::BTree);
    writeU32(os, static_cast<std::uint32_t>(tree.root()));
    writeU32(os, tree.order());
    writeU64(os, tree.nodes().size());
    for (const auto &node : tree.nodes()) {
        writeU32(os, node.leaf ? 1 : 0);
        writeVec(os, node.keys);
        writeVec(os, node.children);
        writeVec(os, node.values);
    }
}

std::optional<BTree>
loadBTree(std::istream &is)
{
    if (!readHeader(is, BlobKind::BTree))
        return std::nullopt;
    std::uint32_t root = 0, order = 0;
    std::uint64_t count = 0;
    if (!readU32(is, root) || !readU32(is, order) ||
        !readU64(is, count) || order < 3) {
        return std::nullopt;
    }
    std::vector<BTreeNode> nodes(count);
    for (auto &node : nodes) {
        std::uint32_t leaf = 0;
        if (!readU32(is, leaf) || !readVec(is, node.keys) ||
            !readVec(is, node.children) || !readVec(is, node.values)) {
            return std::nullopt;
        }
        node.leaf = leaf != 0;
    }
    BTree tree = BTree::fromParts(std::move(nodes),
                                  static_cast<std::int32_t>(root),
                                  order);
    if (!tree.validate())
        return std::nullopt;
    return tree;
}

} // namespace hsu
