/**
 * @file
 * Linear BVH construction (Karras 2012) over points or triangles.
 *
 * This is the builder the paper's BVH-NN uses: "The points are then
 * sorted based on their Morton codes and a BVH is constructed using the
 * algorithm described in [Karras 2012]" with leaf AABBs of width twice
 * the search radius centered on each point (RTNN-style). The binary
 * radix tree is built from the sorted Morton codes; a separate pass can
 * collapse it into a 4-wide BVH for the RT unit's BoxNode4 format.
 */

#ifndef HSU_STRUCTURES_LBVH_HH
#define HSU_STRUCTURES_LBVH_HH

#include <cstdint>
#include <vector>

#include "geom/aabb.hh"
#include "geom/intersect.hh"
#include "hsu/nodes.hh"
#include "structures/pointset.hh"

namespace hsu
{

/** One node of the binary LBVH. */
struct LbvhNode
{
    Aabb bounds;
    std::int32_t left = -1;   //!< child index; < 0 means none
    std::int32_t right = -1;
    std::int32_t primitive = -1; //!< leaf: original primitive index
    std::int32_t parent = -1;

    bool isLeaf() const { return primitive >= 0; }
};

/**
 * A binary bounding volume hierarchy built bottom-up from Morton-sorted
 * primitives. Node 0 is the root (for size() > 1).
 */
class Lbvh
{
  public:
    /**
     * Build over a 3-D point set; each leaf AABB is centered on its
     * point with half-width @p leaf_half_extent (RTNN uses the search
     * radius).
     */
    static Lbvh buildFromPoints(const PointSet &points,
                                float leaf_half_extent);

    /** Build over triangles (leaf AABB = triangle bounds). */
    static Lbvh buildFromTriangles(const std::vector<Triangle> &tris);

    /** Build over arbitrary leaf boxes (one primitive per box). */
    static Lbvh buildFromBoxes(const std::vector<Aabb> &boxes);

    /**
     * Top-down binned surface-area-heuristic build over leaf boxes.
     * Slower to construct but higher quality than the Morton build —
     * the improvement Section VI-E anticipates ("a more optimized BVH
     * that uses surface area heuristic ... would further improve
     * performance"). Compare with bench/ablation_sah.
     */
    static Lbvh buildSah(const std::vector<Aabb> &boxes,
                         unsigned num_bins = 16);

    /** SAH-style builder over a 3-D point set (leaf half-width as in
     *  buildFromPoints). */
    static Lbvh buildSahFromPoints(const PointSet &points,
                                   float leaf_half_extent,
                                   unsigned num_bins = 16);

    /**
     * Tree quality metric: the expected traversal cost under the
     * surface area heuristic (sum over inner nodes of child-area /
     * root-area). Lower is better; use it to compare builders.
     */
    double sahCost() const;

    /**
     * Refit all AABBs bottom-up after primitives moved (topology is
     * kept). @p new_boxes maps primitive index -> new leaf box.
     */
    void refit(const std::vector<Aabb> &new_boxes);

    const std::vector<LbvhNode> &nodes() const { return nodes_; }
    std::size_t size() const { return nodes_.size(); }

    /** Index of the root node. */
    std::int32_t root() const { return root_; }

    /** Number of leaf nodes (== number of primitives). */
    std::size_t numLeaves() const { return numLeaves_; }

    /**
     * Verify structural invariants: every primitive appears in exactly
     * one leaf, every child's AABB is contained in its parent's, and
     * parent links are consistent. @return true when all hold.
     */
    bool validate() const;

    /**
     * All primitives whose leaf boxes contain @p p (reference
     * implementation of the point query the traversal tests check
     * against).
     */
    std::vector<std::uint32_t> pointQuery(const Vec3 &p) const;

    /**
     * Morton-sorted position of each primitive: position[prim] is the
     * index of prim's leaf in left-to-right (Morton) order. The device
     * point array is stored in this order (RTNN sorts points by their
     * Morton codes before building).
     */
    std::vector<std::uint32_t> primitivePositions() const;

    /** Reassemble from serialized parts (used by loadLbvh). The
     *  caller should validate() afterwards. */
    static Lbvh fromParts(std::vector<LbvhNode> nodes,
                          std::int32_t root, std::size_t num_leaves);

  private:
    static Lbvh buildImpl(const std::vector<Aabb> &leaf_boxes);

    std::vector<LbvhNode> nodes_;
    std::int32_t root_ = -1;
    std::size_t numLeaves_ = 0;
};

/**
 * A 4-wide BVH in the RT unit's BoxNode4 format, collapsed from a
 * binary Lbvh (grandchild adoption). Leaves reference primitives via
 * child refs with the leaf bit set.
 */
class Bvh4
{
  public:
    /** Collapse a binary BVH into BVH4 form. */
    static Bvh4 fromBinary(const Lbvh &bvh);

    const std::vector<BoxNode4> &nodes() const { return nodes_; }
    std::size_t size() const { return nodes_.size(); }

    /** Root node index (0 when non-empty). */
    std::uint32_t root() const { return 0; }

    /** AABB of primitive @p i (leaf box carried over from the Lbvh). */
    const Aabb &primitiveBounds(std::uint32_t i) const
    { return primBounds_[i]; }

    std::size_t numPrimitives() const { return primBounds_.size(); }

    /** Structural invariants (containment, reachability). */
    bool validate() const;

  private:
    std::vector<BoxNode4> nodes_;
    std::vector<Aabb> primBounds_;
};

} // namespace hsu

#endif // HSU_STRUCTURES_LBVH_HH
