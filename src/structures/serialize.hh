/**
 * @file
 * Binary serialization for the search indexes.
 *
 * Index construction (graph builds especially) dominates experiment
 * setup time, so the library can persist built structures and reload
 * them instantly. Formats are versioned and checksum the shape of the
 * backing PointSet where one is required (the point data itself is not
 * embedded — indexes reference external point arrays, as on a GPU).
 */

#ifndef HSU_STRUCTURES_SERIALIZE_HH
#define HSU_STRUCTURES_SERIALIZE_HH

#include <iosfwd>
#include <optional>

#include "structures/btree.hh"
#include "structures/graph.hh"
#include "structures/kdtree.hh"
#include "structures/lbvh.hh"

namespace hsu
{

/** Serialize a binary BVH. */
void saveLbvh(std::ostream &os, const Lbvh &bvh);

/** Load a binary BVH. @return nullopt on a malformed stream. */
std::optional<Lbvh> loadLbvh(std::istream &is);

/** Serialize a k-d tree (structure only; points live elsewhere). */
void saveKdTree(std::ostream &os, const KdTree &tree);

/**
 * Load a k-d tree over @p points, which must have the same size and
 * dimensionality as the tree was built on.
 */
std::optional<KdTree> loadKdTree(std::istream &is,
                                 const PointSet &points);

/** Serialize a hierarchical graph (adjacency only). */
void saveGraph(std::ostream &os, const HnswGraph &graph);

/** Load a graph over @p points (shape-checked like loadKdTree). */
std::optional<HnswGraph> loadGraph(std::istream &is,
                                   const PointSet &points);

/** Serialize a B+tree (self-contained: keys and values included). */
void saveBTree(std::ostream &os, const BTree &tree);

/** Load a B+tree. */
std::optional<BTree> loadBTree(std::istream &is);

} // namespace hsu

#endif // HSU_STRUCTURES_SERIALIZE_HH
