/**
 * @file
 * GGNN-style graph ANN search kernel with trace emission.
 *
 * The paper's headline workload: hierarchical-graph approximate nearest
 * neighbor search (Groh et al.). Queries map to warps (GGNN assigns a
 * thread block per query; we model the dominant warp), maintaining a
 * priority queue of nodes to visit and the current K best in shared
 * memory ("parallel cache"). The HSU accelerates only the Euclidean /
 * angular distance evaluations; queue maintenance stays on the SM.
 *
 * Baseline traces lower each candidate distance to warp-cooperative
 * coalesced loads + FMA/reduction blocks; HSU traces lower a whole
 * neighbor batch to one multi-beat POINT_EUCLID / POINT_ANGULAR
 * instruction with one candidate per lane.
 */

#ifndef HSU_SEARCH_GGNN_HH
#define HSU_SEARCH_GGNN_HH

#include <cstdint>
#include <vector>

#include "hsu/isa.hh"
#include "search/layout.hh"
#include "sim/trace.hh"
#include "structures/graph.hh"

namespace hsu
{

/** Which trace flavor a kernel emits. */
enum class KernelVariant : std::uint8_t
{
    Baseline, //!< non-RT GPU: everything on the SIMD pipelines
    Hsu       //!< distance/box/key ops offloaded to the HSU
};

/** GGNN kernel parameters. */
struct GgnnConfig
{
    unsigned k = 10;
    unsigned ef = 32;            //!< layer-0 beam width
    HnswParams graphParams{};
};

/** Execution artifacts: functional results + the emitted trace. */
struct GgnnRun
{
    KernelTrace trace;
    std::vector<std::vector<Neighbor>> results; //!< per query, sorted
    std::uint64_t distanceTests = 0;            //!< candidate evals
};

/** GGNN search kernel bound to a prebuilt graph. */
class GgnnKernel
{
  public:
    /**
     * @param graph  prebuilt hierarchical graph (must outlive kernel)
     * @param cfg    search parameters
     */
    GgnnKernel(const HnswGraph &graph, GgnnConfig cfg);

    /**
     * Run all @p queries functionally and emit the warp traces.
     * One warp per query.
     */
    GgnnRun run(const PointSet &queries, KernelVariant variant,
                const DatapathConfig &dp = DatapathConfig{}) const;

  private:
    struct EmitCtx;

    /** Evaluate distances from the query to @p cands, emitting either
     *  the baseline instruction sequence or one HSU instruction. */
    void emitDistanceBatch(EmitCtx &ctx,
                           const std::vector<std::uint32_t> &cands,
                           std::uint32_t consume_token_mask,
                           std::vector<float> &dists_out) const;

    const HnswGraph &graph_;
    GgnnConfig cfg_;
    PointArrayLayout pointsLayout_;
    std::vector<RecordArrayLayout> adjLayout_; //!< per layer
    PointArrayLayout queryLayout_;
    std::uint64_t resultBase_ = 0;
    AddressAllocator alloc_;
};

} // namespace hsu

#endif // HSU_SEARCH_GGNN_HH
