/**
 * @file
 * GGNN-style graph ANN search kernel with trace emission.
 *
 * The paper's headline workload: hierarchical-graph approximate nearest
 * neighbor search (Groh et al.). Queries map to warps (GGNN assigns a
 * thread block per query; we model the dominant warp), maintaining a
 * priority queue of nodes to visit and the current K best in shared
 * memory ("parallel cache"). The HSU accelerates only the Euclidean /
 * angular distance evaluations; queue maintenance stays on the SM.
 *
 * The kernel emits a *semantic* trace (sim/ir.hh): each neighbor batch
 * is one DistanceBatch op. The lowering pass (sim/lower.hh) expands it
 * to the baseline warp-cooperative loads + FMA/reduction blocks or to
 * one multi-beat POINT_EUCLID / POINT_ANGULAR instruction.
 */

#ifndef HSU_SEARCH_GGNN_HH
#define HSU_SEARCH_GGNN_HH

#include <cstdint>
#include <vector>

#include "hsu/isa.hh"
#include "search/layout.hh"
#include "sim/ir.hh"
#include "sim/lower.hh"
#include "sim/trace.hh"
#include "structures/graph.hh"

namespace hsu
{

/** GGNN kernel parameters. */
struct GgnnConfig
{
    unsigned k = 10;
    unsigned ef = 32;            //!< layer-0 beam width
    HnswParams graphParams{};
};

/** Emission artifacts: functional results + the semantic trace. */
struct GgnnEmit
{
    SemKernelTrace sem;
    std::vector<std::vector<Neighbor>> results; //!< per query, sorted
    std::uint64_t distanceTests = 0;            //!< candidate evals
};

/** Execution artifacts: functional results + the lowered trace. */
struct GgnnRun
{
    KernelTrace trace;
    std::vector<std::vector<Neighbor>> results; //!< per query, sorted
    std::uint64_t distanceTests = 0;            //!< candidate evals
};

/** GGNN search kernel bound to a prebuilt graph. */
class GgnnKernel
{
  public:
    /**
     * @param graph  prebuilt hierarchical graph (must outlive kernel)
     * @param cfg    search parameters
     */
    GgnnKernel(const HnswGraph &graph, GgnnConfig cfg);

    /**
     * Run all @p queries functionally and emit the semantic warp
     * traces. One warp per query. Variant-free: lower the result with
     * lowerTrace() to pick an instruction flavor.
     */
    GgnnEmit emit(const PointSet &queries) const;

    /** emit() + lowerTrace() convenience (legacy two-point API). */
    GgnnRun run(const PointSet &queries, KernelVariant variant,
                const DatapathConfig &dp = DatapathConfig{}) const;

  private:
    struct EmitCtx;

    /** Evaluate distances from the query to @p cands as one semantic
     *  DistanceBatch op. */
    void emitDistanceBatch(EmitCtx &ctx,
                           const std::vector<std::uint32_t> &cands,
                           VirtToken consume,
                           std::vector<float> &dists_out) const;

    const HnswGraph &graph_;
    GgnnConfig cfg_;
    PointArrayLayout pointsLayout_;
    std::vector<RecordArrayLayout> adjLayout_; //!< per layer
    PointArrayLayout queryLayout_;
    std::uint64_t resultBase_ = 0;
    AddressAllocator alloc_;
};

} // namespace hsu

#endif // HSU_SEARCH_GGNN_HH
