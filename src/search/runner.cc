#include "search/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "analysis/trace_lint.hh"
#include "common/audit.hh"
#include "common/logging.hh"
#include "common/memo.hh"
#include "common/phase_timer.hh"
#include "common/threadpool.hh"
#include "geom/morton.hh"
#include "search/btree_kernel.hh"
#include "search/bvhnn.hh"
#include "search/flann.hh"
#include "structures/serialize.hh"

namespace hsu
{

std::string
toString(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn:
        return "GGNN";
      case Algo::Flann:
        return "FLANN";
      case Algo::Bvhnn:
        return "BVH-NN";
      case Algo::Btree:
        return "B+Tree";
    }
    hsu_panic("unknown algo");
}

std::vector<DatasetId>
datasetsForAlgo(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::HighDim))
            out.push_back(d.id);
        return out;
      }
      case Algo::Flann:
      case Algo::Bvhnn: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::Point3d))
            out.push_back(d.id);
        return out;
      }
      case Algo::Btree: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::Keys))
            out.push_back(d.id);
        return out;
      }
    }
    hsu_panic("unknown algo");
}

std::string
workloadLabel(Algo algo, const DatasetInfo &info)
{
    if (algo == Algo::Flann)
        return "F-" + info.abbr;
    if (algo == Algo::Bvhnn)
        return "B-" + info.abbr;
    return info.abbr;
}

RunnerOptions
optionsFor(const DatasetInfo &info, double scale)
{
    RunnerOptions opts;
    if (info.dim > 128) {
        // High-dimensional traces carry ~dim ops per candidate; keep
        // total trace size roughly constant across datasets.
        opts.ggnnQueries = std::max(
            32u, static_cast<unsigned>(128.0 * 128.0 / info.dim));
    }
    auto apply = [scale](unsigned v) {
        return std::max(32u, static_cast<unsigned>(v * scale));
    };
    opts.ggnnQueries = apply(opts.ggnnQueries);
    opts.pointQueries = apply(opts.pointQueries);
    opts.keyQueries = apply(opts.keyQueries);
    return opts;
}

double
quickScale()
{
    // ArgParser::envFlag("quick") writes HSU_QUICK back;
    // audit[env-read]: downstream plumbing of the envFlag write-back
    const char *q = std::getenv("HSU_QUICK");
    return (q != nullptr && q[0] != '\0' && q[0] != '0') ? 0.25 : 1.0;
}

namespace
{

/**
 * Uniform grid over a 3-D point set for exact nearest-neighbor scans.
 * An expanding ring (Chebyshev shell) scan around the query cell stops
 * as soon as no unscanned cell can hold a closer point, bounding the
 * work by the local density instead of the full set. The candidate
 * distances evaluated are the same pointDist2 values a brute-force
 * sweep computes, and min over a set of floats is order-independent,
 * so the nearest-neighbor distance is bit-identical to brute force.
 */
class NeighborGrid
{
  public:
    explicit NeighborGrid(const PointSet &points) : points_(points)
    {
        const std::size_t n = points.size();
        for (int a = 0; a < 3; ++a) {
            lo_[a] = std::numeric_limits<float>::infinity();
            hi_[a] = -std::numeric_limits<float>::infinity();
        }
        for (std::size_t i = 0; i < n; ++i) {
            const float *p = points_[i];
            for (int a = 0; a < 3; ++a) {
                lo_[a] = std::min(lo_[a], p[a]);
                hi_[a] = std::max(hi_[a], p[a]);
            }
        }
        // ~2 points per cell on average, capped so the cell array
        // stays a few MB even for the largest meshes.
        res_ = static_cast<unsigned>(std::clamp(
            std::cbrt(static_cast<double>(n) / 2.0), 1.0, 96.0));
        minEdge_ = std::numeric_limits<float>::infinity();
        for (int a = 0; a < 3; ++a) {
            ext_[a] = hi_[a] - lo_[a];
            if (ext_[a] > 0.0f) {
                minEdge_ = std::min(
                    minEdge_, ext_[a] / static_cast<float>(res_));
            }
        }

        // Counting sort of point ids into cells.
        const std::size_t cells =
            static_cast<std::size_t>(res_) * res_ * res_;
        std::vector<std::uint32_t> cell_of(n);
        start_.assign(cells + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            cell_of[i] = cellIndex(points_[i]);
            ++start_[cell_of[i] + 1];
        }
        for (std::size_t c = 0; c < cells; ++c)
            start_[c + 1] += start_[c];
        ids_.resize(n);
        std::vector<std::uint32_t> cursor(start_.begin(),
                                          start_.end() - 1);
        for (std::size_t i = 0; i < n; ++i)
            ids_[cursor[cell_of[i]]++] = static_cast<std::uint32_t>(i);
    }

    /** Exact squared distance from point @p i to its nearest other
     *  point (infinity for a single-point set, 0 for duplicates). */
    float
    nnDist2(std::size_t i) const
    {
        const float *p = points_[i];
        unsigned c[3];
        for (int a = 0; a < 3; ++a)
            c[a] = axisCell(p[a], a);
        // Shells are exhausted once the box [c-r, c+r] covers every
        // cell on all three axes.
        unsigned max_r = 0;
        for (int a = 0; a < 3; ++a)
            max_r = std::max(max_r, std::max(c[a], res_ - 1 - c[a]));

        float best = std::numeric_limits<float>::infinity();
        for (unsigned r = 0;; ++r) {
            scanShell(i, p, c, r, best);
            // A point outside shell r differs from p by more than
            // r * minEdge_ on some axis (its cell index differs by at
            // least r+1 there), so once best is within that bound the
            // scan is provably complete.
            const float reach = static_cast<float>(r) * minEdge_;
            if (best <= reach * reach || r >= max_r)
                return best;
        }
    }

  private:
    unsigned
    axisCell(float v, int a) const
    {
        if (!(ext_[a] > 0.0f))
            return 0;
        const float t = (v - lo_[a]) / ext_[a];
        const auto cell =
            static_cast<long>(t * static_cast<float>(res_));
        if (cell < 0)
            return 0;
        return std::min(res_ - 1, static_cast<unsigned>(cell));
    }

    std::uint32_t
    cellIndex(const float *p) const
    {
        return (axisCell(p[0], 0) * res_ + axisCell(p[1], 1)) * res_ +
               axisCell(p[2], 2);
    }

    /** Fold every point in the cells at Chebyshev distance exactly
     *  @p r from @p c into @p best (skipping point @p i itself). */
    void
    scanShell(std::size_t i, const float *p, const unsigned c[3],
              unsigned r, float &best) const
    {
        const auto lo = [&](int a) {
            return c[a] >= r ? c[a] - r : 0u;
        };
        const auto hi = [&](int a) {
            return std::min(res_ - 1, c[a] + r);
        };
        for (unsigned x = lo(0); x <= hi(0); ++x) {
            for (unsigned y = lo(1); y <= hi(1); ++y) {
                for (unsigned z = lo(2); z <= hi(2); ++z) {
                    const unsigned cheb = std::max(
                        {absDiff(x, c[0]), absDiff(y, c[1]),
                         absDiff(z, c[2])});
                    if (cheb != r)
                        continue;
                    const std::uint32_t cell = (x * res_ + y) * res_ + z;
                    for (std::uint32_t k = start_[cell];
                         k < start_[cell + 1]; ++k) {
                        const std::uint32_t j = ids_[k];
                        if (j == i)
                            continue;
                        best = std::min(
                            best, pointDist2(p, points_[j], 3));
                    }
                }
            }
        }
    }

    static unsigned
    absDiff(unsigned a, unsigned b)
    {
        return a > b ? a - b : b - a;
    }

    const PointSet &points_;
    float lo_[3], hi_[3], ext_[3];
    float minEdge_ = 0.0f;
    unsigned res_ = 1;
    std::vector<std::uint32_t> start_; //!< cell -> ids_ range
    std::vector<std::uint32_t> ids_;   //!< point ids grouped by cell
};

} // namespace

float
pickRadius(const PointSet &points, std::uint64_t seed)
{
    // Median nearest-neighbor spacing over a small deterministic
    // sample, doubled (RTNN builds leaves at 2x the search radius; we
    // fold that into the radius choice). Each sample's exact nearest
    // neighbor comes from a uniform-grid ring scan — bit-identical to
    // the O(samples x N) brute-force sweep it replaced, but bounded by
    // the local point density.
    Rng rng(seed);
    const std::size_t samples =
        std::min<std::size_t>(64, points.size());
    const NeighborGrid grid(points);
    std::vector<float> nn;
    nn.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
        const std::size_t i = rng.nextBounded(points.size());
        nn.push_back(std::sqrt(grid.nnDist2(i)));
    }
    std::nth_element(nn.begin(), nn.begin() + nn.size() / 2, nn.end());
    return 2.0f * nn[nn.size() / 2];
}

namespace
{

/**
 * Memoized per-dataset index assets (expensive to build, immutable
 * once built, safe to share across simulation threads), keyed through
 * the shared build-once cache (common/memo.hh). Queries are
 * NOT cached: they depend on the per-call RunnerOptions, so each trace
 * emission regenerates them — a pure, cheap function of the dataset
 * seed, which keeps results independent of job order and thread count.
 */
struct GgnnAssets
{
    PointSet points;
    std::unique_ptr<HnswGraph> graph;
    std::unique_ptr<GgnnKernel> kernel;
};

struct PointAssets
{
    PointSet points;
    float radius = 0.0f;
    std::unique_ptr<Lbvh> bvh;
    std::unique_ptr<BvhnnKernel> bvhKernel;
    std::unique_ptr<KdTree> kdtree;
    std::unique_ptr<FlannKernel> flannKernel;
};

struct KeyAssets
{
    std::unique_ptr<BTree> tree;
    std::unique_ptr<BtreeKernel> kernel;
};

/**
 * Persistent index cache (the build-once/query-many split of RTNN /
 * RT-kNNS, applied across processes): when the HSU_INDEX_CACHE
 * environment variable names a directory, built indexes are serialized
 * there and later runs reload them instead of rebuilding. Serialized
 * indexes round-trip exactly (tests/structures/test_serialize), and the
 * loaders shape-check against the backing PointSet and fall back to a
 * rebuild on any mismatch, so a stale or corrupt cache costs a warning,
 * never a wrong result.
 */
std::string
indexCacheFile(const std::string &stem)
{
    // Opt-in disk cache location; unset means "no cache".
    // audit[env-read]: no CLI owns this library path
    const char *dir = std::getenv("HSU_INDEX_CACHE");
    if (dir == nullptr || dir[0] == '\0')
        return {};
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        hsu_warn("cannot create HSU_INDEX_CACHE dir ", dir, ": ",
                 ec.message());
        return {};
    }
    return std::string(dir) + "/" + stem + ".idx";
}

template <typename T, typename LoadFn, typename BuildFn, typename SaveFn>
T
cachedIndex(const std::string &file, LoadFn load, BuildFn build,
            SaveFn save)
{
    if (!file.empty()) {
        std::ifstream is(file, std::ios::binary);
        if (is) {
            if (std::optional<T> got = load(is))
                return std::move(*got);
            hsu_warn("index cache ", file, " is stale; rebuilding");
        }
    }
    T built = build();
    if (!file.empty()) {
        // Write-to-temp + rename so a concurrent reader never sees a
        // half-written index.
        std::string tmp = file + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
        tmp += std::to_string(::getpid());
#endif
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (os) {
            save(os, built);
            os.close();
            std::error_code ec;
            std::filesystem::rename(tmp, file, ec);
            if (ec)
                std::filesystem::remove(tmp, ec);
        }
    }
    return built;
}

const GgnnAssets &
ggnnAssets(DatasetId id)
{
    return cachedAssets<GgnnAssets>(id, [id](GgnnAssets &a) {
        const DatasetInfo &info = datasetInfo(id);
        // Build in place: the graph/kernel hold references into the
        // slot-resident PointSet, so it must never move after build.
        a.points = generatePoints(info);
        a.graph = std::make_unique<HnswGraph>(cachedIndex<HnswGraph>(
            indexCacheFile(info.paperName + "-hnsw"),
            [&](std::istream &is) { return loadGraph(is, a.points); },
            [&] { return HnswGraph::build(a.points, info.metric); },
            [](std::ostream &os, const HnswGraph &g) {
                saveGraph(os, g);
            }));
        a.kernel = std::make_unique<GgnnKernel>(*a.graph, GgnnConfig{});
    });
}

const PointAssets &
pointAssets(DatasetId id)
{
    return cachedAssets<PointAssets>(id, [id](PointAssets &a) {
        const DatasetInfo &info = datasetInfo(id);
        a.points = generatePoints(info);
        a.radius = pickRadius(a.points);
        a.bvh = std::make_unique<Lbvh>(cachedIndex<Lbvh>(
            indexCacheFile(info.paperName + "-lbvh"),
            [](std::istream &is) { return loadLbvh(is); },
            [&] { return Lbvh::buildFromPoints(a.points, a.radius); },
            [](std::ostream &os, const Lbvh &b) { saveLbvh(os, b); }));
        a.bvhKernel = std::make_unique<BvhnnKernel>(
            a.points, *a.bvh, BvhnnConfig{a.radius});
        a.kdtree = std::make_unique<KdTree>(cachedIndex<KdTree>(
            indexCacheFile(info.paperName + "-kdtree"),
            [&](std::istream &is) { return loadKdTree(is, a.points); },
            [&] { return KdTree::build(a.points, 16); },
            [](std::ostream &os, const KdTree &t) { saveKdTree(os, t); }));
        a.flannKernel = std::make_unique<FlannKernel>(*a.kdtree);
    });
}

const KeyAssets &
keyAssets(DatasetId id)
{
    return cachedAssets<KeyAssets>(id, [id](KeyAssets &a) {
        const DatasetInfo &info = datasetInfo(id);
        a.tree = std::make_unique<BTree>(cachedIndex<BTree>(
            indexCacheFile(info.paperName + "-btree"),
            [](std::istream &is) { return loadBTree(is); },
            [&] {
                auto keys = generateKeys(info);
                std::vector<std::pair<std::uint32_t, std::uint32_t>>
                    pairs;
                pairs.reserve(keys.size());
                for (std::size_t i = 0; i < keys.size(); ++i) {
                    pairs.emplace_back(keys[i],
                                       static_cast<std::uint32_t>(i));
                }
                return BTree::build(std::move(pairs));
            },
            [](std::ostream &os, const BTree &t) { saveBTree(os, t); }));
        a.kernel = std::make_unique<BtreeKernel>(*a.tree);
    });
}

/**
 * Deterministic per-dataset serving query pool: the fixed universe of
 * queries online requests draw from, keyed by (dataset, pool size) so
 * different server configs never alias.
 */
struct ServePool
{
    PointSet points;                 //!< HighDim / Point3d datasets
    std::vector<std::uint32_t> keys; //!< Keys datasets
};

const ServePool &
servePool(DatasetId id, std::size_t pool_size)
{
    const auto key = std::make_pair(id, pool_size);
    return cachedAssets<ServePool>(key, [id, pool_size](ServePool &p) {
        const DatasetInfo &info = datasetInfo(id);
        if (info.kind == DatasetKind::Keys)
            p.keys = generateKeyQueries(info, pool_size);
        else
            p.points = generateQueries(info, pool_size);
    });
}

} // namespace

const PointSet &
serveQueryPoints(DatasetId dataset, std::size_t pool_size)
{
    const ServePool &pool = servePool(dataset, pool_size);
    hsu_assert(datasetInfo(dataset).kind != DatasetKind::Keys,
               "serveQueryPoints on a Keys dataset");
    return pool.points;
}

const std::vector<std::uint32_t> &
serveQueryKeys(DatasetId dataset, std::size_t pool_size)
{
    const ServePool &pool = servePool(dataset, pool_size);
    hsu_assert(datasetInfo(dataset).kind == DatasetKind::Keys,
               "serveQueryKeys on a non-Keys dataset");
    return pool.keys;
}

const std::vector<std::uint64_t> &
serveQueryCoherenceKeys(DatasetId dataset, std::size_t pool_size)
{
    struct CoherenceKeys
    {
        std::vector<std::uint64_t> codes;
    };
    const auto key = std::make_pair(dataset, pool_size);
    return cachedAssets<CoherenceKeys>(
               key,
               [dataset, pool_size](CoherenceKeys &out) {
                   const ServePool &pool =
                       servePool(dataset, pool_size);
                   if (datasetInfo(dataset).kind == DatasetKind::Keys) {
                       out.codes.reserve(pool.keys.size());
                       for (const std::uint32_t k : pool.keys)
                           out.codes.push_back(k);
                       return;
                   }
                   out.codes = mortonCodes63(pool.points[0],
                                             pool.points.size(),
                                             pool.points.dim());
               })
        .codes;
}

namespace
{

/**
 * Debug-build emission hook: every kernel's semantic trace runs the
 * static linter at emission time; release builds (unless HSU_AUDIT)
 * compile the check out.
 */
void
maybeLintEmission([[maybe_unused]] const SemKernelTrace &sem,
                  [[maybe_unused]] Algo algo)
{
#if !defined(NDEBUG) || defined(HSU_AUDIT)
    lintSemTraceOrDie(sem, toString(algo).c_str());
#endif
}

[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kStatMergeAudit, audit::NondetKind::FloatAccumulation,
    "runner.cc:runJobsParallel",
    "futures are joined in submission order, so floating-point stat "
    "merges see a fixed accumulation order regardless of worker "
    "scheduling");

} // namespace

SemKernelTrace
emitSemantic(Algo algo, DatasetId id, const RunnerOptions &opts)
{
    SemKernelTrace sem = [&]() -> SemKernelTrace {
        const ScopedPhaseTimer timer(PipelinePhase::Emit);
        const DatasetInfo &info = datasetInfo(id);
        switch (algo) {
          case Algo::Ggnn: {
            const auto &a = ggnnAssets(id);
            const PointSet queries =
                generateQueries(info, opts.ggnnQueries);
            return a.kernel->emit(queries).sem;
          }
          case Algo::Flann: {
            const auto &a = pointAssets(id);
            const PointSet queries =
                generateQueries(info, opts.pointQueries);
            return a.flannKernel->emit(queries).sem;
          }
          case Algo::Bvhnn: {
            const auto &a = pointAssets(id);
            const PointSet queries =
                generateQueries(info, opts.pointQueries);
            return a.bvhKernel->emit(queries).sem;
          }
          case Algo::Btree: {
            const auto &a = keyAssets(id);
            const std::vector<std::uint32_t> queries =
                generateKeyQueries(info, opts.keyQueries);
            return a.kernel->emit(queries).sem;
          }
        }
        hsu_panic("unknown algo");
    }();
    maybeLintEmission(sem, algo);
    return sem;
}

namespace
{

using SemKey =
    std::tuple<Algo, DatasetId, unsigned, unsigned, unsigned>;
using SemPtr = std::shared_ptr<const SemKernelTrace>;

/**
 * Memoized semantic emissions. A weak map provides sharing: every
 * requester of a key that is alive anywhere in the process gets the
 * same pointer. An in-flight table collapses concurrent first
 * requests onto one emission (waiters block on a shared_future
 * outside the lock). A tiny MRU strong list keeps the last few traces
 * alive *between* the back-to-back jobs of a sweep so peak RSS is
 * bounded by the working set, not by every workload ever touched.
 */
struct SemTraceCache
{
    // Two strong entries cover the fleet access patterns: a
    // workload's base/HSU pair and every sweep point share one key,
    // and concurrently running jobs pin their traces via their own
    // shared_ptr while they lower/simulate.
    static constexpr std::size_t kStrongCap = 2;

    std::mutex mutex;
    std::map<SemKey, std::weak_ptr<const SemKernelTrace>> live;
    std::map<SemKey, std::shared_future<SemPtr>> inflight;
    std::deque<std::pair<SemKey, SemPtr>> strong;

    void touch(const SemKey &key, const SemPtr &trace)
    {
        for (auto it = strong.begin(); it != strong.end(); ++it) {
            if (it->first == key) {
                strong.erase(it);
                break;
            }
        }
        strong.emplace_front(key, trace);
        if (strong.size() > kStrongCap)
            strong.pop_back();
    }
};

SemTraceCache &
semTraceCache()
{
    static SemTraceCache cache;
    return cache;
}

} // namespace

std::shared_ptr<const SemKernelTrace>
emitSemanticShared(Algo algo, DatasetId id, const RunnerOptions &opts)
{
    const SemKey key{algo, id, opts.ggnnQueries, opts.pointQueries,
                     opts.keyQueries};
    SemTraceCache &cache = semTraceCache();
    std::promise<SemPtr> promise;
    std::shared_future<SemPtr> future;
    bool emitter = false;
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        if (auto it = cache.live.find(key); it != cache.live.end()) {
            if (SemPtr trace = it->second.lock()) {
                cache.touch(key, trace);
                notePipelineCacheHit();
                return trace;
            }
        }
        if (auto it = cache.inflight.find(key);
            it != cache.inflight.end()) {
            future = it->second;
        } else {
            emitter = true;
            future = promise.get_future().share();
            cache.inflight.emplace(key, future);
        }
    }
    if (!emitter) {
        // Another thread owns the emission; wait for its result.
        notePipelineCacheHit();
        return future.get();
    }
    // We own the emission: run it outside the lock so different
    // workloads still emit concurrently, then publish.
    SemPtr trace = std::make_shared<const SemKernelTrace>(
        emitSemantic(algo, id, opts));
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        cache.live[key] = trace;
        cache.touch(key, trace);
        cache.inflight.erase(key);
    }
    promise.set_value(trace);
    return trace;
}

std::shared_ptr<const KernelTrace>
emitBatchTrace(Algo algo, DatasetId dataset, KernelVariant variant,
               const DatapathConfig &dp,
               const std::vector<std::uint32_t> &query_ids,
               std::size_t pool_size, const ServeKnobs &knobs)
{
    hsu_assert(!query_ids.empty(), "empty serve batch");
    const ServePool &pool = servePool(dataset, pool_size);

    auto gather_points = [&]() {
        PointSet batch(pool.points.dim());
        batch.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            hsu_assert(q < pool.points.size(),
                       "serve query id out of pool: ", q);
            batch.add(pool.points[q]);
        }
        return batch;
    };

    // Emit the batch's semantic trace (timed as the Emit phase), then
    // lower it for the requested variant — the same two-point pipeline
    // the offline benches use, instead of the legacy kernel.run()
    // wrapper. The traces are bit-identical (run() is documented as
    // emit() + lowerTrace()).
    SemKernelTrace sem = [&]() -> SemKernelTrace {
        const ScopedPhaseTimer timer(PipelinePhase::Emit);
        switch (algo) {
          case Algo::Ggnn: {
            const auto &a = ggnnAssets(dataset);
            // Default-quality batches reuse the cached kernel (its
            // address layouts are identical to a freshly constructed
            // one — allocation is deterministic per kernel); degraded
            // batches instantiate one with the shrunk knobs, which is
            // cheap (address layouts only).
            if (knobs == ServeKnobs{})
                return a.kernel->emit(gather_points()).sem;
            GgnnConfig cfg;
            cfg.ef = knobs.ggnnEf;
            cfg.k = knobs.ggnnK;
            const GgnnKernel kernel(*a.graph, cfg);
            return kernel.emit(gather_points()).sem;
          }
          case Algo::Flann: {
            const auto &a = pointAssets(dataset);
            return a.flannKernel->emit(gather_points()).sem;
          }
          case Algo::Bvhnn: {
            const auto &a = pointAssets(dataset);
            return a.bvhKernel->emit(gather_points()).sem;
          }
          case Algo::Btree: {
            const auto &a = keyAssets(dataset);
            std::vector<std::uint32_t> batch;
            batch.reserve(query_ids.size());
            for (const std::uint32_t q : query_ids) {
                hsu_assert(q < pool.keys.size(),
                           "serve query id out of pool: ", q);
                batch.push_back(pool.keys[q]);
            }
            return a.kernel->emit(batch).sem;
          }
        }
        hsu_panic("unknown algo");
    }();
    maybeLintEmission(sem, algo);
    return std::make_shared<const KernelTrace>(
        lowerTrace(sem, loweringFor(variant, dp)));
}

RunResult
runLowered(Algo algo, DatasetId dataset, const GpuConfig &gpu,
           const RunnerOptions &opts, const Lowering &lowering,
           StatGroup &stats)
{
    // Emit once, lower many: the semantic trace comes from the shared
    // cache, so the base/HSU pair of a workload — and every sweep point
    // over this (algo, dataset, opts) — reuses one emission.
    const std::shared_ptr<const SemKernelTrace> sem =
        emitSemanticShared(algo, dataset, opts);
    const KernelTrace trace = lowerTrace(*sem, lowering);
    hsu_contract(trace.warps.size() == sem->warps.size(),
                 "lowering must preserve the warp count");
    return simulateKernel(gpu, trace, stats);
}

RunResult
runHsuOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
           const RunnerOptions &opts, StatGroup &stats)
{
    GpuConfig cfg = gpu;
    cfg.rtUnitEnabled = true;
    return runLowered(algo, dataset, cfg, opts,
                      Lowering::hsu(cfg.datapath), stats);
}

RunResult
runBaseOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
            const RunnerOptions &opts, StatGroup &stats)
{
    GpuConfig cfg = gpu;
    cfg.rtUnitEnabled = false;
    return runLowered(algo, dataset, cfg, opts,
                      Lowering::baseline(cfg.datapath), stats);
}

WorkloadResult
runWorkload(Algo algo, DatasetId dataset, const GpuConfig &gpu,
            const RunnerOptions &opts)
{
    WorkloadResult out;
    out.algo = algo;
    out.dataset = dataset;
    out.label = workloadLabel(algo, datasetInfo(dataset));
    out.base = runBaseOnly(algo, dataset, gpu, opts, out.baseStats);
    out.hsu = runHsuOnly(algo, dataset, gpu, opts, out.hsuStats);
    return out;
}

std::vector<SimJobResult>
runJobsParallel(std::vector<SimJob> jobs, unsigned num_threads)
{
    ThreadPool pool(num_threads);
    std::vector<std::future<SimJobResult>> futures;
    futures.reserve(jobs.size());
    for (SimJob &job : jobs) {
        futures.push_back(pool.submit([job = std::move(job)]() {
            SimJobResult res;
            switch (job.kind) {
              case SimJob::Kind::Workload:
                res.workload = runWorkload(job.algo, job.dataset,
                                           job.gpu, job.opts);
                break;
              case SimJob::Kind::BaseOnly:
                res.run = runBaseOnly(job.algo, job.dataset, job.gpu,
                                      job.opts, res.stats);
                break;
              case SimJob::Kind::HsuOnly:
                res.run = runHsuOnly(job.algo, job.dataset, job.gpu,
                                     job.opts, res.stats);
                break;
              case SimJob::Kind::Trace:
                hsu_assert(job.trace, "Kind::Trace job without a trace");
                res.run = simulateKernel(job.gpu, job.trace, res.stats);
                break;
              case SimJob::Kind::SemLower: {
                hsu_assert(job.sem, "Kind::SemLower job without a sem "
                                    "trace");
                // The lowered trace lives only inside this worker: N
                // in-flight lowerings of one sweep share a single
                // semantic trace instead of N pre-lowered copies.
                const auto trace = std::make_shared<const KernelTrace>(
                    lowerTrace(*job.sem, job.lowering));
                res.traceStats = analyzeTrace(*trace);
                res.run = simulateKernel(job.gpu, trace, res.stats);
                break;
              }
            }
            return res;
        }));
    }
    // Collect in submission order: results are deterministic no matter
    // which worker ran which job.
    std::vector<SimJobResult> results;
    results.reserve(futures.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

std::vector<WorkloadResult>
runWorkloadsParallel(const std::vector<std::pair<Algo, DatasetId>> &work,
                     const GpuConfig &gpu, double scale,
                     unsigned num_threads)
{
    std::vector<SimJob> jobs;
    jobs.reserve(work.size());
    for (const auto &[algo, dataset] : work) {
        SimJob job;
        job.kind = SimJob::Kind::Workload;
        job.algo = algo;
        job.dataset = dataset;
        job.gpu = gpu;
        job.opts = optionsFor(datasetInfo(dataset), scale);
        jobs.push_back(std::move(job));
    }
    std::vector<SimJobResult> res =
        runJobsParallel(std::move(jobs), num_threads);
    std::vector<WorkloadResult> out;
    out.reserve(res.size());
    for (auto &r : res)
        out.push_back(std::move(r.workload));
    return out;
}

} // namespace hsu
