#include "search/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "search/btree_kernel.hh"
#include "search/bvhnn.hh"
#include "search/flann.hh"

namespace hsu
{

std::string
toString(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn:
        return "GGNN";
      case Algo::Flann:
        return "FLANN";
      case Algo::Bvhnn:
        return "BVH-NN";
      case Algo::Btree:
        return "B+Tree";
    }
    hsu_panic("unknown algo");
}

std::vector<DatasetId>
datasetsForAlgo(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::HighDim))
            out.push_back(d.id);
        return out;
      }
      case Algo::Flann:
      case Algo::Bvhnn: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::Point3d))
            out.push_back(d.id);
        return out;
      }
      case Algo::Btree: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::Keys))
            out.push_back(d.id);
        return out;
      }
    }
    hsu_panic("unknown algo");
}

std::string
workloadLabel(Algo algo, const DatasetInfo &info)
{
    if (algo == Algo::Flann)
        return "F-" + info.abbr;
    if (algo == Algo::Bvhnn)
        return "B-" + info.abbr;
    return info.abbr;
}

RunnerOptions
optionsFor(const DatasetInfo &info, double scale)
{
    RunnerOptions opts;
    if (info.dim > 128) {
        // High-dimensional traces carry ~dim ops per candidate; keep
        // total trace size roughly constant across datasets.
        opts.ggnnQueries = std::max(
            32u, static_cast<unsigned>(128.0 * 128.0 / info.dim));
    }
    auto apply = [scale](unsigned v) {
        return std::max(32u, static_cast<unsigned>(v * scale));
    };
    opts.ggnnQueries = apply(opts.ggnnQueries);
    opts.pointQueries = apply(opts.pointQueries);
    opts.keyQueries = apply(opts.keyQueries);
    return opts;
}

double
quickScale()
{
    const char *q = std::getenv("HSU_QUICK");
    return (q != nullptr && q[0] != '\0' && q[0] != '0') ? 0.25 : 1.0;
}

float
pickRadius(const PointSet &points, std::uint64_t seed)
{
    // Median nearest-neighbor spacing over a small deterministic
    // sample, doubled (RTNN builds leaves at 2x the search radius; we
    // fold that into the radius choice).
    Rng rng(seed);
    const std::size_t samples =
        std::min<std::size_t>(64, points.size());
    std::vector<float> nn;
    nn.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
        const std::size_t i = rng.nextBounded(points.size());
        float best = std::numeric_limits<float>::infinity();
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            best = std::min(best,
                            pointDist2(points[i], points[j], 3));
        }
        nn.push_back(std::sqrt(best));
    }
    std::nth_element(nn.begin(), nn.begin() + nn.size() / 2, nn.end());
    return 2.0f * nn[nn.size() / 2];
}

namespace
{

/**
 * Memoized per-dataset index assets (expensive to build, immutable
 * once built, safe to share across simulation threads). Queries are
 * NOT cached: they depend on the per-call RunnerOptions, so each trace
 * emission regenerates them — a pure, cheap function of the dataset
 * seed, which keeps results independent of job order and thread count.
 *
 * Concurrency: a global mutex guards each cache map; the heavy build
 * runs outside it under the slot's once_flag, so two threads wanting
 * different datasets build concurrently while two wanting the same
 * dataset build exactly once.
 */
struct GgnnAssets
{
    PointSet points;
    std::unique_ptr<HnswGraph> graph;
    std::unique_ptr<GgnnKernel> kernel;
};

struct PointAssets
{
    PointSet points;
    float radius = 0.0f;
    std::unique_ptr<Lbvh> bvh;
    std::unique_ptr<BvhnnKernel> bvhKernel;
    std::unique_ptr<KdTree> kdtree;
    std::unique_ptr<FlannKernel> flannKernel;
};

struct KeyAssets
{
    std::unique_ptr<BTree> tree;
    std::unique_ptr<BtreeKernel> kernel;
};

template <typename Assets>
struct AssetSlot
{
    std::once_flag once;
    Assets assets;
};

template <typename Assets, typename Key, typename Build>
const Assets &
cachedAssets(const Key &key, Build build)
{
    static std::mutex mutex;
    static std::map<Key, std::unique_ptr<AssetSlot<Assets>>> cache;

    AssetSlot<Assets> *slot;
    {
        std::lock_guard lock(mutex);
        auto &entry = cache[key];
        if (!entry)
            entry = std::make_unique<AssetSlot<Assets>>();
        slot = entry.get(); // slots are pinned; the map may rehash
    }
    std::call_once(slot->once, [&] { build(slot->assets); });
    return slot->assets;
}

const GgnnAssets &
ggnnAssets(DatasetId id)
{
    return cachedAssets<GgnnAssets>(id, [id](GgnnAssets &a) {
        const DatasetInfo &info = datasetInfo(id);
        // Build in place: the graph/kernel hold references into the
        // slot-resident PointSet, so it must never move after build.
        a.points = generatePoints(info);
        a.graph = std::make_unique<HnswGraph>(
            HnswGraph::build(a.points, info.metric));
        a.kernel = std::make_unique<GgnnKernel>(*a.graph, GgnnConfig{});
    });
}

const PointAssets &
pointAssets(DatasetId id)
{
    return cachedAssets<PointAssets>(id, [id](PointAssets &a) {
        const DatasetInfo &info = datasetInfo(id);
        a.points = generatePoints(info);
        a.radius = pickRadius(a.points);
        a.bvh = std::make_unique<Lbvh>(
            Lbvh::buildFromPoints(a.points, a.radius));
        a.bvhKernel = std::make_unique<BvhnnKernel>(
            a.points, *a.bvh, BvhnnConfig{a.radius});
        a.kdtree = std::make_unique<KdTree>(KdTree::build(a.points, 16));
        a.flannKernel = std::make_unique<FlannKernel>(*a.kdtree);
    });
}

const KeyAssets &
keyAssets(DatasetId id)
{
    return cachedAssets<KeyAssets>(id, [id](KeyAssets &a) {
        auto keys = generateKeys(datasetInfo(id));
        std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
        pairs.reserve(keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i)
            pairs.emplace_back(keys[i], static_cast<std::uint32_t>(i));
        a.tree = std::make_unique<BTree>(BTree::build(std::move(pairs)));
        a.kernel = std::make_unique<BtreeKernel>(*a.tree);
    });
}

/**
 * Deterministic per-dataset serving query pool: the fixed universe of
 * queries online requests draw from, keyed by (dataset, pool size) so
 * different server configs never alias.
 */
struct ServePool
{
    PointSet points;                 //!< HighDim / Point3d datasets
    std::vector<std::uint32_t> keys; //!< Keys datasets
};

const ServePool &
servePool(DatasetId id, std::size_t pool_size)
{
    const auto key = std::make_pair(id, pool_size);
    return cachedAssets<ServePool>(key, [id, pool_size](ServePool &p) {
        const DatasetInfo &info = datasetInfo(id);
        if (info.kind == DatasetKind::Keys)
            p.keys = generateKeyQueries(info, pool_size);
        else
            p.points = generateQueries(info, pool_size);
    });
}

} // namespace

SemKernelTrace
emitSemantic(Algo algo, DatasetId id, const RunnerOptions &opts)
{
    const DatasetInfo &info = datasetInfo(id);
    switch (algo) {
      case Algo::Ggnn: {
        const auto &a = ggnnAssets(id);
        const PointSet queries =
            generateQueries(info, opts.ggnnQueries);
        return a.kernel->emit(queries).sem;
      }
      case Algo::Flann: {
        const auto &a = pointAssets(id);
        const PointSet queries =
            generateQueries(info, opts.pointQueries);
        return a.flannKernel->emit(queries).sem;
      }
      case Algo::Bvhnn: {
        const auto &a = pointAssets(id);
        const PointSet queries =
            generateQueries(info, opts.pointQueries);
        return a.bvhKernel->emit(queries).sem;
      }
      case Algo::Btree: {
        const auto &a = keyAssets(id);
        const std::vector<std::uint32_t> queries =
            generateKeyQueries(info, opts.keyQueries);
        return a.kernel->emit(queries).sem;
      }
    }
    hsu_panic("unknown algo");
}

KernelTrace
emitBatchTrace(Algo algo, DatasetId dataset, KernelVariant variant,
               const DatapathConfig &dp,
               const std::vector<std::uint32_t> &query_ids,
               std::size_t pool_size, const ServeKnobs &knobs)
{
    hsu_assert(!query_ids.empty(), "empty serve batch");
    const ServePool &pool = servePool(dataset, pool_size);

    auto gather_points = [&]() {
        PointSet batch(pool.points.dim());
        batch.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            hsu_assert(q < pool.points.size(),
                       "serve query id out of pool: ", q);
            batch.add(pool.points[q]);
        }
        return batch;
    };

    switch (algo) {
      case Algo::Ggnn: {
        const auto &a = ggnnAssets(dataset);
        // Kernels are cheap to construct (address layouts only), so a
        // degraded batch just instantiates one with the shrunk knobs.
        GgnnConfig cfg;
        cfg.ef = knobs.ggnnEf;
        cfg.k = knobs.ggnnK;
        const GgnnKernel kernel(*a.graph, cfg);
        return kernel.run(gather_points(), variant, dp).trace;
      }
      case Algo::Flann: {
        const auto &a = pointAssets(dataset);
        return a.flannKernel->run(gather_points(), variant, dp).trace;
      }
      case Algo::Bvhnn: {
        const auto &a = pointAssets(dataset);
        return a.bvhKernel->run(gather_points(), variant, dp).trace;
      }
      case Algo::Btree: {
        const auto &a = keyAssets(dataset);
        std::vector<std::uint32_t> batch;
        batch.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            hsu_assert(q < pool.keys.size(),
                       "serve query id out of pool: ", q);
            batch.push_back(pool.keys[q]);
        }
        return a.kernel->run(batch, variant, dp).trace;
      }
    }
    hsu_panic("unknown algo");
}

RunResult
runLowered(Algo algo, DatasetId dataset, const GpuConfig &gpu,
           const RunnerOptions &opts, const Lowering &lowering,
           StatGroup &stats)
{
    const KernelTrace trace =
        lowerTrace(emitSemantic(algo, dataset, opts), lowering);
    return simulateKernel(gpu, trace, stats);
}

RunResult
runHsuOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
           const RunnerOptions &opts, StatGroup &stats)
{
    GpuConfig cfg = gpu;
    cfg.rtUnitEnabled = true;
    return runLowered(algo, dataset, cfg, opts,
                      Lowering::hsu(cfg.datapath), stats);
}

RunResult
runBaseOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
            const RunnerOptions &opts, StatGroup &stats)
{
    GpuConfig cfg = gpu;
    cfg.rtUnitEnabled = false;
    return runLowered(algo, dataset, cfg, opts,
                      Lowering::baseline(cfg.datapath), stats);
}

WorkloadResult
runWorkload(Algo algo, DatasetId dataset, const GpuConfig &gpu,
            const RunnerOptions &opts)
{
    WorkloadResult out;
    out.algo = algo;
    out.dataset = dataset;
    out.label = workloadLabel(algo, datasetInfo(dataset));
    out.base = runBaseOnly(algo, dataset, gpu, opts, out.baseStats);
    out.hsu = runHsuOnly(algo, dataset, gpu, opts, out.hsuStats);
    return out;
}

std::vector<SimJobResult>
runJobsParallel(std::vector<SimJob> jobs, unsigned num_threads)
{
    ThreadPool pool(num_threads);
    std::vector<std::future<SimJobResult>> futures;
    futures.reserve(jobs.size());
    for (const SimJob &job : jobs) {
        futures.push_back(pool.submit([job]() {
            SimJobResult res;
            switch (job.kind) {
              case SimJob::Kind::Workload:
                res.workload = runWorkload(job.algo, job.dataset,
                                           job.gpu, job.opts);
                break;
              case SimJob::Kind::BaseOnly:
                res.run = runBaseOnly(job.algo, job.dataset, job.gpu,
                                      job.opts, res.stats);
                break;
              case SimJob::Kind::HsuOnly:
                res.run = runHsuOnly(job.algo, job.dataset, job.gpu,
                                     job.opts, res.stats);
                break;
              case SimJob::Kind::Trace:
                hsu_assert(job.trace, "Kind::Trace job without a trace");
                res.run = simulateKernel(job.gpu, *job.trace, res.stats);
                break;
            }
            return res;
        }));
    }
    // Collect in submission order: results are deterministic no matter
    // which worker ran which job.
    std::vector<SimJobResult> results;
    results.reserve(futures.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

std::vector<WorkloadResult>
runWorkloadsParallel(const std::vector<std::pair<Algo, DatasetId>> &work,
                     const GpuConfig &gpu, double scale,
                     unsigned num_threads)
{
    std::vector<SimJob> jobs;
    jobs.reserve(work.size());
    for (const auto &[algo, dataset] : work) {
        SimJob job;
        job.kind = SimJob::Kind::Workload;
        job.algo = algo;
        job.dataset = dataset;
        job.gpu = gpu;
        job.opts = optionsFor(datasetInfo(dataset), scale);
        jobs.push_back(std::move(job));
    }
    std::vector<SimJobResult> res =
        runJobsParallel(std::move(jobs), num_threads);
    std::vector<WorkloadResult> out;
    out.reserve(res.size());
    for (auto &r : res)
        out.push_back(std::move(r.workload));
    return out;
}

} // namespace hsu
