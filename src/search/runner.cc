#include "search/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "search/btree_kernel.hh"
#include "search/bvhnn.hh"
#include "search/flann.hh"

namespace hsu
{

std::string
toString(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn:
        return "GGNN";
      case Algo::Flann:
        return "FLANN";
      case Algo::Bvhnn:
        return "BVH-NN";
      case Algo::Btree:
        return "B+Tree";
    }
    hsu_panic("unknown algo");
}

std::vector<DatasetId>
datasetsForAlgo(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::HighDim))
            out.push_back(d.id);
        return out;
      }
      case Algo::Flann:
      case Algo::Bvhnn: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::Point3d))
            out.push_back(d.id);
        return out;
      }
      case Algo::Btree: {
        std::vector<DatasetId> out;
        for (const auto &d : datasetsOfKind(DatasetKind::Keys))
            out.push_back(d.id);
        return out;
      }
    }
    hsu_panic("unknown algo");
}

std::string
workloadLabel(Algo algo, const DatasetInfo &info)
{
    if (algo == Algo::Flann)
        return "F-" + info.abbr;
    if (algo == Algo::Bvhnn)
        return "B-" + info.abbr;
    return info.abbr;
}

RunnerOptions
optionsFor(const DatasetInfo &info, double scale)
{
    RunnerOptions opts;
    if (info.dim > 128) {
        // High-dimensional traces carry ~dim ops per candidate; keep
        // total trace size roughly constant across datasets.
        opts.ggnnQueries = std::max(
            32u, static_cast<unsigned>(128.0 * 128.0 / info.dim));
    }
    auto apply = [scale](unsigned v) {
        return std::max(32u, static_cast<unsigned>(v * scale));
    };
    opts.ggnnQueries = apply(opts.ggnnQueries);
    opts.pointQueries = apply(opts.pointQueries);
    opts.keyQueries = apply(opts.keyQueries);
    return opts;
}

double
quickScale()
{
    const char *q = std::getenv("HSU_QUICK");
    return (q != nullptr && q[0] != '\0' && q[0] != '0') ? 0.25 : 1.0;
}

float
pickRadius(const PointSet &points, std::uint64_t seed)
{
    // Median nearest-neighbor spacing over a small deterministic
    // sample, doubled (RTNN builds leaves at 2x the search radius; we
    // fold that into the radius choice).
    Rng rng(seed);
    const std::size_t samples =
        std::min<std::size_t>(64, points.size());
    std::vector<float> nn;
    nn.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
        const std::size_t i = rng.nextBounded(points.size());
        float best = std::numeric_limits<float>::infinity();
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            best = std::min(best,
                            pointDist2(points[i], points[j], 3));
        }
        nn.push_back(std::sqrt(best));
    }
    std::nth_element(nn.begin(), nn.begin() + nn.size() / 2, nn.end());
    return 2.0f * nn[nn.size() / 2];
}

namespace
{

/** Memoized per-dataset assets (indexes are expensive to build). */
struct GgnnAssets
{
    PointSet points;
    PointSet queries;
    std::unique_ptr<HnswGraph> graph;
    std::unique_ptr<GgnnKernel> kernel;
};

struct PointAssets
{
    PointSet points;
    PointSet queries;
    float radius = 0.0f;
    std::unique_ptr<Lbvh> bvh;
    std::unique_ptr<BvhnnKernel> bvhKernel;
    std::unique_ptr<KdTree> kdtree;
    std::unique_ptr<FlannKernel> flannKernel;
};

struct KeyAssets
{
    std::vector<std::uint32_t> queries;
    std::unique_ptr<BTree> tree;
    std::unique_ptr<BtreeKernel> kernel;
};

GgnnAssets &
ggnnAssets(DatasetId id, const RunnerOptions &opts)
{
    static std::map<DatasetId, GgnnAssets> cache;
    auto it = cache.find(id);
    if (it != cache.end()) {
        if (it->second.queries.size() != opts.ggnnQueries) {
            it->second.queries =
                generateQueries(datasetInfo(id), opts.ggnnQueries);
        }
        return it->second;
    }
    const DatasetInfo &info = datasetInfo(id);
    // Build in place: the graph/kernel hold references into the
    // map-resident PointSet, so it must never move after build.
    GgnnAssets &a = cache[id];
    a.points = generatePoints(info);
    a.queries = generateQueries(info, opts.ggnnQueries);
    a.graph = std::make_unique<HnswGraph>(
        HnswGraph::build(a.points, info.metric));
    a.kernel = std::make_unique<GgnnKernel>(*a.graph, GgnnConfig{});
    return a;
}

PointAssets &
pointAssets(DatasetId id, const RunnerOptions &opts)
{
    static std::map<DatasetId, PointAssets> cache;
    auto it = cache.find(id);
    if (it != cache.end()) {
        if (it->second.queries.size() != opts.pointQueries) {
            it->second.queries =
                generateQueries(datasetInfo(id), opts.pointQueries);
        }
        return it->second;
    }
    const DatasetInfo &info = datasetInfo(id);
    PointAssets &a = cache[id];
    a.points = generatePoints(info);
    a.queries = generateQueries(info, opts.pointQueries);
    a.radius = pickRadius(a.points);
    a.bvh = std::make_unique<Lbvh>(
        Lbvh::buildFromPoints(a.points, a.radius));
    a.bvhKernel = std::make_unique<BvhnnKernel>(
        a.points, *a.bvh, BvhnnConfig{a.radius});
    a.kdtree = std::make_unique<KdTree>(KdTree::build(a.points, 16));
    a.flannKernel = std::make_unique<FlannKernel>(*a.kdtree);
    return a;
}

KeyAssets &
keyAssets(DatasetId id, const RunnerOptions &opts)
{
    static std::map<DatasetId, KeyAssets> cache;
    auto it = cache.find(id);
    if (it != cache.end()) {
        if (it->second.queries.size() != opts.keyQueries) {
            it->second.queries =
                generateKeyQueries(datasetInfo(id), opts.keyQueries);
        }
        return it->second;
    }
    const DatasetInfo &info = datasetInfo(id);
    KeyAssets &a = cache[id];
    a.queries = generateKeyQueries(info, opts.keyQueries);
    auto keys = generateKeys(info);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        pairs.emplace_back(keys[i], static_cast<std::uint32_t>(i));
    a.tree = std::make_unique<BTree>(BTree::build(std::move(pairs)));
    a.kernel = std::make_unique<BtreeKernel>(*a.tree);
    return a;
}

KernelTrace
emitTrace(Algo algo, DatasetId id, KernelVariant variant,
          const DatapathConfig &dp, const RunnerOptions &opts)
{
    switch (algo) {
      case Algo::Ggnn: {
        auto &a = ggnnAssets(id, opts);
        return a.kernel->run(a.queries, variant, dp).trace;
      }
      case Algo::Flann: {
        auto &a = pointAssets(id, opts);
        return a.flannKernel->run(a.queries, variant, dp).trace;
      }
      case Algo::Bvhnn: {
        auto &a = pointAssets(id, opts);
        return a.bvhKernel->run(a.queries, variant, dp).trace;
      }
      case Algo::Btree: {
        auto &a = keyAssets(id, opts);
        return a.kernel->run(a.queries, variant, dp).trace;
      }
    }
    hsu_panic("unknown algo");
}

} // namespace

RunResult
runHsuOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
           const RunnerOptions &opts, StatGroup &stats)
{
    GpuConfig cfg = gpu;
    cfg.rtUnitEnabled = true;
    const KernelTrace trace =
        emitTrace(algo, dataset, KernelVariant::Hsu, cfg.datapath, opts);
    return simulateKernel(cfg, trace, stats);
}

RunResult
runBaseOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
            const RunnerOptions &opts, StatGroup &stats)
{
    GpuConfig cfg = gpu;
    cfg.rtUnitEnabled = false;
    const KernelTrace trace = emitTrace(algo, dataset,
                                        KernelVariant::Baseline,
                                        cfg.datapath, opts);
    return simulateKernel(cfg, trace, stats);
}

WorkloadResult
runWorkload(Algo algo, DatasetId dataset, const GpuConfig &gpu,
            const RunnerOptions &opts)
{
    WorkloadResult out;
    out.algo = algo;
    out.dataset = dataset;
    out.label = workloadLabel(algo, datasetInfo(dataset));
    out.base = runBaseOnly(algo, dataset, gpu, opts, out.baseStats);
    out.hsu = runHsuOnly(algo, dataset, gpu, opts, out.hsuStats);
    return out;
}

} // namespace hsu
