#include "search/pipeline.hh"

#include <vector>

#include "common/logging.hh"

namespace hsu
{

RayPipeline::RayPipeline(const Bvh4 &bvh,
                         const std::vector<Triangle> &tris)
    : bvh_(bvh), tris_(tris)
{
}

RayPipeline &
RayPipeline::onRayGen(RayGenFn f)
{
    rayGen_ = std::move(f);
    return *this;
}

RayPipeline &
RayPipeline::onIntersection(IntersectionFn f)
{
    intersection_ = std::move(f);
    return *this;
}

RayPipeline &
RayPipeline::onAnyHit(AnyHitFn f)
{
    anyHit_ = std::move(f);
    return *this;
}

RayPipeline &
RayPipeline::onClosestHit(ClosestHitFn f)
{
    closestHit_ = std::move(f);
    return *this;
}

RayPipeline &
RayPipeline::onMiss(MissFn f)
{
    miss_ = std::move(f);
    return *this;
}

TriHit
RayPipeline::traceRay(const Ray &ray, unsigned ray_index,
                      PipelineStats *stats) const
{
    const PreparedRay pr(ray);
    TriHit best;
    float best_t = ray.tmax;
    bool terminated = false;

    if (bvh_.size() == 0)
        return best;

    std::vector<std::uint32_t> stack{bvh_.root()};
    while (!stack.empty() && !terminated) {
        const std::uint32_t node_idx = stack.back();
        stack.pop_back();
        if (stats)
            ++stats->boxNodesVisited;
        // Hardware RAY_INTERSECT: four slab tests, sorted near-first.
        const BoxIntersectResult r =
            rayIntersectBox(pr, bvh_.nodes()[node_idx]);
        // Push far-to-near so the near child pops first.
        for (int i = static_cast<int>(r.hits) - 1; i >= 0 && !terminated;
             --i) {
            const auto slot = static_cast<unsigned>(i);
            if (r.tEnter[slot] > best_t)
                continue;
            const std::uint32_t ref = r.sortedChild[slot];
            if (!childIsLeaf(ref)) {
                stack.push_back(childIndex(ref));
                continue;
            }
            // Leaf: the IS program, or the hardware triangle test.
            const std::uint32_t prim = childIndex(ref);
            if (stats)
                ++stats->primitiveTests;
            TriHit h;
            if (intersection_) {
                h = intersection_(pr, prim);
            } else {
                TriNode node;
                node.tri = tris_[prim];
                h = rayIntersectTri(pr, node);
            }
            if (!h.hit || h.t() >= best_t || h.t() < ray.tmin)
                continue;
            // AH program filters / terminates.
            AnyHitDecision d = AnyHitDecision::Accept;
            if (anyHit_)
                d = anyHit_(ray_index, h);
            if (d == AnyHitDecision::Ignore)
                continue;
            best = h;
            best_t = h.t();
            if (d == AnyHitDecision::Terminate)
                terminated = true;
        }
    }
    return best;
}

PipelineStats
RayPipeline::trace(unsigned num_rays) const
{
    hsu_assert(rayGen_, "trace() without a ray-generation program");
    PipelineStats stats;
    stats.rays = num_rays;
    for (unsigned i = 0; i < num_rays; ++i) {
        const Ray ray = rayGen_(i);
        const TriHit h = traceRay(ray, i, &stats);
        if (h.hit) {
            ++stats.hits;
            if (closestHit_)
                closestHit_(i, h);
        } else {
            ++stats.misses;
            if (miss_)
                miss_(i);
        }
    }
    return stats;
}

} // namespace hsu
