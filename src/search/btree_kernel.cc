#include "search/btree_kernel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

BtreeKernel::BtreeKernel(const BTree &tree)
    : tree_(tree),
      // Each node gets a fixed-size slot: up to order-1 u32 separators
      // (1020B for order 256), order u32 children, and leaf key/value
      // pairs. Fixed slots keep addressing trivial, as Rodinia does.
      sepLayout_(alloc_, tree.nodes().size(),
                 ((tree.order() - 1) * 4 + 127) / 128 * 128, 128),
      childLayout_(alloc_, tree.nodes().size(),
                   (tree.order() * 4 + 127) / 128 * 128, 128),
      leafLayout_(alloc_, tree.nodes().size(),
                  ((tree.order() - 1) * 8 + 127) / 128 * 128, 128)
{
    queryBase_ = alloc_.allocate(1u << 20, 128);
    resultBase_ = alloc_.allocate(1u << 20, 128);
}

BtreeRun
BtreeKernel::run(const std::vector<std::uint32_t> &keys,
                 KernelVariant variant, const DatapathConfig &dp) const
{
    // Rodinia's findK assigns a thread block per query and scans each
    // node's separators with all threads in parallel; we model the
    // dominant warp: one warp per query, lanes striding the separator
    // array. The HSU variant replaces the scan+compare chunks with
    // KEY_COMPARE instructions (one 36-separator chunk per lane).
    BtreeRun out;
    out.results.resize(keys.size());
    const auto &nodes = tree_.nodes();
    out.trace.warps.reserve(keys.size());

    for (std::size_t q = 0; q < keys.size(); ++q) {
        out.trace.warps.emplace_back();
        TraceBuilder tb(out.trace.warps.back());
        const std::uint32_t key = keys[q];

        // Kernel prologue: load the query key, compute node offsets,
        // initialize the output record (non-offloadable overhead).
        tb.loadPattern(queryBase_ + q * 4, 0, 4, 1u);
        tb.alu(12);
        tb.shared(6);

        std::int32_t cur = tree_.root();
        while (!nodes[static_cast<std::size_t>(cur)].leaf) {
            const BTreeNode &node = nodes[static_cast<std::size_t>(cur)];
            const auto nkeys = static_cast<unsigned>(node.keys.size());
            const std::uint64_t sep = sepLayout_.at(
                static_cast<std::uint64_t>(cur));
            out.keyCompares += nkeys;

            if (variant == KernelVariant::Hsu) {
                // ceil(nkeys/36) chunks, one per lane, one CISC
                // instruction; the bit-vector popcount/combine runs on
                // the SM.
                const unsigned chunks =
                    (nkeys + dp.keyCompareWidth - 1) /
                    dp.keyCompareWidth;
                std::uint64_t addrs[kWarpSize] = {};
                for (unsigned c = 0; c < chunks && c < kWarpSize; ++c)
                    addrs[c] = sep + c * dp.keyCompareWidth * 4ull;
                const std::uint8_t tok = tb.hsuOp(
                    HsuOpcode::KeyCompare, HsuMode::KeyCompare, addrs,
                    dp.keyCompareWidth * 4,
                    1, (1u << std::min(chunks, kWarpSize)) - 1u);
                tb.alu(2 + chunks, kFullMask,
                       TraceBuilder::tokenMask(tok));
            } else {
                // Parallel scan: each 32-separator chunk is one
                // coalesced load + one compare (this is the slice the
                // HSU can subsume — the "simplest of the HSU
                // operations", Section VI-C).
                const unsigned chunks = (nkeys + kWarpSize - 1) /
                                        kWarpSize;
                std::uint32_t toks = 0;
                for (unsigned c = 0; c < chunks; ++c) {
                    const unsigned live =
                        std::min(kWarpSize, nkeys - c * kWarpSize);
                    toks |= TraceBuilder::tokenMask(tb.loadPattern(
                        sep + c * kWarpSize * 4ull, 4, 4,
                        live == kWarpSize ? kFullMask
                                          : ((1u << live) - 1u),
                        true));
                    tb.alu(2, kFullMask, 0, true);
                }
                // Ballot + reduce to the child slot (stays on the SM
                // in both variants).
                tb.alu(6, kFullMask, toks);
            }

            // Fetch the chosen child pointer.
            const unsigned slot = BTree::childSlot(node, key);
            tb.loadPattern(childLayout_.at(
                               static_cast<std::uint64_t>(cur)) +
                               slot * 4ull,
                           0, 4, 1u);
            tb.alu(2);
            cur = node.children[slot];
        }

        // Leaf probe: parallel scan over keys, then the value fetch.
        // Identical in both variants (not offloaded).
        const BTreeNode &leaf = nodes[static_cast<std::size_t>(cur)];
        const auto nkeys = static_cast<unsigned>(leaf.keys.size());
        const std::uint64_t la =
            leafLayout_.at(static_cast<std::uint64_t>(cur));
        const unsigned chunks =
            std::max(1u, (nkeys + kWarpSize - 1) / kWarpSize);
        std::uint32_t toks = 0;
        for (unsigned c = 0; c < chunks; ++c) {
            toks |= TraceBuilder::tokenMask(
                tb.loadPattern(la + c * kWarpSize * 4ull, 4, 4));
            tb.alu(2);
        }
        tb.alu(6, kFullMask, toks);
        tb.loadPattern(la + 4096, 0, 4, 1u); // matched value
        // Output record assembly (Rodinia writes back per block).
        tb.alu(8);
        tb.shared(4);
        tb.storePattern(resultBase_ + q * 4, 0, 4, 1u);

        const auto it =
            std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
        if (it != leaf.keys.end() && *it == key) {
            out.results[q] = leaf.values[static_cast<std::size_t>(
                it - leaf.keys.begin())];
        }
    }
    return out;
}

} // namespace hsu
