#include "search/btree_kernel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

BtreeKernel::BtreeKernel(const BTree &tree)
    : tree_(tree),
      // Each node gets a fixed-size slot: up to order-1 u32 separators
      // (1020B for order 256), order u32 children, and leaf key/value
      // pairs. Fixed slots keep addressing trivial, as Rodinia does.
      sepLayout_(alloc_, tree.nodes().size(),
                 ((tree.order() - 1) * 4 + 127) / 128 * 128, 128),
      childLayout_(alloc_, tree.nodes().size(),
                   (tree.order() * 4 + 127) / 128 * 128, 128),
      leafLayout_(alloc_, tree.nodes().size(),
                  ((tree.order() - 1) * 8 + 127) / 128 * 128, 128)
{
    queryBase_ = alloc_.allocate(1u << 20, 128);
    resultBase_ = alloc_.allocate(1u << 20, 128);
}

BtreeEmit
BtreeKernel::emit(const std::vector<std::uint32_t> &keys) const
{
    // Rodinia's findK assigns a thread block per query and scans each
    // node's separators with all threads in parallel; we model the
    // dominant warp: one warp per query, lanes striding the separator
    // array. Each internal-node scan is one semantic KeyCompareBatch;
    // the lowering picks the load+compare loop or KEY_COMPARE.
    BtreeEmit out;
    out.results.resize(keys.size());
    const auto &nodes = tree_.nodes();
    out.sem.warps.reserve(keys.size());

    for (std::size_t q = 0; q < keys.size(); ++q) {
        out.sem.warps.emplace_back();
        SemBuilder sb(out.sem.warps.back());
        const std::uint32_t key = keys[q];

        // Kernel prologue: load the query key, compute node offsets,
        // initialize the output record (non-offloadable overhead).
        sb.loadPattern(queryBase_ + q * 4, 0, 4, 1u);
        sb.alu(12);
        sb.shared(6);

        std::int32_t cur = tree_.root();
        while (!nodes[static_cast<std::size_t>(cur)].leaf) {
            const BTreeNode &node = nodes[static_cast<std::size_t>(cur)];
            const auto nkeys = static_cast<unsigned>(node.keys.size());
            out.keyCompares += nkeys;

            sb.keyCompareScan(
                sepLayout_.at(static_cast<std::uint64_t>(cur)), nkeys);

            // Fetch the chosen child pointer.
            const unsigned slot = BTree::childSlot(node, key);
            sb.loadPattern(childLayout_.at(
                               static_cast<std::uint64_t>(cur)) +
                               slot * 4ull,
                           0, 4, 1u);
            sb.alu(2);
            cur = node.children[slot];
        }

        // Leaf probe: parallel scan over keys, then the value fetch.
        // Identical in both variants (not offloaded).
        const BTreeNode &leaf = nodes[static_cast<std::size_t>(cur)];
        const auto nkeys = static_cast<unsigned>(leaf.keys.size());
        const std::uint64_t la =
            leafLayout_.at(static_cast<std::uint64_t>(cur));
        const unsigned chunks =
            std::max(1u, (nkeys + kWarpSize - 1) / kWarpSize);
        std::vector<VirtToken> toks;
        for (unsigned c = 0; c < chunks; ++c) {
            toks.push_back(
                sb.loadPattern(la + c * kWarpSize * 4ull, 4, 4));
            sb.alu(2);
        }
        sb.aluConsuming(6, kFullMask, toks);
        sb.loadPattern(la + 4096, 0, 4, 1u); // matched value
        // Output record assembly (Rodinia writes back per block).
        sb.alu(8);
        sb.shared(4);
        sb.storePattern(resultBase_ + q * 4, 0, 4, 1u);

        const auto it =
            std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
        if (it != leaf.keys.end() && *it == key) {
            out.results[q] = leaf.values[static_cast<std::size_t>(
                it - leaf.keys.begin())];
        }
    }
    return out;
}

BtreeRun
BtreeKernel::run(const std::vector<std::uint32_t> &keys,
                 KernelVariant variant, const DatapathConfig &dp) const
{
    BtreeEmit e = emit(keys);
    BtreeRun out;
    out.trace = lowerTrace(e.sem, loweringFor(variant, dp));
    out.results = std::move(e.results);
    out.keyCompares = e.keyCompares;
    return out;
}

} // namespace hsu
