/**
 * @file
 * B+tree lookup kernel (Rodinia-style, thread per query).
 *
 * Each thread walks its key from the root to a leaf. At internal nodes
 * the baseline linearly scans separator keys (the Rodinia kernel's
 * `while (key > node->keys[i]) i++` loop); the HSU variant issues
 * KEY_COMPARE instructions covering 36 separators each and derives the
 * child slot from the returned bit vector's popcount. Leaf probing is
 * identical in both variants (not offloaded).
 */

#ifndef HSU_SEARCH_BTREE_KERNEL_HH
#define HSU_SEARCH_BTREE_KERNEL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "search/ggnn.hh" // KernelVariant
#include "sim/trace.hh"
#include "structures/btree.hh"

namespace hsu
{

/** Emission artifacts: functional results + the semantic trace. */
struct BtreeEmit
{
    SemKernelTrace sem;
    std::vector<std::optional<std::uint32_t>> results;
    std::uint64_t keyCompares = 0; //!< separator comparisons executed
};

/** Run artifacts. */
struct BtreeRun
{
    KernelTrace trace;
    std::vector<std::optional<std::uint32_t>> results;
    std::uint64_t keyCompares = 0; //!< separator comparisons executed
};

/** The lookup kernel bound to a prebuilt B+tree. */
class BtreeKernel
{
  public:
    explicit BtreeKernel(const BTree &tree);

    /** Look up all @p keys (32 per warp) and emit semantic traces. */
    BtreeEmit emit(const std::vector<std::uint32_t> &keys) const;

    /** emit() + lowerTrace() convenience (legacy two-point API). */
    BtreeRun run(const std::vector<std::uint32_t> &keys,
                 KernelVariant variant,
                 const DatapathConfig &dp = DatapathConfig{}) const;

  private:
    const BTree &tree_;
    AddressAllocator alloc_;
    RecordArrayLayout sepLayout_;   //!< per-node separator arrays
    RecordArrayLayout childLayout_; //!< per-node child-pointer arrays
    RecordArrayLayout leafLayout_;  //!< per-node key+value arrays
    std::uint64_t queryBase_ = 0;
    std::uint64_t resultBase_ = 0;
};

} // namespace hsu

#endif // HSU_SEARCH_BTREE_KERNEL_HH
