/**
 * @file
 * The baseline RT unit's graphics programming model (Fig 3 / §III-A).
 *
 * The HSU is ISA-compatible with the graphics ray-tracing interface,
 * so the library also exposes the classic pipeline: user-defined
 * ray-generation, intersection, any-hit, closest-hit, and miss
 * programs wrapped around hardware BVH traversal. This mirrors the
 * Optix/Vulkan callback structure the paper contrasts against its
 * compute interface — useful both for graphics workloads and for the
 * "reformulation era" software techniques (RTNN-style) the paper cites.
 */

#ifndef HSU_SEARCH_PIPELINE_HH
#define HSU_SEARCH_PIPELINE_HH

#include <functional>

#include "hsu/functional.hh"
#include "structures/lbvh.hh"

namespace hsu
{

/** Any-hit program verdict for a candidate intersection. */
enum class AnyHitDecision : std::uint8_t
{
    Accept,    //!< keep the hit (still continue for a closer one)
    Ignore,    //!< reject this intersection, keep traversing
    Terminate, //!< accept and stop traversal (e.g. shadow rays)
};

/** Traversal statistics for one trace() launch. */
struct PipelineStats
{
    std::uint64_t rays = 0;
    std::uint64_t boxNodesVisited = 0;
    std::uint64_t primitiveTests = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/**
 * The fixed-function pipeline of Fig 3 with user program hooks.
 *
 * The geometry is a BVH4 over triangle primitives. If no intersection
 * program is set, the hardware watertight ray-triangle test runs (the
 * IS program is optional in the real pipeline too).
 */
class RayPipeline
{
  public:
    /** RG: produce the i-th ray of the launch. */
    using RayGenFn = std::function<Ray(unsigned ray_index)>;
    /** IS: custom primitive test (e.g. spheres); returns a TriHit-
     *  shaped result with `hit`, `tNum`, `tDenom` filled in. */
    using IntersectionFn =
        std::function<TriHit(const PreparedRay &, std::uint32_t prim)>;
    /** AH: filter every found intersection. */
    using AnyHitFn =
        std::function<AnyHitDecision(unsigned ray_index, const TriHit &)>;
    /** CH: invoked once per ray with the final closest hit. */
    using ClosestHitFn =
        std::function<void(unsigned ray_index, const TriHit &)>;
    /** Miss: invoked when a ray hits nothing. */
    using MissFn = std::function<void(unsigned ray_index)>;

    /** Bind the scene. Both references must outlive the pipeline. */
    RayPipeline(const Bvh4 &bvh, const std::vector<Triangle> &tris);

    RayPipeline &onRayGen(RayGenFn f);
    RayPipeline &onIntersection(IntersectionFn f);
    RayPipeline &onAnyHit(AnyHitFn f);
    RayPipeline &onClosestHit(ClosestHitFn f);
    RayPipeline &onMiss(MissFn f);

    /**
     * Launch @p num_rays rays through the pipeline.
     * @pre a ray-generation program is bound.
     */
    PipelineStats trace(unsigned num_rays) const;

    /** Trace one explicit ray (bypasses RG). @return the closest hit. */
    TriHit traceRay(const Ray &ray, unsigned ray_index = 0,
                    PipelineStats *stats = nullptr) const;

  private:
    const Bvh4 &bvh_;
    const std::vector<Triangle> &tris_;
    RayGenFn rayGen_;
    IntersectionFn intersection_;
    AnyHitFn anyHit_;
    ClosestHitFn closestHit_;
    MissFn miss_;
};

} // namespace hsu

#endif // HSU_SEARCH_PIPELINE_HH
