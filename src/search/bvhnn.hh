/**
 * @file
 * BVH-NN: RTNN-style nearest-neighbor search over a binary LBVH.
 *
 * Following the paper's implementation (Section V-A): leaf AABBs are
 * centered on each data point with half-width equal to the search
 * radius, the BVH is a Karras LBVH over Morton-sorted points, and each
 * CUDA thread traverses the tree for one query with a per-thread stack
 * in shared memory. No query pre-processing / ray-coherence sorting is
 * performed. The binary tree means each RAY_INTERSECT only exercises
 * two of the four box-test lanes (Section VI-E).
 *
 * Warps pack 32 independent queries; the emitter advances all lanes in
 * lockstep, so divergence appears as shrinking active masks — exactly
 * the behaviour the HSU's single-lane pipeline tolerates.
 */

#ifndef HSU_SEARCH_BVHNN_HH
#define HSU_SEARCH_BVHNN_HH

#include <cstdint>
#include <vector>

#include "search/ggnn.hh" // KernelVariant
#include "sim/trace.hh"
#include "structures/lbvh.hh"
#include "structures/pointset.hh"

namespace hsu
{

/** BVH-NN parameters. */
struct BvhnnConfig
{
    float radius = 0.05f; //!< fixed search radius (leaf half-width)
    /**
     * Traverse a 4-wide BVH instead of the paper's binary tree. The
     * paper's implementation "used a binary BVH tree, thus only two
     * child node boxes were traversed per thread at a time, and the
     * application did not fully utilize the ray-box test hardware. A
     * BVH4 tree would likely have better performance" (Section VI-E) —
     * this flag tests that hypothesis (see bench/ablation_bvh4).
     */
    bool useBvh4 = false;
};

/** One query's result: nearest point within the radius, if any. */
struct RadiusHit
{
    std::int32_t index = -1; //!< -1 when nothing within the radius
    float dist2 = 0.0f;
};

/** Emission artifacts: functional results + the semantic trace. */
struct BvhnnEmit
{
    SemKernelTrace sem;
    std::vector<RadiusHit> results;
    std::uint64_t boxTests = 0;
    std::uint64_t distanceTests = 0;
};

/** Run artifacts. */
struct BvhnnRun
{
    KernelTrace trace;
    std::vector<RadiusHit> results;
    std::uint64_t boxTests = 0;
    std::uint64_t distanceTests = 0;
};

/** The BVH-NN kernel bound to a prebuilt LBVH over a point set. */
class BvhnnKernel
{
  public:
    BvhnnKernel(const PointSet &points, const Lbvh &bvh,
                BvhnnConfig cfg);

    /** Run all queries (32 per warp) and emit semantic traces
     *  (binary or 4-wide per cfg.useBvh4). */
    BvhnnEmit emit(const PointSet &queries) const;

    /** emit() + lowerTrace() convenience (legacy two-point API). */
    BvhnnRun run(const PointSet &queries, KernelVariant variant,
                 const DatapathConfig &dp = DatapathConfig{}) const;

  private:
    /** Traversal over the 4-wide collapsed BVH (ablation mode). */
    BvhnnEmit emitBvh4(const PointSet &queries) const;

    const PointSet &points_;
    const Lbvh &bvh_;
    BvhnnConfig cfg_;
    Bvh4 bvh4_; //!< collapsed form (built only when cfg_.useBvh4)
    /** Morton-sorted device position of each primitive. */
    std::vector<std::uint32_t> primPos_;
    AddressAllocator alloc_;
    PointArrayLayout pointsLayout_;
    RecordArrayLayout nodeLayout_; //!< 64B binary box nodes
    PointArrayLayout queryLayout_;
    std::uint64_t resultBase_ = 0;
};

} // namespace hsu

#endif // HSU_SEARCH_BVHNN_HH
