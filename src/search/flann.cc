#include "search/flann.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace hsu
{

namespace
{

/** Per-lane traversal state: DFS stack of (node, lower bound). */
struct Lane
{
    struct Frame
    {
        std::int32_t node;
        float bound;
    };
    std::vector<Frame> stack;
    Neighbor best{0, std::numeric_limits<float>::infinity()};
    const float *query = nullptr;
    bool hasQuery = false;
};

} // namespace

FlannKernel::FlannKernel(const KdTree &tree)
    : tree_(tree), pointsLayout_(alloc_, tree.points()),
      nodeLayout_(alloc_, tree.nodes().size(), 16, 16),
      queryLayout_(alloc_, 65536, tree.points().dim())
{
    resultBase_ = alloc_.allocate(65536ull * 8, 128);
}

FlannEmit
FlannKernel::emit(const PointSet &queries) const
{
    const PointSet &pts = tree_.points();
    const unsigned dim = pts.dim();
    hsu_assert(queries.dim() == dim, "query dimensionality mismatch");

    FlannEmit out;
    out.results.resize(queries.size());
    const auto &nodes = tree_.nodes();
    const auto &pindex = tree_.pointIndex();

    const std::size_t num_warps =
        (queries.size() + kWarpSize - 1) / kWarpSize;
    out.sem.warps.reserve(num_warps);

    for (std::size_t w = 0; w < num_warps; ++w) {
        out.sem.warps.emplace_back();
        SemBuilder sb(out.sem.warps.back());

        Lane lanes[kWarpSize];
        std::uint32_t alive = 0;
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::size_t q = w * kWarpSize + l;
            if (q >= queries.size())
                continue;
            lanes[l].query = queries[q];
            lanes[l].hasQuery = true;
            if (!nodes.empty())
                lanes[l].stack.push_back({tree_.root(), 0.0f});
            alive |= 1u << l;
        }

        // Load query points (float4-packed for 3-D).
        {
            std::uint64_t addrs[kWarpSize] = {};
            for (unsigned l = 0; l < kWarpSize; ++l) {
                const std::size_t q = w * kWarpSize + l;
                if (q < queries.size())
                    addrs[l] = queryLayout_.pointAddr(q);
            }
            sb.loadGather(addrs, dim * 4, alive);
            sb.shared(2, alive); // stack init
        }

        for (;;) {
            std::uint32_t m_int = 0, m_leaf = 0;
            std::int32_t cur[kWarpSize];
            for (unsigned l = 0; l < kWarpSize; ++l) {
                Lane &lane = lanes[l];
                // Pop until a frame survives the bound check (each
                // discarded frame still costs the warp a masked step,
                // but we fold that into the pop bookkeeping below).
                while (!lane.stack.empty() &&
                       lane.stack.back().bound >= lane.best.dist2) {
                    lane.stack.pop_back();
                }
                if (lane.stack.empty())
                    continue;
                cur[l] = lane.stack.back().node;
                lane.stack.pop_back();
                if (nodes[static_cast<std::size_t>(cur[l])].isLeaf())
                    m_leaf |= 1u << l;
                else
                    m_int |= 1u << l;
            }
            const std::uint32_t m_any = m_int | m_leaf;
            if (!m_any)
                break;

            // Stack pop + bound check.
            sb.shared(1, m_any);
            sb.alu(2, m_any);

            if (m_int) {
                // --- Internal: load split plane, scalar compare ------
                std::uint64_t addrs[kWarpSize] = {};
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (m_int & (1u << l)) {
                        addrs[l] = nodeLayout_.at(
                            static_cast<std::uint64_t>(cur[l]));
                    }
                }
                // The split test is NOT offloadable: single scalar
                // subtract + compare (Section VI-F), so it stays a
                // pass-through load, never a DistanceBatch.
                const VirtToken tok = sb.loadGather(addrs, 16, m_int);
                // Compare + select near/far + bound computation.
                sb.alu(6, m_int, {tok});
                sb.shared(3, m_int); // push far child

                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (!(m_int & (1u << l)))
                        continue;
                    Lane &lane = lanes[l];
                    const KdNode &node =
                        nodes[static_cast<std::size_t>(cur[l])];
                    const float diff =
                        lane.query[node.axis] - node.split;
                    const std::int32_t near =
                        diff < 0 ? node.left : node.right;
                    const std::int32_t far =
                        diff < 0 ? node.right : node.left;
                    const float far_bound = diff * diff;
                    // Push far first so near pops first.
                    if (far_bound < lane.best.dist2)
                        lane.stack.push_back({far, far_bound});
                    lane.stack.push_back({near, 0.0f});
                }
            }

            if (m_leaf) {
                // --- Leaf: distance test every stored point ----------
                // Leaves have up to leafSize points; lane j processes
                // its leaf's point j in sub-step j (lanes with shorter
                // leaves drop out of the mask).
                unsigned max_count = 0;
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (m_leaf & (1u << l)) {
                        max_count = std::max(
                            max_count,
                            nodes[static_cast<std::size_t>(cur[l])]
                                .count);
                    }
                }
                // The per-point tests are mutually independent, so the
                // compiler software-pipelines them: issue all tests,
                // then fold the results into the running best.
                std::vector<VirtToken> pending;
                std::uint32_t last_mask = 0;
                for (unsigned j = 0; j < max_count; ++j) {
                    std::uint32_t m_pt = 0;
                    std::uint64_t addrs[kWarpSize] = {};
                    for (unsigned l = 0; l < kWarpSize; ++l) {
                        if (!(m_leaf & (1u << l)))
                            continue;
                        const KdNode &leaf =
                            nodes[static_cast<std::size_t>(cur[l])];
                        if (j >= leaf.count)
                            continue;
                        m_pt |= 1u << l;
                        // Leaf buckets store their points contiguously
                        // (FLANN reorders the point array), so address
                        // by position, not original id.
                        addrs[l] = pointsLayout_.pointAddr(
                            leaf.first + j);
                    }
                    if (!m_pt)
                        break;
                    last_mask = m_pt;
                    pending.push_back(sb.distanceLanes(
                        dim, addrs, m_pt, flannDistanceShape(dim)));

                    for (unsigned l = 0; l < kWarpSize; ++l) {
                        if (!(m_pt & (1u << l)))
                            continue;
                        Lane &lane = lanes[l];
                        const KdNode &leaf =
                            nodes[static_cast<std::size_t>(cur[l])];
                        const std::uint32_t pt = pindex[leaf.first + j];
                        const float d2 =
                            pointDist2(lane.query, pts[pt], dim);
                        ++out.distanceTests;
                        if (d2 < lane.best.dist2 ||
                            (d2 == lane.best.dist2 &&
                             pt < lane.best.index)) {
                            lane.best = {pt, d2};
                        }
                    }
                }
                // Fold every test's result into the running best
                // (not offloaded).
                if (last_mask != 0)
                    sb.aluConsuming(2 * max_count, m_leaf, pending);
            }
            out.nodeSteps += 1;
        }

        sb.storePattern(resultBase_ + w * kWarpSize * 8, 8, 8, alive);
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::size_t q = w * kWarpSize + l;
            if (q < queries.size())
                out.results[q] = lanes[l].best;
        }
    }
    return out;
}

FlannRun
FlannKernel::run(const PointSet &queries, KernelVariant variant,
                 const DatapathConfig &dp) const
{
    FlannEmit e = emit(queries);
    FlannRun out;
    out.trace = lowerTrace(e.sem, loweringFor(variant, dp));
    out.results = std::move(e.results);
    out.nodeSteps = e.nodeSteps;
    out.distanceTests = e.distanceTests;
    return out;
}

} // namespace hsu
