/**
 * @file
 * Experiment glue: dataset -> index -> kernel -> baseline + HSU
 * simulations. Every bench binary drives its figure through these
 * helpers; indexes are memoized per dataset so sweeps don't rebuild.
 */

#ifndef HSU_SEARCH_RUNNER_HH
#define HSU_SEARCH_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "search/ggnn.hh"
#include "sim/config.hh"
#include "sim/gpu.hh"
#include "sim/lower.hh"
#include "sim/trace_stats.hh"
#include "workloads/datasets.hh"

namespace hsu
{

/** The four evaluated search algorithms (Section V-A). */
enum class Algo : std::uint8_t
{
    Ggnn,  //!< hierarchical graph ANN
    Flann, //!< k-d tree ANN (3-D)
    Bvhnn, //!< LBVH radius nearest neighbor (3-D)
    Btree, //!< B+tree key-value lookups
};

std::string toString(Algo algo);

/** Query-count knobs (scaled for simulator runtimes). */
struct RunnerOptions
{
    unsigned ggnnQueries = 128;
    unsigned pointQueries = 4096;
    unsigned keyQueries = 8192;

    bool
    operator==(const RunnerOptions &o) const
    {
        return ggnnQueries == o.ggnnQueries &&
               pointQueries == o.pointQueries &&
               keyQueries == o.keyQueries;
    }
};

/**
 * Default options for one dataset, scaled so trace sizes stay bounded
 * (very high-dimensional datasets emit far more ops per query), and
 * shrunk further by @p scale (bench binaries honor HSU_QUICK=1 via
 * quickScale()).
 */
RunnerOptions optionsFor(const DatasetInfo &info, double scale = 1.0);

/** 0.25 when the HSU_QUICK environment variable is set, else 1.0. */
double quickScale();

/** Results of one dataset x algorithm experiment. */
struct WorkloadResult
{
    Algo algo;
    DatasetId dataset;
    std::string label;    //!< figure label ("D1B", "F-BUN", "B-BUN"...)
    RunResult base;       //!< non-RT baseline GPU
    RunResult hsu;        //!< HSU-enabled GPU
    StatGroup baseStats;  //!< full counter dumps for memory figures
    StatGroup hsuStats;

    /** Fig 9 metric: baseline cycles / HSU cycles. */
    double
    speedup() const
    {
        return hsu.cycles ? static_cast<double>(base.cycles) /
                                static_cast<double>(hsu.cycles)
                          : 0.0;
    }
};

/**
 * Run one (algorithm, dataset) experiment under @p gpu (an HSU-enabled
 * config; the baseline run disables the RT unit on a copy).
 */
WorkloadResult runWorkload(Algo algo, DatasetId dataset,
                           const GpuConfig &gpu,
                           const RunnerOptions &opts = RunnerOptions{});

/**
 * Emit the semantic (pre-lowering) trace of one (algorithm, dataset)
 * experiment — the IR every lowering variant of the workload shares.
 * Always performs the (expensive) functional kernel run; most callers
 * want emitSemanticShared() instead, which memoizes the result.
 */
SemKernelTrace emitSemantic(Algo algo, DatasetId dataset,
                            const RunnerOptions &opts);

/**
 * Memoized emission: the semantic trace of (algo, dataset, opts) as an
 * immutable shared artifact. The first request (from any thread) runs
 * the functional kernel once; every later request — the other side of
 * a base/HSU pair, every sweep point, every HSU_JOBS worker — returns
 * a pointer to the same trace. Sharing is by weak reference plus a
 * small MRU strong list, so peak RSS is bounded by the active working
 * set rather than by every workload the process ever touched (see
 * DESIGN.md "Trace lifetime and sharing" for the memory model).
 *
 * Emission is a pure function of its key, so the cached artifact is
 * bit-identical to a fresh emitSemantic() call.
 */
std::shared_ptr<const SemKernelTrace>
emitSemanticShared(Algo algo, DatasetId dataset,
                   const RunnerOptions &opts);

/**
 * Simulate one (algorithm, dataset) experiment under an explicit
 * lowering. The GPU config is used as given (callers enable the RT
 * unit when the lowering emits CISC instructions); runBaseOnly /
 * runHsuOnly are the two-point conveniences over this.
 */
RunResult runLowered(Algo algo, DatasetId dataset, const GpuConfig &gpu,
                     const RunnerOptions &opts, const Lowering &lowering,
                     StatGroup &stats);

/**
 * Run only the HSU-side simulation (sweeps that hold the baseline
 * fixed, e.g. Fig 10 / Fig 11, reuse the memoized baseline cycles from
 * runWorkload).
 */
RunResult runHsuOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
                     const RunnerOptions &opts, StatGroup &stats);

/**
 * Run only the baseline-side simulation.
 */
RunResult runBaseOnly(Algo algo, DatasetId dataset, const GpuConfig &gpu,
                      const RunnerOptions &opts, StatGroup &stats);

/**
 * One independent simulation for the parallel executor: a full
 * workload (baseline + HSU), a single side for sweeps that vary the
 * GPU config while holding the other side fixed, or a caller-emitted
 * trace (ablations over custom kernels/trees).
 */
struct SimJob
{
    enum class Kind : std::uint8_t
    {
        Workload, //!< baseline + HSU pair (fills SimJobResult::workload)
        BaseOnly, //!< fills SimJobResult::run/stats
        HsuOnly,  //!< fills SimJobResult::run/stats
        Trace,    //!< simulate `trace` under `gpu` (run/stats)
        SemLower, //!< lower `sem` with `lowering`, then simulate
    };

    Kind kind = Kind::Workload;
    Algo algo = Algo::Ggnn;
    DatasetId dataset{};
    GpuConfig gpu;
    RunnerOptions opts;
    /** Kind::Trace only: the prebuilt trace to simulate (shared so a
     *  bench can submit the same emission under several configs). */
    std::shared_ptr<const KernelTrace> trace;
    /** Kind::SemLower only: a pre-emitted semantic trace shared across
     *  every job of a sweep (emit once, lower many). The lowered trace
     *  is created and destroyed inside the worker, so N in-flight jobs
     *  share ONE semantic trace instead of holding N lowered copies. */
    std::shared_ptr<const SemKernelTrace> sem;
    /** Kind::SemLower only: the lowering applied to `sem`. */
    Lowering lowering;
};

/** Result slot for one SimJob (which members are set depends on kind). */
struct SimJobResult
{
    WorkloadResult workload; //!< Kind::Workload
    RunResult run;           //!< Kind::BaseOnly/HsuOnly/Trace/SemLower
    StatGroup stats;         //!< Kind::BaseOnly/HsuOnly/Trace/SemLower
    /** Kind::SemLower only: instruction-mix stats of the lowered trace
     *  (the trace itself never leaves the worker). */
    TraceStats traceStats;
};

/**
 * Run independent simulation jobs across a worker pool and return
 * their results in submission order. Results are bit-identical to
 * running each job serially: index assets are built once per dataset
 * under a lock, query generation is a pure function of the dataset
 * seed, and each simulation owns its StatGroup.
 *
 * @param num_threads worker count; 0 -> HSU_JOBS env var, else
 *                    hardware concurrency
 */
std::vector<SimJobResult> runJobsParallel(std::vector<SimJob> jobs,
                                          unsigned num_threads = 0);

/**
 * Convenience fan-out for figure fleets: run each (algo, dataset)
 * workload with options optionsFor(dataset, scale), in parallel,
 * returning results in input order.
 */
std::vector<WorkloadResult>
runWorkloadsParallel(const std::vector<std::pair<Algo, DatasetId>> &work,
                     const GpuConfig &gpu, double scale = 1.0,
                     unsigned num_threads = 0);

/**
 * Kernel knobs the serving layer (src/serve) may degrade under load.
 * Only GGNN has quality knobs; the point/key kernels are exact and can
 * only shed.
 */
struct ServeKnobs
{
    unsigned ggnnEf = 32; //!< GGNN layer-0 beam width
    unsigned ggnnK = 10;  //!< GGNN result count

    bool
    operator==(const ServeKnobs &o) const
    {
        return ggnnEf == o.ggnnEf && ggnnK == o.ggnnK;
    }
};

/**
 * Emit the trace of one dynamic batch for the serving subsystem.
 *
 * Requests reference queries by id into a deterministic per-dataset
 * serving pool of @p pool_size queries (generated once and memoized, a
 * pure function of the dataset seed). The batch runs through the same
 * kernel emitters as the offline benches — one warp per GGNN query, 32
 * point/key queries per warp — so batch cost is exactly what the
 * closed-loop experiments measure at that batch size.
 *
 * The batch goes through the same emit + lowerTrace() split as the
 * offline benches (the legacy kernel.run(variant) wrapper is gone from
 * this path) and comes back as an immutable shared trace that can be
 * handed to simulateKernel() without copying.
 *
 * Ordering contract: queries are emitted in exactly the order of
 * @p query_ids — lane/warp assignment follows position, not id. The
 * serve scheduling pipeline's batch policies (serve/policy) rely on
 * this to turn batch composition into memory coherence: a Morton- or
 * key-sorted id vector puts neighboring queries in the same warp.
 *
 * @param query_ids ids in [0, pool_size); one request each
 * @param knobs     (possibly degraded) kernel quality knobs
 */
std::shared_ptr<const KernelTrace>
emitBatchTrace(Algo algo, DatasetId dataset, KernelVariant variant,
               const DatapathConfig &dp,
               const std::vector<std::uint32_t> &query_ids,
               std::size_t pool_size,
               const ServeKnobs &knobs = ServeKnobs{});

/**
 * Read-only access to the deterministic serving query pool that
 * emitBatchTrace() resolves request query-ids against — the sharded
 * serving layer routes and answers against the same pool, so router
 * pruning, shard answers, and batch emission all see identical query
 * payloads. Built once per (dataset, pool size) and cached.
 * @pre the dataset kind is HighDim/Point3d.
 */
const PointSet &serveQueryPoints(DatasetId dataset,
                                 std::size_t pool_size);

/** Keys-dataset flavor of serveQueryPoints(). @pre kind is Keys. */
const std::vector<std::uint32_t> &
serveQueryKeys(DatasetId dataset, std::size_t pool_size);

/**
 * Coherence sort keys for the serving query pool, one 63-bit code per
 * query id. Point and high-dimensional datasets get the Morton code of
 * the query's leading three coordinates over the pool's tight AABB
 * (geom/morton mortonCodes63); key datasets get the lookup key itself,
 * zero-extended. Sorting a dynamic batch by these keys puts spatially
 * (or key-range) adjacent queries next to each other, so their warps
 * traverse the same index nodes — the serve-layer coherent batch
 * policy's whole effect rides on emitBatchTrace() emitting queries in
 * exactly the order given (which it does: query_ids order is emission
 * order). Built once per (dataset, pool size) and cached.
 */
const std::vector<std::uint64_t> &
serveQueryCoherenceKeys(DatasetId dataset, std::size_t pool_size);

/** Datasets an algorithm is evaluated on (Table II usage). */
std::vector<DatasetId> datasetsForAlgo(Algo algo);

/** Figure label for (algo, dataset): FLANN/BVH-NN 3-D datasets carry
 *  the paper's "F-"/"B-" prefixes. */
std::string workloadLabel(Algo algo, const DatasetInfo &info);

/** Pick a BVH-NN/search radius for a 3-D dataset: twice the median
 *  nearest-neighbor spacing of a deterministic sample. The exact
 *  nearest neighbor of each sampled point is found with a uniform-grid
 *  ring scan (O(samples x density) instead of O(samples x N)); the
 *  result is bit-identical to the brute-force scan it replaced. */
float pickRadius(const PointSet &points, std::uint64_t seed = 42);

} // namespace hsu

#endif // HSU_SEARCH_RUNNER_HH
