/**
 * @file
 * FLANN-style k-d tree nearest-neighbor kernel (3-D, thread per query).
 *
 * The paper's FLANN workload uses the library's CUDA path: a k-d tree
 * over 3-D points, one thread per query, iterative traversal with a
 * per-thread stack. Internal-node descent is a single scalar
 * compare-and-branch ("poor computational density", Section VI-F) and
 * is deliberately NOT offloaded to the HSU; only the leaf distance
 * evaluations are.
 *
 * Warps pack 32 queries advanced in lockstep with divergence masks.
 */

#ifndef HSU_SEARCH_FLANN_HH
#define HSU_SEARCH_FLANN_HH

#include <cstdint>
#include <vector>

#include "search/ggnn.hh" // KernelVariant
#include "sim/trace.hh"
#include "structures/kdtree.hh"

namespace hsu
{

/** FLANN kernel parameters. */
struct FlannConfig
{
    unsigned leafSize = 8; //!< tree leaf capacity (build-time)
};

/** Emission artifacts: functional results + the semantic trace. */
struct FlannEmit
{
    SemKernelTrace sem;
    std::vector<Neighbor> results; //!< exact 1-NN per query
    std::uint64_t nodeSteps = 0;
    std::uint64_t distanceTests = 0;
};

/** Run artifacts. */
struct FlannRun
{
    KernelTrace trace;
    std::vector<Neighbor> results; //!< exact 1-NN per query
    std::uint64_t nodeSteps = 0;
    std::uint64_t distanceTests = 0;
};

/** The FLANN kernel bound to a prebuilt k-d tree. */
class FlannKernel
{
  public:
    explicit FlannKernel(const KdTree &tree);

    /** Run all queries (32 per warp) and emit semantic traces. */
    FlannEmit emit(const PointSet &queries) const;

    /** emit() + lowerTrace() convenience (legacy two-point API). */
    FlannRun run(const PointSet &queries, KernelVariant variant,
                 const DatapathConfig &dp = DatapathConfig{}) const;

  private:
    const KdTree &tree_;
    AddressAllocator alloc_;
    PointArrayLayout pointsLayout_;
    RecordArrayLayout nodeLayout_; //!< 16B k-d nodes
    PointArrayLayout queryLayout_;
    std::uint64_t resultBase_ = 0;
};

} // namespace hsu

#endif // HSU_SEARCH_FLANN_HH
