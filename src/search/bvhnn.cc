#include "search/bvhnn.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

namespace
{

/** Per-lane traversal state. */
struct Lane
{
    std::vector<std::int32_t> stack;
    std::int32_t best = -1;
    float bestD2 = 0.0f;
    const float *query = nullptr;
    bool active = false;
};

} // namespace

BvhnnKernel::BvhnnKernel(const PointSet &points, const Lbvh &bvh,
                         BvhnnConfig cfg)
    : points_(points), bvh_(bvh), cfg_(cfg),
      primPos_(bvh.primitivePositions()),
      pointsLayout_(alloc_, points),
      nodeLayout_(alloc_, bvh.size(),
                  cfg.useBvh4 ? BoxNode4::kBytes : 64,
                  cfg.useBvh4 ? 128 : 64),
      queryLayout_(alloc_, 65536, 3)
{
    hsu_assert(points.dim() == 3, "BVH-NN operates on 3-D points");
    if (cfg_.useBvh4)
        bvh4_ = Bvh4::fromBinary(bvh);
    resultBase_ = alloc_.allocate(65536ull * 8, 128);
}

BvhnnEmit
BvhnnKernel::emit(const PointSet &queries) const
{
    if (cfg_.useBvh4)
        return emitBvh4(queries);
    BvhnnEmit out;
    out.results.resize(queries.size());
    const float r2 = cfg_.radius * cfg_.radius;
    const auto &nodes = bvh_.nodes();

    const std::size_t num_warps =
        (queries.size() + kWarpSize - 1) / kWarpSize;
    out.sem.warps.reserve(num_warps);

    for (std::size_t w = 0; w < num_warps; ++w) {
        out.sem.warps.emplace_back();
        SemBuilder sb(out.sem.warps.back());

        Lane lanes[kWarpSize];
        std::uint32_t alive = 0;
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::size_t q = w * kWarpSize + l;
            if (q >= queries.size())
                continue;
            lanes[l].query = queries[q];
            lanes[l].best = -1;
            lanes[l].bestD2 = r2;
            lanes[l].active = true;
            if (bvh_.size() > 0)
                lanes[l].stack.push_back(bvh_.root());
            alive |= 1u << l;
        }

        // Load each lane's query point (float4-packed: one load).
        {
            std::uint64_t addrs[kWarpSize] = {};
            for (unsigned l = 0; l < kWarpSize; ++l) {
                const std::size_t q = w * kWarpSize + l;
                if (q < queries.size())
                    addrs[l] = queryLayout_.pointAddr(q);
            }
            sb.loadGather(addrs, 12, alive);
            sb.alu(4, alive); // prepare ray constants / bounds
            sb.shared(2, alive); // initialize the traversal stack
        }

        // Lockstep traversal: every iteration, active lanes pop one
        // node; internal and leaf lanes serialize as two sub-steps
        // (SIMT divergence).
        for (;;) {
            std::uint32_t m_int = 0, m_leaf = 0;
            std::int32_t popped[kWarpSize];
            for (unsigned l = 0; l < kWarpSize; ++l) {
                Lane &lane = lanes[l];
                if (!lane.active || lane.stack.empty())
                    continue;
                popped[l] = lane.stack.back();
                lane.stack.pop_back();
                if (nodes[static_cast<std::size_t>(popped[l])].isLeaf())
                    m_leaf |= 1u << l;
                else
                    m_int |= 1u << l;
            }
            const std::uint32_t m_any = m_int | m_leaf;
            if (!m_any)
                break;

            // Stack pop bookkeeping (shared memory).
            sb.shared(1, m_any);

            if (m_int) {
                // --- Internal step: fetch node, two slab tests -------
                std::uint64_t addrs[kWarpSize] = {};
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (m_int & (1u << l)) {
                        addrs[l] = nodeLayout_.at(
                            static_cast<std::uint64_t>(popped[l]));
                    }
                }
                const VirtToken tok =
                    sb.boxTest(addrs, m_int, bvhBoxShape());
                // Process results + push surviving children (not
                // offloaded: "processes the result ... to maintain a
                // per-thread traversal stack", Section VI-C).
                sb.alu(5, m_int, {tok});
                sb.shared(3, m_int);

                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (!(m_int & (1u << l)))
                        continue;
                    Lane &lane = lanes[l];
                    const LbvhNode &node =
                        nodes[static_cast<std::size_t>(popped[l])];
                    const Vec3 q{lane.query[0], lane.query[1],
                                 lane.query[2]};
                    // Visit near child last so it pops first.
                    const std::int32_t kids[2] = {node.left, node.right};
                    bool hit[2];
                    for (int c = 0; c < 2; ++c) {
                        const Aabb &b =
                            nodes[static_cast<std::size_t>(kids[c])]
                                .bounds;
                        // A point query hits a child iff it lies inside
                        // the (radius-inflated) child box.
                        hit[c] = b.contains(q);
                        out.boxTests++;
                    }
                    // Push right then left so the left child pops
                    // first (deterministic traversal order).
                    if (hit[1])
                        lane.stack.push_back(kids[1]);
                    if (hit[0])
                        lane.stack.push_back(kids[0]);
                }
            }

            if (m_leaf) {
                // --- Leaf step: fetch the point, distance test -------
                std::uint64_t addrs[kWarpSize] = {};
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (m_leaf & (1u << l)) {
                        const auto prim = static_cast<std::size_t>(
                            nodes[static_cast<std::size_t>(popped[l])]
                                .primitive);
                        // The device point array is Morton-sorted
                        // (RTNN), so address by sorted position.
                        addrs[l] =
                            pointsLayout_.pointAddr(primPos_[prim]);
                    }
                }
                const VirtToken tok = sb.distanceLanes(
                    3, addrs, m_leaf, bvhnnLeafShape());
                // Best-hit update.
                sb.alu(2, m_leaf, {tok});

                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (!(m_leaf & (1u << l)))
                        continue;
                    Lane &lane = lanes[l];
                    const auto prim =
                        nodes[static_cast<std::size_t>(popped[l])]
                            .primitive;
                    const float d2 = pointDist2(
                        lane.query,
                        points_[static_cast<std::size_t>(prim)], 3);
                    ++out.distanceTests;
                    if (d2 <= lane.bestD2 &&
                        (lane.best < 0 || d2 < lane.bestD2)) {
                        lane.bestD2 = d2;
                        lane.best = prim;
                    }
                }
            }
        }

        // Write results.
        std::uint32_t alive_now = alive;
        sb.storePattern(resultBase_ + w * kWarpSize * 8, 8, 8,
                        alive_now);
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::size_t q = w * kWarpSize + l;
            if (q >= queries.size())
                continue;
            out.results[q] =
                RadiusHit{lanes[l].best,
                          lanes[l].best >= 0 ? lanes[l].bestD2 : 0.0f};
        }
    }
    return out;
}

BvhnnEmit
BvhnnKernel::emitBvh4(const PointSet &queries) const
{
    // Same traversal as the binary path, but each RAY_INTERSECT
    // fetches a 128B 4-wide node and tests up to four children — the
    // configuration the paper conjectures would utilize the unit
    // better (Section VI-E).
    BvhnnEmit out;
    out.results.resize(queries.size());
    const float r2 = cfg_.radius * cfg_.radius;
    const auto &nodes = bvh4_.nodes();

    struct Lane4
    {
        std::vector<std::uint32_t> nodeStack; //!< inner node indices
        std::vector<std::uint32_t> leafQueue; //!< primitive indices
        std::int32_t best = -1;
        float bestD2 = 0.0f;
        const float *query = nullptr;
    };

    const std::size_t num_warps =
        (queries.size() + kWarpSize - 1) / kWarpSize;
    out.sem.warps.reserve(num_warps);

    for (std::size_t w = 0; w < num_warps; ++w) {
        out.sem.warps.emplace_back();
        SemBuilder sb(out.sem.warps.back());

        Lane4 lanes[kWarpSize];
        std::uint32_t alive = 0;
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::size_t q = w * kWarpSize + l;
            if (q >= queries.size())
                continue;
            lanes[l].query = queries[q];
            lanes[l].bestD2 = r2;
            if (!nodes.empty())
                lanes[l].nodeStack.push_back(bvh4_.root());
            alive |= 1u << l;
        }

        {
            std::uint64_t addrs[kWarpSize] = {};
            for (unsigned l = 0; l < kWarpSize; ++l) {
                const std::size_t q = w * kWarpSize + l;
                if (q < queries.size())
                    addrs[l] = queryLayout_.pointAddr(q);
            }
            sb.loadGather(addrs, 12, alive);
            sb.alu(4, alive);
            sb.shared(2, alive);
        }

        for (;;) {
            // Leaf sub-step first: drain one queued primitive per lane.
            std::uint32_t m_leaf = 0;
            std::uint64_t leaf_addrs[kWarpSize] = {};
            std::uint32_t leaf_prim[kWarpSize] = {};
            for (unsigned l = 0; l < kWarpSize; ++l) {
                Lane4 &lane = lanes[l];
                if (lane.leafQueue.empty())
                    continue;
                m_leaf |= 1u << l;
                leaf_prim[l] = lane.leafQueue.back();
                lane.leafQueue.pop_back();
                leaf_addrs[l] =
                    pointsLayout_.pointAddr(primPos_[leaf_prim[l]]);
            }
            if (m_leaf) {
                const VirtToken tok = sb.distanceLanes(
                    3, leaf_addrs, m_leaf, bvhnnLeafShape());
                sb.alu(2, m_leaf, {tok});
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (!(m_leaf & (1u << l)))
                        continue;
                    Lane4 &lane = lanes[l];
                    const float d2 = pointDist2(
                        lane.query, points_[leaf_prim[l]], 3);
                    ++out.distanceTests;
                    if (d2 <= lane.bestD2 &&
                        (lane.best < 0 || d2 < lane.bestD2)) {
                        lane.bestD2 = d2;
                        lane.best = static_cast<std::int32_t>(
                            leaf_prim[l]);
                    }
                }
            }

            // Inner sub-step: pop one 4-wide node per lane.
            std::uint32_t m_int = 0;
            std::uint64_t addrs[kWarpSize] = {};
            std::uint32_t popped[kWarpSize] = {};
            for (unsigned l = 0; l < kWarpSize; ++l) {
                Lane4 &lane = lanes[l];
                if (!lane.leafQueue.empty() || lane.nodeStack.empty())
                    continue;
                popped[l] = lane.nodeStack.back();
                lane.nodeStack.pop_back();
                m_int |= 1u << l;
                addrs[l] = nodeLayout_.at(popped[l]);
            }
            if (!m_int && !m_leaf)
                break;
            if (!m_int)
                continue;

            sb.shared(1, m_int);
            const VirtToken tok =
                sb.boxTest(addrs, m_int, bvh4BoxShape());
            sb.alu(5, m_int, {tok});
            sb.shared(3, m_int);

            for (unsigned l = 0; l < kWarpSize; ++l) {
                if (!(m_int & (1u << l)))
                    continue;
                Lane4 &lane = lanes[l];
                const BoxNode4 &node = nodes[popped[l]];
                const Vec3 q{lane.query[0], lane.query[1],
                             lane.query[2]};
                for (int c = 3; c >= 0; --c) {
                    const std::uint32_t ref =
                        node.child[static_cast<unsigned>(c)];
                    if (ref == kInvalidNode)
                        continue;
                    ++out.boxTests;
                    if (!node.bounds[static_cast<unsigned>(c)]
                             .contains(q)) {
                        continue;
                    }
                    if (childIsLeaf(ref))
                        lane.leafQueue.push_back(childIndex(ref));
                    else
                        lane.nodeStack.push_back(childIndex(ref));
                }
            }
        }

        sb.storePattern(resultBase_ + w * kWarpSize * 8, 8, 8, alive);
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::size_t q = w * kWarpSize + l;
            if (q >= queries.size())
                continue;
            out.results[q] =
                RadiusHit{lanes[l].best,
                          lanes[l].best >= 0 ? lanes[l].bestD2 : 0.0f};
        }
    }
    return out;
}

BvhnnRun
BvhnnKernel::run(const PointSet &queries, KernelVariant variant,
                 const DatapathConfig &dp) const
{
    BvhnnEmit e = emit(queries);
    BvhnnRun out;
    out.trace = lowerTrace(e.sem, loweringFor(variant, dp));
    out.results = std::move(e.results);
    out.boxTests = e.boxTests;
    out.distanceTests = e.distanceTests;
    return out;
}

} // namespace hsu
