/**
 * @file
 * Simulated device-memory layouts for the search structures.
 *
 * Kernels execute functionally over the native C++ structures, but the
 * traces they emit must reference the addresses the data would occupy
 * in GPU global memory. These helpers pin each array to a region of the
 * simulated address space.
 */

#ifndef HSU_SEARCH_LAYOUT_HH
#define HSU_SEARCH_LAYOUT_HH

#include <cstdint>

#include "sim/addrspace.hh"
#include "structures/pointset.hh"

namespace hsu
{

/**
 * A dense point array in device memory. Points are padded to a 64-byte
 * multiple so every multi-beat HSU operand fetch is line-aligned; the
 * same padded layout is used for baseline runs so the comparison is
 * fair.
 */
struct PointArrayLayout
{
    std::uint64_t base = 0;
    unsigned strideBytes = 0;

    PointArrayLayout() = default;

    PointArrayLayout(AddressAllocator &alloc, std::uint64_t count,
                     unsigned dim)
    {
        // float4 packing for small points (the standard GPU layout —
        // tight 12B float3 packing straddles lines on gathers);
        // high-dimensional points pad to a line multiple so every HSU
        // beat is line-aligned.
        strideBytes = dim <= 4 ? 16 : ((dim * 4) + 63) / 64 * 64;
        base = alloc.allocate(count * strideBytes, 128);
    }

    PointArrayLayout(AddressAllocator &alloc, const PointSet &points)
        : PointArrayLayout(alloc, points.size(), points.dim())
    {
    }

    /** Device address of point @p i. */
    std::uint64_t pointAddr(std::uint64_t i) const
    { return base + i * strideBytes; }
};

/** A plain array of fixed-size records (nodes, adjacency rows...). */
struct RecordArrayLayout
{
    std::uint64_t base = 0;
    unsigned strideBytes = 0;

    RecordArrayLayout() = default;

    RecordArrayLayout(AddressAllocator &alloc, std::uint64_t count,
                      unsigned record_bytes, unsigned align = 128)
        : strideBytes(record_bytes)
    {
        base = alloc.allocate(count * record_bytes, align);
    }

    /** Device address of record @p i. */
    std::uint64_t at(std::uint64_t i) const
    { return base + i * strideBytes; }
};

} // namespace hsu

#endif // HSU_SEARCH_LAYOUT_HH
