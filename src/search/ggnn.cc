#include "search/ggnn.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/logging.hh"

namespace hsu
{

namespace
{

/** Active mask with the low @p n lanes set. */
std::uint32_t
lowLanes(unsigned n)
{
    hsu_assert(n <= kWarpSize, "too many lanes: ", n);
    return n == kWarpSize ? kFullMask : ((1u << n) - 1u);
}

} // namespace

GgnnKernel::GgnnKernel(const HnswGraph &graph, GgnnConfig cfg)
    : graph_(graph), cfg_(cfg)
{
    const PointSet &pts = graph.points();
    pointsLayout_ = PointArrayLayout(alloc_, pts);
    adjLayout_.reserve(graph.numLayers());
    for (unsigned l = 0; l < graph.numLayers(); ++l) {
        adjLayout_.emplace_back(alloc_, pts.size(),
                                graph.layerDegree(l) * 4u, 64);
    }
    queryLayout_ = PointArrayLayout(alloc_, 65536, pts.dim());
    resultBase_ = alloc_.allocate(65536ull * cfg_.k * 8, 128);
}

/** Per-query emission context. */
struct GgnnKernel::EmitCtx
{
    TraceBuilder &tb;
    KernelVariant variant;
    const DatapathConfig &dp;
    const float *query;
    std::uint64_t queryIdx;
    std::uint64_t distanceTests = 0;
};

void
GgnnKernel::emitDistanceBatch(EmitCtx &ctx,
                              const std::vector<std::uint32_t> &cands,
                              std::uint32_t consume_token_mask,
                              std::vector<float> &dists_out) const
{
    const PointSet &pts = graph_.points();
    const unsigned dim = pts.dim();
    const Metric metric = graph_.metric();
    const unsigned m = static_cast<unsigned>(cands.size());
    hsu_assert(m >= 1 && m <= kWarpSize, "bad candidate batch size ", m);

    // Functional evaluation.
    dists_out.resize(m);
    for (unsigned i = 0; i < m; ++i) {
        dists_out[i] =
            metricDist(metric, ctx.query, pts[cands[i]], dim);
    }
    ctx.distanceTests += m;

    if (ctx.variant == KernelVariant::Hsu) {
        // One candidate per lane; one (multi-beat) HSU instruction.
        std::uint64_t addrs[kWarpSize] = {};
        for (unsigned i = 0; i < m; ++i)
            addrs[i] = pointsLayout_.pointAddr(cands[i]);
        const bool angular = metric == Metric::Angular;
        const HsuMode mode =
            angular ? HsuMode::Angular : HsuMode::Euclid;
        const unsigned beats = angular ? ctx.dp.angularBeats(dim)
                                       : ctx.dp.euclidBeats(dim);
        const std::uint8_t tok = ctx.tb.hsuOp(
            angular ? HsuOpcode::PointAngular : HsuOpcode::PointEuclid,
            mode, addrs, ctx.dp.bytesPerBeat(mode), beats, lowLanes(m),
            consume_token_mask);
        // Angular: the scalar rsqrt/divide runs on the SM (eq. 2).
        ctx.tb.alu(angular ? 4 : 1, lowLanes(m),
                   TraceBuilder::tokenMask(tok));
        return;
    }

    // Baseline: candidates processed one at a time, warp-cooperatively
    // (32 lanes stride the dimensions; coalesced loads + FMA blocks +
    // a log2(32)-step shuffle reduction). Instruction counts follow
    // the SASS the kernel actually executes — per 128B chunk: the
    // load, the (vectorized) subtract/FMA pair, address updates, and
    // loop predication; then the shuffle reduction and epilogue.
    const unsigned chunk_loads =
        std::max(1u, (dim * 4 + 127) / 128); // 128B per coalesced load
    // Angular needs two accumulators (dot product + candidate norm,
    // eqs. 3-4) and two shuffle reductions, so its per-chunk and
    // reduction blocks are roughly double the euclid ones.
    const unsigned per_chunk_alu =
        graph_.metric() == Metric::Angular ? 13 : 7;
    const unsigned reduce_ops =
        graph_.metric() == Metric::Angular ? 18 : 10;
    for (unsigned i = 0; i < m; ++i) {
        const std::uint64_t base = pointsLayout_.pointAddr(cands[i]);
        std::uint32_t toks = consume_token_mask;
        for (unsigned c = 0; c < chunk_loads; ++c) {
            const std::uint8_t t = ctx.tb.loadPattern(
                base + c * 128ull, 4, 4, kFullMask, true);
            toks |= TraceBuilder::tokenMask(t);
            ctx.tb.alu(per_chunk_alu, kFullMask, 0, true);
        }
        ctx.tb.alu(reduce_ops, kFullMask, toks, true);
        // Non-offloadable epilogue: keep/compare the candidate.
        ctx.tb.alu(2, kFullMask);
    }
}

GgnnRun
GgnnKernel::run(const PointSet &queries, KernelVariant variant,
                const DatapathConfig &dp) const
{
    const PointSet &pts = graph_.points();
    const unsigned dim = pts.dim();
    hsu_assert(queries.dim() == dim, "query dimensionality mismatch");
    hsu_assert(queries.size() <= 65536, "query region overflow");

    GgnnRun out;
    out.results.reserve(queries.size());
    out.trace.warps.reserve(queries.size());

    const unsigned top = graph_.numLayers() - 1;

    for (std::size_t q = 0; q < queries.size(); ++q) {
        out.trace.warps.emplace_back();
        WarpTrace &wt = out.trace.warps.back();
        TraceBuilder tb(wt);
        EmitCtx ctx{tb, variant, dp, queries[q], q, 0};

        // Load the query point into registers (coalesced) and
        // precompute its squared norm for angular search.
        std::uint32_t qtoks = 0;
        const unsigned qchunks = std::max(1u, (dim * 4 + 127) / 128);
        for (unsigned c = 0; c < qchunks; ++c) {
            qtoks |= TraceBuilder::tokenMask(tb.loadPattern(
                queryLayout_.pointAddr(q) + c * 128ull, 4, 4));
        }
        tb.alu((dim + kWarpSize - 1) / kWarpSize + 6, kFullMask, qtoks);

        // --- Greedy descent through the upper layers ---------------
        std::uint32_t cur = graph_.entryPoint();
        float cur_d = metricDist(graph_.metric(), ctx.query, pts[cur],
                                 dim);
        ++ctx.distanceTests;
        for (unsigned l = top; l >= 1; --l) {
            for (;;) {
                // Fetch the neighbor row.
                const unsigned deg = graph_.layerDegree(l);
                const std::uint8_t ntok = tb.loadPattern(
                    adjLayout_[l].at(cur), 4, 4, lowLanes(deg));
                const std::uint32_t *nbrs = graph_.neighbors(l, cur);
                std::vector<std::uint32_t> cands;
                for (unsigned j = 0; j < deg; ++j) {
                    if (nbrs[j] == HnswGraph::kNoNeighbor)
                        break;
                    cands.push_back(nbrs[j]);
                }
                if (cands.empty())
                    break;
                std::vector<float> dists;
                emitDistanceBatch(ctx, cands,
                                  TraceBuilder::tokenMask(ntok), dists);
                // Warp-wide min reduction + pointer update.
                tb.alu(6);
                unsigned best = 0;
                for (unsigned j = 1; j < dists.size(); ++j) {
                    if (dists[j] < dists[best])
                        best = j;
                }
                if (dists[best] < cur_d) {
                    cur_d = dists[best];
                    cur = cands[best];
                } else {
                    break;
                }
            }
        }

        // --- Layer-0 beam search (GGNN "parallel cache") ------------
        using Cand = std::pair<float, std::uint32_t>;
        std::priority_queue<Cand, std::vector<Cand>, std::greater<>>
            open;
        std::priority_queue<Cand> best;
        std::unordered_set<std::uint32_t> visited;
        const unsigned ef = std::max(cfg_.ef, cfg_.k);

        open.push({cur_d, cur});
        best.push({cur_d, cur});
        visited.insert(cur);
        // Initialize the shared-memory cache/priority queue.
        tb.shared(16);

        const unsigned deg0 = graph_.layerDegree(0);
        while (!open.empty()) {
            const auto [d, node] = open.top();
            open.pop();
            // Pop the best candidate from the shared-memory priority
            // queue + termination check: the warp-parallel cache
            // update is a multi-instruction sequence (GGNN's cache is
            // the dominant non-offloadable cost, Section VI-D).
            tb.shared(8);
            tb.alu(4);
            if (d > best.top().first && best.size() >= ef)
                break;

            const std::uint8_t ntok = tb.loadPattern(
                adjLayout_[0].at(node), 4, 4, lowLanes(deg0));
            const std::uint32_t *nbrs = graph_.neighbors(0, node);
            std::vector<std::uint32_t> cands;
            for (unsigned j = 0; j < deg0; ++j) {
                if (nbrs[j] == HnswGraph::kNoNeighbor)
                    break;
                if (visited.insert(nbrs[j]).second)
                    cands.push_back(nbrs[j]);
            }
            // Visited-set filtering in shared memory.
            tb.shared(4, kFullMask, TraceBuilder::tokenMask(ntok));
            tb.alu(3);
            if (cands.empty())
                continue;

            std::vector<float> dists;
            emitDistanceBatch(ctx, cands, 0, dists);

            // Insert the surviving candidates into the priority queue
            // and the K-best cache: this is the non-offloaded queue
            // maintenance the paper calls out as the limiter.
            unsigned inserted = 0;
            for (unsigned j = 0; j < cands.size(); ++j) {
                if (best.size() < ef || dists[j] < best.top().first) {
                    open.push({dists[j], cands[j]});
                    best.push({dists[j], cands[j]});
                    if (best.size() > ef)
                        best.pop();
                    ++inserted;
                }
            }
            tb.shared(4 + 5 * inserted);
            tb.alu(4 + static_cast<unsigned>(cands.size()));
        }

        // Extract and store the K best.
        std::vector<Neighbor> res;
        while (!best.empty()) {
            res.push_back({best.top().second, best.top().first});
            best.pop();
        }
        std::sort(res.begin(), res.end());
        if (res.size() > cfg_.k)
            res.resize(cfg_.k);
        tb.shared(2 * cfg_.k);
        tb.storePattern(resultBase_ + q * cfg_.k * 8, 8, 8,
                        lowLanes(std::min<unsigned>(cfg_.k, kWarpSize)));
        out.results.push_back(std::move(res));
        out.distanceTests += ctx.distanceTests;
    }
    return out;
}

} // namespace hsu
