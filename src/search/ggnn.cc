#include "search/ggnn.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/audit.hh"
#include "common/logging.hh"

namespace hsu
{

namespace
{

[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kVisitedAudit, audit::NondetKind::UnorderedIteration,
    "ggnn.cc:visited",
    "hash set used for membership tests only; candidate order comes "
    "from the sorted beam, never from set iteration");

} // namespace

GgnnKernel::GgnnKernel(const HnswGraph &graph, GgnnConfig cfg)
    : graph_(graph), cfg_(cfg)
{
    const PointSet &pts = graph.points();
    pointsLayout_ = PointArrayLayout(alloc_, pts);
    adjLayout_.reserve(graph.numLayers());
    for (unsigned l = 0; l < graph.numLayers(); ++l) {
        adjLayout_.emplace_back(alloc_, pts.size(),
                                graph.layerDegree(l) * 4u, 64);
    }
    queryLayout_ = PointArrayLayout(alloc_, 65536, pts.dim());
    resultBase_ = alloc_.allocate(65536ull * cfg_.k * 8, 128);
}

/** Per-query emission context. */
struct GgnnKernel::EmitCtx
{
    SemBuilder &sb;
    const float *query;
    std::uint64_t queryIdx;
    std::uint64_t distanceTests = 0;
};

void
GgnnKernel::emitDistanceBatch(EmitCtx &ctx,
                              const std::vector<std::uint32_t> &cands,
                              VirtToken consume,
                              std::vector<float> &dists_out) const
{
    const PointSet &pts = graph_.points();
    const unsigned dim = pts.dim();
    const Metric metric = graph_.metric();
    const unsigned m = static_cast<unsigned>(cands.size());
    hsu_assert(m >= 1 && m <= kWarpSize, "bad candidate batch size ", m);

    // Functional evaluation.
    dists_out.resize(m);
    for (unsigned i = 0; i < m; ++i) {
        dists_out[i] =
            metricDist(metric, ctx.query, pts[cands[i]], dim);
    }
    ctx.distanceTests += m;

    // One candidate per lane (the lowering serializes candidates for
    // the baseline expansion).
    std::uint64_t addrs[kWarpSize] = {};
    for (unsigned i = 0; i < m; ++i)
        addrs[i] = pointsLayout_.pointAddr(cands[i]);
    ctx.sb.distanceWarpCoop(metric, dim, addrs, m,
                            ggnnDistanceShape(metric, dim), {consume});
}

GgnnEmit
GgnnKernel::emit(const PointSet &queries) const
{
    const PointSet &pts = graph_.points();
    const unsigned dim = pts.dim();
    hsu_assert(queries.dim() == dim, "query dimensionality mismatch");
    hsu_assert(queries.size() <= 65536, "query region overflow");

    GgnnEmit out;
    out.results.reserve(queries.size());
    out.sem.warps.reserve(queries.size());

    const unsigned top = graph_.numLayers() - 1;

    for (std::size_t q = 0; q < queries.size(); ++q) {
        out.sem.warps.emplace_back();
        SemBuilder sb(out.sem.warps.back());
        EmitCtx ctx{sb, queries[q], q, 0};

        // Load the query point into registers (coalesced) and
        // precompute its squared norm for angular search.
        std::vector<VirtToken> qtoks;
        const unsigned qchunks = std::max(1u, (dim * 4 + 127) / 128);
        for (unsigned c = 0; c < qchunks; ++c) {
            qtoks.push_back(sb.loadPattern(
                queryLayout_.pointAddr(q) + c * 128ull, 4, 4));
        }
        sb.aluConsuming((dim + kWarpSize - 1) / kWarpSize + 6, kFullMask,
                        qtoks);

        // --- Greedy descent through the upper layers ---------------
        std::uint32_t cur = graph_.entryPoint();
        float cur_d = metricDist(graph_.metric(), ctx.query, pts[cur],
                                 dim);
        ++ctx.distanceTests;
        for (unsigned l = top; l >= 1; --l) {
            for (;;) {
                // Fetch the neighbor row.
                const unsigned deg = graph_.layerDegree(l);
                const VirtToken ntok = sb.loadPattern(
                    adjLayout_[l].at(cur), 4, 4,
                    SemBuilder::lowLanes(deg));
                const std::uint32_t *nbrs = graph_.neighbors(l, cur);
                std::vector<std::uint32_t> cands;
                for (unsigned j = 0; j < deg; ++j) {
                    if (nbrs[j] == HnswGraph::kNoNeighbor)
                        break;
                    cands.push_back(nbrs[j]);
                }
                if (cands.empty())
                    break;
                std::vector<float> dists;
                emitDistanceBatch(ctx, cands, ntok, dists);
                // Warp-wide min reduction + pointer update.
                sb.alu(6);
                unsigned best = 0;
                for (unsigned j = 1; j < dists.size(); ++j) {
                    if (dists[j] < dists[best])
                        best = j;
                }
                if (dists[best] < cur_d) {
                    cur_d = dists[best];
                    cur = cands[best];
                } else {
                    break;
                }
            }
        }

        // --- Layer-0 beam search (GGNN "parallel cache") ------------
        using Cand = std::pair<float, std::uint32_t>;
        std::priority_queue<Cand, std::vector<Cand>, std::greater<>>
            open;
        std::priority_queue<Cand> best;
        std::unordered_set<std::uint32_t> visited;
        const unsigned ef = std::max(cfg_.ef, cfg_.k);

        open.push({cur_d, cur});
        best.push({cur_d, cur});
        visited.insert(cur);
        // Initialize the shared-memory cache/priority queue.
        sb.shared(16);

        const unsigned deg0 = graph_.layerDegree(0);
        while (!open.empty()) {
            const auto [d, node] = open.top();
            open.pop();
            // Pop the best candidate from the shared-memory priority
            // queue + termination check: the warp-parallel cache
            // update is a multi-instruction sequence (GGNN's cache is
            // the dominant non-offloadable cost, Section VI-D).
            sb.shared(8);
            sb.alu(4);
            if (d > best.top().first && best.size() >= ef)
                break;

            const VirtToken ntok = sb.loadPattern(
                adjLayout_[0].at(node), 4, 4,
                SemBuilder::lowLanes(deg0));
            const std::uint32_t *nbrs = graph_.neighbors(0, node);
            std::vector<std::uint32_t> cands;
            for (unsigned j = 0; j < deg0; ++j) {
                if (nbrs[j] == HnswGraph::kNoNeighbor)
                    break;
                if (visited.insert(nbrs[j]).second)
                    cands.push_back(nbrs[j]);
            }
            // Visited-set filtering in shared memory.
            sb.shared(4, kFullMask, {ntok});
            sb.alu(3);
            if (cands.empty())
                continue;

            std::vector<float> dists;
            emitDistanceBatch(ctx, cands, kNoVirt, dists);

            // Insert the surviving candidates into the priority queue
            // and the K-best cache: this is the non-offloaded queue
            // maintenance the paper calls out as the limiter.
            unsigned inserted = 0;
            for (unsigned j = 0; j < cands.size(); ++j) {
                if (best.size() < ef || dists[j] < best.top().first) {
                    open.push({dists[j], cands[j]});
                    best.push({dists[j], cands[j]});
                    if (best.size() > ef)
                        best.pop();
                    ++inserted;
                }
            }
            sb.shared(4 + 5 * inserted);
            sb.alu(4 + static_cast<unsigned>(cands.size()));
        }

        // Extract and store the K best.
        std::vector<Neighbor> res;
        while (!best.empty()) {
            res.push_back({best.top().second, best.top().first});
            best.pop();
        }
        std::sort(res.begin(), res.end());
        if (res.size() > cfg_.k)
            res.resize(cfg_.k);
        sb.shared(2 * cfg_.k);
        sb.storePattern(
            resultBase_ + q * cfg_.k * 8, 8, 8,
            SemBuilder::lowLanes(std::min<unsigned>(cfg_.k, kWarpSize)));
        out.results.push_back(std::move(res));
        out.distanceTests += ctx.distanceTests;
    }
    return out;
}

GgnnRun
GgnnKernel::run(const PointSet &queries, KernelVariant variant,
                const DatapathConfig &dp) const
{
    GgnnEmit e = emit(queries);
    GgnnRun out;
    out.trace = lowerTrace(e.sem, loweringFor(variant, dp));
    out.results = std::move(e.results);
    out.distanceTests = e.distanceTests;
    return out;
}

} // namespace hsu
