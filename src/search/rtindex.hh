/**
 * @file
 * RTIndeX re-implementation (Section VI-G of the paper).
 *
 * RTIndeX (Henneberg & Schuhknecht, VLDB'23) indexes integer keys with
 * the GPU RT unit by representing each key as a triangle primitive
 * (3x3 floats = 288 bits per 32-bit key) and casting rays at lookup
 * positions. The paper re-implements it over the same LBVH used for
 * the HSU evaluation and compares:
 *
 *  - the baseline RT unit form: triangle leaves, RAY_INTERSECT ray-tri
 *    tests at the leaves, and
 *  - the HSU form: keys stored natively (4 bytes), leaves probed with
 *    KEY_COMPARE — a 9:1 leaf memory advantage.
 *
 * Both variants traverse the same internal BVH with ray-box tests on
 * the unit. The paper reports a 36.6% lookup speedup for the native
 * form at 163,840 lookups.
 */

#ifndef HSU_SEARCH_RTINDEX_HH
#define HSU_SEARCH_RTINDEX_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "search/ggnn.hh" // KernelVariant
#include "sim/trace.hh"
#include "structures/lbvh.hh"

namespace hsu
{

/**
 * Which key representation the index probes. Unlike the other kernels,
 * this is a DATA-STRUCTURE choice, not a lowering: both forms run
 * their box and leaf tests on the RT unit (the experiment isolates the
 * leaf representation on RT hardware), so every semantic op emitted
 * here is unit-resident and lowers identically under every Lowering.
 */
enum class RtindexForm : std::uint8_t
{
    Tri,    //!< RTIndeX triangle primitives, ray-tri leaf tests
    Native, //!< native 4B keys, KEY_COMPARE leaf probes
};

/** Run artifacts. */
struct RtindexRun
{
    KernelTrace trace;
    std::vector<bool> found;
    std::uint64_t leafBytesPerKey = 0; //!< 36 (triangle) or 4 (native)
};

/** Emission artifacts: functional results + the semantic trace. */
struct RtindexEmit
{
    SemKernelTrace sem;
    std::vector<bool> found;
    std::uint64_t leafBytesPerKey = 0; //!< 36 (triangle) or 4 (native)
};

/** RTIndeX-style key index over the LBVH. */
class RtindexKernel
{
  public:
    /** Build the index over sorted unique @p keys. */
    explicit RtindexKernel(std::vector<std::uint32_t> keys);

    /** Look up @p probes (32 per warp) against the @p form index and
     *  emit semantic traces. */
    RtindexEmit emit(const std::vector<std::uint32_t> &probes,
                     RtindexForm form) const;

    /**
     * Legacy two-point API: the variant maps to the key
     * representation (Baseline = Tri on the stock RT unit,
     * Hsu = Native with KEY_COMPARE).
     */
    RtindexRun run(const std::vector<std::uint32_t> &probes,
                   KernelVariant variant,
                   const DatapathConfig &dp = DatapathConfig{}) const;

    const Lbvh &bvh() const { return bvh_; }

  public:
    /** Keys per native-index leaf (KEY_COMPARE covers them in one
     *  instruction; the triangle index stays one key per primitive). */
    static constexpr unsigned kKeysPerLeaf = 3;

  private:
    std::vector<std::uint32_t> keys_;
    /**
     * Native-key index: keys embed on a line, so the BVH is tight and
     * adjacent keys stay adjacent in memory.
     */
    Lbvh bvh_;
    /**
     * Triangle-key index: RTIndeX maps each 32-bit key into 3-D by
     * splitting its bits across the axes, which "no longer aligns
     * adjacent keys in a direct line in space" (Section VI-G) — the
     * BVH over these positions is looser and leaf accesses lose
     * spatial locality.
     */
    Lbvh triBvh_;
    AddressAllocator alloc_;
    RecordArrayLayout nodeLayout_;    //!< 64B box nodes (native index)
    RecordArrayLayout triNodeLayout_; //!< 64B box nodes (tri index)
    RecordArrayLayout triLeafLayout_; //!< 48B triangle nodes
    RecordArrayLayout keyLeafLayout_; //!< 4B native keys
    std::uint64_t queryBase_ = 0;
    std::uint64_t resultBase_ = 0;
};

} // namespace hsu

#endif // HSU_SEARCH_RTINDEX_HH
