#include "search/rtindex.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

namespace
{

/** Native embedding: keys on a line — adjacent keys stay adjacent. */
Vec3
keyPos(std::uint32_t key)
{
    return {static_cast<float>(key) * (1.0f / 16.0f), 0.0f, 0.0f};
}

/** RTIndeX triangle embedding: the 32-bit key's bits are split across
 *  the three axes (low 10 -> x, next 10 -> y, rest -> z), so adjacent
 *  keys scatter through space (Section VI-G). */
Vec3
triKeyPos(std::uint32_t key)
{
    return {static_cast<float>(key & 0x3ff),
            static_cast<float>((key >> 10) & 0x3ff),
            static_cast<float>(key >> 20)};
}

} // namespace

RtindexKernel::RtindexKernel(std::vector<std::uint32_t> keys)
    : keys_(std::move(keys))
{
    std::sort(keys_.begin(), keys_.end());
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());

    // Native index: KEY_COMPARE probes up to 36 separators per
    // instruction, so leaves can hold a whole key *range* (8 keys) —
    // something the one-key-per-triangle representation cannot
    // express. The tree is both shallower and denser.
    std::vector<Aabb> boxes;
    boxes.reserve((keys_.size() + kKeysPerLeaf - 1) / kKeysPerLeaf);
    for (std::size_t g = 0; g < keys_.size(); g += kKeysPerLeaf) {
        Aabb b;
        const std::size_t end =
            std::min(keys_.size(), g + kKeysPerLeaf);
        for (std::size_t i = g; i < end; ++i)
            b.expand(Aabb::centered(keyPos(keys_[i]), 0.02f));
        boxes.push_back(b);
    }
    bvh_ = Lbvh::buildFromBoxes(boxes);

    std::vector<Aabb> tri_boxes;
    tri_boxes.reserve(keys_.size());
    for (const auto k : keys_)
        tri_boxes.push_back(Aabb::centered(triKeyPos(k), 0.02f));
    triBvh_ = Lbvh::buildFromBoxes(tri_boxes);

    nodeLayout_ = RecordArrayLayout(alloc_, bvh_.size(), 64, 64);
    triNodeLayout_ = RecordArrayLayout(alloc_, triBvh_.size(), 64, 64);
    triLeafLayout_ = RecordArrayLayout(alloc_, keys_.size(), 48, 16);
    keyLeafLayout_ = RecordArrayLayout(
        alloc_, (keys_.size() + kKeysPerLeaf - 1) / kKeysPerLeaf,
        kKeysPerLeaf * 4, 4);
    queryBase_ = alloc_.allocate(1u << 22, 128);
    resultBase_ = alloc_.allocate(1u << 22, 128);
}

RtindexEmit
RtindexKernel::emit(const std::vector<std::uint32_t> &probes,
                    RtindexForm form) const
{
    RtindexEmit out;
    out.found.resize(probes.size(), false);
    const bool tri_form = form == RtindexForm::Tri;
    out.leafBytesPerKey = tri_form ? 36 : 4;
    const Lbvh &index = tri_form ? triBvh_ : bvh_;
    const RecordArrayLayout &node_layout =
        tri_form ? triNodeLayout_ : nodeLayout_;
    const auto &nodes = index.nodes();

    const std::size_t num_warps =
        (probes.size() + kWarpSize - 1) / kWarpSize;
    out.sem.warps.reserve(num_warps);

    for (std::size_t w = 0; w < num_warps; ++w) {
        out.sem.warps.emplace_back();
        SemBuilder sb(out.sem.warps.back());

        struct Lane
        {
            std::vector<std::int32_t> stack;
            std::uint32_t key = 0;
        };
        Lane lanes[kWarpSize];
        std::uint32_t alive = 0;
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::size_t q = w * kWarpSize + l;
            if (q >= probes.size())
                continue;
            lanes[l].key = probes[q];
            if (index.size() > 0)
                lanes[l].stack.push_back(index.root());
            alive |= 1u << l;
        }

        // Load probe keys and derive ray origins.
        sb.loadPattern(queryBase_ + w * kWarpSize * 4, 4, 4, alive);
        sb.alu(6, alive); // key -> ray origin/direction constants
        sb.shared(2, alive);

        for (;;) {
            std::uint32_t m_int = 0, m_leaf = 0;
            std::int32_t curn[kWarpSize];
            for (unsigned l = 0; l < kWarpSize; ++l) {
                Lane &lane = lanes[l];
                if (lane.stack.empty())
                    continue;
                curn[l] = lane.stack.back();
                lane.stack.pop_back();
                if (nodes[static_cast<std::size_t>(curn[l])].isLeaf())
                    m_leaf |= 1u << l;
                else
                    m_int |= 1u << l;
            }
            const std::uint32_t m_any = m_int | m_leaf;
            if (!m_any)
                break;
            sb.shared(1, m_any);

            if (m_int) {
                // Box tests run on the unit in BOTH forms: the
                // comparison isolates the leaf representation.
                std::uint64_t addrs[kWarpSize] = {};
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (m_int & (1u << l)) {
                        addrs[l] = node_layout.at(
                            static_cast<std::uint64_t>(curn[l]));
                    }
                }
                const VirtToken tok =
                    sb.boxTest(addrs, m_int, rtindexBoxShape());
                sb.alu(3, m_int, {tok});
                sb.shared(2, m_int);

                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (!(m_int & (1u << l)))
                        continue;
                    Lane &lane = lanes[l];
                    const LbvhNode &node =
                        nodes[static_cast<std::size_t>(curn[l])];
                    const Vec3 q = tri_form ? triKeyPos(lane.key)
                                            : keyPos(lane.key);
                    for (const std::int32_t kid :
                         {node.right, node.left}) {
                        if (nodes[static_cast<std::size_t>(kid)]
                                .bounds.contains(q)) {
                            lane.stack.push_back(kid);
                        }
                    }
                }
            }

            if (m_leaf) {
                std::uint64_t addrs[kWarpSize] = {};
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (!(m_leaf & (1u << l)))
                        continue;
                    const auto prim = static_cast<std::uint64_t>(
                        nodes[static_cast<std::size_t>(curn[l])]
                            .primitive);
                    addrs[l] = tri_form ? triLeafLayout_.at(prim)
                                        : keyLeafLayout_.at(prim);
                }
                VirtToken tok;
                if (tri_form) {
                    // Ray-triangle exact-match test on the unit.
                    tok = sb.triTest(addrs, 48, m_leaf);
                } else {
                    // Native key probe: one KEY_COMPARE covers the
                    // whole leaf's key range.
                    tok = sb.keyCompareProbe(addrs, kKeysPerLeaf * 4,
                                             m_leaf);
                }
                sb.alu(2, m_leaf, {tok});

                for (unsigned l = 0; l < kWarpSize; ++l) {
                    if (!(m_leaf & (1u << l)))
                        continue;
                    const std::size_t q = w * kWarpSize + l;
                    const auto prim = static_cast<std::size_t>(
                        nodes[static_cast<std::size_t>(curn[l])]
                            .primitive);
                    if (tri_form) {
                        if (keys_[prim] == lanes[l].key)
                            out.found[q] = true;
                    } else {
                        const std::size_t g = prim * kKeysPerLeaf;
                        const std::size_t end = std::min(
                            keys_.size(), g + kKeysPerLeaf);
                        for (std::size_t i = g; i < end; ++i) {
                            if (keys_[i] == lanes[l].key)
                                out.found[q] = true;
                        }
                    }
                }
            }
        }
        sb.storePattern(resultBase_ + w * kWarpSize * 4, 4, 4, alive);
    }
    return out;
}

RtindexRun
RtindexKernel::run(const std::vector<std::uint32_t> &probes,
                   KernelVariant variant, const DatapathConfig &dp) const
{
    RtindexEmit e = emit(probes, variant == KernelVariant::Baseline
                                     ? RtindexForm::Tri
                                     : RtindexForm::Native);
    RtindexRun out;
    out.trace = lowerTrace(e.sem, loweringFor(variant, dp));
    out.found = std::move(e.found);
    out.leafBytesPerKey = e.leafBytesPerKey;
    return out;
}

} // namespace hsu
