#include "shard/partition.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "geom/morton.hh"

namespace hsu::shard
{

namespace
{

/** Salt folded into the dataset seed so shard hashing never aliases
 *  the dataset's own generator streams. */
constexpr std::uint64_t kShardHashSalt = 0x5bd1e995u;

/**
 * Locality key per point: the 63-bit Morton code of the first three
 * coordinates, normalized to the set's bounding box. For 3-D data this
 * is exactly the LBVH build order; for high-dimensional ANN data it is
 * a (weak but deterministic) spatial proxy — GGNN queries broadcast
 * regardless, so only balance matters there.
 */
std::vector<std::uint64_t>
mortonKeys(const PointSet &points)
{
    Aabb bounds;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const float *p = points[i];
        bounds.expand(Vec3(p[0], points.dim() > 1 ? p[1] : 0.0f,
                           points.dim() > 2 ? p[2] : 0.0f));
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const float *p = points[i];
        keys.push_back(mortonCode63(
            Vec3(p[0], points.dim() > 1 ? p[1] : 0.0f,
                 points.dim() > 2 ? p[2] : 0.0f),
            bounds));
    }
    return keys;
}

/** Split @p order (element ids in locality order) into @p num_shards
 *  contiguous runs whose populations differ by at most one. */
std::vector<std::vector<std::uint32_t>>
contiguousRuns(const std::vector<std::uint32_t> &order,
               unsigned num_shards)
{
    std::vector<std::vector<std::uint32_t>> runs(num_shards);
    const std::size_t n = order.size();
    std::size_t next = 0;
    for (unsigned s = 0; s < num_shards; ++s) {
        const std::size_t count = n / num_shards + (s < n % num_shards);
        runs[s].assign(order.begin() + static_cast<std::ptrdiff_t>(next),
                       order.begin() +
                           static_cast<std::ptrdiff_t>(next + count));
        next += count;
    }
    hsu_assert(next == n, "contiguous split dropped elements");
    return runs;
}

} // namespace

std::string
toString(PartitionPolicy policy)
{
    switch (policy) {
      case PartitionPolicy::Spatial:
        return "spatial";
      case PartitionPolicy::Hash:
        return "hash";
    }
    hsu_panic("unknown partition policy");
}

std::size_t
Partitioning::totalElements() const
{
    std::size_t total = 0;
    for (const ShardSlice &s : shards)
        total += s.ids.size();
    return total;
}

unsigned
hashShardOf(const DatasetInfo &info, std::uint32_t id,
            unsigned num_shards)
{
    return static_cast<unsigned>(
        deriveSeed(info.seed ^ kShardHashSalt, id) % num_shards);
}

Partitioning
partitionDataset(DatasetId dataset, PartitionPolicy policy,
                 unsigned num_shards)
{
    const DatasetInfo &info = datasetInfo(dataset);
    hsu_assert(num_shards >= 1, "need at least one shard");

    Partitioning out;
    out.dataset = dataset;
    out.policy = policy;
    out.shards.resize(num_shards);

    if (info.kind == DatasetKind::Keys) {
        // Element id i is the rank of key i in the (sorted, unique)
        // key set — the same id BTree::build stores as the value, so
        // shard lookups return globally meaningful values.
        const std::vector<std::uint32_t> keys = generateKeys(info);
        hsu_assert(keys.size() >= num_shards,
                   "more shards than keys in ", info.paperName);
        std::vector<std::vector<std::uint32_t>> runs;
        if (policy == PartitionPolicy::Spatial) {
            // Keys are already in locality (sorted) order: contiguous
            // ranks are contiguous key ranges.
            std::vector<std::uint32_t> order(keys.size());
            std::iota(order.begin(), order.end(), 0u);
            runs = contiguousRuns(order, num_shards);
        } else {
            runs.resize(num_shards);
            for (std::uint32_t i = 0; i < keys.size(); ++i)
                runs[hashShardOf(info, keys[i], num_shards)]
                    .push_back(i);
        }
        for (unsigned s = 0; s < num_shards; ++s) {
            ShardSlice &slice = out.shards[s];
            slice.ids = std::move(runs[s]);
            // ids are ranks into the sorted key set, so ascending id
            // order is ascending key order; range bounds are the ends.
            if (!slice.ids.empty()) {
                slice.keyLo = keys[slice.ids.front()];
                slice.keyHi = keys[slice.ids.back()];
            }
        }
        return out;
    }

    const PointSet points = generatePoints(info);
    hsu_assert(points.size() >= num_shards,
               "more shards than points in ", info.paperName);
    std::vector<std::vector<std::uint32_t>> runs;
    if (policy == PartitionPolicy::Spatial) {
        const std::vector<std::uint64_t> morton = mortonKeys(points);
        std::vector<std::uint32_t> order(points.size());
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return morton[a] != morton[b]
                                 ? morton[a] < morton[b]
                                 : a < b;
                  });
        runs = contiguousRuns(order, num_shards);
    } else {
        runs.resize(num_shards);
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(points.size()); ++i)
            runs[hashShardOf(info, i, num_shards)].push_back(i);
    }
    for (unsigned s = 0; s < num_shards; ++s) {
        ShardSlice &slice = out.shards[s];
        slice.ids = std::move(runs[s]);
        std::sort(slice.ids.begin(), slice.ids.end());
        if (info.kind == DatasetKind::Point3d) {
            for (const std::uint32_t id : slice.ids)
                slice.bounds.expand(points.vec3(id));
        }
    }
    return out;
}

} // namespace hsu::shard
