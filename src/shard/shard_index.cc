#include "shard/shard_index.hh"

#include <algorithm>
#include <utility>

#include "analysis/trace_lint.hh"
#include "common/logging.hh"
#include "common/memo.hh"
#include "sim/lower.hh"

namespace hsu::shard
{

namespace
{

/** Memoized full-dataset radius (same pickRadius the runner's
 *  point assets use, recomputed here to keep layering one-way). */
struct RadiusAsset
{
    float radius = 0.0f;
};

/** Emission-time lint hook, mirroring search/runner's debug check. */
void
maybeLintEmission([[maybe_unused]] const SemKernelTrace &sem,
                  [[maybe_unused]] Algo algo)
{
#if !defined(NDEBUG) || defined(HSU_AUDIT)
    lintSemTraceOrDie(sem, toString(algo).c_str());
#endif
}

} // namespace

const Partitioning &
cachedPartitioning(DatasetId dataset, PartitionPolicy policy,
                   unsigned num_shards)
{
    const auto key = std::make_tuple(dataset, policy, num_shards);
    return cachedAssets<Partitioning>(key, [=](Partitioning &p) {
        p = partitionDataset(dataset, policy, num_shards);
    });
}

float
datasetRadius(DatasetId dataset)
{
    return cachedAssets<RadiusAsset>(dataset, [=](RadiusAsset &a) {
               a.radius = pickRadius(generatePoints(datasetInfo(dataset)));
           })
        .radius;
}

const ShardIndex &
shardIndex(DatasetId dataset, PartitionPolicy policy,
           unsigned num_shards, unsigned shard)
{
    const ShardKey key{dataset, policy, num_shards, shard};
    return cachedAssets<ShardIndex>(key, [=](ShardIndex &idx) {
        const DatasetInfo &info = datasetInfo(dataset);
        const Partitioning &part =
            cachedPartitioning(dataset, policy, num_shards);
        hsu_assert(shard < part.numShards(), "shard index out of range");
        idx.key = key;
        idx.slice = part.shards[shard];
        hsu_assert(!idx.slice.ids.empty(),
                   "cannot build an index over an empty shard");

        if (info.kind == DatasetKind::Keys) {
            // Sub-tree over (key, global rank): ids *are* the ranks in
            // the full sorted key set, so lookup values match the
            // unsharded tree's.
            const std::vector<std::uint32_t> keys = generateKeys(info);
            std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
            pairs.reserve(idx.slice.ids.size());
            for (const std::uint32_t rank : idx.slice.ids)
                pairs.emplace_back(keys[rank], rank);
            idx.btree = std::make_unique<BTree>(
                BTree::build(std::move(pairs)));
            idx.btreeKernel = std::make_unique<BtreeKernel>(*idx.btree);
            return;
        }

        // Build in place: every kernel below holds references into the
        // slot-resident PointSet / index, so none may move after build.
        const PointSet full = generatePoints(info);
        idx.points = PointSet(full.dim());
        idx.points.reserve(idx.slice.ids.size());
        for (const std::uint32_t id : idx.slice.ids)
            idx.points.add(full[id]);

        if (info.kind == DatasetKind::HighDim) {
            idx.graph = std::make_unique<HnswGraph>(
                HnswGraph::build(idx.points, info.metric));
            idx.ggnn =
                std::make_unique<GgnnKernel>(*idx.graph, GgnnConfig{});
            return;
        }

        // Point3d: FLANN + BVH-NN share the shard points. The BVH
        // radius is the full-dataset radius so the union of shard
        // answer sets equals the unsharded answer set.
        idx.radius = datasetRadius(dataset);
        idx.bvh = std::make_unique<Lbvh>(
            Lbvh::buildFromPoints(idx.points, idx.radius));
        idx.bvhnn = std::make_unique<BvhnnKernel>(
            idx.points, *idx.bvh, BvhnnConfig{idx.radius});
        idx.kdtree =
            std::make_unique<KdTree>(KdTree::build(idx.points, 16));
        idx.flann = std::make_unique<FlannKernel>(*idx.kdtree);
    });
}

std::vector<std::uint32_t>
routeQuery(Algo algo, const Partitioning &partitioning,
           std::uint32_t query_id, std::size_t pool_size)
{
    const unsigned n = partitioning.numShards();
    std::vector<std::uint32_t> targets;

    switch (algo) {
      case Algo::Ggnn:
      case Algo::Flann:
        // kNN has no sound distance bound before the answer is known:
        // broadcast to every (non-empty) shard.
        targets.reserve(n);
        for (unsigned s = 0; s < n; ++s) {
            if (!partitioning.shards[s].ids.empty())
                targets.push_back(s);
        }
        return targets;

      case Algo::Bvhnn: {
        const float r = datasetRadius(partitioning.dataset);
        const PointSet &pool =
            serveQueryPoints(partitioning.dataset, pool_size);
        hsu_assert(query_id < pool.size(),
                   "route query id outside the serving pool");
        const Vec3 q = pool.vec3(query_id);
        for (unsigned s = 0; s < n; ++s) {
            const ShardSlice &slice = partitioning.shards[s];
            if (slice.ids.empty())
                continue;
            if (slice.bounds.distance2(q) <= r * r)
                targets.push_back(s);
        }
        return targets;
      }

      case Algo::Btree: {
        const std::vector<std::uint32_t> &pool =
            serveQueryKeys(partitioning.dataset, pool_size);
        hsu_assert(query_id < pool.size(),
                   "route query id outside the serving pool");
        const std::uint32_t key = pool[query_id];
        if (partitioning.policy == PartitionPolicy::Hash) {
            const unsigned owner = hashShardOf(
                datasetInfo(partitioning.dataset), key, n);
            if (!partitioning.shards[owner].ids.empty())
                targets.push_back(owner);
            return targets;
        }
        // Spatial: shard key ranges are disjoint and ascending; the
        // owner (if the key is present at all) is the first shard
        // whose range upper bound reaches the key.
        for (unsigned s = 0; s < n; ++s) {
            const ShardSlice &slice = partitioning.shards[s];
            if (slice.ids.empty())
                continue;
            if (key > slice.keyHi)
                continue;
            if (key >= slice.keyLo)
                targets.push_back(s);
            // key < keyLo of the first reachable range: provably
            // absent from every shard.
            break;
        }
        return targets;
      }
    }
    hsu_panic("unknown algo");
}

SemKernelTrace
emitShardBatchSem(Algo algo, const ShardKey &key,
                  const std::vector<std::uint32_t> &query_ids,
                  std::size_t pool_size, const ServeKnobs &knobs)
{
    hsu_assert(!query_ids.empty(), "empty shard batch");
    const ShardIndex &idx =
        shardIndex(key.dataset, key.policy, key.numShards, key.shard);

    auto gather_points = [&]() {
        const PointSet &pool =
            serveQueryPoints(key.dataset, pool_size);
        PointSet batch(pool.dim());
        batch.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            hsu_assert(q < pool.size(),
                       "shard query id out of pool: ", q);
            batch.add(pool[q]);
        }
        return batch;
    };

    switch (algo) {
      case Algo::Ggnn: {
        if (knobs == ServeKnobs{})
            return idx.ggnn->emit(gather_points()).sem;
        GgnnConfig cfg;
        cfg.ef = knobs.ggnnEf;
        cfg.k = knobs.ggnnK;
        const GgnnKernel kernel(*idx.graph, cfg);
        return kernel.emit(gather_points()).sem;
      }
      case Algo::Flann:
        return idx.flann->emit(gather_points()).sem;
      case Algo::Bvhnn:
        return idx.bvhnn->emit(gather_points()).sem;
      case Algo::Btree: {
        const std::vector<std::uint32_t> &pool =
            serveQueryKeys(key.dataset, pool_size);
        std::vector<std::uint32_t> batch;
        batch.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            hsu_assert(q < pool.size(),
                       "shard query id out of pool: ", q);
            batch.push_back(pool[q]);
        }
        return idx.btreeKernel->emit(batch).sem;
      }
    }
    hsu_panic("unknown algo");
}

std::shared_ptr<const KernelTrace>
emitShardBatchTrace(Algo algo, const ShardKey &key,
                    KernelVariant variant, const DatapathConfig &dp,
                    const std::vector<std::uint32_t> &query_ids,
                    std::size_t pool_size, const ServeKnobs &knobs)
{
    const SemKernelTrace sem =
        emitShardBatchSem(algo, key, query_ids, pool_size, knobs);
    maybeLintEmission(sem, algo);
    return std::make_shared<const KernelTrace>(
        lowerTrace(sem, loweringFor(variant, dp)));
}

} // namespace hsu::shard
