#include "shard/cluster.hh"

#include <algorithm>
#include <deque>
#include <future>
#include <map>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "serve/batcher.hh"
#include "shard/shard_index.hh"
#include "sim/gpu.hh"

namespace hsu::shard
{

namespace
{

/** One (shard, replica) lane: a batcher plus one simulated GPU. */
struct Lane
{
    unsigned shard = 0;
    serve::DynamicBatcher batcher;
    bool busy = false;
    bool resolved = false; //!< completion cycle known
    Cycle dispatchCycle = 0;
    Cycle readyCycle = 0; //!< valid when resolved
    std::future<std::uint64_t> pendingCycles;
    std::vector<serve::Request> batch;
    bool degradedBatch = false;

    explicit Lane(const serve::BatchPolicy &policy) : batcher(policy) {}

    /** Queued plus in-flight sub-queries (the LeastOutstanding load
     *  signal). */
    std::size_t
    outstanding() const
    {
        return batcher.pending() + (busy ? batch.size() : 0);
    }
};

/** A sub-query crossing the scatter link, due at deliverCycle. */
struct ScatterMsg
{
    Cycle deliverCycle = 0;
    std::size_t lane = 0;
    serve::Request req;
};

/** Router-side join state of one in-flight request. */
struct Join
{
    Cycle arrivalCycle = 0;
    std::uint32_t remaining = 0; //!< sub-queries not yet resolved
    std::uint32_t served = 0;
    std::uint32_t shed = 0;
    Cycle readyMax = 0; //!< latest gathered sub-answer
};

} // namespace

std::string
toString(LoadBalance policy)
{
    switch (policy) {
      case LoadBalance::RoundRobin:
        return "round-robin";
      case LoadBalance::LeastOutstanding:
        return "least-outstanding";
    }
    hsu_panic("unknown load-balance policy");
}

ClusterServer::ClusterServer(Algo algo, DatasetId dataset,
                             const ClusterConfig &cfg)
    : algo_(algo), dataset_(dataset), cfg_(cfg)
{
    if (cfg_.numShards == 0)
        hsu_fatal("cluster needs at least one shard");
    if (cfg_.replicasPerShard == 0)
        hsu_fatal("cluster needs at least one replica per shard");
    if (cfg_.queryPoolSize == 0)
        hsu_fatal("cluster needs a non-empty query pool");
    if (cfg_.degrade.shedWater == 0)
        hsu_fatal("shedWater 0 would shed every sub-query");
}

ClusterReport
ClusterServer::run(const std::vector<serve::Request> &requests)
{
    const KernelVariant variant = cfg_.gpu.rtUnitEnabled
                                      ? KernelVariant::Hsu
                                      : KernelVariant::Baseline;
    const Partitioning &part = cachedPartitioning(
        dataset_, cfg_.partition, cfg_.numShards);
    const Cycle scatterHop = cfg_.link.hopCycles(cfg_.scatterBytes);
    const Cycle gatherHop = cfg_.link.hopCycles(cfg_.gatherBytes);

    ThreadPool pool(cfg_.jobs);
    std::vector<Lane> lanes;
    lanes.reserve(static_cast<std::size_t>(cfg_.numShards) *
                  cfg_.replicasPerShard);
    for (unsigned s = 0; s < cfg_.numShards; ++s) {
        for (unsigned r = 0; r < cfg_.replicasPerShard; ++r) {
            lanes.emplace_back(cfg_.batch);
            lanes.back().shard = s;
        }
    }
    std::vector<std::size_t> rrNext(cfg_.numShards, 0);

    ClusterReport report;
    report.offered = requests.size();
    report.shards.resize(cfg_.numShards);

    std::deque<ScatterMsg> scatter;
    std::map<std::uint64_t, Join> inflight;
    std::size_t nextArrival = 0;
    Cycle now = 0;

    auto any_busy = [&] {
        return std::any_of(lanes.begin(), lanes.end(),
                           [](const Lane &l) { return l.busy; });
    };
    auto any_pending = [&] {
        return std::any_of(lanes.begin(), lanes.end(),
                           [](const Lane &l) {
                               return l.batcher.pending() > 0;
                           });
    };

    // Resolve one request's join once its last sub-query lands. The
    // merge is charged per contributing shard answer; a request whose
    // every sub-query was shed never produced an answer.
    auto finalize = [&](const Join &join) {
        if (join.served == 0) {
            report.shedRequests += 1;
            return;
        }
        const Cycle done =
            join.readyMax +
            cfg_.mergeCyclesPerShard * static_cast<Cycle>(join.served);
        report.completed += 1;
        if (join.shed > 0)
            report.partialAnswers += 1;
        report.latencyCycles.add(
            static_cast<double>(done - join.arrivalCycle));
        report.lastCompletionCycle =
            std::max(report.lastCompletionCycle, done);
    };

    auto subquery_resolved = [&](std::uint64_t id, bool served,
                                 Cycle ready) {
        const auto it = inflight.find(id);
        hsu_assert(it != inflight.end(),
                   "sub-query resolved for unknown request ", id);
        Join &join = it->second;
        hsu_assert(join.remaining > 0, "join over-resolved");
        join.remaining -= 1;
        if (served) {
            join.served += 1;
            join.readyMax = std::max(join.readyMax, ready);
        } else {
            join.shed += 1;
        }
        if (join.remaining == 0) {
            finalize(join);
            inflight.erase(it);
        }
    };

    // Submit one shard batch simulation to the worker pool — a pure
    // function of (shard key, batch contents, knobs, config), so the
    // cycle count is identical no matter which worker runs it.
    auto dispatch = [&](Lane &lane, std::vector<serve::Request> batch,
                        bool degraded) {
        std::vector<std::uint32_t> ids;
        ids.reserve(batch.size());
        for (const serve::Request &r : batch)
            ids.push_back(r.queryId);
        const ServeKnobs knobs =
            degraded ? cfg_.degrade.degradedKnobs : ServeKnobs{};
        const ShardKey key{dataset_, cfg_.partition, cfg_.numShards,
                           lane.shard};
        const GpuConfig gpu = cfg_.gpu;
        const Algo algo = algo_;
        const std::uint32_t pool_size = cfg_.queryPoolSize;
        lane.pendingCycles = pool.submit(
            [gpu, algo, key, variant, ids, pool_size, knobs]() {
                const std::shared_ptr<const KernelTrace> trace =
                    emitShardBatchTrace(algo, key, variant,
                                        gpu.datapath, ids, pool_size,
                                        knobs);
                StatGroup stats;
                return simulateKernel(gpu, trace, stats).cycles;
            });
        lane.busy = true;
        lane.resolved = false;
        lane.dispatchCycle = now;
        lane.batch = std::move(batch);
        lane.degradedBatch = degraded;
    };

    // Fill every idle lane that has a ready batch. All sims dispatched
    // here are submitted before anything blocks on them, so
    // concurrently-busy lanes really simulate concurrently.
    auto dispatch_ready = [&] {
        for (Lane &lane : lanes) {
            if (lane.busy || !lane.batcher.batchReady(now))
                continue;
            ShardReport &shard = report.shards[lane.shard];
            const bool degraded =
                lane.batcher.pending() >= cfg_.degrade.highWater;
            std::vector<serve::Request> expired;
            std::vector<serve::Request> batch =
                lane.batcher.popBatch(now, expired);
            shard.shedExpired += expired.size();
            for (const serve::Request &r : expired)
                subquery_resolved(r.id, false, 0);
            if (batch.empty())
                continue; // everything pending had expired
            shard.batches += 1;
            report.batchSize.add(static_cast<double>(batch.size()));
            if (degraded)
                shard.degraded += batch.size();
            for (const serve::Request &r : batch) {
                shard.queueWaitCycles.add(
                    static_cast<double>(now - r.arrivalCycle));
            }
            dispatch(lane, std::move(batch), degraded);
        }
    };

    // Resolve in-flight completion times, in lane order: blocking on
    // the first future lets the rest keep running in the pool.
    auto resolve_busy = [&] {
        for (Lane &lane : lanes) {
            if (!lane.busy || lane.resolved)
                continue;
            const std::uint64_t kernel_cycles =
                lane.pendingCycles.get();
            lane.readyCycle = lane.dispatchCycle +
                              cfg_.launchOverheadCycles +
                              kernel_cycles;
            lane.resolved = true;
        }
    };

    // Deliver one sub-query to its lane, shedding when the lane's
    // queue is at the watermark (the single server's admission check,
    // applied per shard replica).
    auto deliver = [&](const ScatterMsg &msg) {
        Lane &lane = lanes[msg.lane];
        report.shards[lane.shard].subqueries += 1;
        if (lane.batcher.pending() >= cfg_.degrade.shedWater) {
            report.shards[lane.shard].shedAdmission += 1;
            subquery_resolved(msg.req.id, false, 0);
            return;
        }
        serve::Request sub = msg.req;
        sub.arrivalCycle = msg.deliverCycle;
        lane.batcher.push(sub);
    };

    while (nextArrival < requests.size() || !scatter.empty() ||
           any_pending() || any_busy()) {
        dispatch_ready();
        resolve_busy();

        if (nextArrival >= requests.size() && scatter.empty() &&
            !any_pending() && !any_busy()) {
            break;
        }

        // Next event: an arrival, a scatter delivery, a batch
        // completion, or an idle lane's age trigger.
        Cycle next = kNeverCycle;
        if (nextArrival < requests.size())
            next = std::min(next, requests[nextArrival].arrivalCycle);
        if (!scatter.empty())
            next = std::min(next, scatter.front().deliverCycle);
        for (const Lane &lane : lanes) {
            if (lane.busy)
                next = std::min(next, lane.readyCycle);
            else
                next = std::min(next, lane.batcher.nextForceCycle());
        }
        hsu_assert(next != kNeverCycle, "cluster wedged at cycle ",
                   now);
        now = std::max(now, next);

        // Completions first (frees lanes and bounds queues), in lane
        // order for a deterministic join/histogram fill. Each
        // sub-answer crosses the gather hop before it can merge.
        for (Lane &lane : lanes) {
            if (!lane.busy || lane.readyCycle > now)
                continue;
            for (const serve::Request &r : lane.batch) {
                subquery_resolved(r.id, true,
                                  lane.readyCycle + gatherHop);
            }
            lane.busy = false;
            lane.batch.clear();
        }

        // Scatter messages that have crossed the link by now, in send
        // (FIFO) order.
        while (!scatter.empty() &&
               scatter.front().deliverCycle <= now) {
            deliver(scatter.front());
            scatter.pop_front();
        }

        // Then admissions up to the current cycle: route, pick a
        // replica per target shard, and put the sub-queries on the
        // wire (zero-latency links deliver inline, preserving the
        // single-server admission order).
        while (nextArrival < requests.size() &&
               requests[nextArrival].arrivalCycle <= now) {
            const serve::Request &req = requests[nextArrival++];
            hsu_assert(req.queryId < cfg_.queryPoolSize,
                       "request query id outside the serving pool");
            const std::vector<std::uint32_t> targets = routeQuery(
                algo_, part, req.queryId, cfg_.queryPoolSize);
            report.fanout.add(static_cast<double>(targets.size()));
            report.subqueries += targets.size();
            if (targets.empty()) {
                // Provably-empty answer (key in no shard's range /
                // radius reaching no shard): answered at the router.
                report.completed += 1;
                report.latencyCycles.add(0.0);
                report.lastCompletionCycle = std::max(
                    report.lastCompletionCycle, req.arrivalCycle);
                continue;
            }
            Join join;
            join.arrivalCycle = req.arrivalCycle;
            join.remaining =
                static_cast<std::uint32_t>(targets.size());
            const auto [it, fresh] = inflight.emplace(req.id, join);
            hsu_assert(fresh, "duplicate request id ", req.id);
            (void)it;
            for (const std::uint32_t s : targets) {
                std::size_t lane_idx =
                    static_cast<std::size_t>(s) *
                    cfg_.replicasPerShard;
                if (cfg_.balance == LoadBalance::RoundRobin) {
                    lane_idx += rrNext[s];
                    rrNext[s] =
                        (rrNext[s] + 1) % cfg_.replicasPerShard;
                } else {
                    std::size_t best = 0;
                    for (std::size_t r = 1; r < cfg_.replicasPerShard;
                         ++r) {
                        if (lanes[lane_idx + r].outstanding() <
                            lanes[lane_idx + best].outstanding()) {
                            best = r;
                        }
                    }
                    lane_idx += best;
                }
                const ScatterMsg msg{req.arrivalCycle + scatterHop,
                                     lane_idx, req};
                if (msg.deliverCycle <= now)
                    deliver(msg);
                else
                    scatter.push_back(msg);
            }
        }
    }

    hsu_assert(inflight.empty(), "requests left unresolved");
    hsu_assert(report.completed + report.shedRequests ==
                   report.offered,
               "request accounting does not balance");

    // Cluster-level queue-wait percentiles: log-bucket-aligned merge
    // of the per-shard histograms (common/stats Histogram::merge).
    for (const ShardReport &shard : report.shards)
        report.queueWaitCycles.merge(shard.queueWaitCycles);
    return report;
}

} // namespace hsu::shard
