#include "shard/cluster.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "shard/shard_index.hh"

namespace hsu::shard
{

namespace
{

/** One (shard, replica) lane: the shared scheduling pipeline plus one
 *  simulated GPU instance (serve/pipeline), bound to the shard's
 *  sub-index through its trace emitter. */
struct Lane
{
    unsigned shard;
    serve::QueryPipeline pipe;
    serve::BatchExecutor exec;

    Lane(unsigned shard_idx, const serve::PipelineConfig &pipeline,
         Algo algo, DatasetId dataset, std::size_t pool_size,
         const GpuConfig &gpu, Cycle launch_overhead,
         serve::BatchTraceEmitter emitter, ScheduleRecorder recorder)
        : shard(shard_idx),
          pipe(pipeline, algo, dataset, pool_size, recorder),
          exec(gpu, launch_overhead, pipeline.degrade.degradedKnobs,
               std::move(emitter), recorder)
    {
    }

    /** Queued plus in-flight sub-queries (the LeastOutstanding load
     *  signal). */
    std::size_t
    outstanding() const
    {
        return pipe.pending() +
               (exec.busy() ? exec.batch().size() : 0);
    }
};

/** A sub-query crossing the scatter link, due at deliverCycle. */
struct ScatterMsg
{
    Cycle deliverCycle = 0;
    std::size_t lane = 0;
    serve::Request req;
};

/** Router-side join state of one in-flight request. */
struct Join
{
    Cycle arrivalCycle = 0;
    std::uint32_t queryId = 0;   //!< for the router answer cache
    std::uint32_t remaining = 0; //!< sub-queries not yet resolved
    std::uint32_t served = 0;
    std::uint32_t shed = 0;
    bool degraded = false;       //!< any sub-answer ran degraded
    Cycle readyMax = 0;          //!< latest gathered sub-answer
};

} // namespace

std::string
toString(LoadBalance policy)
{
    switch (policy) {
      case LoadBalance::RoundRobin:
        return "round-robin";
      case LoadBalance::LeastOutstanding:
        return "least-outstanding";
    }
    hsu_panic("unknown load-balance policy");
}

ClusterServer::ClusterServer(Algo algo, DatasetId dataset,
                             const ClusterConfig &cfg)
    : algo_(algo), dataset_(dataset), cfg_(cfg)
{
    if (cfg_.numShards == 0)
        hsu_fatal("cluster needs at least one shard");
    if (cfg_.replicasPerShard == 0)
        hsu_fatal("cluster needs at least one replica per shard");
    if (cfg_.queryPoolSize == 0)
        hsu_fatal("cluster needs a non-empty query pool");
    if (cfg_.pipeline.degrade.shedWater == 0)
        hsu_fatal("shedWater 0 would shed every sub-query");
}

ClusterReport
ClusterServer::run(const std::vector<serve::Request> &requests)
{
    const KernelVariant variant = cfg_.gpu.rtUnitEnabled
                                      ? KernelVariant::Hsu
                                      : KernelVariant::Baseline;
    const Partitioning &part = cachedPartitioning(
        dataset_, cfg_.partition, cfg_.numShards);
    const Cycle scatterHop = cfg_.link.hopCycles(cfg_.scatterBytes);
    const Cycle gatherHop = cfg_.link.hopCycles(cfg_.gatherBytes);

    ThreadPool pool(cfg_.jobs);

    // Schedule auditing: router-side decisions (routing, hops, joins,
    // the router cache) record under kRouterLane; each lane records
    // under its own index. Everything records from this event-loop
    // thread, so the log is bit-identical for any job count.
    const ScheduleRecorder routerRec(cfg_.scheduleLog, kRouterLane);
    const Cycle mergePerShard = cfg_.mergeCyclesPerShard;
    routerRec.record(0, ScheduleEventKind::ClusterConfig, scatterHop,
                     gatherHop, mergePerShard);

    // The answer cache sits at the router; lane pipelines run with
    // caching off so one request is cached once, not per shard.
    serve::PipelineConfig laneCfg = cfg_.pipeline;
    laneCfg.cache.capacity = 0;
    serve::AnswerCache cache(cfg_.pipeline.cache, algo_, dataset_,
                             cfg_.queryPoolSize, routerRec);

    std::vector<Lane> lanes;
    lanes.reserve(static_cast<std::size_t>(cfg_.numShards) *
                  cfg_.replicasPerShard);
    for (unsigned s = 0; s < cfg_.numShards; ++s) {
        const ShardKey key{dataset_, cfg_.partition, cfg_.numShards, s};
        const serve::BatchTraceEmitter emitter =
            [algo = algo_, key, variant, dp = cfg_.gpu.datapath,
             pool_size = cfg_.queryPoolSize](
                const std::vector<std::uint32_t> &ids,
                const ServeKnobs &knobs) {
                return emitShardBatchTrace(algo, key, variant, dp,
                                           ids, pool_size, knobs);
            };
        for (unsigned r = 0; r < cfg_.replicasPerShard; ++r) {
            const ScheduleRecorder laneRec(
                cfg_.scheduleLog,
                static_cast<std::uint32_t>(lanes.size()));
            lanes.emplace_back(s, laneCfg, algo_, dataset_,
                               cfg_.queryPoolSize, cfg_.gpu,
                               cfg_.launchOverheadCycles, emitter,
                               laneRec);
        }
    }
    std::vector<std::size_t> rrNext(cfg_.numShards, 0);

    ClusterReport report;
    report.offered = requests.size();
    report.shards.resize(cfg_.numShards);
    serve::SimTotals totals;

    std::deque<ScatterMsg> scatter;
    std::map<std::uint64_t, Join> inflight;
    std::size_t nextArrival = 0;
    Cycle now = 0;

    auto any_busy = [&] {
        return std::any_of(lanes.begin(), lanes.end(),
                           [](const Lane &l) { return l.exec.busy(); });
    };
    auto any_pending = [&] {
        return std::any_of(lanes.begin(), lanes.end(),
                           [](const Lane &l) {
                               return l.pipe.pending() > 0;
                           });
    };

    // One request completes: count it and update the latency tallies.
    auto complete = [&](Cycle arrival, Cycle done) {
        report.completed += 1;
        report.latencyCycles.add(static_cast<double>(done - arrival));
        report.lastCompletionCycle =
            std::max(report.lastCompletionCycle, done);
    };

    // Resolve one request's join once its last sub-query lands. The
    // merge is charged per contributing shard answer; a request whose
    // every sub-query was shed never produced an answer. Full answers
    // fill the router cache (degraded ones only when configured).
    auto finalize = [&](std::uint64_t id, const Join &join) {
        if (join.served == 0) {
            report.shedRequests += 1;
            routerRec.record(0, ScheduleEventKind::JoinDone, id,
                             join.served, join.shed);
            return;
        }
        const Cycle done =
            join.readyMax +
            mergePerShard * static_cast<Cycle>(join.served);
        if (join.shed > 0) {
            report.partialAnswers += 1;
        } else if (!join.degraded || cfg_.pipeline.cache.cacheDegraded) {
            cache.insert(join.queryId, done);
        }
        routerRec.record(done, ScheduleEventKind::JoinDone, id,
                         join.served, join.shed);
        complete(join.arrivalCycle, done);
    };

    auto subquery_resolved = [&](std::uint64_t id, bool served,
                                 Cycle ready, bool degraded) {
        const auto it = inflight.find(id);
        hsu_assert(it != inflight.end(),
                   "sub-query resolved for unknown request ", id);
        Join &join = it->second;
        hsu_assert(join.remaining > 0, "join over-resolved");
        join.remaining -= 1;
        if (served) {
            join.served += 1;
            join.degraded = join.degraded || degraded;
            join.readyMax = std::max(join.readyMax, ready);
        } else {
            join.shed += 1;
            routerRec.record(now, ScheduleEventKind::SubShed, id);
        }
        if (join.remaining == 0) {
            finalize(id, join);
            inflight.erase(it);
        }
    };

    // Fill every idle lane that has a ready batch. All sims dispatched
    // here are submitted before anything blocks on them, so
    // concurrently-busy lanes really simulate concurrently.
    auto dispatch_ready = [&] {
        for (Lane &lane : lanes) {
            if (lane.exec.busy() || !lane.pipe.batchReady(now))
                continue;
            serve::FormedBatch formed = lane.pipe.formBatch(
                now, report.shards[lane.shard].queueWaitCycles,
                report.batchSize);
            for (const serve::Request &r : formed.expired)
                subquery_resolved(r.id, false, 0, false);
            if (formed.requests.empty())
                continue; // everything pending had expired
            lane.exec.dispatch(pool, now, std::move(formed));
        }
    };

    // Resolve in-flight completion times, in lane order: blocking on
    // the first future lets the rest keep running in the pool.
    auto resolve_busy = [&] {
        for (Lane &lane : lanes)
            lane.exec.resolve(totals);
    };

    // Deliver one sub-query to its lane; the lane pipeline applies the
    // single server's admission shedding per shard replica.
    auto deliver = [&](const ScatterMsg &msg) {
        Lane &lane = lanes[msg.lane];
        report.shards[lane.shard].subqueries += 1;
        serve::Request sub = msg.req;
        sub.arrivalCycle = msg.deliverCycle;
        if (lane.pipe.admit(sub) == serve::Admission::Shed)
            subquery_resolved(msg.req.id, false, 0, false);
    };

    while (nextArrival < requests.size() || !scatter.empty() ||
           any_pending() || any_busy()) {
        dispatch_ready();
        resolve_busy();

        if (nextArrival >= requests.size() && scatter.empty() &&
            !any_pending() && !any_busy()) {
            break;
        }

        // Next event: an arrival, a scatter delivery, a batch
        // completion, or an idle lane's age trigger.
        Cycle next = kNeverCycle;
        if (nextArrival < requests.size())
            next = std::min(next, requests[nextArrival].arrivalCycle);
        if (!scatter.empty())
            next = std::min(next, scatter.front().deliverCycle);
        for (const Lane &lane : lanes) {
            if (lane.exec.busy())
                next = std::min(next, lane.exec.readyCycle());
            else
                next = std::min(next, lane.pipe.nextForceCycle());
        }
        hsu_assert(next != kNeverCycle, "cluster wedged at cycle ",
                   now);
        now = std::max(now, next);

        // Completions first (frees lanes and bounds queues), in lane
        // order for a deterministic join/histogram fill. Each
        // sub-answer crosses the gather hop before it can merge.
        for (std::size_t li = 0; li < lanes.size(); ++li) {
            Lane &lane = lanes[li];
            if (!lane.exec.busy() || lane.exec.readyCycle() > now)
                continue;
            const Cycle laneReady = lane.exec.readyCycle();
            const ScheduleRecorder gatherRec(
                cfg_.scheduleLog, static_cast<std::uint32_t>(li));
            for (const serve::Request &r : lane.exec.batch()) {
                gatherRec.record(laneReady, ScheduleEventKind::Gather,
                                 r.id, laneReady,
                                 laneReady + gatherHop);
                subquery_resolved(r.id, true, laneReady + gatherHop,
                                  lane.exec.degraded());
            }
            lane.exec.finish();
        }

        // Scatter messages that have crossed the link by now, in send
        // (FIFO) order.
        while (!scatter.empty() &&
               scatter.front().deliverCycle <= now) {
            deliver(scatter.front());
            scatter.pop_front();
        }

        // Then admissions up to the current cycle: probe the router
        // cache, else route, pick a replica per target shard, and put
        // the sub-queries on the wire (zero-latency links deliver
        // inline, preserving the single-server admission order).
        while (nextArrival < requests.size() &&
               requests[nextArrival].arrivalCycle <= now) {
            const serve::Request &req = requests[nextArrival++];
            hsu_assert(req.queryId < cfg_.queryPoolSize,
                       "request query id outside the serving pool");
            if (cache.lookup(req.queryId, req.arrivalCycle)) {
                complete(req.arrivalCycle,
                         req.arrivalCycle +
                             cfg_.pipeline.cache.hitLatencyCycles);
                continue;
            }
            const std::vector<std::uint32_t> targets = routeQuery(
                algo_, part, req.queryId, cfg_.queryPoolSize);
            routerRec.record(req.arrivalCycle,
                             ScheduleEventKind::RouterRoute, req.id,
                             req.queryId, targets.size());
            report.fanout.add(static_cast<double>(targets.size()));
            report.subqueries += targets.size();
            if (targets.empty()) {
                // Provably-empty answer (key in no shard's range /
                // radius reaching no shard): answered at the router.
                complete(req.arrivalCycle, req.arrivalCycle);
                continue;
            }
            Join join;
            join.arrivalCycle = req.arrivalCycle;
            join.queryId = req.queryId;
            join.remaining =
                static_cast<std::uint32_t>(targets.size());
            hsu_assert(inflight.emplace(req.id, join).second,
                       "duplicate request id ", req.id);
            for (const std::uint32_t s : targets) {
                std::size_t lane_idx =
                    std::size_t{s} * cfg_.replicasPerShard;
                if (cfg_.balance == LoadBalance::RoundRobin) {
                    lane_idx += rrNext[s];
                    rrNext[s] =
                        (rrNext[s] + 1) % cfg_.replicasPerShard;
                } else {
                    std::size_t best = 0;
                    for (std::size_t r = 1; r < cfg_.replicasPerShard;
                         ++r) {
                        if (lanes[lane_idx + r].outstanding() <
                            lanes[lane_idx + best].outstanding()) {
                            best = r;
                        }
                    }
                    lane_idx += best;
                }
                const ScatterMsg msg{req.arrivalCycle + scatterHop,
                                     lane_idx, req};
                routerRec.record(req.arrivalCycle,
                                 ScheduleEventKind::Scatter, req.id,
                                 lane_idx, msg.deliverCycle);
                if (msg.deliverCycle <= now)
                    deliver(msg);
                else
                    scatter.push_back(msg);
            }
        }
    }

    hsu_assert(inflight.empty(), "requests left unresolved");
    hsu_assert(report.completed + report.shedRequests ==
                   report.offered,
               "request accounting does not balance");

    // Scheduling counters live in the lane pipelines; fold them into
    // the per-shard slices (u64 sums, order-independent).
    for (const Lane &lane : lanes) {
        ShardReport &shard = report.shards[lane.shard];
        const serve::PipelineStats &sched = lane.pipe.stats();
        shard.batches += sched.batches;
        shard.shedAdmission += sched.shedAdmission;
        shard.shedExpired += sched.shedExpired;
        shard.degraded += sched.degraded;
    }
    report.cacheHits = cache.hits();
    report.kernelCycles = totals.kernelCycles;
    report.smCycles = totals.smCycles;
    report.l1Accesses = totals.l1Accesses;
    report.l1Misses = totals.l1Misses;
    report.rtuBusyCycles = totals.rtuBusyCycles;

    // Cluster-level queue-wait percentiles: log-bucket-aligned merge
    // of the per-shard histograms (common/stats Histogram::merge).
    for (const ShardReport &shard : report.shards)
        report.queueWaitCycles.merge(shard.queueWaitCycles);
    return report;
}

} // namespace hsu::shard
