/**
 * @file
 * Index partitioning for sharded multi-GPU serving.
 *
 * A Partitioning assigns every base element of a dataset (a point for
 * the ANN/spatial families, a key for B+tree) to exactly one of N
 * shards, so each simulated GPU builds an index over only its slice.
 * Two policies:
 *
 *  - Spatial: elements are ordered by a locality key — the 63-bit
 *    Morton code of the point (geom/morton, the same codes the LBVH
 *    builder sorts by) for 3-D data, the raw key for 1-D key sets, and
 *    the Morton code of the first three normalized dimensions for
 *    high-dimensional ANN data — and split into N contiguous ranges of
 *    near-equal population. Contiguity in the locality key is what
 *    makes router-side pruning sound: each shard carries a bounding
 *    box / key range, and a query whose reach misses that bound can
 *    skip the shard entirely.
 *
 *  - Hash: element id avalanched through hsu::deriveSeed and reduced
 *    mod N. No locality (every range query must broadcast), but
 *    population is balanced for any input distribution and a hot key
 *    range spreads over all shards.
 *
 * Partitionings are pure functions of (dataset, policy, shard count):
 * bit-identical across runs, platforms, and thread counts, which the
 * cluster layer's determinism contract builds on.
 */

#ifndef HSU_SHARD_PARTITION_HH
#define HSU_SHARD_PARTITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "geom/aabb.hh"
#include "workloads/datasets.hh"

namespace hsu::shard
{

/** How base elements map to shards. */
enum class PartitionPolicy : std::uint8_t
{
    Spatial, //!< Morton-range (3-D) / key-range (1-D) contiguous slices
    Hash,    //!< deriveSeed(seed, id) % N — balanced, no locality
};

std::string toString(PartitionPolicy policy);

/** One shard's slice of the base data. */
struct ShardSlice
{
    /** Global element ids owned by this shard, in ascending id order
     *  for points and ascending key order for keys. */
    std::vector<std::uint32_t> ids;

    /** Bounding box of the shard's points (3-D datasets only; empty
     *  box otherwise). Used for radius-query pruning. */
    Aabb bounds;

    /** Inclusive key range of the shard's keys (Keys datasets only).
     *  Used for lookup routing; meaningless when ids is empty. */
    std::uint32_t keyLo = 0;
    std::uint32_t keyHi = 0;
};

/** A full N-way split of one dataset's base elements. */
struct Partitioning
{
    DatasetId dataset{};
    PartitionPolicy policy = PartitionPolicy::Spatial;
    std::vector<ShardSlice> shards;

    unsigned numShards() const
    { return static_cast<unsigned>(shards.size()); }

    /** Total elements across all shards (== base element count). */
    std::size_t totalElements() const;
};

/**
 * Partition the base elements of @p dataset into @p num_shards slices.
 * Points datasets split their PointSet; Keys datasets split the key
 * set. Every element lands in exactly one shard; spatial slices are
 * contiguous in the locality key with populations differing by at most
 * one, hash slices are deriveSeed-balanced.
 */
Partitioning partitionDataset(DatasetId dataset,
                              PartitionPolicy policy,
                              unsigned num_shards);

/** Shard owning @p id under a hash partitioning of @p dataset (the
 *  router uses this for O(1) key routing without scanning slices). */
unsigned hashShardOf(const DatasetInfo &info, std::uint32_t id,
                     unsigned num_shards);

} // namespace hsu::shard

#endif // HSU_SHARD_PARTITION_HH
