#include "shard/merge.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu::shard
{

std::vector<Neighbor>
mergeTopK(const std::vector<std::vector<Neighbor>> &partials, unsigned k)
{
    std::vector<Neighbor> all;
    for (const std::vector<Neighbor> &p : partials)
        all.insert(all.end(), p.begin(), p.end());
    // Neighbor's (dist2, index) order is strict and total over unique
    // global ids, so a plain sort is deterministic; k is small enough
    // that a k-way heap merge would buy nothing.
    std::sort(all.begin(), all.end());
    if (all.size() > k)
        all.resize(k);
    return all;
}

Neighbor
mergeNearest(const std::vector<std::optional<Neighbor>> &partials)
{
    std::optional<Neighbor> best;
    for (const std::optional<Neighbor> &p : partials) {
        if (!p)
            continue;
        if (!best || *p < *best)
            best = *p;
    }
    hsu_assert(best.has_value(), "1-NN merge over empty partials");
    return *best;
}

RadiusHit
mergeRadiusHits(const std::vector<RadiusHit> &partials)
{
    RadiusHit best;
    for (const RadiusHit &p : partials) {
        if (p.index < 0)
            continue;
        if (best.index < 0 || p.dist2 < best.dist2 ||
            (p.dist2 == best.dist2 && p.index < best.index)) {
            best = p;
        }
    }
    return best;
}

std::optional<std::uint32_t>
mergeLookups(const std::vector<std::optional<std::uint32_t>> &partials)
{
    std::optional<std::uint32_t> hit;
    for (const std::optional<std::uint32_t> &p : partials) {
        if (!p)
            continue;
        hsu_assert(!hit.has_value(),
                   "key present on more than one shard");
        hit = p;
    }
    return hit;
}

} // namespace hsu::shard
