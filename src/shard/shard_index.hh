/**
 * @file
 * Per-shard sub-indexes for sharded multi-GPU serving.
 *
 * Each simulated GPU in a cluster owns one slice of the base data
 * (shard/partition) and serves queries from an index built over only
 * that slice. This layer builds and memoizes those sub-indexes through
 * the same build-once discipline (common/memo) as the full-dataset
 * assets in search/runner, keyed by (dataset, policy, shard count,
 * shard), so replicas of a shard — and the HSU/Baseline sides of a
 * sweep — share one build.
 *
 * Semantics per family:
 *  - GGNN:   hierarchical graph over the shard's points.
 *  - FLANN:  k-d tree over the shard's points (leaf size 16, matching
 *            the full-index build in search/runner).
 *  - BVH-NN: LBVH over the shard's points with the *full-dataset*
 *            search radius, so the union of per-shard answers equals
 *            the unsharded answer set.
 *  - B+tree: sub-tree over the shard's (key, global rank) pairs; the
 *            stored values are ranks in the full sorted key set, so a
 *            shard lookup returns the same value the unsharded tree
 *            would.
 *
 * Everything here is a pure function of its key: builds are
 * bit-identical across runs and thread counts.
 */

#ifndef HSU_SHARD_SHARD_INDEX_HH
#define HSU_SHARD_SHARD_INDEX_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "search/btree_kernel.hh"
#include "search/bvhnn.hh"
#include "search/flann.hh"
#include "search/ggnn.hh"
#include "search/runner.hh"
#include "shard/partition.hh"

namespace hsu::shard
{

/** Identity of one shard of one partitioned dataset. */
struct ShardKey
{
    DatasetId dataset{};
    PartitionPolicy policy = PartitionPolicy::Spatial;
    unsigned numShards = 1;
    unsigned shard = 0;

    bool
    operator<(const ShardKey &o) const
    {
        if (dataset != o.dataset)
            return dataset < o.dataset;
        if (policy != o.policy)
            return policy < o.policy;
        if (numShards != o.numShards)
            return numShards < o.numShards;
        return shard < o.shard;
    }
};

/** One shard's slice plus every index built over it. Only the members
 *  of the family being served are populated (see the accessors). */
struct ShardIndex
{
    ShardKey key;
    /** The shard's slice of the partitioning (ids are global). */
    ShardSlice slice;

    // GGNN family (HighDim datasets).
    PointSet points; //!< shard-local points, in slice.ids order
    std::unique_ptr<HnswGraph> graph;
    std::unique_ptr<GgnnKernel> ggnn;

    // FLANN / BVH-NN family (Point3d datasets; shares `points`).
    float radius = 0.0f; //!< full-dataset radius (pickRadius)
    std::unique_ptr<Lbvh> bvh;
    std::unique_ptr<BvhnnKernel> bvhnn;
    std::unique_ptr<KdTree> kdtree;
    std::unique_ptr<FlannKernel> flann;

    // B+tree family (Keys datasets).
    std::unique_ptr<BTree> btree;
    std::unique_ptr<BtreeKernel> btreeKernel;
};

/** The memoized partitioning of (dataset, policy, num_shards). */
const Partitioning &cachedPartitioning(DatasetId dataset,
                                       PartitionPolicy policy,
                                       unsigned num_shards);

/**
 * The memoized sub-index of one shard, built on first use. Which
 * indexes are populated depends on the dataset kind (all families that
 * apply to the kind are built together, mirroring search/runner's
 * asset grouping).
 */
const ShardIndex &shardIndex(DatasetId dataset, PartitionPolicy policy,
                             unsigned num_shards, unsigned shard);

/** The full-dataset BVH-NN search radius (memoized pickRadius), shared
 *  by every shard of @p dataset and by router-side pruning. */
float datasetRadius(DatasetId dataset);

/**
 * Route one serving-pool query to its target shards, ascending:
 *  - GGNN / FLANN: broadcast (kNN has no sound spatial bound).
 *  - BVH-NN: shards whose slice bounding box lies within the search
 *    radius of the query point (sound: any in-radius point inflates
 *    its shard's box to within the radius). Hash slices have
 *    near-full boxes, so this degenerates to broadcast.
 *  - B+tree: exactly the owning shard — key-range binary search for
 *    spatial partitions, hashShardOf for hash partitions. A key
 *    falling between two spatial ranges is provably absent; such
 *    queries (and radius queries pruning every shard) return an empty
 *    target list and are answered at the router without any fan-out.
 *
 * @p query_id indexes the deterministic serving pool of @p pool_size
 * queries (search/runner serveQueryPoints / serveQueryKeys) — the same
 * payloads batch emission resolves ids against.
 */
std::vector<std::uint32_t> routeQuery(Algo algo,
                                      const Partitioning &partitioning,
                                      std::uint32_t query_id,
                                      std::size_t pool_size);

/**
 * Emit the semantic trace of one dynamic batch against one shard's
 * sub-index — the emission half of emitShardBatchTrace, exposed so
 * the trace linter (tools/trace_lint) can audit shard emissions in
 * release builds too. Pure function of its arguments.
 */
SemKernelTrace
emitShardBatchSem(Algo algo, const ShardKey &key,
                  const std::vector<std::uint32_t> &query_ids,
                  std::size_t pool_size,
                  const ServeKnobs &knobs = ServeKnobs{});

/**
 * Emit + lower the trace of one dynamic batch against one shard's
 * sub-index — the sharded counterpart of search/runner's
 * emitBatchTrace, same emit-once/lower-many pipeline and the same
 * serving query pool. Pure function of its arguments.
 */
std::shared_ptr<const KernelTrace>
emitShardBatchTrace(Algo algo, const ShardKey &key,
                    KernelVariant variant, const DatapathConfig &dp,
                    const std::vector<std::uint32_t> &query_ids,
                    std::size_t pool_size,
                    const ServeKnobs &knobs = ServeKnobs{});

} // namespace hsu::shard

#endif // HSU_SHARD_SHARD_INDEX_HH
