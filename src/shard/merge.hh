/**
 * @file
 * Deterministic scatter-gather merges for sharded serving.
 *
 * Each shard answers a query over its slice only; the router combines
 * the partial answers into the cluster answer. All merges are pure
 * functions with total orders on their inputs — by (dist2, global id)
 * for neighbor sets — so the merged answer is bit-identical no matter
 * how many shards contributed, in what order their responses landed,
 * or how many worker threads ran the simulations. tests/shard pins
 * merged answers against unsharded golden answers for every family.
 */

#ifndef HSU_SHARD_MERGE_HH
#define HSU_SHARD_MERGE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "search/bvhnn.hh"
#include "structures/kdtree.hh"

namespace hsu::shard
{

/**
 * Merge per-shard top-k candidate lists (each sorted by Neighbor's
 * (dist2, index) order, indices global) into the overall top-k.
 * Global ids are unique across shards, so the order is total and the
 * result is independent of shard enumeration order.
 */
std::vector<Neighbor>
mergeTopK(const std::vector<std::vector<Neighbor>> &partials,
          unsigned k);

/**
 * Merge per-shard exact 1-NN answers (FLANN): the minimum under
 * (dist2, index). @p partials entries with empty ids are allowed for
 * shards that held no candidate. @pre at least one engaged entry.
 */
Neighbor mergeNearest(const std::vector<std::optional<Neighbor>> &partials);

/**
 * Merge per-shard radius answers (BVH-NN): nearest in-radius hit under
 * (dist2, index), indices global; {-1, 0} when no shard found a hit.
 */
RadiusHit mergeRadiusHits(const std::vector<RadiusHit> &partials);

/**
 * Merge per-shard B+tree lookups. Keys live on exactly one shard, so
 * at most one partial may be engaged (asserted); the merge returns it,
 * or nullopt when every routed shard missed.
 */
std::optional<std::uint32_t>
mergeLookups(const std::vector<std::optional<std::uint32_t>> &partials);

} // namespace hsu::shard

#endif // HSU_SHARD_MERGE_HH
