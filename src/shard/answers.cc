#include "shard/answers.hh"

#include <algorithm>

#include "common/logging.hh"
#include "shard/shard_index.hh"
#include "structures/graph.hh"

namespace hsu::shard
{

namespace
{

bool
sameNeighbor(const Neighbor &a, const Neighbor &b)
{
    return a.index == b.index && a.dist2 == b.dist2;
}

/** Exact top-k over a candidate id set by (metric distance, global id),
 *  via bounded sorted insertion — the per-shard "filter" answer. */
std::vector<Neighbor>
exactTopK(const PointSet &points, const float *query, Metric metric,
          const std::vector<std::uint32_t> &local_to_global, unsigned k)
{
    std::vector<Neighbor> best;
    best.reserve(k + 1);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(points.size()); ++i) {
        const Neighbor cand{local_to_global.empty() ? i
                                                    : local_to_global[i],
                            metricDist(metric, query, points[i],
                                       points.dim())};
        if (best.size() == k && !(cand < best.back()))
            continue;
        best.insert(std::lower_bound(best.begin(), best.end(), cand),
                    cand);
        if (best.size() > k)
            best.pop_back();
    }
    return best;
}

/** Queries routed to one shard, with their positions in the batch. */
struct ShardBatch
{
    std::vector<std::uint32_t> queryIds; //!< serving-pool ids
    std::vector<std::size_t> slots;      //!< positions in the batch
};

std::vector<ShardBatch>
routeBatch(Algo algo, const Partitioning &part,
           const std::vector<std::uint32_t> &query_ids,
           std::size_t pool_size)
{
    std::vector<ShardBatch> per_shard(part.numShards());
    for (std::size_t slot = 0; slot < query_ids.size(); ++slot) {
        for (const std::uint32_t s :
             routeQuery(algo, part, query_ids[slot], pool_size)) {
            per_shard[s].queryIds.push_back(query_ids[slot]);
            per_shard[s].slots.push_back(slot);
        }
    }
    return per_shard;
}

PointSet
gatherPoints(const PointSet &pool,
             const std::vector<std::uint32_t> &query_ids)
{
    PointSet batch(pool.dim());
    batch.reserve(query_ids.size());
    for (const std::uint32_t q : query_ids)
        batch.add(pool[q]);
    return batch;
}

} // namespace

bool
AnswerSet::operator==(const AnswerSet &o) const
{
    if (topk.size() != o.topk.size() ||
        nearest.size() != o.nearest.size() ||
        radius.size() != o.radius.size() ||
        values.size() != o.values.size()) {
        return false;
    }
    for (std::size_t q = 0; q < topk.size(); ++q) {
        if (topk[q].size() != o.topk[q].size())
            return false;
        for (std::size_t i = 0; i < topk[q].size(); ++i) {
            if (!sameNeighbor(topk[q][i], o.topk[q][i]))
                return false;
        }
    }
    for (std::size_t q = 0; q < nearest.size(); ++q) {
        if (!sameNeighbor(nearest[q], o.nearest[q]))
            return false;
    }
    for (std::size_t q = 0; q < radius.size(); ++q) {
        if (radius[q].index != o.radius[q].index ||
            radius[q].dist2 != o.radius[q].dist2) {
            return false;
        }
    }
    for (std::size_t q = 0; q < values.size(); ++q) {
        if (values[q] != o.values[q])
            return false;
    }
    return true;
}

AnswerSet
answerUnsharded(Algo algo, DatasetId dataset,
                const std::vector<std::uint32_t> &query_ids,
                std::size_t pool_size, unsigned k)
{
    const DatasetInfo &info = datasetInfo(dataset);
    AnswerSet out;

    switch (algo) {
      case Algo::Ggnn: {
        const PointSet base = generatePoints(info);
        const PointSet &pool = serveQueryPoints(dataset, pool_size);
        out.topk.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            // Independent oracle path: materialize every distance and
            // partial-sort, instead of the bounded insertion the
            // sharded filter uses.
            std::vector<Neighbor> all;
            all.reserve(base.size());
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(base.size()); ++i) {
                all.push_back({i, metricDist(info.metric, pool[q],
                                             base[i], base.dim())});
            }
            const std::size_t kk = std::min<std::size_t>(k, all.size());
            std::partial_sort(all.begin(),
                              all.begin() +
                                  static_cast<std::ptrdiff_t>(kk),
                              all.end());
            all.resize(kk);
            out.topk.push_back(std::move(all));
        }
        return out;
      }

      case Algo::Flann: {
        const PointSet base = generatePoints(info);
        const PointSet &pool = serveQueryPoints(dataset, pool_size);
        out.nearest.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            Neighbor best{0, pointDist2(pool[q], base[0], base.dim())};
            for (std::uint32_t i = 1;
                 i < static_cast<std::uint32_t>(base.size()); ++i) {
                const Neighbor cand{
                    i, pointDist2(pool[q], base[i], base.dim())};
                if (cand < best)
                    best = cand;
            }
            out.nearest.push_back(best);
        }
        return out;
      }

      case Algo::Bvhnn: {
        const PointSet base = generatePoints(info);
        const PointSet &pool = serveQueryPoints(dataset, pool_size);
        const float r = datasetRadius(dataset);
        out.radius.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            RadiusHit best;
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(base.size()); ++i) {
                const float d2 =
                    pointDist2(pool[q], base[i], base.dim());
                if (d2 > r * r)
                    continue;
                if (best.index < 0 || d2 < best.dist2) {
                    best = RadiusHit{static_cast<std::int32_t>(i), d2};
                }
            }
            out.radius.push_back(best);
        }
        return out;
      }

      case Algo::Btree: {
        const std::vector<std::uint32_t> keys = generateKeys(info);
        const std::vector<std::uint32_t> &pool =
            serveQueryKeys(dataset, pool_size);
        out.values.reserve(query_ids.size());
        for (const std::uint32_t q : query_ids) {
            const auto it = std::lower_bound(keys.begin(), keys.end(),
                                             pool[q]);
            if (it != keys.end() && *it == pool[q]) {
                out.values.emplace_back(static_cast<std::uint32_t>(
                    it - keys.begin()));
            } else {
                out.values.emplace_back(std::nullopt);
            }
        }
        return out;
      }
    }
    hsu_panic("unknown algo");
}

AnswerSet
answerSharded(Algo algo, DatasetId dataset, PartitionPolicy policy,
              unsigned num_shards,
              const std::vector<std::uint32_t> &query_ids,
              std::size_t pool_size, unsigned k)
{
    const Partitioning &part =
        cachedPartitioning(dataset, policy, num_shards);
    const std::vector<ShardBatch> routed =
        routeBatch(algo, part, query_ids, pool_size);
    AnswerSet out;

    switch (algo) {
      case Algo::Ggnn: {
        const DatasetInfo &info = datasetInfo(dataset);
        const PointSet &pool = serveQueryPoints(dataset, pool_size);
        // The per-shard "filter" answer scans the slice directly —
        // no need to build the shard's HNSW graph (that belongs to
        // the timing model, shard/shard_index).
        const PointSet base = generatePoints(info);
        // partials[slot][shard-rank] = that shard's exact top-k.
        std::vector<std::vector<std::vector<Neighbor>>> partials(
            query_ids.size());
        for (unsigned s = 0; s < part.numShards(); ++s) {
            if (routed[s].queryIds.empty())
                continue;
            const ShardSlice &slice = part.shards[s];
            PointSet shard_points(base.dim());
            shard_points.reserve(slice.ids.size());
            for (const std::uint32_t id : slice.ids)
                shard_points.add(base[id]);
            for (std::size_t i = 0; i < routed[s].queryIds.size();
                 ++i) {
                partials[routed[s].slots[i]].push_back(exactTopK(
                    shard_points, pool[routed[s].queryIds[i]],
                    info.metric, slice.ids, k));
            }
        }
        out.topk.reserve(query_ids.size());
        for (const auto &p : partials)
            out.topk.push_back(mergeTopK(p, k));
        return out;
      }

      case Algo::Flann: {
        const PointSet &pool = serveQueryPoints(dataset, pool_size);
        std::vector<std::vector<std::optional<Neighbor>>> partials(
            query_ids.size());
        for (unsigned s = 0; s < part.numShards(); ++s) {
            if (routed[s].queryIds.empty())
                continue;
            const ShardIndex &idx =
                shardIndex(dataset, policy, num_shards, s);
            const FlannEmit emit = idx.flann->emit(
                gatherPoints(pool, routed[s].queryIds));
            for (std::size_t i = 0; i < emit.results.size(); ++i) {
                const Neighbor local = emit.results[i];
                partials[routed[s].slots[i]].emplace_back(
                    Neighbor{idx.slice.ids[local.index], local.dist2});
            }
        }
        out.nearest.reserve(query_ids.size());
        for (const auto &p : partials)
            out.nearest.push_back(mergeNearest(p));
        return out;
      }

      case Algo::Bvhnn: {
        const PointSet &pool = serveQueryPoints(dataset, pool_size);
        std::vector<std::vector<RadiusHit>> partials(query_ids.size());
        for (unsigned s = 0; s < part.numShards(); ++s) {
            if (routed[s].queryIds.empty())
                continue;
            const ShardIndex &idx =
                shardIndex(dataset, policy, num_shards, s);
            const BvhnnEmit emit = idx.bvhnn->emit(
                gatherPoints(pool, routed[s].queryIds));
            for (std::size_t i = 0; i < emit.results.size(); ++i) {
                RadiusHit hit = emit.results[i];
                if (hit.index >= 0) {
                    hit.index = static_cast<std::int32_t>(
                        idx.slice.ids[static_cast<std::uint32_t>(
                            hit.index)]);
                }
                partials[routed[s].slots[i]].push_back(hit);
            }
        }
        out.radius.reserve(query_ids.size());
        for (const auto &p : partials)
            out.radius.push_back(mergeRadiusHits(p));
        return out;
      }

      case Algo::Btree: {
        const std::vector<std::uint32_t> &pool =
            serveQueryKeys(dataset, pool_size);
        std::vector<std::vector<std::optional<std::uint32_t>>> partials(
            query_ids.size());
        for (unsigned s = 0; s < part.numShards(); ++s) {
            if (routed[s].queryIds.empty())
                continue;
            const ShardIndex &idx =
                shardIndex(dataset, policy, num_shards, s);
            std::vector<std::uint32_t> batch;
            batch.reserve(routed[s].queryIds.size());
            for (const std::uint32_t q : routed[s].queryIds)
                batch.push_back(pool[q]);
            const BtreeEmit emit = idx.btreeKernel->emit(batch);
            for (std::size_t i = 0; i < emit.results.size(); ++i) {
                partials[routed[s].slots[i]].push_back(
                    emit.results[i]);
            }
        }
        out.values.reserve(query_ids.size());
        for (const auto &p : partials)
            out.values.push_back(mergeLookups(p));
        return out;
      }
    }
    hsu_panic("unknown algo");
}

} // namespace hsu::shard
