/**
 * @file
 * Sharded multi-GPU serving cluster on the unified simulated clock.
 *
 * A ClusterServer extends the single-instance server (serve/server) to
 * N index shards x R replicas per shard. One router receives the
 * open-loop request stream, fans each request out to the shards its
 * query can touch (shard/shard_index routeQuery: broadcast for kNN,
 * range-pruned for radius queries, single-owner for key lookups),
 * picks a replica per sub-query under a load-balancing policy, and
 * joins the partial answers with a deterministic top-k merge
 * (shard/merge — the timing model charges the merge, the answer layer
 * shard/answers pins its value).
 *
 * Every (shard, replica) lane composes the same serve::QueryPipeline +
 * serve::BatchExecutor pair as the single server (serve/pipeline), so
 * admission shedding, degraded knobs, deadline expiry, and the
 * batch-ordering policy are one implementation, not two. Lane
 * pipelines run with their answer cache disabled; the cluster instead
 * keeps ONE router-level answer cache in front of routing — a hit
 * answers the whole request before it scatters (the merged answer is
 * what the cache conceptually holds; only full, non-partial answers
 * fill it). With the Coherent policy each lane sorts its OWN formed
 * batches after routing, so per-shard batches stay Morton-compact even
 * though the router splits the stream. Scatter and gather
 * hops cross an interconnect with a fixed-latency + bandwidth link
 * model; a request completes when its last surviving sub-query's
 * result has crossed back and merged:
 *
 *     completion = max over sub-queries (lane completion + gather hop)
 *                + merge cost.
 *
 * Determinism: arrivals are processed in stream order, scatter
 * messages in send order, lanes in index order; batch simulations fan
 * out over an hsu::ThreadPool but are pure functions resolved in lane
 * order. Reports are bit-identical for any HSU_JOBS / HSU_SIM_JOBS
 * (tests/shard/test_cluster.cc pins this), and a 1x1 cluster with a
 * zero-cost link reproduces serve::Server exactly.
 */

#ifndef HSU_SHARD_CLUSTER_HH
#define HSU_SHARD_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hh"
#include "shard/partition.hh"

namespace hsu::shard
{

/** Interconnect cost model for one router<->shard hop. */
struct LinkModel
{
    /** Fixed per-message latency (cycles). */
    Cycle latencyCycles = 0;
    /** Link bandwidth; 0 disables the bandwidth term. */
    double bytesPerCycle = 0.0;

    /** Cycles for one message of @p bytes. */
    Cycle
    hopCycles(std::uint64_t bytes) const
    {
        Cycle t = latencyCycles;
        if (bytesPerCycle > 0.0) {
            t += static_cast<Cycle>(
                static_cast<double>(bytes) / bytesPerCycle);
        }
        return t;
    }
};

/** Replica-selection policy for sub-queries within one shard. */
enum class LoadBalance : std::uint8_t
{
    RoundRobin,       //!< cycle replicas per sub-query
    LeastOutstanding, //!< fewest queued + in-flight; ties to lowest
};

std::string toString(LoadBalance policy);

/** Full cluster configuration. */
struct ClusterConfig
{
    /** Per-replica GPU; rtUnitEnabled selects HSU vs Baseline
     *  lowering for every shard batch. */
    GpuConfig gpu;
    PartitionPolicy partition = PartitionPolicy::Spatial;
    unsigned numShards = 2;
    unsigned replicasPerShard = 1;
    LoadBalance balance = LoadBalance::RoundRobin;
    /** Scheduling stages, applied per lane (serve semantics). The
     *  cache member configures the ROUTER-level answer cache; lane
     *  pipelines always run with caching disabled. */
    serve::PipelineConfig pipeline;
    std::uint32_t queryPoolSize = 1024;
    Cycle launchOverheadCycles = 1'000;
    /** Scatter/gather interconnect. Defaults to a zero-cost link so a
     *  1x1 cluster degenerates to the single-instance server. */
    LinkModel link;
    /** Router-side merge cost per contributing shard answer. */
    Cycle mergeCyclesPerShard = 0;
    /** Payload sizes for the link's bandwidth term. */
    std::uint64_t scatterBytes = 64;
    std::uint64_t gatherBytes = 128;
    /** Simulation worker threads; 0 -> HSU_JOBS / hardware. */
    unsigned jobs = 0;
    /** Optional schedule-audit sink (analysis/schedule_log): lane
     *  events record under the lane's index, router events (routing,
     *  scatter/gather hops, joins, the router answer cache) under
     *  kRouterLane. Null disables recording; must outlive the run. */
    ScheduleLog *scheduleLog = nullptr;
};

/** Per-shard slice of a cluster run (replicas aggregated). */
struct ShardReport
{
    std::uint64_t subqueries = 0;    //!< delivered to this shard
    std::uint64_t batches = 0;       //!< kernel launches
    std::uint64_t shedAdmission = 0; //!< lane queue at shedWater
    std::uint64_t shedExpired = 0;   //!< dropped at batch formation
    std::uint64_t degraded = 0;      //!< served with degraded knobs
    Histogram queueWaitCycles;       //!< delivery -> dispatch
};

/** Aggregate results of one open-loop cluster run. */
struct ClusterReport
{
    std::uint64_t offered = 0;   //!< requests in the input stream
    std::uint64_t completed = 0; //!< merged with >= 1 shard answer
    /** Completed, but >= 1 sub-query was shed (partial answer). */
    std::uint64_t partialAnswers = 0;
    /** Every routed sub-query shed: no answer at all. */
    std::uint64_t shedRequests = 0;
    std::uint64_t subqueries = 0; //!< total scatter fan-out
    /** Answered by the router cache (never routed; counted in
     *  completed, not in fanout/subqueries). */
    std::uint64_t cacheHits = 0;
    Cycle lastCompletionCycle = 0;

    Histogram latencyCycles; //!< arrival -> merged, per request
    Histogram fanout;        //!< shards touched per request
    Histogram batchSize;     //!< requests per launch, cluster-wide
    /** Cluster-wide queue wait: Histogram::merge over the per-shard
     *  histograms (tested against oracle percentiles). */
    Histogram queueWaitCycles;

    std::vector<ShardReport> shards;

    /** Memory-system sums over every lane batch simulation
     *  (serve::SimTotals; deterministic resolve-order accumulation). */
    std::uint64_t kernelCycles = 0; //!< summed batch kernel cycles
    std::uint64_t smCycles = 0;     //!< kernel cycles x numSms
    double l1Accesses = 0;
    double l1Misses = 0;
    double rtuBusyCycles = 0;       //!< 0 on the non-RT baseline

    double
    achievedQps() const
    {
        if (lastCompletionCycle == 0)
            return 0.0;
        return static_cast<double>(completed) /
               (static_cast<double>(lastCompletionCycle) /
                serve::kClockHz);
    }

    double
    latencyUs(double p) const
    {
        return latencyCycles.percentile(p) / serve::kClockHz * 1.0e6;
    }

    /** Fraction of requests with degraded or missing answers. */
    double
    shedFraction() const
    {
        return offered ? static_cast<double>(partialAnswers +
                                             shedRequests) /
                             static_cast<double>(offered)
                       : 0.0;
    }

    /** L1 hit rate over every lane batch simulation. */
    double
    l1HitRate() const
    {
        return l1Accesses > 0 ? 1.0 - l1Misses / l1Accesses : 0.0;
    }

    /** RT-unit busy fraction of the cluster's SM-cycle budget. */
    double
    warpBufferResidency() const
    {
        return smCycles ? rtuBusyCycles / static_cast<double>(smCycles)
                        : 0.0;
    }

    /** Router answer-cache hit rate over the offered stream. */
    double
    cacheHitRate() const
    {
        return offered ? static_cast<double>(cacheHits) /
                             static_cast<double>(offered)
                       : 0.0;
    }
};

/** The sharded serving engine for one (algo, dataset) workload. */
class ClusterServer
{
  public:
    ClusterServer(Algo algo, DatasetId dataset,
                  const ClusterConfig &cfg);

    /**
     * Replay @p requests (nondecreasing arrival order) to completion.
     * Deterministic: depends only on the stream and the config, never
     * on HSU_JOBS / HSU_SIM_JOBS.
     */
    ClusterReport run(const std::vector<serve::Request> &requests);

  private:
    Algo algo_;
    DatasetId dataset_;
    ClusterConfig cfg_;
};

} // namespace hsu::shard

#endif // HSU_SHARD_CLUSTER_HH
