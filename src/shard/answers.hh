/**
 * @file
 * Functional answer sets for sharded serving: per-shard partial
 * answers, their scatter-gather merge, and independent unsharded
 * oracles.
 *
 * The cluster timing model (shard/cluster) charges cycles for shard
 * batches without materializing answers; this layer computes what
 * those batches would return, so tests and benches can pin the merge
 * contract: for every index family the merged sharded answer is
 * bit-identical to the unsharded answer, at any shard count.
 *
 * Per family:
 *  - FLANN / BVH-NN / B+tree partial answers come from the real
 *    per-shard kernels (search/flann, search/bvhnn,
 *    search/btree_kernel) run over the shard sub-indexes, with
 *    shard-local result ids mapped to global ids. These kernels are
 *    exact, so merging their partials must reproduce the oracle.
 *  - GGNN's beam search is approximate — per-shard beams would not
 *    compose into the unsharded beam answer. The answer layer instead
 *    treats each shard as an exact top-k scan of its slice (the
 *    filter step of a filter-refine contract); the GGNN *trace* in
 *    the cluster timing model still comes from the real beam kernel.
 *
 * Oracles are independent reference scans (no kernels, no trees), so
 * answer equality exercises partition coverage, routing soundness,
 * per-shard kernel exactness, and merge correctness at once.
 */

#ifndef HSU_SHARD_ANSWERS_HH
#define HSU_SHARD_ANSWERS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "search/runner.hh"
#include "shard/merge.hh"
#include "shard/partition.hh"

namespace hsu::shard
{

/** Answers for a batch of serving-pool queries; exactly one member is
 *  populated, per the algorithm family. */
struct AnswerSet
{
    std::vector<std::vector<Neighbor>> topk;          //!< Ggnn
    std::vector<Neighbor> nearest;                    //!< Flann
    std::vector<RadiusHit> radius;                    //!< Bvhnn
    std::vector<std::optional<std::uint32_t>> values; //!< Btree

    bool operator==(const AnswerSet &o) const;
};

/** Unsharded oracle: independent reference scan over the full base
 *  data (queries resolved against the serving pool of @p pool_size). */
AnswerSet answerUnsharded(Algo algo, DatasetId dataset,
                          const std::vector<std::uint32_t> &query_ids,
                          std::size_t pool_size, unsigned k = 10);

/**
 * Sharded answer: route every query (shard/shard_index routeQuery),
 * run each shard's partial answer over the queries routed to it, map
 * shard-local ids to global, and merge (shard/merge). Bit-identical
 * to answerUnsharded() for any (policy, num_shards).
 */
AnswerSet answerSharded(Algo algo, DatasetId dataset,
                        PartitionPolicy policy, unsigned num_shards,
                        const std::vector<std::uint32_t> &query_ids,
                        std::size_t pool_size, unsigned k = 10);

} // namespace hsu::shard

#endif // HSU_SHARD_ANSWERS_HH
