/**
 * @file
 * Streaming-multiprocessor timing model.
 *
 * Each SM has four sub-cores issuing one instruction per cycle under a
 * greedy-then-oldest (GTO) warp scheduler, a shared LSU, and (when
 * enabled) one RT/HSU unit shared by the sub-cores. The LSU and the RT
 * unit's FIFO memory queue time-share the single L1D port. Warp-level
 * dependencies run through a 32-bit token scoreboard per warp.
 */

#ifndef HSU_SIM_SM_HH
#define HSU_SIM_SM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/cycletime.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "rtunit/rtunit.hh"
#include "sim/config.hh"
#include "sim/lsu.hh"
#include "sim/trace.hh"

namespace hsu
{

/** One SM: sub-cores, warp slots, LSU, and optionally an RT/HSU unit. */
class Sm
{
  public:
    Sm(const GpuConfig &cfg, unsigned sm_id, Cache &l1, StatGroup &stats);

    /** Queue a warp for execution on this SM. */
    void addWarp(const WarpTrace *trace);

    /** Advance one cycle. */
    void tick(std::uint64_t now);

    /** True when every queued warp has retired and units drained. */
    bool done() const;

    /**
     * Earliest future cycle at which ticking this SM could do anything,
     * assuming no memory completion arrives earlier: pending LSU / RT
     * memory-queue traffic (every cycle), a sub-core instruction block
     * expiring, a warp's trailing block finishing (retirement), or an
     * RT-unit internal event. Warps blocked on tokens are woken by
     * completions, which are events of the memory system / RT unit.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Cached-event-probe variant for the horizon loop: called once
     * right after tick(now), it returns the SM's next self-event with
     * a dense-phase backoff — after cfg.probeDenseStreak consecutive
     * "next cycle" answers it stops re-scanning and answers now + 1
     * unconditionally for cfg.probeInterval ticks. The backoff only
     * ever under-estimates (extra ticks of an unchanged SM are
     * no-ops), so results are unaffected; it bounds the scan cost in
     * compute-dense phases where the answer is always "next cycle".
     */
    Cycle nextEventAfterTick(Cycle now);

    /**
     * True when a memory completion reached this SM since its last
     * tick (set by the L1's completion observer), invalidating the
     * cached next-event value. Cleared at the start of tick().
     */
    bool wakePending() const { return wakePending_; }

    /**
     * Account per-cycle occupancy stats for the eventless gap
     * (now, next) exactly as the per-cycle loop would have: busy
     * sub-cores stay busy for the whole gap, stalled sub-cores stay
     * stalled with unchanged candidates, empty sub-cores stay idle.
     */
    void fastForwardStats(Cycle now, Cycle next);

    /** Access to the RT unit (may be null in the baseline config). */
    RtUnit *rtUnit() { return rt_.get(); }

  private:
    enum class TryResult : std::uint8_t
    {
        Issued,
        Blocked,
    };

    struct WarpCtx
    {
        const WarpTrace *trace = nullptr;
        std::size_t pc = 0;
        std::uint32_t pendingTokens = 0;
        /**
         * Tokens cleared by completions since this SM last ticked.
         * fastForwardStats needs the token state *during* a skipped
         * gap; the horizon loop applies a wake cycle's completions
         * before the catch-up call, so the gap-time mask is
         * pendingTokens | clearedSinceTick. Zero whenever the SM is
         * ticked every cycle (completions precede the tick).
         */
        std::uint32_t clearedSinceTick = 0;
        unsigned beatsIssued = 0;
        unsigned outstanding = 0;
        std::uint64_t order = 0;
        std::uint64_t blockEnd = 0; //!< last Alu/Shared block finishes
        bool active = false;
    };

    struct SubCore
    {
        std::vector<unsigned> slots; //!< warp slots owned by this sub-core
        int greedy = -1;             //!< slot issued most recently
        std::uint64_t busyUntil = 0; //!< multi-instruction block occupancy
        bool busyOffloadable = false;
    };

    TryResult tryIssue(unsigned slot, SubCore &sc, std::uint64_t now,
                       bool &offloadable_attr);
    void retireFinished(std::uint64_t now);
    void activatePending();
    void issueSubCore(SubCore &sc, std::uint64_t now);

    /** Fill @p order with the sub-core's issue candidates (greedy warp
     *  first, then oldest-first) and return the candidate count. */
    unsigned buildCandidateOrder(const SubCore &sc, unsigned order[64],
                                 unsigned &greedy_count) const;

    const GpuConfig &cfg_;
    unsigned smId_;
    Cache &l1_;
    std::unique_ptr<Lsu> lsu_;
    std::unique_ptr<RtUnit> rt_;

    std::vector<WarpCtx> warps_;
    std::vector<SubCore> subCores_;
    std::deque<const WarpTrace *> pending_;
    std::uint64_t nextOrder_ = 0;
    std::size_t activeCount_ = 0;
    bool wakePending_ = false;
    bool anyCleared_ = false;  //!< some warp has clearedSinceTick bits
    unsigned denseStreak_ = 0; //!< consecutive "event next cycle" probes
    unsigned probeHold_ = 0;   //!< remaining ticks answering now+1 blind

    Stat &statSlotCycles_;
    Stat &statBusyCycles_;
    Stat &statOffloadableCycles_;
    Stat &statStallCycles_;
    Stat &statIdleCycles_;
    Stat &statInstrsIssued_;
    Stat &statWarpsRetired_;
};

} // namespace hsu

#endif // HSU_SIM_SM_HH
