#include "sim/gpu.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/phase_timer.hh"

namespace hsu
{

namespace
{

bool
noSkipRequested()
{
    const char *v = std::getenv("HSU_NO_SKIP");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

} // namespace

Gpu::Gpu(const GpuConfig &cfg, StatGroup &stats)
    : cfg_(cfg), stats_(stats),
      statFfCycles_(stats.scalar("sim.ff_cycles"))
{
    cfg_.finalize();
    mem_ = std::make_unique<MemorySystem>(cfg_.mem, stats_);
    for (unsigned i = 0; i < cfg_.numSms; ++i)
        sms_.push_back(std::make_unique<Sm>(cfg_, i, mem_->l1(i),
                                            stats_));
}

bool
Gpu::allDone() const
{
    for (const auto &sm : sms_) {
        if (!sm->done())
            return false;
    }
    return mem_->idle();
}

Cycle
Gpu::nextEventCycle(Cycle now) const
{
    Cycle next = mem_->nextEventCycle(now);
    for (const auto &sm : sms_)
        next = std::min(next, sm->nextEventCycle(now));
    return next;
}

void
Gpu::panicWedged(const char *why, std::uint64_t now)
{
    // Dump forensic state before dying: a wedged simulation is always
    // a simulator bug.
    for (const auto &[name, value] : stats_.dump())
        // audit[stray-stdio]: forensic dump on the panic path
        std::fprintf(stderr, "  %s = %.0f\n", name.c_str(), value);
    hsu_panic(why, " at cycle ", now);
}

RunResult
Gpu::run(const KernelTrace &trace, std::uint64_t max_cycles)
{
    // Distribute warps round-robin across SMs (thread-block scheduler).
    for (std::size_t i = 0; i < trace.warps.size(); ++i)
        sms_[i % sms_.size()]->addWarp(&trace.warps[i]);

    const bool skip = !noSkipRequested();
    // Adaptive probe backoff: when every probe answers "event next
    // cycle" the machine is saturated and nextEventCycle() is pure
    // overhead, so after kDenseStreak consecutive no-gap answers we
    // single-step kProbeInterval cycles between probes. A gap opening
    // mid-window is entered at most kProbeInterval cycles late — small
    // against the DRAM latencies that create gaps — and single-
    // stepping is always exact, so results are unaffected.
    constexpr unsigned kDenseStreak = 32;
    constexpr unsigned kProbeInterval = 32;
    unsigned dense_streak = 0;
    unsigned probe_wait = 0;
    // In no-skip mode, the predicted end of the current eventless gap;
    // every cycle strictly inside it must confirm the prediction.
    Cycle predicted_event = 0;

    std::uint64_t now = 0;
    for (;;) {
        if (now >= max_cycles)
            panicWedged("simulation exceeded cycle bound", now);
        mem_->tick(now);
        for (auto &sm : sms_)
            sm->tick(now);

        // Exact completion: no check-period slack inflating the count.
        if (allDone())
            break;

        if (skip && probe_wait > 0) {
            --probe_wait;
            ++now;
            continue;
        }

        const Cycle next = nextEventCycle(now);
        if (next == kNeverCycle)
            panicWedged("no future event but simulation not done", now);
        // Main simulation loop: release builds skip the check.
        hsu_debug_assert(next > now,
                         "next event cycle must be in the future");

        if (skip) {
            if (next > now + 1) {
                // The gap (now, next) is provably eventless: account
                // the per-cycle occupancy stats the skipped ticks would
                // have recorded, then jump.
                for (auto &sm : sms_)
                    sm->fastForwardStats(now, next);
                statFfCycles_ +=
                    static_cast<double>(next - now - 1);
                dense_streak = 0;
            } else if (++dense_streak >= kDenseStreak) {
                probe_wait = kProbeInterval;
                dense_streak = 0;
            }
            now = next;
        } else {
            // Debug mode: single-step, but verify the skipper's claim
            // that nothing happens strictly inside a predicted gap.
            if (now + 1 < predicted_event) {
                if (next != predicted_event) {
                    panicWedged("event-skip invariant violated: "
                                "event appeared inside predicted gap",
                                now);
                }
            } else {
                predicted_event = next;
            }
            ++now;
        }
    }

    RunResult r;
    r.cycles = now + 1;
    r.instrsIssued = stats_.get("sm.instrs_issued");
    r.hsuCompleted = stats_.get("rtu.completed");
    r.l2LinesAccessed = stats_.get("l2.lines_accessed");
    for (unsigned i = 0; i < cfg_.numSms; ++i) {
        const std::string p = "l1d." + std::to_string(i);
        r.l1Accesses += stats_.get(p + ".accesses");
        r.l1Misses += stats_.get(p + ".misses");
    }
    r.dramRowLocality = mem_->dram().rowLocality();
    const double busy = stats_.get("sm.busy_cycles") +
                        stats_.get("sm.stall_cycles");
    r.offloadableFraction =
        busy > 0 ? stats_.get("sm.offloadable_cycles") / busy : 0.0;
    return r;
}

RunResult
simulateKernel(const GpuConfig &cfg, const KernelTrace &trace,
               StatGroup &stats)
{
    const ScopedPhaseTimer timer(PipelinePhase::Simulate);
    Gpu gpu(cfg, stats);
    return gpu.run(trace);
}

RunResult
simulateKernel(const GpuConfig &cfg,
               const std::shared_ptr<const KernelTrace> &trace,
               StatGroup &stats)
{
    hsu_assert(trace, "simulateKernel: null shared trace");
    return simulateKernel(cfg, *trace, stats);
}

} // namespace hsu
