#include "sim/gpu.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/phase_timer.hh"

namespace hsu
{

namespace
{

[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kSmMergeAudit, audit::NondetKind::FloatAccumulation,
    "gpu.cc:mergeSmStats",
    "per-SM stat partial sums merged in SM-index order; every simulator "
    "stat increment is an exact small integer (< 2^53), so accumulation "
    "order cannot change the totals");

/**
 * Environment defaults are latched on first use: a Gpu is constructed
 * per kernel run and a bench fleet runs thousands of them, so per-run
 * getenv() calls are both measurable and a determinism hazard (a
 * mid-run setenv would flip behavior between simulations). Tests that
 * need a non-default value use the GpuConfig overrides instead.
 */
bool
processNoSkipDefault()
{
    static const bool v = [] {
        // audit[env-read]: read once per process (see file comment)
        const char *e = std::getenv("HSU_NO_SKIP");
        return e != nullptr && e[0] != '\0' && e[0] != '0';
    }();
    return v;
}

unsigned
processSimJobsDefault()
{
    static const unsigned v = [] {
        // audit[env-read]: read once per process (see file comment)
        if (const char *env = std::getenv("HSU_SIM_JOBS")) {
            char *end = nullptr;
            const long n = std::strtol(env, &end, 10);
            if (end != env && *end == '\0' && n > 0)
                return static_cast<unsigned>(n);
            // Malformed values fall back to the serial loop rather
            // than silently picking a thread count.
        }
        return 1u;
    }();
    return v;
}

} // namespace

Gpu::Gpu(const GpuConfig &cfg, StatGroup &stats)
    : cfg_(cfg), stats_(stats),
      statFfCycles_(stats.scalar("sim.ff_cycles")),
      statHorizonCycles_(stats.scalar("sim.horizon_cycles"))
{
    cfg_.finalize();
    mem_ = std::make_unique<MemorySystem>(cfg_.mem, stats_);
    for (unsigned i = 0; i < cfg_.numSms; ++i) {
        // Per-SM staging group: SMs share stat *names* ("sm.*",
        // "lsu.*", "rtu.*"), and a shared accumulator would be the one
        // data race of the parallel SM phase. L1 stats stay in the
        // caller's group — their names are per-SM already.
        smStats_.push_back(std::make_unique<StatGroup>());
        sms_.push_back(std::make_unique<Sm>(cfg_, i, mem_->l1(i),
                                            *smStats_.back()));
    }
}

bool
Gpu::allDone() const
{
    for (const auto &sm : sms_) {
        if (!sm->done())
            return false;
    }
    return mem_->idle();
}

Cycle
Gpu::nextEventCycle(Cycle now) const
{
    Cycle next = mem_->nextEventCycle(now);
    for (const auto &sm : sms_)
        next = std::min(next, sm->nextEventCycle(now));
    return next;
}

void
Gpu::mergeSmStats()
{
    if (smStatsMerged_)
        return;
    smStatsMerged_ = true;
    for (const auto &group : smStats_) {
        for (const auto &[name, value] : group->dump())
            stats_.scalar(name) += value;
    }
}

void
Gpu::panicWedged(const char *why, std::uint64_t now)
{
    // Dump forensic state before dying: a wedged simulation is always
    // a simulator bug.
    mergeSmStats();
    for (const auto &[name, value] : stats_.dump())
        // audit[stray-stdio]: forensic dump on the panic path
        std::fprintf(stderr, "  %s = %.0f\n", name.c_str(), value);
    hsu_panic(why, " at cycle ", now);
}

void
Gpu::runSerial(std::uint64_t &now, std::uint64_t max_cycles, bool skip)
{
    // Adaptive probe backoff: when every probe answers "event next
    // cycle" the machine is saturated and nextEventCycle() is pure
    // overhead, so after probeDenseStreak consecutive no-gap answers we
    // single-step probeInterval cycles between probes. A gap opening
    // mid-window is entered at most probeInterval cycles late — small
    // against the DRAM latencies that create gaps — and single-
    // stepping is always exact, so results are unaffected.
    unsigned dense_streak = 0;
    unsigned probe_wait = 0;
    // In no-skip mode, the predicted end of the current eventless gap;
    // every cycle strictly inside it must confirm the prediction.
    Cycle predicted_event = 0;

    for (;;) {
        if (now >= max_cycles)
            panicWedged("simulation exceeded cycle bound", now);
        mem_->tick(now);
        for (auto &sm : sms_)
            sm->tick(now);

        // Exact completion: no check-period slack inflating the count.
        if (allDone())
            break;

        if (skip && probe_wait > 0) {
            --probe_wait;
            ++now;
            continue;
        }

        const Cycle next = nextEventCycle(now);
        if (next == kNeverCycle)
            panicWedged("no future event but simulation not done", now);
        // Main simulation loop: release builds skip the check.
        hsu_debug_assert(next > now,
                         "next event cycle must be in the future");

        if (skip) {
            if (next > now + 1) {
                // The gap (now, next) is provably eventless: account
                // the per-cycle occupancy stats the skipped ticks would
                // have recorded, then jump.
                for (auto &sm : sms_)
                    sm->fastForwardStats(now, next);
                statFfCycles_ +=
                    static_cast<double>(next - now - 1);
                dense_streak = 0;
            } else if (cfg_.probeDenseStreak != 0 &&
                       ++dense_streak >= cfg_.probeDenseStreak) {
                probe_wait = cfg_.probeInterval;
                dense_streak = 0;
            }
            now = next;
        } else {
            // Debug mode: single-step, but verify the skipper's claim
            // that nothing happens strictly inside a predicted gap.
            if (now + 1 < predicted_event) {
                if (next != predicted_event) {
                    panicWedged("event-skip invariant violated: "
                                "event appeared inside predicted gap",
                                now);
                }
            } else {
                predicted_event = next;
            }
            ++now;
        }
    }
}

void
Gpu::catchUpAndTick(unsigned i, Cycle now)
{
    Sm &sm = *sms_[i];
    const Cycle last = smLastTicked_[i];
    if (last + 1 < now) {
        // The SM sat out (last, now): no self-event was due and no
        // completion reached it (a completion forces a tick that same
        // cycle), so its state is exactly what a per-cycle loop would
        // have carried through the gap — account the occupancy stats
        // the skipped ticks would have recorded. This cycle's
        // completions (applied just before this call) don't disturb
        // the accounting: fastForwardStats reads only SM-phase state.
        sm.fastForwardStats(last, now);
        smSkipped_[i] += now - last - 1;
    }
    sm.tick(now);
    smNextEvent_[i] = cfg_.eventCache ? sm.nextEventAfterTick(now)
                                      : now + 1;
    smLastTicked_[i] = now;
}

void
Gpu::runHorizon(std::uint64_t &now, std::uint64_t max_cycles,
                unsigned workers)
{
    if (workers > 1)
        team_ = std::make_unique<TickTeam>(workers);

    const unsigned n = static_cast<unsigned>(sms_.size());
    smNextEvent_.assign(n, 0);  // everyone ticks at cycle 0
    smLastTicked_.assign(n, 0);
    smSkipped_.assign(n, 0);
    activeSms_.reserve(n);

    for (;;) {
        if (now >= max_cycles)
            panicWedged("simulation exceeded cycle bound", now);

        // Serial memory phase: the canonical commit point. Staged L1
        // traffic drains in SM-index order and completions fire here,
        // flagging the SMs they woke.
        mem_->tick(now);

        activeSms_.clear();
        for (unsigned i = 0; i < n; ++i) {
            if (sms_[i]->wakePending() || smNextEvent_[i] <= now)
                activeSms_.push_back(i);
        }

        // Parallel SM phase. SMs share nothing here (private L1s,
        // per-SM stat groups); the barrier orders it against the
        // memory phases on either side. Small cycles run inline — a
        // barrier round trip costs more than one or two SM ticks.
        if (team_ && activeSms_.size() >= 2) {
            team_->run(
                [this, now](std::size_t begin, std::size_t end) {
                    for (std::size_t k = begin; k < end; ++k)
                        catchUpAndTick(activeSms_[k], now);
                },
                activeSms_.size());
        } else {
            for (const unsigned i : activeSms_)
                catchUpAndTick(i, now);
        }

        if (allDone())
            break;

        // The horizon: the earliest cycle anything can happen — a
        // memory-system event (which includes every pending completion
        // delivery) or a cached SM self-event. Every wake cycle is a
        // memory event, so no SM can be woken inside the jump.
        Cycle next = mem_->nextEventCycle(now);
        for (unsigned i = 0; i < n; ++i)
            next = std::min(next, smNextEvent_[i]);
        if (next == kNeverCycle)
            panicWedged("no future event but simulation not done", now);
        hsu_debug_assert(next > now,
                         "next event cycle must be in the future");
        if (next > now + 1)
            statFfCycles_ += static_cast<double>(next - now - 1);
        now = next;
    }

    // SMs that sat out the tail still account per-cycle occupancy
    // through the completion cycle, as the serial loop would (it ticks
    // every SM on the break cycle too).
    for (unsigned i = 0; i < n; ++i) {
        if (smLastTicked_[i] < now) {
            sms_[i]->fastForwardStats(smLastTicked_[i], now + 1);
            smSkipped_[i] += now - smLastTicked_[i];
        }
    }
    for (const std::uint64_t skipped : smSkipped_)
        statHorizonCycles_ += static_cast<double>(skipped);
}

RunResult
Gpu::run(const KernelTrace &trace, std::uint64_t max_cycles)
{
    // Distribute warps round-robin across SMs (thread-block scheduler).
    for (std::size_t i = 0; i < trace.warps.size(); ++i)
        sms_[i % sms_.size()]->addWarp(&trace.warps[i]);

    const bool no_skip =
        cfg_.noSkip < 0 ? processNoSkipDefault() : cfg_.noSkip != 0;
    const unsigned jobs =
        cfg_.simJobs > 0 ? cfg_.simJobs : processSimJobsDefault();
    // Threads beyond the SM count or the machine never help; clamping
    // cannot change results (the horizon loop is schedule-oblivious).
    const unsigned workers = std::min(
        {jobs, cfg_.numSms,
         std::max(1u, std::thread::hardware_concurrency())});

    std::uint64_t now = 0;
    if (jobs > 1 && !no_skip)
        runHorizon(now, max_cycles, workers);
    else
        runSerial(now, max_cycles, !no_skip);

    mergeSmStats();

    RunResult r;
    r.cycles = now + 1;
    r.instrsIssued = stats_.get("sm.instrs_issued");
    r.hsuCompleted = stats_.get("rtu.completed");
    r.l2LinesAccessed = stats_.get("l2.lines_accessed");
    for (unsigned i = 0; i < cfg_.numSms; ++i) {
        const std::string p = "l1d." + std::to_string(i);
        r.l1Accesses += stats_.get(p + ".accesses");
        r.l1Misses += stats_.get(p + ".misses");
    }
    r.dramRowLocality = mem_->dram().rowLocality();
    const double busy = stats_.get("sm.busy_cycles") +
                        stats_.get("sm.stall_cycles");
    r.offloadableFraction =
        busy > 0 ? stats_.get("sm.offloadable_cycles") / busy : 0.0;
    return r;
}

RunResult
simulateKernel(const GpuConfig &cfg, const KernelTrace &trace,
               StatGroup &stats)
{
    const ScopedPhaseTimer timer(PipelinePhase::Simulate);
    Gpu gpu(cfg, stats);
    return gpu.run(trace);
}

RunResult
simulateKernel(const GpuConfig &cfg,
               const std::shared_ptr<const KernelTrace> &trace,
               StatGroup &stats)
{
    hsu_assert(trace, "simulateKernel: null shared trace");
    return simulateKernel(cfg, *trace, stats);
}

} // namespace hsu
