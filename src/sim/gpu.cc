#include "sim/gpu.hh"

#include <cstdio>

#include "common/logging.hh"

namespace hsu
{

Gpu::Gpu(const GpuConfig &cfg, StatGroup &stats)
    : cfg_(cfg), stats_(stats)
{
    cfg_.finalize();
    mem_ = std::make_unique<MemorySystem>(cfg_.mem, stats_);
    for (unsigned i = 0; i < cfg_.numSms; ++i)
        sms_.push_back(std::make_unique<Sm>(cfg_, i, mem_->l1(i),
                                            stats_));
}

RunResult
Gpu::run(const KernelTrace &trace, std::uint64_t max_cycles)
{
    // Distribute warps round-robin across SMs (thread-block scheduler).
    for (std::size_t i = 0; i < trace.warps.size(); ++i)
        sms_[i % sms_.size()]->addWarp(&trace.warps[i]);

    std::uint64_t now = 0;
    for (;; ++now) {
        if (now >= max_cycles) {
            // Dump forensic state before dying: a wedged simulation is
            // always a simulator bug.
            for (const auto &[name, value] : stats_.dump())
                std::fprintf(stderr, "  %s = %.0f\n", name.c_str(),
                             value);
            hsu_panic("simulation exceeded cycle bound ", max_cycles);
        }
        mem_->tick(now);
        for (auto &sm : sms_)
            sm->tick(now);

        if ((now & 0x3f) == 0) {
            bool all_done = true;
            for (auto &sm : sms_) {
                if (!sm->done()) {
                    all_done = false;
                    break;
                }
            }
            if (all_done && mem_->idle())
                break;
        }
    }

    RunResult r;
    r.cycles = now + 1;
    r.instrsIssued = stats_.get("sm.instrs_issued");
    r.hsuCompleted = stats_.get("rtu.completed");
    r.l2LinesAccessed = stats_.get("l2.lines_accessed");
    for (unsigned i = 0; i < cfg_.numSms; ++i) {
        const std::string p = "l1d." + std::to_string(i);
        r.l1Accesses += stats_.get(p + ".accesses");
        r.l1Misses += stats_.get(p + ".misses");
    }
    r.dramRowLocality = mem_->dram().rowLocality();
    const double busy = stats_.get("sm.busy_cycles") +
                        stats_.get("sm.stall_cycles");
    r.offloadableFraction =
        busy > 0 ? stats_.get("sm.offloadable_cycles") / busy : 0.0;
    return r;
}

RunResult
simulateKernel(const GpuConfig &cfg, const KernelTrace &trace,
               StatGroup &stats)
{
    Gpu gpu(cfg, stats);
    return gpu.run(trace);
}

} // namespace hsu
