/**
 * @file
 * Whole-GPU configuration (Table III of the paper).
 *
 * The paper simulates an 80-SM Volta V100. For tractable runtimes we
 * default to a smaller SM count with identically-configured SMs and
 * proportionally scaled workloads; all reported figures are relative
 * (speedups, ratios), which are per-SM-throughput faithful. Set
 * numSms = 80 to reproduce the full-chip configuration.
 */

#ifndef HSU_SIM_CONFIG_HH
#define HSU_SIM_CONFIG_HH

#include <cstdint>

#include "hsu/isa.hh"
#include "mem/memsys.hh"

namespace hsu
{

/** Warp-scheduler policies supported by the sub-cores. */
enum class SchedulerPolicy : std::uint8_t
{
    Gto,       //!< greedy-then-oldest (Table III default)
    RoundRobin //!< loose round-robin (for ablations)
};

/** Timing and capacity parameters for one SM and the whole GPU. */
struct GpuConfig
{
    // --- Table III parameters -------------------------------------
    unsigned numSms = 4;          //!< paper: 80 (scaled, see file docs)
    unsigned subCoresPerSm = 4;
    SchedulerPolicy scheduler = SchedulerPolicy::Gto;
    unsigned maxWarpsPerSm = 64;
    unsigned rtUnitsPerSm = 1;
    unsigned warpBufferSize = 8;  //!< RT unit warp buffer entries
    bool rtFetchMerging = true;   //!< CISC fetch line merging (ablation)

    // --- SM pipeline timing ---------------------------------------
    unsigned aluLatency = 4;      //!< dependent-use latency of ALU ops
    unsigned sharedLatency = 24;  //!< shared-memory dependent-use latency
    unsigned lsuQueueSize = 32;   //!< pending line-accesses in the LSU

    // --- RT / HSU unit --------------------------------------------
    bool rtUnitEnabled = true;    //!< false = non-RT baseline GPU
    DatapathConfig datapath{};

    // --- Memory hierarchy (L1/L2/DRAM, Table III) ------------------
    MemSysParams mem{};

    /** Convenience: configure the memory system for numSms L1s. */
    void
    finalize()
    {
        mem.numL1 = numSms;
    }
};

} // namespace hsu

#endif // HSU_SIM_CONFIG_HH
