/**
 * @file
 * Whole-GPU configuration (Table III of the paper).
 *
 * The paper simulates an 80-SM Volta V100. For tractable runtimes we
 * default to a smaller SM count with identically-configured SMs and
 * proportionally scaled workloads; all reported figures are relative
 * (speedups, ratios), which are per-SM-throughput faithful. Set
 * numSms = 80 to reproduce the full-chip configuration.
 */

#ifndef HSU_SIM_CONFIG_HH
#define HSU_SIM_CONFIG_HH

#include <cstdint>

#include "hsu/isa.hh"
#include "mem/memsys.hh"

namespace hsu
{

/** Warp-scheduler policies supported by the sub-cores. */
enum class SchedulerPolicy : std::uint8_t
{
    Gto,       //!< greedy-then-oldest (Table III default)
    RoundRobin //!< loose round-robin (for ablations)
};

/** Timing and capacity parameters for one SM and the whole GPU. */
struct GpuConfig
{
    // --- Table III parameters -------------------------------------
    unsigned numSms = 4;          //!< paper: 80 (scaled, see file docs)
    unsigned subCoresPerSm = 4;
    SchedulerPolicy scheduler = SchedulerPolicy::Gto;
    unsigned maxWarpsPerSm = 64;
    unsigned rtUnitsPerSm = 1;
    unsigned warpBufferSize = 8;  //!< RT unit warp buffer entries
    bool rtFetchMerging = true;   //!< CISC fetch line merging (ablation)

    // --- SM pipeline timing ---------------------------------------
    unsigned aluLatency = 4;      //!< dependent-use latency of ALU ops
    unsigned sharedLatency = 24;  //!< shared-memory dependent-use latency
    unsigned lsuQueueSize = 32;   //!< pending line-accesses in the LSU

    // --- RT / HSU unit --------------------------------------------
    bool rtUnitEnabled = true;    //!< false = non-RT baseline GPU
    DatapathConfig datapath{};

    // --- Simulation execution (host-side; no timing effect) --------
    /**
     * Intra-simulation worker threads for the event-horizon run loop
     * (see DESIGN.md "Deterministic intra-simulation parallelism").
     * 0 reads HSU_SIM_JOBS once per process (default 1). 1 is the
     * exact reference serial loop; > 1 selects the horizon loop, whose
     * results are bit-identical by construction. The effective thread
     * count is additionally clamped to numSms and the hardware
     * concurrency, which cannot change results (SM phases are
     * independent and statistics are staged per SM).
     */
    unsigned simJobs = 0;
    /**
     * Serial-loop probe backoff: after probeDenseStreak consecutive
     * "event next cycle" answers, single-step probeInterval cycles
     * between nextEventCycle() probes. The same constants bound how
     * often a dense SM re-scans for its next event in the horizon
     * loop. Exposed so the per-SM event cache can be A/B'd against
     * the probe scan — values only trade host time, never results.
     */
    unsigned probeDenseStreak = 32;
    unsigned probeInterval = 32;
    /**
     * Cache per-SM next-event cycles across skipped cycles (horizon
     * loop only). false falls back to ticking every SM every cycle —
     * the A/B baseline for measuring what the event cache buys.
     * Results are bit-identical either way.
     */
    bool eventCache = true;
    /**
     * Idle-cycle skipping override: -1 reads HSU_NO_SKIP once per
     * process, 0 forces skipping on, 1 forces the single-stepped
     * debug loop (which also pins simJobs to the serial path).
     */
    int noSkip = -1;

    // --- Memory hierarchy (L1/L2/DRAM, Table III) ------------------
    MemSysParams mem{};

    /** Convenience: configure the memory system for numSms L1s. */
    void
    finalize()
    {
        mem.numL1 = numSms;
    }
};

} // namespace hsu

#endif // HSU_SIM_CONFIG_HH
