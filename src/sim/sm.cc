#include "sim/sm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

Sm::Sm(const GpuConfig &cfg, unsigned sm_id, Cache &l1, StatGroup &stats)
    : cfg_(cfg), smId_(sm_id), l1_(l1),
      statSlotCycles_(stats.scalar("sm.slot_cycles")),
      statBusyCycles_(stats.scalar("sm.busy_cycles")),
      statOffloadableCycles_(stats.scalar("sm.offloadable_cycles")),
      statStallCycles_(stats.scalar("sm.stall_cycles")),
      statIdleCycles_(stats.scalar("sm.idle_cycles")),
      statInstrsIssued_(stats.scalar("sm.instrs_issued")),
      statWarpsRetired_(stats.scalar("sm.warps_retired"))
{
    lsu_ = std::make_unique<Lsu>(cfg.lsuQueueSize, l1, stats, "lsu");
    if (cfg.rtUnitEnabled) {
        RtUnitParams rp;
        rp.warpBufferSize = cfg.warpBufferSize;
        rp.fetchMerging = cfg.rtFetchMerging;
        rp.pipelineDepth = cfg.datapath.pipelineDepth;
        rp.name = "rtu";
        rt_ = std::make_unique<RtUnit>(rp, l1, stats);
    }

    warps_.resize(cfg.maxWarpsPerSm);
    subCores_.resize(cfg.subCoresPerSm);
    for (unsigned slot = 0; slot < cfg.maxWarpsPerSm; ++slot)
        subCores_[slot % cfg.subCoresPerSm].slots.push_back(slot);

    // Every cross-boundary wake (LSU group done, store retire, HSU op
    // done, RT line arrival) funnels through this L1's completion
    // queue, so one observer invalidates the cached next-event value
    // whenever the memory system touched this SM's state.
    l1.setCompletionObserver([this] { wakePending_ = true; });
}

void
Sm::addWarp(const WarpTrace *trace)
{
    pending_.push_back(trace);
}

void
Sm::activatePending()
{
    if (pending_.empty())
        return;
    for (unsigned slot = 0; slot < warps_.size() && !pending_.empty();
         ++slot) {
        WarpCtx &w = warps_[slot];
        if (w.active)
            continue;
        w.trace = pending_.front();
        pending_.pop_front();
        w.pc = 0;
        w.pendingTokens = 0;
        w.clearedSinceTick = 0;
        w.beatsIssued = 0;
        w.outstanding = 0;
        w.blockEnd = 0;
        w.order = nextOrder_++;
        w.active = true;
        ++activeCount_;
    }
}

void
Sm::retireFinished(std::uint64_t now)
{
    for (auto &w : warps_) {
        if (w.active && w.pc >= w.trace->ops.size() &&
            w.outstanding == 0 && w.blockEnd <= now) {
            // Per-cycle path: release builds skip the check.
            hsu_debug_assert(w.pendingTokens == 0,
                             "warp retired with pending tokens");
            w.active = false;
            w.trace = nullptr;
            --activeCount_;
            ++statWarpsRetired_;
        }
    }
}

Sm::TryResult
Sm::tryIssue(unsigned slot, SubCore &sc, std::uint64_t now,
             bool &offloadable_attr)
{
    WarpCtx &w = warps_[slot];
    const TraceOp &op = w.trace->ops[w.pc];
    offloadable_attr = op.offloadable;

    const std::uint32_t prod_mask =
        op.produces != kNoToken ? (1u << op.produces) : 0u;
    if ((op.consumesMask | prod_mask) & w.pendingTokens)
        return TryResult::Blocked;

    const unsigned sub_core_id =
        static_cast<unsigned>(&sc - subCores_.data());

    switch (op.type) {
      case OpType::Alu:
      case OpType::Shared:
        // A block of `count` back-to-back SIMD instructions occupies
        // the sub-core's issue port for `count` cycles (GTO would issue
        // them greedily back-to-back anyway).
        sc.busyUntil = now + op.count;
        sc.busyOffloadable = op.offloadable;
        w.blockEnd = now + op.count;
        statInstrsIssued_ += static_cast<double>(op.count);
        ++w.pc;
        return TryResult::Issued;

      case OpType::Load: {
        const auto lines =
            coalesceLines(*w.trace, op, l1_.params().lineBytes);
        WarpCtx *wp = &w;
        MemCompletion done = [this, wp, prod_mask]() {
            wp->pendingTokens &= ~prod_mask;
            wp->clearedSinceTick |= prod_mask;
            anyCleared_ = true;
            --wp->outstanding;
        };
        if (!lsu_->issue(lines, false, std::move(done)))
            return TryResult::Blocked;
        w.pendingTokens |= prod_mask;
        ++w.outstanding;
        ++statInstrsIssued_;
        ++w.pc;
        return TryResult::Issued;
      }

      case OpType::Store: {
        const auto lines =
            coalesceLines(*w.trace, op, l1_.params().lineBytes);
        WarpCtx *wp = &w;
        if (!lsu_->issue(lines, true, [wp]() { --wp->outstanding; }))
            return TryResult::Blocked;
        ++w.outstanding;
        ++statInstrsIssued_;
        ++w.pc;
        return TryResult::Issued;
      }

      case OpType::HsuOp: {
        hsu_assert(rt_ != nullptr,
                   "HSU op in trace but RT unit disabled");
        WarpCtx *wp = &w;
        MemCompletion done = [this, wp, prod_mask]() {
            wp->pendingTokens &= ~prod_mask;
            wp->clearedSinceTick |= prod_mask;
            anyCleared_ = true;
            --wp->outstanding;
        };
        if (!rt_->tryDispatch(sub_core_id, slot, *w.trace, op,
                              std::move(done), now)) {
            return TryResult::Blocked;
        }
        // The warp streams the sequence's `count` instructions from
        // its issue port back-to-back (GTO keeps it greedy, §IV-F).
        sc.busyUntil = now + op.count;
        sc.busyOffloadable = false;
        w.blockEnd = now + op.count;
        w.pendingTokens |= prod_mask;
        ++w.outstanding;
        statInstrsIssued_ += static_cast<double>(op.count);
        ++w.pc;
        return TryResult::Issued;
      }
    }
    hsu_panic("unreachable op type");
}

unsigned
Sm::buildCandidateOrder(const SubCore &sc, unsigned order[64],
                        unsigned &greedy_count) const
{
    // Fixed scratch storage (this runs every sub-core cycle — no heap
    // traffic allowed): greedy warp first (GTO), then the rest
    // oldest-first.
    unsigned count = 0;
    if (sc.greedy >= 0 &&
        warps_[static_cast<unsigned>(sc.greedy)].active &&
        warps_[static_cast<unsigned>(sc.greedy)].pc <
            warps_[static_cast<unsigned>(sc.greedy)].trace->ops.size()) {
        order[count++] = static_cast<unsigned>(sc.greedy);
    }
    greedy_count = count;
    for (unsigned slot : sc.slots) {
        const WarpCtx &w = warps_[slot];
        if (!w.active || static_cast<int>(slot) == sc.greedy)
            continue;
        if (w.pc >= w.trace->ops.size())
            continue; // draining outstanding ops only
        // Insertion sort by age (<= 16 warps per sub-core).
        unsigned pos = count;
        while (pos > greedy_count &&
               warps_[order[pos - 1]].order > w.order) {
            order[pos] = order[pos - 1];
            --pos;
        }
        order[pos] = slot;
        ++count;
    }
    return count;
}

void
Sm::issueSubCore(SubCore &sc, std::uint64_t now)
{
    ++statSlotCycles_;

    if (sc.busyUntil > now) {
        // Mid-block: the issue port is streaming a compressed
        // multi-instruction block.
        ++statBusyCycles_;
        if (sc.busyOffloadable)
            ++statOffloadableCycles_;
        return;
    }

    unsigned order[64];
    unsigned greedy_count = 0;
    unsigned count = buildCandidateOrder(sc, order, greedy_count);
    if (cfg_.scheduler == SchedulerPolicy::RoundRobin &&
        count > greedy_count + 1) {
        // Rotate the non-greedy candidates for a loose round-robin.
        const unsigned n = count - greedy_count;
        const unsigned shift = static_cast<unsigned>(now % n);
        std::rotate(order + greedy_count, order + greedy_count + shift,
                    order + count);
    }

    bool first_block_attr = false;
    bool have_block_attr = false;
    for (unsigned idx = 0; idx < count; ++idx) {
        const unsigned slot = order[idx];
        bool offl = false;
        const TryResult r = tryIssue(slot, sc, now, offl);
        if (r == TryResult::Issued) {
            sc.greedy = static_cast<int>(slot);
            ++statBusyCycles_;
            if (offl)
                ++statOffloadableCycles_;
            return;
        }
        if (!have_block_attr) {
            have_block_attr = true;
            first_block_attr = offl;
        }
    }

    if (have_block_attr) {
        ++statStallCycles_;
        if (first_block_attr)
            ++statOffloadableCycles_;
    } else {
        ++statIdleCycles_;
    }
}

void
Sm::tick(std::uint64_t now)
{
    wakePending_ = false;
    if (anyCleared_) {
        // Ticking consumes the catch-up token bookkeeping: from here
        // on, skipped-gap accounting starts from the current state.
        for (auto &w : warps_)
            w.clearedSinceTick = 0;
        anyCleared_ = false;
    }
    // L1 port arbitration: the LSU and the RT unit's FIFO queue
    // time-share the single L1D access port, alternating priority.
    const bool rt_wants = rt_ && rt_->wantsAccess();
    const bool lsu_wants = lsu_->wantsAccess();
    const bool rt_turn = (now & 1) == 0;
    const bool grant_rt = rt_wants && (rt_turn || !lsu_wants);
    const bool grant_lsu = lsu_wants && !grant_rt;

    if (rt_)
        rt_->tick(grant_rt, now);
    lsu_->tick(grant_lsu, now);

    retireFinished(now);
    activatePending();

    for (auto &sc : subCores_)
        issueSubCore(sc, now);
}

bool
Sm::done() const
{
    if (!pending_.empty() || activeCount_ != 0)
        return false;
    if (!lsu_->drained())
        return false;
    if (rt_ && !rt_->drained())
        return false;
    return true;
}

Cycle
Sm::nextEventCycle(Cycle now) const
{
    // Queued memory traffic contends for the L1 port every cycle.
    if (lsu_->wantsAccess() || (rt_ && rt_->wantsAccess()))
        return now + 1;

    Cycle next = rt_ ? rt_->nextEventCycle(now) : kNeverCycle;
    for (const auto &sc : subCores_) {
        if (sc.busyUntil > now)
            next = std::min(next, sc.busyUntil);
    }
    for (const auto &w : warps_) {
        // A finished warp retires when its trailing block completes.
        if (w.active && w.blockEnd > now)
            next = std::min(next, w.blockEnd);
    }
    return next;
}

Cycle
Sm::nextEventAfterTick(Cycle now)
{
    if (probeHold_ > 0) {
        // Dense phase: skip the scan, answer conservatively. Extra
        // ticks of an eventless SM are no-ops, so this cannot change
        // results — it only caps the probe cost where the scan would
        // keep answering "next cycle" anyway.
        --probeHold_;
        return now + 1;
    }
    const Cycle next = nextEventCycle(now);
    if (next == now + 1) {
        if (cfg_.probeDenseStreak != 0 &&
            ++denseStreak_ >= cfg_.probeDenseStreak) {
            probeHold_ = cfg_.probeInterval;
            denseStreak_ = 0;
        }
    } else {
        denseStreak_ = 0;
    }
    return next;
}

namespace
{

/** Number of cycles t in [first, last] with t % n == residue. */
std::uint64_t
cyclesWithResidue(std::uint64_t first, std::uint64_t last, std::uint64_t n,
                  std::uint64_t residue)
{
    const std::uint64_t start = first + (residue + n - first % n) % n;
    return start > last ? 0 : (last - start) / n + 1;
}

} // namespace

void
Sm::fastForwardStats(Cycle now, Cycle next)
{
    hsu_debug_assert(next > now + 1, "fast-forward needs a non-empty gap");
    const std::uint64_t gap_cycles = next - now - 1;
    const double gap = static_cast<double>(gap_cycles);

    if (rt_)
        rt_->fastForwardStats(now, next);

    for (auto &sc : subCores_) {
        statSlotCycles_ += gap;
        if (sc.busyUntil > now) {
            // busyUntil is an event bounding `next`, so the block is
            // mid-stream for every skipped cycle.
            statBusyCycles_ += gap;
            if (sc.busyOffloadable)
                statOffloadableCycles_ += gap;
            continue;
        }

        unsigned order[64];
        unsigned greedy_count = 0;
        const unsigned count = buildCandidateOrder(sc, order,
                                                   greedy_count);
        if (count == 0) {
            statIdleCycles_ += gap;
            continue;
        }
        // Candidates exist but none can issue during an eventless gap:
        // every skipped cycle is a stall, attributed (as in
        // issueSubCore) to the first candidate tried that cycle.
        statStallCycles_ += gap;
        // issueSubCore tries every candidate each cycle until one
        // issues; in a gap none do, so each candidate whose tokens are
        // clear re-attempts its HSU dispatch every skipped cycle and
        // is rejected for lack of a free buffer entry (a free entry
        // would have made the dispatch an event bounding the gap).
        // The per-cycle loop counts each of those attempts; compensate
        // them here. Gap-time token state is pendingTokens plus any
        // bits completions cleared after the gap but before this call.
        for (unsigned s = 0; s < count; ++s) {
            const WarpCtx &w = warps_[order[s]];
            const TraceOp &op = w.trace->ops[w.pc];
            if (op.type != OpType::HsuOp)
                continue;
            const std::uint32_t prod =
                op.produces != kNoToken ? (1u << op.produces) : 0u;
            if ((op.consumesMask | prod) &
                (w.pendingTokens | w.clearedSinceTick)) {
                continue; // token-blocked: never reaches the dispatcher
            }
            rt_->accountSkippedDispatchRejects(gap);
        }
        if (cfg_.scheduler == SchedulerPolicy::RoundRobin &&
            count > greedy_count + 1 && greedy_count == 0) {
            // The per-cycle rotation (shift = now % n) changes which
            // blocked warp is tried first; count each head's cycles.
            for (unsigned s = 0; s < count; ++s) {
                const WarpCtx &w = warps_[order[s]];
                if (!w.trace->ops[w.pc].offloadable)
                    continue;
                statOffloadableCycles_ += static_cast<double>(
                    cyclesWithResidue(now + 1, next - 1, count, s));
            }
        } else {
            // GTO, a lone candidate, or a greedy head: the first
            // candidate is the same every skipped cycle.
            const WarpCtx &w = warps_[order[0]];
            if (w.trace->ops[w.pc].offloadable)
                statOffloadableCycles_ += gap;
        }
    }
}

} // namespace hsu
