#include "sim/lsu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

std::vector<std::uint64_t>
coalesceLines(const WarpTrace &trace, const TraceOp &op,
              unsigned line_bytes)
{
    std::vector<std::uint64_t> lines;
    lines.reserve(8);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(op.activeMask & (1u << lane)))
            continue;
        const std::uint64_t addr = trace.laneAddr(op, lane);
        const std::uint64_t first = addr / line_bytes;
        const std::uint64_t last =
            (addr + op.bytesPerLane - 1) / line_bytes;
        for (std::uint64_t l = first; l <= last; ++l)
            lines.push_back(l);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

Lsu::Lsu(unsigned queue_capacity, Cache &l1, StatGroup &stats,
         const std::string &name)
    : capacity_(queue_capacity), l1_(l1),
      statInstrs_(stats.scalar(name + ".mem_instrs")),
      statLineReqs_(stats.scalar(name + ".line_reqs")),
      statPortCycles_(stats.scalar(name + ".port_cycles")),
      statRetries_(stats.scalar(name + ".retries"))
{
}

bool
Lsu::issue(const std::vector<std::uint64_t> &lines, bool write,
           MemCompletion done)
{
    // Per-memory-instruction path: release builds skip the check.
    hsu_debug_assert(!lines.empty(), "memory instruction with no lines");
    if (queue_.size() + lines.size() > capacity_)
        return false;

    ++statInstrs_;
    statLineReqs_ += static_cast<double>(lines.size());

    auto group = std::make_shared<Group>();
    group->remaining = static_cast<unsigned>(lines.size());
    group->done = std::move(done);

    for (const auto line : lines)
        queue_.push_back(LineReq{line, write, group});
    return true;
}

void
Lsu::tick(bool port_granted, std::uint64_t now)
{
    if (!port_granted || queue_.empty())
        return;

    ++statPortCycles_;
    LineReq &req = queue_.front();
    auto group = req.group;
    const std::uint64_t byte_addr = req.line * l1_.params().lineBytes;
    const CacheOutcome outcome = l1_.access(
        byte_addr, req.write,
        [group]() {
            if (--group->remaining == 0 && group->done)
                group->done();
        },
        now);

    if (outcome == CacheOutcome::RejectMshrFull ||
        outcome == CacheOutcome::RejectQueueFull) {
        // Structural stall; the request stays at the head and retries.
        ++statRetries_;
        return;
    }
    queue_.pop_front();
}

} // namespace hsu
