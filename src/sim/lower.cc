#include "sim/lower.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/phase_timer.hh"

namespace hsu
{

namespace
{

/**
 * Upper-bound the lowered op / address-pool sizes of one warp so the
 * output vectors are reserved once instead of growing geometrically
 * (lowered traces are the pipeline's largest transient allocation).
 * The bounds are exact for the Baseline and Hsu lowerings; a
 * PartialOffload mix takes the larger of the two per op.
 */
struct LoweredSizeEstimate
{
    std::size_t ops = 0;
    std::size_t addrs = 0;
};

LoweredSizeEstimate
estimateLowered(const SemWarpTrace &sem, const Lowering &low)
{
    const bool base_like = low.kind != Lowering::Kind::Hsu;
    const bool hsu_like = low.kind != Lowering::Kind::Baseline;
    LoweredSizeEstimate est;
    for (const SemOp &op : sem.ops) {
        switch (op.kind) {
          case SemKind::Alu:
          case SemKind::Shared:
          case SemKind::Store:
            est.ops += 1;
            break;
          case SemKind::Load:
            est.ops += 1;
            if (op.addr.poolIndex >= 0)
                est.addrs += kWarpSize;
            break;
          case SemKind::Distance: {
            const DistanceShape &s = op.dist;
            std::size_t base_ops = 0, base_addrs = 0;
            if (s.warpCooperative) {
                // Per candidate: chunk loads + FMA blocks, reduction,
                // epilogue. Pattern loads use no pool entries.
                base_ops = std::size_t(op.nCands) *
                           (2u * s.chunkCount + 2u);
            } else {
                base_ops = std::size_t(s.chunkCount) + 1;
                base_addrs = std::size_t(s.chunkCount) * kWarpSize;
            }
            // HSU: one CISC instruction (+ trailing scalar block).
            const std::size_t hsu_ops = 2;
            est.ops += std::max(base_like ? base_ops : 0,
                                hsu_like ? hsu_ops : 0);
            est.addrs += std::max(base_like ? base_addrs : 0,
                                  hsu_like ? std::size_t(kWarpSize) : 0);
            break;
          }
          case SemKind::KeyCompare:
            if (op.laneProbe) { // unit-resident: one KEY_COMPARE
                est.ops += 1;
                est.addrs += kWarpSize;
            } else {
                const std::size_t chunks =
                    (op.nKeys + kWarpSize - 1) / kWarpSize;
                est.ops += std::max(base_like ? 2 * chunks + 1 : 0,
                                    hsu_like ? std::size_t(2) : 0);
                if (hsu_like)
                    est.addrs += kWarpSize;
            }
            break;
          case SemKind::BoxTest:
            est.ops += std::max(
                base_like && !op.box.unitResident
                    ? std::size_t(op.box.blChunks) + 1
                    : 0,
                std::size_t(1));
            est.addrs += std::max(
                base_like && !op.box.unitResident
                    ? std::size_t(op.box.blChunks) * kWarpSize
                    : 0,
                std::size_t(kWarpSize));
            break;
          case SemKind::TriTest:
            est.ops += 1;
            est.addrs += kWarpSize;
            break;
        }
    }
    return est;
}

/** Lowers one warp's semantic trace into @p out. */
class WarpLowerer
{
  public:
    WarpLowerer(const SemWarpTrace &sem, WarpTrace &out,
                const Lowering &low)
        : sem_(sem), out_(out), low_(low), tb_(out),
          virtMask_(sem.numVirtTokens, 0u),
          fraction_(std::clamp(low.fraction, 0.0, 1.0))
    {
    }

    void
    run()
    {
        for (const SemOp &op : sem_.ops) {
            const std::size_t start = out_.ops.size();
            switch (op.kind) {
              case SemKind::Alu:
                tb_.alu(op.count, op.activeMask, consumeMask(op),
                        op.offloadable);
                break;
              case SemKind::Shared:
                tb_.shared(op.count, op.activeMask, consumeMask(op));
                break;
              case SemKind::Load: {
                std::uint8_t tok;
                if (op.addr.poolIndex >= 0) {
                    tok = tb_.loadGather(pool(op), op.bytesPerLane,
                                         op.activeMask, op.offloadable);
                } else {
                    tok = tb_.loadPattern(op.addr.base, op.addr.stride,
                                          op.bytesPerLane, op.activeMask,
                                          op.offloadable);
                }
                bind(op, TraceBuilder::tokenMask(tok));
                break;
              }
              case SemKind::Store:
                tb_.storePattern(op.addr.base, op.addr.stride,
                                 op.bytesPerLane, op.activeMask);
                break;
              case SemKind::Distance:
                lowerDistance(op, offloadDecision(SemKind::Distance));
                stamp(start, TraceOrigin::Distance);
                break;
              case SemKind::KeyCompare:
                if (op.laneProbe)
                    lowerKeyProbe(op); // unit-resident
                else
                    lowerKeyScan(op,
                                 offloadDecision(SemKind::KeyCompare));
                stamp(start, TraceOrigin::KeyCompare);
                break;
              case SemKind::BoxTest:
                lowerBoxTest(op, op.box.unitResident ||
                                     offloadDecision(SemKind::BoxTest));
                stamp(start, TraceOrigin::BoxTest);
                break;
              case SemKind::TriTest: {
                // Triangle tests exist only on the RT unit.
                const std::uint8_t tok = tb_.hsuOp(
                    HsuOpcode::RayIntersect, HsuMode::RayTri, pool(op),
                    op.bytesPerLane, 1, op.activeMask, consumeMask(op));
                bind(op, TraceBuilder::tokenMask(tok));
                stamp(start, TraceOrigin::TriTest);
                break;
              }
            }
        }
    }

  private:
    /** Should this offloadable semantic op become a CISC instruction? */
    bool
    offloadDecision(SemKind kind)
    {
        switch (low_.kind) {
          case Lowering::Kind::Baseline:
            return false;
          case Lowering::Kind::Hsu:
            return true;
          case Lowering::Kind::PartialOffload: {
            if (low_.policy == OffloadPolicy::ByKind)
                return (low_.kindMask & Lowering::kindBit(kind)) != 0;
            // ModuloN: spread the offloaded share evenly over the
            // warp's offloadable ops in emission order.
            const double i = static_cast<double>(offloadSite_++);
            return std::floor((i + 1.0) * fraction_) >
                   std::floor(i * fraction_);
          }
        }
        hsu_panic("unknown lowering kind");
    }

    /** Concrete scoreboard mask of the op's consumed virtual tokens. */
    std::uint32_t
    consumeMask(const SemOp &op) const
    {
        std::uint32_t mask = 0;
        for (std::uint32_t i = 0; i < op.consumeCount; ++i)
            mask |= virtMask_[static_cast<std::size_t>(
                sem_.consumePool[op.consumeOffset + i])];
        return mask;
    }

    /** Resolve the op's produced virtual token to @p concrete. */
    void
    bind(const SemOp &op, std::uint32_t concrete)
    {
        if (op.produces != kNoVirt)
            virtMask_[static_cast<std::size_t>(op.produces)] = concrete;
    }

    /** Per-lane address block of a semantic op. */
    const std::uint64_t *
    pool(const SemOp &op) const
    {
        hsu_assert(op.addr.poolIndex >= 0, "semantic op without addrs");
        return sem_.addrPool.data() +
               static_cast<std::size_t>(op.addr.poolIndex);
    }

    /** Stamp provenance on everything emitted since @p start. */
    void
    stamp(std::size_t start, TraceOrigin origin)
    {
        for (std::size_t i = start; i < out_.ops.size(); ++i)
            out_.ops[i].origin = origin;
    }

    void
    lowerDistance(const SemOp &op, bool offload)
    {
        const DistanceShape &s = op.dist;
        const bool angular = op.metric == Metric::Angular;
        if (op.dist.warpCooperative)
            lowerDistanceWarpCoop(op, s, angular, offload);
        else
            lowerDistanceLanes(op, s, offload);
    }

    /** GGNN form: candidates one at a time, whole warp cooperating. */
    void
    lowerDistanceWarpCoop(const SemOp &op, const DistanceShape &s,
                          bool angular, bool offload)
    {
        if (offload) {
            const HsuMode mode =
                angular ? HsuMode::Angular : HsuMode::Euclid;
            const unsigned beats = angular
                                       ? low_.dp.angularBeats(op.dim)
                                       : low_.dp.euclidBeats(op.dim);
            const std::uint8_t tok = tb_.hsuOp(
                angular ? HsuOpcode::PointAngular
                        : HsuOpcode::PointEuclid,
                mode, pool(op), low_.dp.bytesPerBeat(mode), beats,
                op.activeMask, consumeMask(op));
            tb_.alu(s.trailingAlu, op.activeMask,
                    TraceBuilder::tokenMask(tok));
            return;
        }
        lowerDistanceBaseline(op, s, /*per_candidate=*/true);
    }

    /** FLANN / BVH-NN form: one candidate per lane. */
    void
    lowerDistanceLanes(const SemOp &op, const DistanceShape &s,
                       bool offload)
    {
        if (offload) {
            const std::uint8_t tok = tb_.hsuOp(
                HsuOpcode::PointEuclid, HsuMode::Euclid, pool(op),
                std::min(low_.dp.euclidWidth, unsigned(op.dim)) * 4,
                low_.dp.euclidBeats(op.dim), op.activeMask,
                consumeMask(op));
            bind(op, TraceBuilder::tokenMask(tok));
            return;
        }
        lowerDistanceBaseline(op, s, /*per_candidate=*/false);
        bind(op, 0u); // the FMA block consumed the loads internally
    }

    /**
     * The shared baseline distance expansion (all three distance
     * kernels route here; the DistanceShape carries their per-kernel
     * calibrations). Warp-cooperative batches expand per candidate
     * with coalesced pattern loads; lane-parallel batches expand once
     * with gather loads.
     */
    void
    lowerDistanceBaseline(const SemOp &op, const DistanceShape &s,
                          bool per_candidate)
    {
        if (per_candidate) {
            const std::uint64_t *addrs = pool(op);
            const std::uint32_t consumed = consumeMask(op);
            for (unsigned i = 0; i < op.nCands; ++i) {
                std::uint32_t toks = consumed;
                for (unsigned c = 0; c < s.chunkCount; ++c) {
                    const std::uint8_t t = tb_.loadPattern(
                        addrs[i] + c * std::uint64_t(s.chunkStep),
                        s.chunkBytes, s.chunkBytes, kFullMask, true);
                    toks |= TraceBuilder::tokenMask(t);
                    tb_.alu(s.perChunkAlu, kFullMask, 0, true);
                }
                tb_.alu(s.reduceAlu, kFullMask, toks, true);
                // Non-offloadable epilogue: keep/compare the candidate.
                tb_.alu(s.epilogueAlu, kFullMask);
            }
            return;
        }
        const std::uint64_t *addrs = pool(op);
        std::uint32_t toks = consumeMask(op);
        for (unsigned c = 0; c < s.chunkCount; ++c) {
            std::uint64_t ca[kWarpSize];
            for (unsigned l = 0; l < kWarpSize; ++l)
                ca[l] = addrs[l] + c * std::uint64_t(s.chunkStep);
            toks |= TraceBuilder::tokenMask(
                tb_.loadGather(ca, s.chunkBytes, op.activeMask, true));
        }
        tb_.alu(s.reduceAlu, op.activeMask, toks, true);
    }

    /** B+tree separator scan: whole warp strides one node. */
    void
    lowerKeyScan(const SemOp &op, bool offload)
    {
        const std::uint64_t sep = op.addr.base;
        const unsigned nkeys = op.nKeys;
        if (offload) {
            // ceil(nkeys/width) chunks, one per lane, one CISC
            // instruction; the bit-vector popcount/combine runs on the
            // SM.
            const unsigned chunks =
                (nkeys + low_.dp.keyCompareWidth - 1) /
                low_.dp.keyCompareWidth;
            std::uint64_t addrs[kWarpSize] = {};
            for (unsigned c = 0; c < chunks && c < kWarpSize; ++c)
                addrs[c] = sep + c * low_.dp.keyCompareWidth * 4ull;
            const std::uint8_t tok = tb_.hsuOp(
                HsuOpcode::KeyCompare, HsuMode::KeyCompare, addrs,
                low_.dp.keyCompareWidth * 4, 1,
                (1u << std::min(chunks, kWarpSize)) - 1u,
                consumeMask(op));
            tb_.alu(2 + chunks, kFullMask, TraceBuilder::tokenMask(tok));
            return;
        }
        // Parallel scan: each 32-separator chunk is one coalesced load
        // + one compare.
        const unsigned chunks = (nkeys + kWarpSize - 1) / kWarpSize;
        std::uint32_t toks = consumeMask(op);
        for (unsigned c = 0; c < chunks; ++c) {
            const unsigned live =
                std::min(kWarpSize, nkeys - c * kWarpSize);
            toks |= TraceBuilder::tokenMask(tb_.loadPattern(
                sep + c * kWarpSize * 4ull, 4, 4,
                live == kWarpSize ? kFullMask : ((1u << live) - 1u),
                true));
            tb_.alu(2, kFullMask, 0, true);
        }
        // Ballot + reduce to the child slot (stays on the SM in both
        // variants).
        tb_.alu(6, kFullMask, toks);
    }

    /** RTIndeX native leaf probe: one KEY_COMPARE, always on-unit. */
    void
    lowerKeyProbe(const SemOp &op)
    {
        const std::uint8_t tok = tb_.hsuOp(
            HsuOpcode::KeyCompare, HsuMode::KeyCompare, pool(op),
            op.bytesPerLane, 1, op.activeMask, consumeMask(op));
        bind(op, TraceBuilder::tokenMask(tok));
    }

    void
    lowerBoxTest(const SemOp &op, bool offload)
    {
        if (offload) {
            const std::uint8_t tok = tb_.hsuOp(
                HsuOpcode::RayIntersect, HsuMode::RayBox, pool(op),
                op.box.nodeBytes, 1, op.activeMask, consumeMask(op));
            bind(op, TraceBuilder::tokenMask(tok));
            return;
        }
        // The node is blChunks LDG.128 vector loads (the sequential
        // traffic the CISC fetch coalesces away, Section VI-J), then
        // the slab tests + hit ordering.
        const std::uint64_t *addrs = pool(op);
        std::uint32_t toks = consumeMask(op);
        for (unsigned c = 0; c < op.box.blChunks; ++c) {
            std::uint64_t chunk[kWarpSize];
            for (unsigned l = 0; l < kWarpSize; ++l)
                chunk[l] = addrs[l] + c * 16ull;
            toks |= TraceBuilder::tokenMask(
                tb_.loadGather(chunk, 16, op.activeMask, true));
        }
        tb_.alu(op.box.blAlu, op.activeMask, toks, true);
        bind(op, 0u);
    }

    const SemWarpTrace &sem_;
    WarpTrace &out_;
    const Lowering &low_;
    TraceBuilder tb_;
    std::vector<std::uint32_t> virtMask_;
    double fraction_;
    unsigned offloadSite_ = 0; //!< ModuloN site counter (per warp)
};

} // namespace

KernelTrace
lowerTrace(const SemKernelTrace &sem, const Lowering &low)
{
    const ScopedPhaseTimer timer(PipelinePhase::Lower);
    KernelTrace out;
    out.warps.resize(sem.warps.size());
    for (std::size_t w = 0; w < sem.warps.size(); ++w) {
        const LoweredSizeEstimate est = estimateLowered(sem.warps[w], low);
        out.warps[w].ops.reserve(est.ops);
        out.warps[w].addrPool.reserve(est.addrs);
        WarpLowerer(sem.warps[w], out.warps[w], low).run();
    }
    return out;
}

} // namespace hsu
