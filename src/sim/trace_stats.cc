#include "sim/trace_stats.hh"

#include <bit>

#include "common/table.hh"

namespace hsu
{

TraceStats
analyzeTrace(const KernelTrace &trace)
{
    TraceStats s;
    s.warps = trace.warps.size();
    std::size_t mem_ops = 0;
    std::size_t lane_sum = 0;

    for (const auto &warp : trace.warps) {
        s.ops += warp.ops.size();
        for (const auto &op : warp.ops) {
            const unsigned lanes = std::popcount(op.activeMask);
            OriginStats &os =
                s.byOrigin[static_cast<unsigned>(op.origin)];
            os.ops += 1;
            switch (op.type) {
              case OpType::Alu:
                s.aluInstructions += op.count;
                s.instructions += op.count;
                if (op.offloadable)
                    s.offloadableInstructions += op.count;
                os.aluInstructions += op.count;
                os.instructions += op.count;
                break;
              case OpType::Shared:
                s.sharedInstructions += op.count;
                s.instructions += op.count;
                os.sharedInstructions += op.count;
                os.instructions += op.count;
                break;
              case OpType::Load:
              case OpType::Store: {
                const bool load = op.type == OpType::Load;
                (load ? s.loadInstructions : s.storeInstructions) += 1;
                (load ? os.loadInstructions : os.storeInstructions) +=
                    1;
                s.instructions += 1;
                os.instructions += 1;
                if (op.offloadable)
                    s.offloadableInstructions += 1;
                ++mem_ops;
                lane_sum += lanes;
                const auto bytes =
                    static_cast<std::size_t>(lanes) * op.bytesPerLane;
                s.globalBytes += bytes;
                os.globalBytes += bytes;
                break;
              }
              case OpType::HsuOp: {
                s.hsuInstructions += op.count;
                s.instructions += op.count;
                s.hsuByMode[static_cast<unsigned>(op.hsuMode)] +=
                    op.count;
                os.hsuInstructions += op.count;
                os.instructions += op.count;
                ++mem_ops;
                lane_sum += lanes;
                const auto bytes = static_cast<std::size_t>(lanes) *
                                   op.bytesPerLane * op.count;
                s.globalBytes += bytes;
                os.globalBytes += bytes;
                break;
              }
            }
        }
    }
    s.avgActiveLanes =
        mem_ops ? static_cast<double>(lane_sum) /
                      static_cast<double>(mem_ops)
                : 0.0;
    return s;
}

std::uint64_t
traceFingerprint(const KernelTrace &trace)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull; // FNV prime
        }
    };
    mix(trace.warps.size());
    for (const auto &w : trace.warps) {
        mix(w.ops.size());
        for (const auto &op : w.ops) {
            mix(static_cast<std::uint64_t>(op.type));
            mix(op.activeMask);
            mix(op.count);
            mix(op.bytesPerLane);
            mix(op.produces);
            mix(op.consumesMask);
            mix(op.offloadable ? 1 : 0);
            mix(static_cast<std::uint64_t>(op.hsuOp));
            mix(static_cast<std::uint64_t>(op.hsuMode));
            mix(op.addr.base);
            mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(op.addr.stride)));
            mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(op.addr.poolIndex)));
        }
        mix(w.addrPool.size());
        for (const std::uint64_t a : w.addrPool)
            mix(a);
    }
    return h;
}

void
printTraceStats(std::ostream &os, const TraceStats &s,
                const std::string &title)
{
    Table t(title, {"Metric", "Value"});
    t.addRow({"warps", std::to_string(s.warps)});
    t.addRow({"trace ops", std::to_string(s.ops)});
    t.addRow({"dynamic instructions", std::to_string(s.instructions)});
    t.addRow({"  alu", std::to_string(s.aluInstructions)});
    t.addRow({"  shared", std::to_string(s.sharedInstructions)});
    t.addRow({"  loads", std::to_string(s.loadInstructions)});
    t.addRow({"  stores", std::to_string(s.storeInstructions)});
    t.addRow({"  hsu (beats)", std::to_string(s.hsuInstructions)});
    static const char *mode_names[5] = {"ray-box", "ray-tri", "euclid",
                                        "angular", "key-compare"};
    for (unsigned m = 0; m < 5; ++m) {
        if (s.hsuByMode[m]) {
            t.addRow({std::string("    ") + mode_names[m],
                      std::to_string(s.hsuByMode[m])});
        }
    }
    t.addRow({"offloadable fraction",
              Table::pct(s.offloadableFraction())});
    static const char *origin_names[kNumTraceOrigins] = {
        "generic", "distance", "key-compare", "box-test", "tri-test"};
    for (unsigned o = 0; o < kNumTraceOrigins; ++o) {
        const OriginStats &og = s.byOrigin[o];
        if (!og.instructions)
            continue;
        t.addRow({std::string("origin ") + origin_names[o],
                  std::to_string(og.instructions) + " instr, " +
                      Table::pct(og.offloadedFraction()) +
                      " offloaded"});
    }
    t.addRow({"semantic offload fraction",
              Table::pct(s.semanticOffloadFraction())});
    t.addRow({"avg active lanes (mem/hsu)",
              Table::num(s.avgActiveLanes, 2)});
    t.addRow({"global bytes touched", std::to_string(s.globalBytes)});
    t.print(os);
}

} // namespace hsu
