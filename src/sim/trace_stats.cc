#include "sim/trace_stats.hh"

#include <bit>

#include "common/table.hh"

namespace hsu
{

TraceStats
analyzeTrace(const KernelTrace &trace)
{
    TraceStats s;
    s.warps = trace.warps.size();
    std::size_t mem_ops = 0;
    std::size_t lane_sum = 0;

    for (const auto &warp : trace.warps) {
        s.ops += warp.ops.size();
        for (const auto &op : warp.ops) {
            const unsigned lanes = std::popcount(op.activeMask);
            switch (op.type) {
              case OpType::Alu:
                s.aluInstructions += op.count;
                s.instructions += op.count;
                if (op.offloadable)
                    s.offloadableInstructions += op.count;
                break;
              case OpType::Shared:
                s.sharedInstructions += op.count;
                s.instructions += op.count;
                break;
              case OpType::Load:
              case OpType::Store: {
                const bool load = op.type == OpType::Load;
                (load ? s.loadInstructions : s.storeInstructions) += 1;
                s.instructions += 1;
                if (op.offloadable)
                    s.offloadableInstructions += 1;
                ++mem_ops;
                lane_sum += lanes;
                s.globalBytes +=
                    static_cast<std::size_t>(lanes) * op.bytesPerLane;
                break;
              }
              case OpType::HsuOp: {
                s.hsuInstructions += op.count;
                s.instructions += op.count;
                s.hsuByMode[static_cast<unsigned>(op.hsuMode)] +=
                    op.count;
                ++mem_ops;
                lane_sum += lanes;
                s.globalBytes += static_cast<std::size_t>(lanes) *
                                 op.bytesPerLane * op.count;
                break;
              }
            }
        }
    }
    s.avgActiveLanes =
        mem_ops ? static_cast<double>(lane_sum) /
                      static_cast<double>(mem_ops)
                : 0.0;
    return s;
}

void
printTraceStats(std::ostream &os, const TraceStats &s,
                const std::string &title)
{
    Table t(title, {"Metric", "Value"});
    t.addRow({"warps", std::to_string(s.warps)});
    t.addRow({"trace ops", std::to_string(s.ops)});
    t.addRow({"dynamic instructions", std::to_string(s.instructions)});
    t.addRow({"  alu", std::to_string(s.aluInstructions)});
    t.addRow({"  shared", std::to_string(s.sharedInstructions)});
    t.addRow({"  loads", std::to_string(s.loadInstructions)});
    t.addRow({"  stores", std::to_string(s.storeInstructions)});
    t.addRow({"  hsu (beats)", std::to_string(s.hsuInstructions)});
    static const char *mode_names[5] = {"ray-box", "ray-tri", "euclid",
                                        "angular", "key-compare"};
    for (unsigned m = 0; m < 5; ++m) {
        if (s.hsuByMode[m]) {
            t.addRow({std::string("    ") + mode_names[m],
                      std::to_string(s.hsuByMode[m])});
        }
    }
    t.addRow({"offloadable fraction",
              Table::pct(s.offloadableFraction())});
    t.addRow({"avg active lanes (mem/hsu)",
              Table::num(s.avgActiveLanes, 2)});
    t.addRow({"global bytes touched", std::to_string(s.globalBytes)});
    t.print(os);
}

} // namespace hsu
