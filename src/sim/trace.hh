/**
 * @file
 * The abstract warp-level trace ISA consumed by the timing model.
 *
 * The paper's methodology replays SASS traces through Accel-Sim, with a
 * post-processor replacing instruction sequences by HSU CISC
 * instructions. We generate the equivalent traces directly: every search
 * kernel executes functionally and emits, per 32-thread warp, a sequence
 * of abstract operations — ALU/SFU blocks, shared-memory blocks, global
 * loads/stores with per-lane addresses, and HSU instructions. Dependencies
 * are expressed through a 32-entry token scoreboard per warp so that
 * independent loads overlap (memory-level parallelism).
 */

#ifndef HSU_SIM_TRACE_HH
#define HSU_SIM_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "hsu/isa.hh"

namespace hsu
{

/** Number of threads per warp. */
constexpr unsigned kWarpSize = 32;

/** A full active mask. */
constexpr std::uint32_t kFullMask = 0xffffffffu;

/** Classes of trace operations. */
enum class OpType : std::uint8_t
{
    Alu,    //!< `count` back-to-back SIMD ALU instructions
    Shared, //!< `count` shared-memory instructions (queue/stack upkeep)
    Load,   //!< one global load instruction (per-lane addresses)
    Store,  //!< one global store instruction
    HsuOp,  //!< one (multi-beat) HSU CISC instruction
};

/**
 * Per-lane addressing for memory operations. Either a regular
 * (base + lane * stride) pattern, or explicit per-lane addresses held in
 * the owning trace's address pool.
 */
struct AddrGen
{
    std::uint64_t base = 0;
    std::int32_t stride = 0;
    std::int32_t poolIndex = -1; //!< >= 0: kWarpSize entries in the pool

    /** Address for a lane (pattern form only). */
    std::uint64_t laneAddr(unsigned lane) const
    {
        return base + static_cast<std::int64_t>(stride) * lane;
    }
};

/**
 * Which semantic IR op a lowered trace op came from (provenance for
 * trace_stats attribution). Generic covers pass-through ops that were
 * never semantic (queue upkeep, prologues, result stores).
 */
enum class TraceOrigin : std::uint8_t
{
    Generic,
    Distance,   //!< DistanceBatch
    KeyCompare, //!< KeyCompareBatch
    BoxTest,    //!< BoxTestBatch
    TriTest,    //!< TriTest
};

/** Number of TraceOrigin values (array sizing). */
constexpr unsigned kNumTraceOrigins = 5;

/**
 * One warp-level trace operation.
 *
 * Lowered traces dominate the pipeline's memory footprint (millions of
 * ops per kernel launch), so the layout is packed: the 8-byte-aligned
 * AddrGen leads, the 32-bit masks and 16-bit counts fill the middle,
 * and the one-byte enums/flags share the tail word. consumesMask needs
 * only 16 bits because TraceBuilder hands out scoreboard tokens modulo
 * 16. The static_assert below pins the size; a field addition that
 * grows the struct must be a deliberate decision, not padding drift.
 */
struct TraceOp
{
    /** Memory addressing (Load/Store/HsuOp node pointers). */
    AddrGen addr;
    /** Lanes participating in this op. */
    std::uint32_t activeMask = kFullMask;
    /** Tokens this op waits for before issuing (bitmask over the 16
     *  scoreboard tokens). */
    std::uint16_t consumesMask = 0;
    /** Alu/Shared: instruction count. HsuOp: beat count. */
    std::uint16_t count = 1;
    /** Bytes touched per lane (Load/Store/HsuOp operand fetch). */
    std::uint16_t bytesPerLane = 4;
    OpType type = OpType::Alu;
    /** Semantic op this was lowered from (stats only — the timing
     *  model and the trace fingerprint ignore it). */
    TraceOrigin origin = TraceOrigin::Generic;
    /** Token this op produces (kNoToken when none). */
    std::uint8_t produces = 0xff;
    /** Baseline op that the HSU version would replace (Fig 7 metric). */
    bool offloadable = false;
    /** HsuOp only: the opcode (mode is implied by opcode + node type). */
    HsuOpcode hsuOp = HsuOpcode::RayIntersect;
    /** HsuOp resolved datapath mode (for stats / power accounting). */
    HsuMode hsuMode = HsuMode::RayBox;
};

static_assert(sizeof(TraceOp) == 32,
              "TraceOp is a hot-path struct: keep it packed to 32 bytes "
              "(it was 40 before the field reorder)");

/** Sentinel for "produces no token". */
constexpr std::uint8_t kNoToken = 0xff;

/** The trace of one warp: its ops plus an explicit-address pool. */
struct WarpTrace
{
    std::vector<TraceOp> ops;
    std::vector<std::uint64_t> addrPool;

    /** Per-lane address of op @p op for lane @p lane. */
    std::uint64_t
    laneAddr(const TraceOp &op, unsigned lane) const
    {
        if (op.addr.poolIndex >= 0) {
            return addrPool[static_cast<std::size_t>(op.addr.poolIndex) +
                            lane];
        }
        return op.addr.laneAddr(lane);
    }
};

/** A kernel launch: one trace per warp. */
struct KernelTrace
{
    std::vector<WarpTrace> warps;

    /** Total dynamic op count (diagnostics). */
    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &w : warps)
            n += w.ops.size();
        return n;
    }
};

/**
 * Convenience builder used by the kernel emitters. Tracks the warp being
 * built and rotates load tokens for MLP.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(WarpTrace &trace) : trace_(trace) {}

    /** Append a block of @p count ALU instructions. */
    void
    alu(unsigned count, std::uint32_t mask = kFullMask,
        std::uint32_t consumes = 0, bool offloadable = false)
    {
        if (count == 0)
            return;
        TraceOp op;
        op.type = OpType::Alu;
        op.activeMask = mask;
        op.count = clampCount(count);
        op.consumesMask = clampMask(consumes);
        op.offloadable = offloadable;
        trace_.ops.push_back(op);
    }

    /** Append a block of @p count shared-memory instructions. */
    void
    shared(unsigned count, std::uint32_t mask = kFullMask,
           std::uint32_t consumes = 0)
    {
        if (count == 0)
            return;
        TraceOp op;
        op.type = OpType::Shared;
        op.activeMask = mask;
        op.count = clampCount(count);
        op.consumesMask = clampMask(consumes);
        trace_.ops.push_back(op);
    }

    /**
     * Append one global load with a (base + lane*stride) pattern.
     * @return the token the load produces.
     */
    std::uint8_t
    loadPattern(std::uint64_t base, std::int32_t stride,
                unsigned bytes_per_lane, std::uint32_t mask = kFullMask,
                bool offloadable = false)
    {
        TraceOp op;
        op.type = OpType::Load;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.base = base;
        op.addr.stride = stride;
        op.produces = nextToken();
        op.offloadable = offloadable;
        trace_.ops.push_back(op);
        return op.produces;
    }

    /**
     * Append one global load with explicit per-lane addresses
     * (inactive lanes may carry any value).
     * @return the token the load produces.
     */
    std::uint8_t
    loadGather(const std::uint64_t *lane_addrs, unsigned bytes_per_lane,
               std::uint32_t mask, bool offloadable = false)
    {
        TraceOp op;
        op.type = OpType::Load;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.poolIndex = static_cast<std::int32_t>(
            trace_.addrPool.size());
        trace_.addrPool.insert(trace_.addrPool.end(), lane_addrs,
                               lane_addrs + kWarpSize);
        op.produces = nextToken();
        op.offloadable = offloadable;
        trace_.ops.push_back(op);
        return op.produces;
    }

    /** Append one global store (fire-and-forget). */
    void
    storePattern(std::uint64_t base, std::int32_t stride,
                 unsigned bytes_per_lane, std::uint32_t mask = kFullMask)
    {
        TraceOp op;
        op.type = OpType::Store;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.base = base;
        op.addr.stride = stride;
        trace_.ops.push_back(op);
    }

    /**
     * Append one HSU instruction with per-lane node pointers.
     * @param beats multi-beat count (each beat fetches bytes_per_lane)
     * @return the token the instruction produces.
     */
    std::uint8_t
    hsuOp(HsuOpcode opcode, HsuMode mode, const std::uint64_t *lane_addrs,
          unsigned bytes_per_lane, unsigned beats, std::uint32_t mask,
          std::uint32_t consumes = 0)
    {
        hsu_assert(beats >= 1, "HSU op needs at least one beat");
        TraceOp op;
        op.type = OpType::HsuOp;
        op.hsuOp = opcode;
        op.hsuMode = mode;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.count = clampCount(beats);
        op.consumesMask = clampMask(consumes);
        op.addr.poolIndex = static_cast<std::int32_t>(
            trace_.addrPool.size());
        trace_.addrPool.insert(trace_.addrPool.end(), lane_addrs,
                               lane_addrs + kWarpSize);
        op.produces = nextToken();
        trace_.ops.push_back(op);
        return op.produces;
    }

    /** Bitmask helper for "wait on this token". */
    static std::uint32_t
    tokenMask(std::uint8_t token)
    {
        return token == kNoToken ? 0u : (1u << token);
    }

  private:
    std::uint8_t
    nextToken()
    {
        const std::uint8_t t = tokenRotor_;
        tokenRotor_ = static_cast<std::uint8_t>((tokenRotor_ + 1) % 16);
        return t;
    }

    static std::uint16_t
    clampCount(unsigned count)
    {
        hsu_assert(count <= 0xffff, "op count overflow: ", count);
        return static_cast<std::uint16_t>(count);
    }

    static std::uint16_t
    clampMask(std::uint32_t consumes)
    {
        hsu_assert(consumes <= 0xffffu,
                   "consume mask names a token beyond the 16-entry "
                   "scoreboard: ", consumes);
        return static_cast<std::uint16_t>(consumes);
    }

    WarpTrace &trace_;
    std::uint8_t tokenRotor_ = 0;
};

} // namespace hsu

#endif // HSU_SIM_TRACE_HH
