/**
 * @file
 * Lowering: semantic kernel IR -> executable warp trace.
 *
 * This is the repo's analogue of the paper's Accel-Sim trace
 * post-processor (Section V-B): the pass that decides, per semantic op,
 * whether the baseline SIMD instruction sequence or the HSU CISC
 * instruction is emitted. Three lowerings exist:
 *
 *  - Baseline:        every semantic op expands to its SIMD sequence
 *                     (except unit-resident ops — see below),
 *  - Hsu:             every semantic op becomes one CISC instruction,
 *  - PartialOffload:  a configurable subset of the offloadable ops is
 *                     CISC-lowered (fraction sweep / per-kind ablation).
 *
 * Unit-resident semantic ops (TriTest, lane-probe KeyCompareBatch, and
 * BoxTestBatch with unitResident set) lower to the RT-unit instruction
 * under EVERY lowering: they model workloads whose baseline GPU already
 * has the unit (RTIndeX compares leaf representations on RT hardware,
 * Section VI-G), so they are never part of the offload decision.
 *
 * Baseline instruction-shape catalog (counts calibrated against the
 * SASS each kernel executes; the shape factories below are the single
 * source of truth):
 *
 *  DistanceBatch, warp-cooperative (GGNN): per candidate,
 *    ceil(dim*4/128) x { 128B pattern load; alu(7|13) FMA block },
 *    alu(10|18) shuffle reduction, alu(2) keep/compare epilogue
 *    (euclid|angular). HSU: one multi-beat POINT_EUCLID/ANGULAR +
 *    alu(1|4) trailing scalar block.
 *  DistanceBatch, lane-parallel (FLANN dim-d): ceil(dim*4/16) x 16B
 *    gather (3-D: 2 x 8B), alu(3*dim+14) fold. (BVH-NN leaf: one 12B
 *    gather, alu(8).) HSU: one POINT_EUCLID, result token escapes to
 *    the recorded consumer.
 *  KeyCompareBatch, warp-scan (B+tree): ceil(nKeys/32) x { 32-lane
 *    pattern load; alu(2) } + alu(6) ballot/reduce. HSU: one
 *    KEY_COMPARE (one 36-key chunk per lane) + alu(2+chunks) popcount.
 *  BoxTestBatch (BVH-NN): nodeBytes/16 x 16B gathers + alu(30) slab
 *    tests (binary 64B node); 4-wide 128B node: 8 gathers + alu(58).
 *    HSU: one RAY_INTERSECT.
 *  TriTest: always one RAY_INTERSECT on a 48B triangle node.
 */

#ifndef HSU_SIM_LOWER_HH
#define HSU_SIM_LOWER_HH

#include <algorithm>
#include <cstdint>

#include "hsu/isa.hh"
#include "sim/ir.hh"
#include "sim/trace.hh"

namespace hsu
{

/** Which trace flavor a kernel run produces (legacy two-point API;
 *  loweringFor() maps it onto a Lowering). */
enum class KernelVariant : std::uint8_t
{
    Baseline, //!< non-RT GPU: everything on the SIMD pipelines
    Hsu       //!< distance/box/key ops offloaded to the HSU
};

/** How PartialOffload picks which offloadable semantic ops to offload. */
enum class OffloadPolicy : std::uint8_t
{
    ModuloN, //!< offload a `fraction` of ops, evenly spaced per warp
    ByKind,  //!< offload exactly the kinds selected in `kindMask`
};

/** A lowering specification. */
struct Lowering
{
    enum class Kind : std::uint8_t
    {
        Baseline,
        Hsu,
        PartialOffload,
    };

    Kind kind = Kind::Hsu;
    DatapathConfig dp{};
    /** PartialOffload/ModuloN: offloaded share of the offloadable
     *  semantic ops, clamped to [0, 1]. 0 reproduces Baseline and 1
     *  reproduces Hsu bit-identically. */
    double fraction = 1.0;
    OffloadPolicy policy = OffloadPolicy::ModuloN;
    /** PartialOffload/ByKind: OR of kindBit() for the offloaded kinds. */
    std::uint32_t kindMask = 0;

    static Lowering
    baseline(const DatapathConfig &dp = DatapathConfig{})
    {
        Lowering l;
        l.kind = Kind::Baseline;
        l.dp = dp;
        return l;
    }

    static Lowering
    hsu(const DatapathConfig &dp = DatapathConfig{})
    {
        Lowering l;
        l.kind = Kind::Hsu;
        l.dp = dp;
        return l;
    }

    static Lowering
    partial(double fraction, const DatapathConfig &dp = DatapathConfig{})
    {
        Lowering l;
        l.kind = Kind::PartialOffload;
        l.dp = dp;
        l.fraction = fraction;
        return l;
    }

    static Lowering
    partialByKind(std::uint32_t kind_mask,
                  const DatapathConfig &dp = DatapathConfig{})
    {
        Lowering l;
        l.kind = Kind::PartialOffload;
        l.dp = dp;
        l.policy = OffloadPolicy::ByKind;
        l.kindMask = kind_mask;
        return l;
    }

    /** kindMask bit for a semantic op kind. */
    static std::uint32_t
    kindBit(SemKind k)
    {
        return 1u << static_cast<unsigned>(k);
    }
};

/** The Lowering equivalent of the legacy two-point variant API. */
inline Lowering
loweringFor(KernelVariant variant,
            const DatapathConfig &dp = DatapathConfig{})
{
    return variant == KernelVariant::Hsu ? Lowering::hsu(dp)
                                         : Lowering::baseline(dp);
}

/**
 * Lower a semantic kernel trace to an executable warp trace.
 *
 * Pass-through ops are re-emitted verbatim; semantic ops expand per the
 * catalog above. Virtual tokens resolve to the scoreboard tokens of the
 * instructions that carry them under this lowering (possibly the empty
 * mask: a baseline-lowered batch's consumers need no wait, its FMA
 * block already consumed the operand loads). Each emitted op is stamped
 * with the TraceOrigin of the semantic op it came from.
 *
 * The ModuloN offload decision is per warp: offloadable semantic op
 * number i (in emission order) is offloaded iff
 * floor((i+1)*f) > floor(i*f), which spaces offloaded ops evenly and
 * makes the trace independent of warp processing order.
 */
KernelTrace lowerTrace(const SemKernelTrace &sem, const Lowering &low);

// --- Per-kernel shape factories (the documented op-count catalog) ----

/** GGNN warp-cooperative distance over dim-d points. */
inline DistanceShape
ggnnDistanceShape(Metric metric, unsigned dim)
{
    const bool angular = metric == Metric::Angular;
    DistanceShape s;
    s.warpCooperative = true;
    s.chunkCount =
        static_cast<std::uint16_t>(std::max(1u, (dim * 4 + 127) / 128));
    s.chunkStep = 128;
    s.chunkBytes = 4; // coalesced: 4B per lane per 128B chunk
    // Angular needs two accumulators (dot product + candidate norm,
    // eqs. 3-4) and two shuffle reductions, so its per-chunk and
    // reduction blocks are roughly double the euclid ones.
    s.perChunkAlu = angular ? 13 : 7;
    s.reduceAlu = angular ? 18 : 10;
    s.epilogueAlu = 2;
    // Angular: the scalar rsqrt/divide runs on the SM (eq. 2).
    s.trailingAlu = angular ? 4 : 1;
    return s;
}

/** FLANN lane-parallel distance over dim-d points. */
inline DistanceShape
flannDistanceShape(unsigned dim)
{
    DistanceShape s;
    // float3 fetch is an LDG.64 + LDG.32 pair (packed FLANN points);
    // higher dimensions load 16B vector chunks.
    s.chunkCount = static_cast<std::uint16_t>(
        dim == 3 ? 2 : (dim * 4 + 15) / 16);
    s.chunkStep = dim == 3 ? 8 : 16;
    s.chunkBytes = dim == 3 ? 8 : 16;
    // Subtract/FMA/compare per dimension + loop/addressing overhead.
    s.reduceAlu = static_cast<std::uint16_t>(3 * dim + 14);
    return s;
}

/** BVH-NN leaf distance (3-D, float4-packed: one 12B gather). */
inline DistanceShape
bvhnnLeafShape()
{
    DistanceShape s;
    s.chunkCount = 1;
    s.chunkStep = 0;
    s.chunkBytes = 12;
    s.reduceAlu = 8;
    return s;
}

/** Binary BVH box test: 64B node, two slab tests. */
inline BoxShape
bvhBoxShape()
{
    return BoxShape{64, 4, 30, false};
}

/** 4-wide BVH box test: 128B node, four slab tests. */
inline BoxShape
bvh4BoxShape()
{
    return BoxShape{128, 8, 58, false};
}

/** RTIndeX box test: on the RT unit in every configuration. */
inline BoxShape
rtindexBoxShape()
{
    return BoxShape{64, 4, 30, true};
}

} // namespace hsu

#endif // HSU_SIM_LOWER_HH
