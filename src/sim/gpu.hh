/**
 * @file
 * Whole-GPU timing simulator: SMs + memory hierarchy, Table III config.
 */

#ifndef HSU_SIM_GPU_HH
#define HSU_SIM_GPU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/tickteam.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/sm.hh"
#include "sim/trace.hh"

namespace hsu
{

/** Headline results of one kernel simulation. */
struct RunResult
{
    std::uint64_t cycles = 0;
    double instrsIssued = 0;
    double hsuCompleted = 0;       //!< HSU instructions (all modes)
    double l2LinesAccessed = 0;    //!< roofline denominator
    double l1Accesses = 0;         //!< summed over SMs
    double l1Misses = 0;           //!< true misses (MSHR hits excluded)
    double dramRowLocality = 0;    //!< accesses per row activation
    double offloadableFraction = 0;//!< Fig 7 metric (baseline runs)

    /** HSU ops completed per cycle (roofline y-axis). */
    double
    hsuOpsPerCycle() const
    {
        return cycles ? hsuCompleted / static_cast<double>(cycles) : 0.0;
    }

    /** HSU ops per L2 line accessed (roofline x-axis). */
    double
    opsPerL2Line() const
    {
        return l2LinesAccessed > 0 ? hsuCompleted / l2LinesAccessed : 0.0;
    }

    /** L1 miss rate with MSHR merges counted as hits (Section VI-J). */
    double
    l1MissRate() const
    {
        return l1Accesses > 0 ? l1Misses / l1Accesses : 0.0;
    }
};

/**
 * The simulated GPU. Construct once per kernel run (components carry
 * run-local state); stats accumulate into the caller's StatGroup.
 *
 * Two run loops, bit-identical by construction:
 *
 *  - Serial (simJobs == 1, the reference): each cycle ticks the memory
 *    system then every SM, and fast-forwards the clock across
 *    provably-idle gaps (all warps stalled on DRAM, no queued
 *    traffic). HSU_NO_SKIP=1 forces the un-skipped loop, which
 *    additionally asserts that every predicted gap really was
 *    eventless. Skipped cycles are reported as "sim.ff_cycles".
 *
 *  - Event-horizon (simJobs > 1, HSU_SIM_JOBS): the memory system
 *    still ticks serially (the canonical commit point; SM traffic is
 *    staged in the private L1 miss queues and drained in SM-index
 *    order), but each SM carries its own cached next-event cycle and
 *    only ticks when it is due or a memory completion woke it. SM
 *    ticks within a cycle run concurrently on a TickTeam. Per-SM
 *    skipped cycles are reported as "sim.horizon_cycles", globally
 *    skipped ones as "sim.ff_cycles"; only these two diagnostics may
 *    differ between the loops — see DESIGN.md "Deterministic
 *    intra-simulation parallelism" for the identity argument.
 *
 * Per-SM stats ("sm.*" / "lsu.*" / "rtu.*") accumulate in per-SM
 * staging groups and merge into the caller's StatGroup in SM-index
 * order when the run finishes; every increment is an exact small
 * integer, so the merged totals equal the serial loop's shared-group
 * accumulation bit for bit.
 */
class Gpu
{
  public:
    Gpu(const GpuConfig &cfg, StatGroup &stats);

    /**
     * Simulate a kernel to completion. Completion is detected on the
     * exact cycle the last unit drains (no check-period slack).
     * @param trace     warps to execute
     * @param max_cycles safety bound; exceeded -> panic
     */
    RunResult run(const KernelTrace &trace,
                  std::uint64_t max_cycles = 2'000'000'000ULL);

    StatGroup &stats() { return stats_; }

  private:
    /** True when every SM has drained and no memory request is alive. */
    bool allDone() const;

    /** Global minimum next-event cycle across SMs + memory. */
    Cycle nextEventCycle(Cycle now) const;

    /** Reference loop: tick everything every visited cycle. */
    void runSerial(std::uint64_t &now, std::uint64_t max_cycles,
                   bool skip);

    /** Parallel per-SM loop with cached next-event values. */
    void runHorizon(std::uint64_t &now, std::uint64_t max_cycles,
                    unsigned workers);

    /** Account SM @p i's skipped cycles, tick it, refresh its cache. */
    void catchUpAndTick(unsigned i, Cycle now);

    /** Fold the per-SM staging groups into stats_ (SM-index order). */
    void mergeSmStats();

    [[noreturn]] void panicWedged(const char *why, std::uint64_t now);

    GpuConfig cfg_;
    StatGroup &stats_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<StatGroup>> smStats_;
    std::vector<std::unique_ptr<Sm>> sms_;
    bool smStatsMerged_ = false;

    // Event-horizon state (sized/used by runHorizon only).
    std::vector<Cycle> smNextEvent_;   //!< cached per-SM next event
    std::vector<Cycle> smLastTicked_;  //!< last cycle the SM ticked
    std::vector<std::uint64_t> smSkipped_; //!< per-SM skipped cycles
    std::vector<unsigned> activeSms_;  //!< scratch: SMs due this cycle
    std::unique_ptr<TickTeam> team_;

    Stat &statFfCycles_;
    Stat &statHorizonCycles_;
};

/** Convenience: simulate a kernel on a fresh GPU and return results. */
RunResult simulateKernel(const GpuConfig &cfg, const KernelTrace &trace,
                         StatGroup &stats);

/**
 * Shared-trace overload: the executor and the serving layer hand the
 * same immutable lowered trace to many simulations without copying it
 * (see DESIGN.md "Trace lifetime and sharing"). The simulation only
 * reads the trace; the shared_ptr keeps it alive for the duration.
 */
RunResult simulateKernel(const GpuConfig &cfg,
                         const std::shared_ptr<const KernelTrace> &trace,
                         StatGroup &stats);

} // namespace hsu

#endif // HSU_SIM_GPU_HH
