/**
 * @file
 * Whole-GPU timing simulator: SMs + memory hierarchy, Table III config.
 */

#ifndef HSU_SIM_GPU_HH
#define HSU_SIM_GPU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/sm.hh"
#include "sim/trace.hh"

namespace hsu
{

/** Headline results of one kernel simulation. */
struct RunResult
{
    std::uint64_t cycles = 0;
    double instrsIssued = 0;
    double hsuCompleted = 0;       //!< HSU instructions (all modes)
    double l2LinesAccessed = 0;    //!< roofline denominator
    double l1Accesses = 0;         //!< summed over SMs
    double l1Misses = 0;           //!< true misses (MSHR hits excluded)
    double dramRowLocality = 0;    //!< accesses per row activation
    double offloadableFraction = 0;//!< Fig 7 metric (baseline runs)

    /** HSU ops completed per cycle (roofline y-axis). */
    double
    hsuOpsPerCycle() const
    {
        return cycles ? hsuCompleted / static_cast<double>(cycles) : 0.0;
    }

    /** HSU ops per L2 line accessed (roofline x-axis). */
    double
    opsPerL2Line() const
    {
        return l2LinesAccessed > 0 ? hsuCompleted / l2LinesAccessed : 0.0;
    }

    /** L1 miss rate with MSHR merges counted as hits (Section VI-J). */
    double
    l1MissRate() const
    {
        return l1Accesses > 0 ? l1Misses / l1Accesses : 0.0;
    }
};

/**
 * The simulated GPU. Construct once per kernel run (components carry
 * run-local state); stats accumulate into the caller's StatGroup.
 *
 * The run loop is event-skipping: after ticking a cycle it asks every
 * SM and the memory system for their next self-scheduled event and
 * fast-forwards the clock across provably-idle gaps (all warps stalled
 * on DRAM, no queued traffic). Results are cycle-for-cycle identical
 * to the naive loop; set HSU_NO_SKIP=1 to force the un-skipped loop,
 * which additionally asserts that every predicted gap really was
 * eventless. The cycles skipped are reported as "sim.ff_cycles".
 */
class Gpu
{
  public:
    Gpu(const GpuConfig &cfg, StatGroup &stats);

    /**
     * Simulate a kernel to completion. Completion is detected on the
     * exact cycle the last unit drains (no check-period slack).
     * @param trace     warps to execute
     * @param max_cycles safety bound; exceeded -> panic
     */
    RunResult run(const KernelTrace &trace,
                  std::uint64_t max_cycles = 2'000'000'000ULL);

    StatGroup &stats() { return stats_; }

  private:
    /** True when every SM has drained and no memory request is alive. */
    bool allDone() const;

    /** Global minimum next-event cycle across SMs + memory. */
    Cycle nextEventCycle(Cycle now) const;

    [[noreturn]] void panicWedged(const char *why, std::uint64_t now);

    GpuConfig cfg_;
    StatGroup &stats_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<Sm>> sms_;
    Stat &statFfCycles_;
};

/** Convenience: simulate a kernel on a fresh GPU and return results. */
RunResult simulateKernel(const GpuConfig &cfg, const KernelTrace &trace,
                         StatGroup &stats);

/**
 * Shared-trace overload: the executor and the serving layer hand the
 * same immutable lowered trace to many simulations without copying it
 * (see DESIGN.md "Trace lifetime and sharing"). The simulation only
 * reads the trace; the shared_ptr keeps it alive for the duration.
 */
RunResult simulateKernel(const GpuConfig &cfg,
                         const std::shared_ptr<const KernelTrace> &trace,
                         StatGroup &stats);

} // namespace hsu

#endif // HSU_SIM_GPU_HH
