/**
 * @file
 * Load-store unit: one per SM, shared by the four sub-cores.
 *
 * Coalesces each warp memory instruction's per-lane addresses into
 * 128-byte line requests, queues them, and presents at most one request
 * per cycle to the L1D — time-sharing the single L1 port with the RT
 * unit's FIFO memory access queue (Section VI-H).
 *
 * Thread model: the LSU is owned by one SM and is only touched from
 * that SM's tick (issue/tick) — its L1 traffic lands in the private
 * L1's miss queue, which the memory system drains in SM-index order.
 * Completion callbacks fire from Cache::tick during the serial memory
 * phase. Nothing here is shared across SMs, so the parallel horizon
 * loop needs no locks on this path.
 */

#ifndef HSU_SIM_LSU_HH
#define HSU_SIM_LSU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"
#include "sim/trace.hh"

namespace hsu
{

/** Coalesce a warp op's lane addresses into unique line numbers. */
std::vector<std::uint64_t> coalesceLines(const WarpTrace &trace,
                                         const TraceOp &op,
                                         unsigned line_bytes);

/** Per-SM load/store unit. */
class Lsu
{
  public:
    Lsu(unsigned queue_capacity, Cache &l1, StatGroup &stats,
        const std::string &name);

    /**
     * Issue one warp memory instruction as a set of line requests.
     * @param lines    coalesced unique line numbers
     * @param write    store (fire-and-forget) vs load
     * @param done     fires when every line has returned (loads)
     * @return false when the queue lacks space (warp must retry)
     */
    bool issue(const std::vector<std::uint64_t> &lines, bool write,
               MemCompletion done);

    /** True when a line request is waiting for the L1 port. */
    bool wantsAccess() const { return !queue_.empty(); }

    /** Present at most one request to the L1 if @p port_granted. */
    void tick(bool port_granted, std::uint64_t now);

    /** True when no request is queued (in-flight L1 side not counted). */
    bool drained() const { return queue_.empty(); }

    /**
     * Earliest future cycle tick() could act on its own: the queue
     * wants the port every cycle while non-empty; an empty LSU is
     * driven entirely by new issues and L1 completions. Part of the
     * SM's cached next-event value (event-horizon skipping).
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        return queue_.empty() ? kNeverCycle : now + 1;
    }

  private:
    struct Group
    {
        unsigned remaining;
        MemCompletion done;
    };

    struct LineReq
    {
        std::uint64_t line;
        bool write;
        std::shared_ptr<Group> group;
    };

    unsigned capacity_;
    Cache &l1_;
    std::deque<LineReq> queue_;

    Stat &statInstrs_;
    Stat &statLineReqs_;
    Stat &statPortCycles_;
    Stat &statRetries_;
};

} // namespace hsu

#endif // HSU_SIM_LSU_HH
