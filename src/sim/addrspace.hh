/**
 * @file
 * Simulated global-memory address allocation.
 *
 * Data structures built by the library are native C++ objects; the
 * timing model only needs the *addresses* their nodes would occupy in
 * device memory. AddressAllocator hands out aligned, non-overlapping
 * regions of a flat simulated address space.
 */

#ifndef HSU_SIM_ADDRSPACE_HH
#define HSU_SIM_ADDRSPACE_HH

#include <cstdint>

#include "common/logging.hh"

namespace hsu
{

/** Bump allocator over the simulated device address space. */
class AddressAllocator
{
  public:
    /** Start allocation at a non-zero base so address 0 stays invalid. */
    explicit AddressAllocator(std::uint64_t base = 0x10000)
        : next_(base)
    {
    }

    /**
     * Allocate @p bytes with the given alignment (power of two).
     * @return the base address of the region.
     */
    std::uint64_t
    allocate(std::uint64_t bytes, std::uint64_t align = 128)
    {
        hsu_assert((align & (align - 1)) == 0, "alignment must be 2^k");
        next_ = (next_ + align - 1) & ~(align - 1);
        const std::uint64_t base = next_;
        next_ += bytes;
        return base;
    }

    /** Total bytes spanned so far. */
    std::uint64_t highWater() const { return next_; }

  private:
    std::uint64_t next_;
};

} // namespace hsu

#endif // HSU_SIM_ADDRSPACE_HH
