/**
 * @file
 * The semantic kernel IR: what a search kernel computes, independent of
 * how a GPU executes it.
 *
 * The paper's methodology is a trace post-processor: kernels are run
 * once, and an Accel-Sim pass rewrites the SASS sequences that the HSU
 * can subsume into CISC instructions. We mirror that split. Kernels
 * emit a *semantic* trace — pass-through Alu/Shared/Load/Store ops
 * interleaved with semantic batch ops (`DistanceBatch`,
 * `KeyCompareBatch`, `BoxTestBatch`, `TriTest`) — and a separate
 * lowering pass (sim/lower.hh) rewrites each semantic op into either
 * the baseline SIMD instruction sequence or the HSU CISC instruction.
 * Kernels therefore contain no per-variant emission at all: the
 * baseline/HSU divergence lives in exactly one place.
 *
 * Dependencies are expressed with *virtual tokens*: dense per-warp ids
 * handed out by the builder. Lowering maps each virtual token to the
 * concrete scoreboard-token mask of whatever instruction(s) carry the
 * dependency under that lowering — e.g. a lane-parallel DistanceBatch's
 * token maps to the HSU instruction's token under the HSU lowering, and
 * to the empty mask under the baseline lowering (where the baseline
 * FMA block already consumed its operand loads internally).
 */

#ifndef HSU_SIM_IR_HH
#define HSU_SIM_IR_HH

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/logging.hh"
#include "sim/trace.hh"
#include "structures/graph.hh" // Metric

namespace hsu
{

/** Virtual dependency token (dense per-warp id). */
using VirtToken = std::int32_t;

/** Sentinel: no virtual token. */
constexpr VirtToken kNoVirt = -1;

/** Semantic trace op kinds. The first four are pass-through. */
enum class SemKind : std::uint8_t
{
    Alu,      //!< `count` SIMD ALU instructions (never rewritten)
    Shared,   //!< `count` shared-memory instructions
    Load,     //!< one global load
    Store,    //!< one global store
    Distance, //!< metric-distance evaluations (DistanceBatch)
    KeyCompare, //!< key-vs-separator comparisons (KeyCompareBatch)
    BoxTest,  //!< AABB slab tests over one node per lane (BoxTestBatch)
    TriTest,  //!< exact ray-triangle tests (unit-resident)
};

/**
 * Baseline/HSU instruction-shape parameters of one DistanceBatch. The
 * counts are per-kernel calibrations of the SASS each kernel's baseline
 * actually executes; the shape catalog in sim/lower.hh documents every
 * field. Emission logic lives in the lowering pass — kernels only name
 * their shape.
 */
struct DistanceShape
{
    /** GGNN style: candidates processed one at a time by the whole
     *  warp (coalesced pattern loads + shuffle reduction). Otherwise
     *  lane-parallel: one candidate per lane (gather loads). */
    bool warpCooperative = false;
    // Baseline operand loads: chunkCount loads of chunkBytes at
    // chunkStep intervals per candidate.
    std::uint16_t chunkCount = 1;
    std::uint16_t chunkStep = 0;
    std::uint16_t chunkBytes = 4;
    std::uint16_t perChunkAlu = 0; //!< FMA block after each chunk load
    std::uint16_t reduceAlu = 0;   //!< reduction/compare block
    std::uint16_t epilogueAlu = 0; //!< non-offloadable keep/compare ops
    /** HSU: SM-side scalar block consuming the CISC result (angular
     *  rsqrt/divide, eq. 2). 0 = the instruction's token escapes to
     *  the consumer recorded in the IR instead. */
    std::uint8_t trailingAlu = 0;
};

/**
 * Baseline shape of one BoxTestBatch: the node fetch is blChunks 16B
 * vector loads and the slab tests + hit ordering are blAlu SIMD ops.
 */
struct BoxShape
{
    std::uint16_t nodeBytes = 64;  //!< CISC fetch size (box node)
    std::uint16_t blChunks = 4;    //!< baseline 16B loads per node
    std::uint16_t blAlu = 30;      //!< baseline slab-test ALU block
    /** True for kernels whose box tests run on the RT unit in every
     *  evaluated configuration (RTIndeX: the baseline GPU has an RT
     *  core; the comparison isolates the leaf representation). */
    bool unitResident = false;
};

/** One semantic trace op. Fields beyond the common block are only
 *  meaningful for the kind that uses them (see SemBuilder). */
struct SemOp
{
    SemKind kind = SemKind::Alu;
    std::uint32_t activeMask = kFullMask;
    std::uint16_t count = 1;       //!< Alu/Shared instruction count
    std::uint16_t bytesPerLane = 4;
    bool offloadable = false;      //!< pass-through Fig-7 attribution
    VirtToken produces = kNoVirt;
    /** Consumed virtual tokens: consumeCount entries starting at
     *  consumeOffset in the warp's consumePool. */
    std::uint32_t consumeOffset = 0;
    std::uint32_t consumeCount = 0;
    /** Load/Store pattern addressing; semantic ops use poolIndex into
     *  the warp's addrPool (always kWarpSize lane addresses). */
    AddrGen addr;

    // --- Distance ---------------------------------------------------
    Metric metric = Metric::Euclidean;
    std::uint16_t dim = 0;
    std::uint16_t nCands = 0;      //!< warp-cooperative candidate count
    DistanceShape dist;

    // --- KeyCompare -------------------------------------------------
    std::uint32_t nKeys = 0;       //!< WarpScan separator count
    /** LaneProbe form: one node per lane, unit-resident (RTIndeX
     *  native leaves). WarpScan form (nKeys > 0): one node scanned by
     *  the whole warp, offloadable (B+tree descent). */
    bool laneProbe = false;

    // --- BoxTest ----------------------------------------------------
    BoxShape box;
};

/** The semantic trace of one warp. */
struct SemWarpTrace
{
    std::vector<SemOp> ops;
    std::vector<std::uint64_t> addrPool;   //!< kWarpSize-entry blocks
    std::vector<VirtToken> consumePool;    //!< flattened consume lists
    std::uint32_t numVirtTokens = 0;
};

/** A kernel launch in semantic form: one semantic trace per warp. */
struct SemKernelTrace
{
    std::vector<SemWarpTrace> warps;

    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &w : warps)
            n += w.ops.size();
        return n;
    }
};

/**
 * Builder for one warp's semantic trace. Mirrors TraceBuilder, but
 * token-producing ops return virtual tokens and consumers name virtual
 * tokens; concrete scoreboard tokens exist only after lowering.
 */
class SemBuilder
{
  public:
    explicit SemBuilder(SemWarpTrace &trace) : trace_(trace) {}

    /** Consume-list argument: any iterable of VirtToken; kNoVirt
     *  entries are skipped so callers can pass optional tokens. */
    using Consumes = std::initializer_list<VirtToken>;

    void
    alu(unsigned count, std::uint32_t mask = kFullMask,
        Consumes consumes = {}, bool offloadable = false)
    {
        if (count == 0)
            return;
        SemOp op;
        op.kind = SemKind::Alu;
        op.activeMask = mask;
        op.count = clampCount(count);
        op.offloadable = offloadable;
        setConsumes(op, consumes.begin(), consumes.size());
        trace_.ops.push_back(op);
    }

    /** alu() with a dynamic consume list (software-pipelined folds). */
    void
    aluConsuming(unsigned count, std::uint32_t mask,
                 const std::vector<VirtToken> &consumes)
    {
        if (count == 0)
            return;
        SemOp op;
        op.kind = SemKind::Alu;
        op.activeMask = mask;
        op.count = clampCount(count);
        setConsumes(op, consumes.data(), consumes.size());
        trace_.ops.push_back(op);
    }

    void
    shared(unsigned count, std::uint32_t mask = kFullMask,
           Consumes consumes = {})
    {
        if (count == 0)
            return;
        SemOp op;
        op.kind = SemKind::Shared;
        op.activeMask = mask;
        op.count = clampCount(count);
        setConsumes(op, consumes.begin(), consumes.size());
        trace_.ops.push_back(op);
    }

    VirtToken
    loadPattern(std::uint64_t base, std::int32_t stride,
                unsigned bytes_per_lane, std::uint32_t mask = kFullMask,
                bool offloadable = false)
    {
        SemOp op;
        op.kind = SemKind::Load;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.base = base;
        op.addr.stride = stride;
        op.offloadable = offloadable;
        op.produces = nextVirt();
        trace_.ops.push_back(op);
        return op.produces;
    }

    VirtToken
    loadGather(const std::uint64_t *lane_addrs, unsigned bytes_per_lane,
               std::uint32_t mask, bool offloadable = false)
    {
        SemOp op;
        op.kind = SemKind::Load;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.poolIndex = pushAddrs(lane_addrs);
        op.offloadable = offloadable;
        op.produces = nextVirt();
        trace_.ops.push_back(op);
        return op.produces;
    }

    void
    storePattern(std::uint64_t base, std::int32_t stride,
                 unsigned bytes_per_lane, std::uint32_t mask = kFullMask)
    {
        SemOp op;
        op.kind = SemKind::Store;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.base = base;
        op.addr.stride = stride;
        trace_.ops.push_back(op);
    }

    /**
     * Warp-cooperative DistanceBatch (GGNN): @p n_cands candidate
     * points evaluated against the warp's query; candidate base
     * addresses in @p cand_addrs (kWarpSize entries; [n_cands..) are
     * don't-care but still recorded, matching the emitted operand of
     * the multi-beat CISC instruction). Fully encapsulated: both
     * lowerings consume the result on the SM internally.
     */
    void
    distanceWarpCoop(Metric metric, unsigned dim,
                     const std::uint64_t *cand_addrs, unsigned n_cands,
                     const DistanceShape &shape, Consumes consumes = {})
    {
        hsu_assert(n_cands >= 1 && n_cands <= kWarpSize,
                   "bad candidate batch size ", n_cands);
        SemOp op;
        op.kind = SemKind::Distance;
        op.activeMask = lowLanes(n_cands);
        op.metric = metric;
        op.dim = static_cast<std::uint16_t>(dim);
        op.nCands = static_cast<std::uint16_t>(n_cands);
        op.dist = shape;
        op.addr.poolIndex = pushAddrs(cand_addrs);
        setConsumes(op, consumes.begin(), consumes.size());
        trace_.ops.push_back(op);
    }

    /**
     * Lane-parallel DistanceBatch (FLANN / BVH-NN leaves): one
     * candidate per active lane.
     * @return virtual token of the batch's result: the CISC token
     * under the HSU lowering, empty under the baseline lowering (the
     * FMA block consumes its loads internally).
     */
    VirtToken
    distanceLanes(unsigned dim, const std::uint64_t *lane_addrs,
                  std::uint32_t mask, const DistanceShape &shape)
    {
        SemOp op;
        op.kind = SemKind::Distance;
        op.activeMask = mask;
        op.metric = Metric::Euclidean;
        op.dim = static_cast<std::uint16_t>(dim);
        op.dist = shape;
        op.addr.poolIndex = pushAddrs(lane_addrs);
        op.produces = nextVirt();
        trace_.ops.push_back(op);
        return op.produces;
    }

    /**
     * Warp-scan KeyCompareBatch (B+tree descent): @p n_keys separators
     * at @p sep_addr scanned by the whole warp. Fully encapsulated.
     */
    void
    keyCompareScan(std::uint64_t sep_addr, unsigned n_keys)
    {
        hsu_assert(n_keys >= 1, "empty separator scan");
        SemOp op;
        op.kind = SemKind::KeyCompare;
        op.addr.base = sep_addr;
        op.nKeys = n_keys;
        trace_.ops.push_back(op);
    }

    /**
     * Lane-probe KeyCompareBatch (RTIndeX native leaves): one leaf key
     * range per lane, unit-resident (lowers to KEY_COMPARE under every
     * lowering — the experiment's baseline GPU has the unit).
     * @return virtual token of the KEY_COMPARE instruction.
     */
    VirtToken
    keyCompareProbe(const std::uint64_t *lane_addrs,
                    unsigned bytes_per_lane, std::uint32_t mask)
    {
        SemOp op;
        op.kind = SemKind::KeyCompare;
        op.laneProbe = true;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.poolIndex = pushAddrs(lane_addrs);
        op.produces = nextVirt();
        trace_.ops.push_back(op);
        return op.produces;
    }

    /**
     * BoxTestBatch: one box node per active lane, slab tests against
     * the lane's query.
     * @return virtual token of the batch's result (RAY_INTERSECT token
     * under the HSU lowering, empty under baseline).
     */
    VirtToken
    boxTest(const std::uint64_t *lane_addrs, std::uint32_t mask,
            const BoxShape &shape)
    {
        SemOp op;
        op.kind = SemKind::BoxTest;
        op.activeMask = mask;
        op.box = shape;
        op.addr.poolIndex = pushAddrs(lane_addrs);
        op.produces = nextVirt();
        trace_.ops.push_back(op);
        return op.produces;
    }

    /**
     * TriTest: one triangle node per active lane, exact ray-triangle
     * match. Unit-resident (triangle tests exist only on the RT core;
     * no evaluated configuration runs them on the SIMD pipelines).
     * @return virtual token of the RAY_INTERSECT instruction.
     */
    VirtToken
    triTest(const std::uint64_t *lane_addrs, unsigned bytes_per_lane,
            std::uint32_t mask)
    {
        SemOp op;
        op.kind = SemKind::TriTest;
        op.activeMask = mask;
        op.bytesPerLane = static_cast<std::uint16_t>(bytes_per_lane);
        op.addr.poolIndex = pushAddrs(lane_addrs);
        op.produces = nextVirt();
        trace_.ops.push_back(op);
        return op.produces;
    }

    /** Active mask with the low @p n lanes set. */
    static std::uint32_t
    lowLanes(unsigned n)
    {
        hsu_assert(n <= kWarpSize, "too many lanes: ", n);
        return n == kWarpSize ? kFullMask : ((1u << n) - 1u);
    }

  private:
    template <typename It>
    void
    setConsumes(SemOp &op, It first, std::size_t n)
    {
        op.consumeOffset =
            static_cast<std::uint32_t>(trace_.consumePool.size());
        for (std::size_t i = 0; i < n; ++i, ++first) {
            if (*first == kNoVirt)
                continue;
            trace_.consumePool.push_back(*first);
            ++op.consumeCount;
        }
    }

    std::int32_t
    pushAddrs(const std::uint64_t *lane_addrs)
    {
        const auto idx =
            static_cast<std::int32_t>(trace_.addrPool.size());
        trace_.addrPool.insert(trace_.addrPool.end(), lane_addrs,
                               lane_addrs + kWarpSize);
        return idx;
    }

    VirtToken
    nextVirt()
    {
        return static_cast<VirtToken>(trace_.numVirtTokens++);
    }

    static std::uint16_t
    clampCount(unsigned count)
    {
        hsu_assert(count <= 0xffff, "op count overflow: ", count);
        return static_cast<std::uint16_t>(count);
    }

    SemWarpTrace &trace_;
};

} // namespace hsu

#endif // HSU_SIM_IR_HH
