/**
 * @file
 * Trace inspection: instruction-mix and memory-footprint statistics of
 * a kernel trace — the Accel-Sim-style "what does this kernel execute"
 * summary used by tools, tests, and the breakdown bench.
 */

#ifndef HSU_SIM_TRACE_STATS_HH
#define HSU_SIM_TRACE_STATS_HH

#include <array>
#include <ostream>

#include "sim/trace.hh"

namespace hsu
{

/** Instruction mix attributed to one TraceOrigin (the semantic op a
 *  lowered instruction came from; Generic = pass-through). */
struct OriginStats
{
    std::size_t ops = 0;
    std::size_t instructions = 0;
    std::size_t aluInstructions = 0;
    std::size_t sharedInstructions = 0;
    std::size_t loadInstructions = 0;
    std::size_t storeInstructions = 0;
    std::size_t hsuInstructions = 0; //!< beats
    std::size_t globalBytes = 0;

    /** Share of this origin's instructions executed as HSU beats —
     *  the realized (post-lowering) offload fraction, per origin. */
    double
    offloadedFraction() const
    {
        return instructions
            ? static_cast<double>(hsuInstructions) /
                  static_cast<double>(instructions)
            : 0.0;
    }
};

/** Aggregated statistics over a kernel trace. */
struct TraceStats
{
    std::size_t warps = 0;
    std::size_t ops = 0;             //!< trace ops (compressed blocks)
    std::size_t instructions = 0;    //!< dynamic SIMD instructions
    std::size_t aluInstructions = 0;
    std::size_t sharedInstructions = 0;
    std::size_t loadInstructions = 0;
    std::size_t storeInstructions = 0;
    std::size_t hsuInstructions = 0; //!< beats
    /** HSU instruction counts per mode (indexed by HsuMode). */
    std::array<std::size_t, 5> hsuByMode{};
    std::size_t offloadableInstructions = 0;
    double avgActiveLanes = 0.0;     //!< over memory + HSU ops
    std::size_t globalBytes = 0;     //!< load/store/HSU operand bytes
    /** Per-semantic-origin instruction mix (indexed by TraceOrigin). */
    std::array<OriginStats, kNumTraceOrigins> byOrigin{};

    /** Fraction of dynamic instructions the HSU could subsume. */
    double
    offloadableFraction() const
    {
        return instructions
            ? static_cast<double>(offloadableInstructions) /
                  static_cast<double>(instructions)
            : 0.0;
    }

    /** Realized offload fraction over semantic (non-Generic) origins:
     *  HSU beats / instructions attributed to semantic ops. 0 for a
     *  baseline lowering, 1 when every semantic instruction became a
     *  CISC beat. */
    double
    semanticOffloadFraction() const
    {
        std::size_t instr = 0, beats = 0;
        for (unsigned o = 1; o < kNumTraceOrigins; ++o) {
            instr += byOrigin[o].instructions;
            beats += byOrigin[o].hsuInstructions;
        }
        return instr ? static_cast<double>(beats) /
                           static_cast<double>(instr)
                     : 0.0;
    }
};

/** Compute statistics for a whole kernel trace. */
TraceStats analyzeTrace(const KernelTrace &trace);

/**
 * Order-sensitive FNV-1a fingerprint of a trace's full contents (every
 * op field plus the address pools). Two traces are bit-identical in
 * the fields the timing model reads iff their fingerprints match; the
 * golden-trace regression tests pin lowered traces to pre-refactor
 * emissions through this value.
 */
std::uint64_t traceFingerprint(const KernelTrace &trace);

/** Pretty-print a TraceStats block. */
void printTraceStats(std::ostream &os, const TraceStats &stats,
                     const std::string &title);

} // namespace hsu

#endif // HSU_SIM_TRACE_STATS_HH
