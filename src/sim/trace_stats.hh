/**
 * @file
 * Trace inspection: instruction-mix and memory-footprint statistics of
 * a kernel trace — the Accel-Sim-style "what does this kernel execute"
 * summary used by tools, tests, and the breakdown bench.
 */

#ifndef HSU_SIM_TRACE_STATS_HH
#define HSU_SIM_TRACE_STATS_HH

#include <array>
#include <ostream>

#include "sim/trace.hh"

namespace hsu
{

/** Aggregated statistics over a kernel trace. */
struct TraceStats
{
    std::size_t warps = 0;
    std::size_t ops = 0;             //!< trace ops (compressed blocks)
    std::size_t instructions = 0;    //!< dynamic SIMD instructions
    std::size_t aluInstructions = 0;
    std::size_t sharedInstructions = 0;
    std::size_t loadInstructions = 0;
    std::size_t storeInstructions = 0;
    std::size_t hsuInstructions = 0; //!< beats
    /** HSU instruction counts per mode (indexed by HsuMode). */
    std::array<std::size_t, 5> hsuByMode{};
    std::size_t offloadableInstructions = 0;
    double avgActiveLanes = 0.0;     //!< over memory + HSU ops
    std::size_t globalBytes = 0;     //!< load/store/HSU operand bytes

    /** Fraction of dynamic instructions the HSU could subsume. */
    double
    offloadableFraction() const
    {
        return instructions
            ? static_cast<double>(offloadableInstructions) /
                  static_cast<double>(instructions)
            : 0.0;
    }
};

/** Compute statistics for a whole kernel trace. */
TraceStats analyzeTrace(const KernelTrace &trace);

/** Pretty-print a TraceStats block. */
void printTraceStats(std::ostream &os, const TraceStats &stats,
                     const std::string &title);

} // namespace hsu

#endif // HSU_SIM_TRACE_STATS_HH
