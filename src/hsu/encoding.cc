#include "hsu/encoding.hh"

#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace hsu
{

namespace
{

constexpr std::uint64_t kNodeAddrMask = (1ull << 48) - 1;

} // namespace

HsuInstrWord
encodeInstr(const HsuInstrFields &f)
{
    hsu_assert(f.nodeAddr <= kNodeAddrMask,
               "node address exceeds 48 bits: ", f.nodeAddr);
    hsu_assert(f.count <= 36, "KEY_COMPARE count exceeds 36: ",
               static_cast<int>(f.count));
    hsu_assert(static_cast<unsigned>(f.opcode) < 64, "opcode overflow");

    HsuInstrWord w;
    w.word0 = static_cast<std::uint64_t>(f.opcode) & 0x3f;
    w.word0 |= static_cast<std::uint64_t>(f.accumulate) << 6;
    w.word0 |= static_cast<std::uint64_t>(f.dstReg) << 8;
    w.word0 |= static_cast<std::uint64_t>(f.srcReg) << 16;
    w.word0 |= static_cast<std::uint64_t>(f.count) << 24;
    w.word0 |= static_cast<std::uint64_t>(f.imm) << 32;
    w.word1 = f.nodeAddr & kNodeAddrMask;
    return w;
}

std::optional<HsuInstrFields>
decodeInstr(const HsuInstrWord &w)
{
    // Reserved bits must be zero.
    if (w.word0 & 0x80)
        return std::nullopt;
    if (w.word1 >> 48)
        return std::nullopt;

    const auto op_raw = static_cast<unsigned>(w.word0 & 0x3f);
    if (op_raw > static_cast<unsigned>(HsuOpcode::KeyCompare))
        return std::nullopt;

    HsuInstrFields f;
    f.opcode = static_cast<HsuOpcode>(op_raw);
    f.accumulate = (w.word0 >> 6) & 1;
    f.dstReg = static_cast<std::uint8_t>((w.word0 >> 8) & 0xff);
    f.srcReg = static_cast<std::uint8_t>((w.word0 >> 16) & 0xff);
    f.count = static_cast<std::uint8_t>((w.word0 >> 24) & 0xff);
    if (f.count > 36)
        return std::nullopt;
    f.imm = static_cast<std::uint32_t>(w.word0 >> 32);
    f.nodeAddr = w.word1 & kNodeAddrMask;

    // Accumulate is only meaningful on the distance instructions.
    if (f.accumulate && f.opcode != HsuOpcode::PointEuclid &&
        f.opcode != HsuOpcode::PointAngular) {
        return std::nullopt;
    }
    return f;
}

std::string
disassemble(const HsuInstrWord &w)
{
    const auto fields = decodeInstr(w);
    if (!fields)
        return "<invalid>";
    std::ostringstream os;
    os << toString(fields->opcode);
    if (fields->accumulate)
        os << ".acc";
    os << " r" << static_cast<int>(fields->dstReg) << ", r"
       << static_cast<int>(fields->srcReg) << ", [0x" << std::hex
       << fields->nodeAddr << std::dec << "]";
    if (fields->opcode == HsuOpcode::KeyCompare)
        os << ", n=" << static_cast<int>(fields->count);
    return os.str();
}

std::vector<HsuInstrWord>
encodeDistanceSequence(HsuOpcode opcode, unsigned dim,
                       std::uint64_t point_addr, std::uint8_t dst_reg,
                       std::uint8_t src_reg, const DatapathConfig &dp)
{
    hsu_assert(opcode == HsuOpcode::PointEuclid ||
                   opcode == HsuOpcode::PointAngular,
               "not a distance opcode");
    const bool angular = opcode == HsuOpcode::PointAngular;
    const unsigned beats =
        angular ? dp.angularBeats(dim) : dp.euclidBeats(dim);
    const unsigned step = dp.bytesPerBeat(
        angular ? HsuMode::Angular : HsuMode::Euclid);

    std::vector<HsuInstrWord> out;
    out.reserve(beats);
    for (unsigned b = 0; b < beats; ++b) {
        HsuInstrFields f;
        f.opcode = opcode;
        f.accumulate = b + 1 < beats;
        f.dstReg = dst_reg;
        f.srcReg = src_reg;
        f.imm = dim;
        f.nodeAddr = point_addr + static_cast<std::uint64_t>(b) * step;
        out.push_back(encodeInstr(f));
    }
    return out;
}

} // namespace hsu
