/**
 * @file
 * Functional (bit-accurate at float32 granularity) semantics of the HSU
 * instructions. The timing model in src/rtunit wraps these with pipeline
 * and memory behaviour; library code and tests call them directly.
 */

#ifndef HSU_HSU_FUNCTIONAL_HH
#define HSU_HSU_FUNCTIONAL_HH

#include <array>
#include <cstdint>

#include "geom/intersect.hh"
#include "geom/ray.hh"
#include "hsu/isa.hh"
#include "hsu/nodes.hh"

namespace hsu
{

/**
 * Result of RAY_INTERSECT on a box node: the children that were hit,
 * sorted in order of closest entry distance, followed by kInvalidNode
 * entries for misses (Section IV-D: "pointers to the four children nodes
 * are returned in order of closest hit. If the ray did not intersect one
 * of the child nodes a null pointer is returned").
 */
struct BoxIntersectResult
{
    std::array<std::uint32_t, 4> sortedChild{kInvalidNode, kInvalidNode,
                                             kInvalidNode, kInvalidNode};
    std::array<float, 4> tEnter{};
    unsigned hits = 0;
};

/** RAY_INTERSECT on a box node: up to four slab tests + closest-hit sort. */
BoxIntersectResult rayIntersectBox(const PreparedRay &pr,
                                   const BoxNode4 &node);

/** RAY_INTERSECT on a triangle node: one watertight test. The hit
 *  distance is returned as (tNum, tDenom); the divide happens in SM
 *  software, not in the unit. */
TriHit rayIntersectTri(const PreparedRay &pr, const TriNode &node);

/**
 * One POINT_EUCLID beat: partial sum of (q_i - c_i)^2 over at most
 * `width` lanes. Lanes beyond @p count contribute zero.
 *
 * @param q      query-point chunk (count floats)
 * @param c      candidate-point chunk (count floats)
 * @param count  live lanes this beat (1..width)
 */
float euclidPartial(const float *q, const float *c, unsigned count);

/** Partial results of one POINT_ANGULAR beat. */
struct AngularPartial
{
    float dotSum = 0.0f;  //!< sum of c_i * q_i
    float normSum = 0.0f; //!< sum of c_i * c_i
};

/** One POINT_ANGULAR beat over at most `width` lanes. */
AngularPartial angularPartial(const float *q, const float *c,
                              unsigned count);

/**
 * One KEY_COMPARE beat: compare @p key against @p count separator values
 * (count <= 36). Bit i of the result is 0 when key < keys[i] and 1
 * otherwise, matching Table I.
 */
std::uint64_t keyCompare(std::uint32_t key, const std::uint32_t *seps,
                         unsigned count);

/**
 * Multi-beat accumulator mirroring the datapath's accumulate register
 * (Section IV-F). Software-visible semantics: beats with accumulate=1
 * fold into internal state; the beat with accumulate=0 returns the total
 * and resets.
 */
class DistanceAccumulator
{
  public:
    /** Feed one Euclidean beat. @return the accumulated distance when
     *  @p accumulate is false (the final beat); 0 otherwise. */
    float feedEuclid(float partial, bool accumulate);

    /** Feed one angular beat. @return the accumulated (dot, norm) pair
     *  when @p accumulate is false; zeros otherwise. */
    AngularPartial feedAngular(const AngularPartial &partial,
                               bool accumulate);

    /** True while a multi-beat sequence is open. */
    bool open() const { return open_; }

  private:
    float distSum_ = 0.0f;
    float dotSum_ = 0.0f;
    float normSum_ = 0.0f;
    bool open_ = false;
};

} // namespace hsu

#endif // HSU_HSU_FUNCTIONAL_HH
