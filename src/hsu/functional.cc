#include "hsu/functional.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

BoxIntersectResult
rayIntersectBox(const PreparedRay &pr, const BoxNode4 &node)
{
    BoxIntersectResult result;

    // Evaluate the (up to) four slab tests.
    std::array<std::pair<float, std::uint32_t>, 4> hits;
    unsigned n_hits = 0;
    for (unsigned i = 0; i < 4; ++i) {
        if (node.child[i] == kInvalidNode)
            continue;
        const BoxHit h = rayBoxTest(pr, node.bounds[i]);
        if (h.hit)
            hits[n_hits++] = {h.tEnter, node.child[i]};
    }

    // Closest-hit sort: the unit returns children ordered by entry
    // distance so traversal can visit near children first.
    std::stable_sort(hits.begin(), hits.begin() + n_hits,
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    result.hits = n_hits;
    for (unsigned i = 0; i < n_hits; ++i) {
        result.sortedChild[i] = hits[i].second;
        result.tEnter[i] = hits[i].first;
    }
    return result;
}

TriHit
rayIntersectTri(const PreparedRay &pr, const TriNode &node)
{
    return rayTriangleTest(pr, node.tri);
}

float
euclidPartial(const float *q, const float *c, unsigned count)
{
    // Stage 1: 16-wide subtraction; stage 2: 16-wide multiply;
    // stages 3..: adder-tree reduction. Functionally a dot of the
    // difference with itself.
    float sum = 0.0f;
    for (unsigned i = 0; i < count; ++i) {
        const float d = q[i] - c[i];
        sum += d * d;
    }
    return sum;
}

AngularPartial
angularPartial(const float *q, const float *c, unsigned count)
{
    // Two 8-wide multiplies feed two adder-tree reductions: the
    // query-candidate dot product and the candidate squared norm.
    AngularPartial p;
    for (unsigned i = 0; i < count; ++i) {
        p.dotSum += c[i] * q[i];
        p.normSum += c[i] * c[i];
    }
    return p;
}

std::uint64_t
keyCompare(std::uint32_t key, const std::uint32_t *seps, unsigned count)
{
    hsu_assert(count <= 36, "KEY_COMPARE supports at most 36 separators, "
               "got ", count);
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < count; ++i) {
        // Bit is 0 when key < separator, 1 otherwise (Table I).
        if (key >= seps[i])
            bits |= (1ull << i);
    }
    return bits;
}

float
DistanceAccumulator::feedEuclid(float partial, bool accumulate)
{
    distSum_ += partial;
    if (accumulate) {
        open_ = true;
        return 0.0f;
    }
    const float total = distSum_;
    distSum_ = 0.0f;
    open_ = false;
    return total;
}

AngularPartial
DistanceAccumulator::feedAngular(const AngularPartial &partial,
                                 bool accumulate)
{
    dotSum_ += partial.dotSum;
    normSum_ += partial.normSum;
    if (accumulate) {
        open_ = true;
        return {};
    }
    const AngularPartial total{dotSum_, normSum_};
    dotSum_ = 0.0f;
    normSum_ = 0.0f;
    open_ = false;
    return total;
}

} // namespace hsu
