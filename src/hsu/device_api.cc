#include "hsu/device_api.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "hsu/functional.hh"

namespace hsu
{

float
euclidDist(const float *a, const float *b, unsigned n,
           const DatapathConfig &cfg)
{
    hsu_assert(n > 0, "zero-dimensional point");
    const unsigned beats = cfg.euclidBeats(n);
    DistanceAccumulator acc;
    float result = 0.0f;
    for (unsigned beat = 0; beat < beats; ++beat) {
        const unsigned offset = beat * cfg.euclidWidth;
        const unsigned count = std::min(cfg.euclidWidth, n - offset);
        const float partial = euclidPartial(a + offset, b + offset, count);
        const bool accumulate = beat + 1 < beats;
        result = acc.feedEuclid(partial, accumulate);
    }
    return result;
}

AngularDistResult
angularDistRaw(const float *a, const float *b, unsigned n,
               const DatapathConfig &cfg)
{
    hsu_assert(n > 0, "zero-dimensional point");
    const unsigned width = cfg.angularWidth();
    const unsigned beats = cfg.angularBeats(n);
    DistanceAccumulator acc;
    AngularPartial total;
    for (unsigned beat = 0; beat < beats; ++beat) {
        const unsigned offset = beat * width;
        const unsigned count = std::min(width, n - offset);
        const AngularPartial partial =
            angularPartial(a + offset, b + offset, count);
        const bool accumulate = beat + 1 < beats;
        total = acc.feedAngular(partial, accumulate);
    }
    return {total.dotSum, total.normSum};
}

float
angularDist(const float *a, const float *b, unsigned n, float query_norm2,
            const DatapathConfig &cfg)
{
    const AngularDistResult raw = angularDistRaw(a, b, n, cfg);
    const float denom =
        std::sqrt(query_norm2) * std::sqrt(raw.normSum);
    if (denom == 0.0f)
        return 1.0f;
    return 1.0f - raw.dotSum / denom;
}

float
norm2(const float *a, unsigned n)
{
    float sum = 0.0f;
    for (unsigned i = 0; i < n; ++i)
        sum += a[i] * a[i];
    return sum;
}

unsigned
euclidInstrCount(unsigned n, const DatapathConfig &cfg)
{
    return cfg.euclidBeats(n);
}

unsigned
angularInstrCount(unsigned n, const DatapathConfig &cfg)
{
    return cfg.angularBeats(n);
}

} // namespace hsu
