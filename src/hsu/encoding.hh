/**
 * @file
 * Binary encoding of the HSU instruction words.
 *
 * The paper describes the HSU instructions at the ISA level (Table I,
 * AMD IMAGE_INTERSECT_RAY-style CISC operations with an accumulate
 * modifier). This header pins down a concrete 128-bit instruction-word
 * encoding — the artifact a compiler backend or trace post-processor
 * (the paper's Accel-Sim flow) would emit — with an assembler,
 * disassembler, and field accessors.
 *
 * Word layout (little-endian fields, two 64-bit halves):
 *
 *   word0[ 5: 0]  opcode        (HsuOpcode)
 *   word0[    6]  accumulate    (Section IV-F multi-beat chaining)
 *   word0[    7]  reserved
 *   word0[15: 8]  dstReg        (result register base; 4 consecutive)
 *   word0[23:16]  srcReg        (ray/query operand register base)
 *   word0[31:24]  count         (separators for KEY_COMPARE, else 0)
 *   word0[63:32]  imm           (mode-specific immediate)
 *   word1[47: 0]  nodeAddr      (48-bit node/point pointer)
 *   word1[63:48]  reserved
 */

#ifndef HSU_HSU_ENCODING_HH
#define HSU_HSU_ENCODING_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hsu/isa.hh"

namespace hsu
{

/** One encoded 128-bit HSU instruction. */
struct HsuInstrWord
{
    std::uint64_t word0 = 0;
    std::uint64_t word1 = 0;

    bool operator==(const HsuInstrWord &) const = default;
};

/** Decoded field view of an instruction word. */
struct HsuInstrFields
{
    HsuOpcode opcode = HsuOpcode::RayIntersect;
    bool accumulate = false;
    std::uint8_t dstReg = 0;
    std::uint8_t srcReg = 0;
    std::uint8_t count = 0;       //!< KEY_COMPARE separator count
    std::uint32_t imm = 0;
    std::uint64_t nodeAddr = 0;   //!< 48-bit

    bool operator==(const HsuInstrFields &) const = default;
};

/** Assemble fields into an instruction word.
 *  Panics on out-of-range fields (nodeAddr >= 2^48, count > 36). */
HsuInstrWord encodeInstr(const HsuInstrFields &fields);

/** Decode an instruction word. @return nullopt for invalid opcodes or
 *  nonzero reserved bits. */
std::optional<HsuInstrFields> decodeInstr(const HsuInstrWord &word);

/** Human-readable disassembly, e.g.
 *  "POINT_EUCLID.acc r4, r8, [0x000010040] ". */
std::string disassemble(const HsuInstrWord &word);

/**
 * Assemble the full multi-beat sequence for an n-dimensional distance
 * computation (the compiler lowering of __euclid_dist /
 * __angular_dist, Section IV-F): ceil(n / width) instructions, all but
 * the last with the accumulate bit set, node pointers advancing by the
 * per-beat fetch size.
 */
std::vector<HsuInstrWord> encodeDistanceSequence(
    HsuOpcode opcode, unsigned dim, std::uint64_t point_addr,
    std::uint8_t dst_reg, std::uint8_t src_reg,
    const DatapathConfig &dp = DatapathConfig{});

} // namespace hsu

#endif // HSU_HSU_ENCODING_HH
