#include "hsu/isa.hh"

#include "common/logging.hh"

namespace hsu
{

std::string
toString(HsuOpcode op)
{
    switch (op) {
      case HsuOpcode::RayIntersect:
        return "RAY_INTERSECT";
      case HsuOpcode::PointEuclid:
        return "POINT_EUCLID";
      case HsuOpcode::PointAngular:
        return "POINT_ANGULAR";
      case HsuOpcode::KeyCompare:
        return "KEY_COMPARE";
    }
    hsu_panic("unknown HsuOpcode ", static_cast<int>(op));
}

std::string
toString(HsuMode mode)
{
    switch (mode) {
      case HsuMode::RayBox:
        return "ray-box";
      case HsuMode::RayTri:
        return "ray-tri";
      case HsuMode::Euclid:
        return "euclid";
      case HsuMode::Angular:
        return "angular";
      case HsuMode::KeyCompare:
        return "key-compare";
    }
    hsu_panic("unknown HsuMode ", static_cast<int>(mode));
}

} // namespace hsu
