/**
 * @file
 * The Hierarchical Search Unit instruction set (Table I of the paper).
 *
 * The baseline RT unit exposes a single CISC instruction, RAY_INTERSECT,
 * which fetches a BVH node from memory and performs either one watertight
 * ray-triangle test or four slab ray-box tests depending on the node type.
 * The HSU adds three instructions:
 *
 *  - POINT_EUCLID:  16-wide squared-Euclidean-distance partial sum,
 *  - POINT_ANGULAR: 8-wide dot-product + candidate-norm partial sums,
 *  - KEY_COMPARE:   up to 36 key-vs-separator comparisons (B-tree nodes).
 *
 * Distances over points wider than the datapath are computed with
 * multi-beat sequences: the compiler emits ceil(n / width) instructions,
 * all but the last with the accumulate bit set (Section IV-F).
 */

#ifndef HSU_HSU_ISA_HH
#define HSU_HSU_ISA_HH

#include <cstdint>
#include <string>

namespace hsu
{

/** HSU/RT-unit opcodes. */
enum class HsuOpcode : std::uint8_t
{
    RayIntersect, //!< baseline: 1 ray-tri or 4 ray-box tests
    PointEuclid,  //!< squared euclidean distance partial
    PointAngular, //!< dot + candidate-norm partials
    KeyCompare,   //!< B-tree separator comparisons
};

/**
 * Datapath operating modes (columns of Fig 6). RAY_INTERSECT resolves to
 * RayBox or RayTri only after the node operand is fetched from memory,
 * which is why the mode is distinct from the opcode.
 */
enum class HsuMode : std::uint8_t
{
    RayBox,
    RayTri,
    Euclid,
    Angular,
    KeyCompare,
};

/** Human-readable opcode name. */
std::string toString(HsuOpcode op);

/** Human-readable mode name. */
std::string toString(HsuMode mode);

/**
 * Datapath width parameters. The defaults match the paper's chosen
 * design point: 16-wide Euclidean, 8-wide angular (half the Euclidean
 * width so the two modes share multipliers), 36-wide key compare, and a
 * 9-stage pipeline. Width sensitivity (Fig 10) sweeps euclidWidth with
 * angularWidth locked to half of it.
 */
struct DatapathConfig
{
    unsigned euclidWidth = 16;
    unsigned keyCompareWidth = 36;
    unsigned pipelineDepth = 9;
    /** Box tests evaluated per RAY_INTERSECT on a box node. */
    unsigned boxTestsPerInstr = 4;

    /** Angular width is architecturally half the Euclidean width. */
    unsigned angularWidth() const { return euclidWidth / 2; }

    /** Beats to cover an n-dimensional Euclidean distance. */
    unsigned
    euclidBeats(unsigned n) const
    {
        return (n + euclidWidth - 1) / euclidWidth;
    }

    /** Beats to cover an n-dimensional angular distance. */
    unsigned
    angularBeats(unsigned n) const
    {
        return (n + angularWidth() - 1) / angularWidth();
    }

    /** Beats to compare against @p n separators. */
    unsigned
    keyCompareBeats(unsigned n) const
    {
        return (n + keyCompareWidth - 1) / keyCompareWidth;
    }

    /**
     * Bytes of candidate operand data fetched from memory per beat.
     * Section VI-B: "A euclidean distance instruction requires 64 bytes
     * to be retrieved from memory, while an angular distance instruction
     * requires 32 bytes" (16 and 8 floats respectively).
     */
    unsigned
    bytesPerBeat(HsuMode mode) const
    {
        switch (mode) {
          case HsuMode::Euclid:
            return euclidWidth * 4;
          case HsuMode::Angular:
            return angularWidth() * 4;
          case HsuMode::KeyCompare:
            return keyCompareWidth * 4;
          case HsuMode::RayBox:
            return 128; // one 4-wide box node
          case HsuMode::RayTri:
            return 48; // one triangle node
        }
        return 0;
    }
};

} // namespace hsu

#endif // HSU_HSU_ISA_HH
