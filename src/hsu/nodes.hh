/**
 * @file
 * Memory-resident node formats consumed by RAY_INTERSECT and KEY_COMPARE.
 *
 * The RT unit is a CISC engine: the instruction carries a *pointer* and
 * the unit fetches the node payload itself. These structs define the
 * payload layouts (and, importantly for the memory-system experiments,
 * their sizes). The 4-wide box node follows the RDNA3-style layout used
 * by the paper's baseline; the triangle node holds one watertight-test
 * triangle; the B-tree separator node holds up to 36 keys per beat.
 */

#ifndef HSU_HSU_NODES_HH
#define HSU_HSU_NODES_HH

#include <array>
#include <cstdint>

#include "geom/aabb.hh"
#include "geom/intersect.hh"

namespace hsu
{

/** Sentinel for an absent child / miss result. */
constexpr std::uint32_t kInvalidNode = 0xffffffffu;

/** Tag bit distinguishing leaf (primitive) children from inner children
 *  in packed child references. */
constexpr std::uint32_t kLeafBit = 0x80000000u;

/** Pack a node index and leaf flag into a child reference. */
constexpr std::uint32_t
makeChildRef(std::uint32_t index, bool is_leaf)
{
    return index | (is_leaf ? kLeafBit : 0u);
}

/** Extract the index from a child reference. */
constexpr std::uint32_t childIndex(std::uint32_t ref)
{
    return ref & ~kLeafBit;
}

/** True when the child reference points at a leaf. */
constexpr bool childIsLeaf(std::uint32_t ref)
{
    return ref != kInvalidNode && (ref & kLeafBit) != 0;
}

/**
 * A 4-wide internal BVH node: up to four children, each with an AABB.
 * Unused slots hold kInvalidNode. 4 x (6 floats + 1 ref) = 112 bytes of
 * payload; the memory model rounds the footprint to one 128-byte line.
 */
struct BoxNode4
{
    std::array<Aabb, 4> bounds{};
    std::array<std::uint32_t, 4> child{kInvalidNode, kInvalidNode,
                                       kInvalidNode, kInvalidNode};

    /** Number of valid children (valid slots are packed first). */
    unsigned
    arity() const
    {
        unsigned n = 0;
        while (n < 4 && child[n] != kInvalidNode)
            ++n;
        return n;
    }

    /** Modeled memory footprint in bytes. */
    static constexpr unsigned kBytes = 128;
};

/**
 * A triangle leaf node: one triangle (9 floats) plus its id.
 * 40 bytes of payload, modeled as a 48-byte footprint.
 */
struct TriNode
{
    Triangle tri;

    static constexpr unsigned kBytes = 48;
};

/**
 * One beat of B-tree separator values for KEY_COMPARE: up to 36 keys.
 * Separators must be in non-decreasing order.
 */
struct SeparatorNode
{
    std::array<std::uint32_t, 36> keys{};
    unsigned count = 0;

    static constexpr unsigned kBytes = 144; // 36 x 4B
};

} // namespace hsu

#endif // HSU_HSU_NODES_HH
