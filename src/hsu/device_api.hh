/**
 * @file
 * The HSU programming interface (Section III-B of the paper).
 *
 * The paper exposes the unit's basic operations "directly to CUDA
 * programmers for use in device code". This header is the host-simulated
 * equivalent of that device library: distance intrinsics whose compiler-
 * generated multi-beat expansion is modeled explicitly, so callers can
 * also ask how many HSU instructions a given call lowers to.
 */

#ifndef HSU_HSU_DEVICE_API_HH
#define HSU_HSU_DEVICE_API_HH

#include <cstdint>

#include "hsu/isa.hh"

namespace hsu
{

/**
 * `__euclid_dist(a, b, N)`: squared Euclidean distance between two
 * N-dimensional points (equation 1). Lowered by the compiler to
 * ceil(N / euclidWidth) POINT_EUCLID beats, all but the last with the
 * accumulate bit set.
 */
float euclidDist(const float *a, const float *b, unsigned n,
                 const DatapathConfig &cfg = DatapathConfig{});

/**
 * Raw results of `__angular_dist`: the HSU computes only the dot product
 * (eq. 3) and candidate squared norm (eq. 4); the scalar division and
 * square roots run on the regular SM pipelines.
 */
struct AngularDistResult
{
    float dotSum = 0.0f;
    float normSum = 0.0f;
};

/**
 * `__angular_dist(a, b, N)` raw form: the (dot_sum, norm_sum) pair
 * returned through the register file. @p a is the query, @p b the
 * candidate (the norm is the candidate's).
 */
AngularDistResult angularDistRaw(const float *a, const float *b, unsigned n,
                                 const DatapathConfig &cfg =
                                     DatapathConfig{});

/**
 * Convenience: full angular distance (1 - cos theta) using a
 * precomputed squared query norm, the way search kernels consume it.
 * Returns 1 - q.c / (|q| |c|); smaller means more similar.
 */
float angularDist(const float *a, const float *b, unsigned n,
                  float query_norm2,
                  const DatapathConfig &cfg = DatapathConfig{});

/** Squared L2 norm of an n-dimensional point (precomputed per query). */
float norm2(const float *a, unsigned n);

/** Number of HSU instructions `__euclid_dist` lowers to for dim @p n. */
unsigned euclidInstrCount(unsigned n,
                          const DatapathConfig &cfg = DatapathConfig{});

/** Number of HSU instructions `__angular_dist` lowers to for dim @p n. */
unsigned angularInstrCount(unsigned n,
                           const DatapathConfig &cfg = DatapathConfig{});

} // namespace hsu

#endif // HSU_HSU_DEVICE_API_HH
