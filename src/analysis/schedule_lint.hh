/**
 * @file
 * Schedule auditor: rule-based verification of recorded serving
 * schedules (analysis/schedule_log) plus fixed-function checks of the
 * shard partitioning and merge layers. The serving-side counterpart of
 * the trace linter (analysis/trace_lint) — same LintReport / registry
 * machinery, new rule families (the catalog lives in DESIGN.md §11):
 *
 *  - SVxxx: serve-schedule rules over the event log (conservation of
 *    queued requests, seal-before-policy batch membership, cycle and
 *    deadline monotonicity, shed/degrade watermark legality),
 *  - SHxxx: shard rules — partition disjointness/coverage and merge
 *    total-order as fixed functions of plain data, scatter/gather
 *    join accounting and link-hop causality over the event log,
 *  - CHxxx: answer-cache rules (hit/miss replay against a resident-set
 *    oracle with bit-matching exact keys, B+tree exactness, LRU
 *    eviction order and capacity bounds).
 *
 * Findings anchor to (lane, event index) through LintFinding's
 * (warp, op) slots — "warp" reads as the scheduling lane here.
 * Linting never mutates the log and allocates only the report.
 */

#ifndef HSU_ANALYSIS_SCHEDULE_LINT_HH
#define HSU_ANALYSIS_SCHEDULE_LINT_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/schedule_log.hh"
#include "analysis/trace_lint.hh"

namespace hsu
{

/** Context handed to schedule-log rules. */
struct ScheduleLintContext
{
    const ScheduleLog &log;
};

using ScheduleLintFn =
    std::function<void(const ScheduleLintContext &, const LintRuleInfo &,
                       LintReport &)>;

/**
 * Install an extra schedule rule next to the SV/SH/CH built-ins (see
 * registerSemLintRule: IDs must be unique across the schedule registry;
 * register at startup, not concurrently with lint runs).
 */
std::size_t registerScheduleLintRule(LintRuleInfo info,
                                     ScheduleLintFn fn);

/** All schedule rules: SV/SH/CH built-ins (including the SH001/SH002
 *  fixed functions) plus registered extras. */
std::vector<LintRuleInfo> scheduleLintRuleCatalog();

/** Run every schedule-log rule over @p log. */
LintReport lintScheduleLog(const ScheduleLog &log);

/**
 * SH001 (fixed function): @p shard_ids — per-shard element-id lists —
 * must be pairwise disjoint and jointly cover exactly the ids
 * [0, @p total_elements).
 */
LintReport
lintPartitionCoverage(const std::vector<std::vector<std::uint32_t>> &shard_ids,
                      std::size_t total_elements);

/**
 * SH002 (fixed function): @p merged — one merged top-k answer list as
 * (dist2, global id) pairs — must be strictly increasing under the
 * merge layer's total order (dist2, then id; no duplicate ids) and at
 * most @p k long.
 */
LintReport
lintMergeOrder(const std::vector<std::pair<double, std::uint32_t>> &merged,
               std::size_t k);

} // namespace hsu

#endif // HSU_ANALYSIS_SCHEDULE_LINT_HH
