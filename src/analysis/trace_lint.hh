/**
 * @file
 * Static trace/IR linter: rule-based well-formedness checks over
 * semantic kernel traces (sim/ir.hh), lowered warp traces
 * (sim/trace.hh), and the relation between the two under a given
 * lowering (sim/lower.hh).
 *
 * Three rule families exist (the catalog lives in DESIGN.md):
 *
 *  - IRxxx: semantic-trace rules (token resolution, shape/calibration
 *    consistency, pool bounds, datapath fan-in limits),
 *  - LTxxx: lowered-trace rules (scoreboard discipline, provenance
 *    stamps, op shape),
 *  - XLxxx: cross-lowering rules (per-origin CISC op conservation
 *    against a replay of the offload decision, f=0/f=1 endpoint
 *    equivalence, ByKind mask balance).
 *
 * Every rule has a stable ID, a severity, and a fix-it hint. IR and LT
 * rules run through a registry so kernels can install extra rules next
 * to the built-ins; XL rules are fixed functions of (sem, lowered,
 * lowering). Linting never mutates its inputs and allocates only the
 * report, so the debug-build emission hook (lintSemTraceOrDie) is safe
 * to run on every kernel emission.
 */

#ifndef HSU_ANALYSIS_TRACE_LINT_HH
#define HSU_ANALYSIS_TRACE_LINT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "hsu/isa.hh"
#include "sim/ir.hh"
#include "sim/lower.hh"
#include "sim/trace.hh"

namespace hsu
{

/** Finding severity. Errors fail lintWorkload / the CLI; warnings are
 *  reported but non-fatal. */
enum class LintSeverity : std::uint8_t
{
    Warning,
    Error,
};

/** Static description of one lint rule. */
struct LintRuleInfo
{
    std::string id;       //!< stable rule ID ("IR001", "LT004", ...)
    LintSeverity severity = LintSeverity::Error;
    std::string summary;  //!< one-line statement of the invariant
    std::string fixit;    //!< how to repair a violating emitter
};

/** One rule violation, anchored to a (warp, op) site. */
struct LintFinding
{
    std::string ruleId;
    LintSeverity severity = LintSeverity::Error;
    std::size_t warp = 0;
    std::size_t op = 0;   //!< op index within the warp (0 if warp-level)
    std::string message;
};

/**
 * Accumulated findings of one lint run. Per-rule counters are exact;
 * the stored finding list is capped per rule (a corrupted
 * million-op trace must not allocate a million messages), with the
 * overflow recorded in suppressed().
 */
class LintReport
{
  public:
    /** Stored findings per rule before suppression kicks in. */
    static constexpr std::size_t kMaxStoredPerRule = 64;

    void add(const LintRuleInfo &rule, std::size_t warp, std::size_t op,
             std::string message);

    const std::vector<LintFinding> &findings() const { return findings_; }

    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    bool clean() const { return errors_ == 0 && warnings_ == 0; }

    /** Exact number of violations of @p rule_id (incl. suppressed). */
    std::size_t countRule(std::string_view rule_id) const;
    bool hasRule(std::string_view rule_id) const
    {
        return countRule(rule_id) > 0;
    }

    /** Findings dropped beyond the per-rule storage cap. */
    std::size_t suppressed() const { return suppressed_; }

    /** Merge another report into this one (counters + findings). */
    void merge(const LintReport &other);

    /** Render as "RULE [severity] warp W op O: message" lines. */
    std::string str() const;

  private:
    struct RuleCount
    {
        std::string id;
        std::size_t count = 0;
    };

    std::vector<LintFinding> findings_;
    std::vector<RuleCount> counts_; //!< few rules: linear scan is fine
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t suppressed_ = 0;
};

/** Context handed to semantic-trace rules. */
struct SemLintContext
{
    const SemKernelTrace &sem;
    DatapathConfig dp;
};

/** Context handed to lowered-trace rules. */
struct LoweredLintContext
{
    const KernelTrace &trace;
};

using SemLintFn =
    std::function<void(const SemLintContext &, const LintRuleInfo &,
                       LintReport &)>;
using LoweredLintFn =
    std::function<void(const LoweredLintContext &, const LintRuleInfo &,
                       LintReport &)>;

/**
 * Install an extra semantic-trace rule. Registered rules run after the
 * built-ins on every lintSemTrace call. The ID must be unique; returns
 * the rule's registry slot. Not thread-safe against concurrent lint
 * runs — register at startup.
 */
std::size_t registerSemLintRule(LintRuleInfo info, SemLintFn fn);

/** Install an extra lowered-trace rule (see registerSemLintRule). */
std::size_t registerLoweredLintRule(LintRuleInfo info, LoweredLintFn fn);

/** All known rules: built-ins (IR/LT/XL) plus registered extras. */
std::vector<LintRuleInfo> lintRuleCatalog();

/** Run every semantic-trace rule. */
LintReport lintSemTrace(const SemKernelTrace &sem,
                        const DatapathConfig &dp = DatapathConfig{});

/** Run every lowered-trace rule. */
LintReport lintLoweredTrace(const KernelTrace &trace);

/**
 * Cross-lowering conservation: replay @p low's offload decision over
 * @p sem and check the per-TraceOrigin CISC instruction counts of
 * @p lowered against the replay (XL001), or against the ByKind mask
 * (XL003). The lowered trace must have warps.size() ==
 * sem.warps.size().
 */
LintReport lintLoweringAccounting(const SemKernelTrace &sem,
                                  const KernelTrace &lowered,
                                  const Lowering &low);

/**
 * Endpoint equivalence (XL002): PartialOffload at fraction 0 must be
 * bit-identical to Baseline and at fraction 1 to Hsu (compared by
 * trace fingerprint). Lowers @p sem four times.
 */
LintReport lintEndpointEquivalence(const SemKernelTrace &sem,
                                   const DatapathConfig &dp);

/**
 * Full audit of one workload: semantic rules, lowered rules over the
 * Baseline / Hsu / PartialOffload(@p partial_fraction) lowerings,
 * conservation for each, and endpoint equivalence.
 */
LintReport lintWorkload(const SemKernelTrace &sem,
                        const DatapathConfig &dp = DatapathConfig{},
                        double partial_fraction = 0.5);

/**
 * Debug-build emission hook: lint @p sem and panic with the rendered
 * report if any error-severity finding exists. @p what names the
 * emitting kernel in the panic message.
 */
void lintSemTraceOrDie(const SemKernelTrace &sem, const char *what,
                       const DatapathConfig &dp = DatapathConfig{});

} // namespace hsu

#endif // HSU_ANALYSIS_TRACE_LINT_HH
