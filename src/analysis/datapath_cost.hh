/**
 * @file
 * Functional-unit-level area and dynamic-power model of the unified
 * single-lane datapath (Figures 15 and 16 of the paper).
 *
 * The paper synthesizes Chisel RTL (Berkeley HardFloat FUs, 15nm PDK,
 * 1 GHz, Cadence Genus). With no EDA flow available we model the
 * datapath analytically: the per-stage functional-unit inventories are
 * transcribed from Fig 6 and Section IV-C (HSU adds two adders in
 * stage 3 and one each in stages 5, 8, 9, plus per-mode pipeline
 * registers), and each FU class carries a 15nm-class area/energy
 * constant. The *ratios* the paper reports (total HSU area ~= +37%,
 * Euclid mode ~= 5 mW above baseline ray-box) are outputs of the
 * model, not inputs; the absolute scale is set by the FU constants.
 */

#ifndef HSU_ANALYSIS_DATAPATH_COST_HH
#define HSU_ANALYSIS_DATAPATH_COST_HH

#include <array>
#include <string>
#include <vector>

#include "hsu/isa.hh"

namespace hsu
{

/** Functional-unit classes tracked by the model (Fig 15 categories). */
enum class FuClass : unsigned
{
    FpAdd,     //!< 32-bit FP adders (incl. adder-tree nodes)
    FpMul,     //!< 32-bit FP multipliers
    FpCmp,     //!< FP comparators (slab tests, closest-hit sort, keys)
    PipeReg,   //!< per-stage, per-mode pipeline registers (per bit)
    Control,   //!< mode decode, FU enables, result muxing (per stage)
};

constexpr unsigned kNumFuClasses = 5;
constexpr unsigned kNumStages = 9;

std::string toString(FuClass c);

/** Per-stage inventory: count of each FU class (PipeReg in bits). */
struct StageInventory
{
    std::array<double, kNumFuClasses> count{};
};

/** A full datapath description. */
struct DatapathInventory
{
    std::string name;
    std::array<StageInventory, kNumStages> stages{};

    /** Total count of one FU class across stages. */
    double total(FuClass c) const;
};

/** The baseline RT datapath (ray-box + ray-triangle only). */
DatapathInventory baselineInventory();

/** The HSU datapath (adds euclid/angular/key-compare support). */
DatapathInventory hsuInventory(const DatapathConfig &dp =
                                   DatapathConfig{});

/** 15nm-class area constants, um^2 per FU (per bit for PipeReg). */
double fuArea(FuClass c);

/** Dynamic energy per activation, pJ (per bit-toggle for PipeReg). */
double fuEnergy(FuClass c);

/** Total area of an inventory in um^2. */
double totalArea(const DatapathInventory &inv);

/** Per-class area breakdown in um^2. */
std::array<double, kNumFuClasses>
areaByClass(const DatapathInventory &inv);

/**
 * Dynamic power (mW at 1 GHz) of one operating mode: the FUs the mode
 * activates each cycle (Fig 6 rows) times their energy, plus register
 * toggling. @p inv must support the mode.
 *
 * When @p baseline is given (i.e. @p inv is the HSU design), the
 * registers and control added on top of @p baseline are clock-gated:
 * only the active mode's own additions toggle; the other modes'
 * additions idle at a small residual rate.
 */
double modePower(const DatapathInventory &inv, HsuMode mode,
                 const DatapathConfig &dp = DatapathConfig{},
                 const DatapathInventory *baseline = nullptr);

/** Fraction of each stage's FUs a mode activates (activity factors). */
double modeActivity(HsuMode mode, unsigned stage, FuClass c);

} // namespace hsu

#endif // HSU_ANALYSIS_DATAPATH_COST_HH
