/**
 * @file
 * Roofline model for the HSU (Fig 8 / Section VI-B).
 *
 * Performance: HSU instructions completed per cycle (compute bound = 1
 * op/cycle/HSU). Operational intensity: instructions per L2 cache line
 * accessed (memory bound = 1 line/cycle). A workload's attainable
 * performance is min(1, intensity * 1).
 */

#ifndef HSU_ANALYSIS_ROOFLINE_HH
#define HSU_ANALYSIS_ROOFLINE_HH

#include <string>
#include <vector>

#include "sim/gpu.hh"

namespace hsu
{

/** One workload's point on the roofline plot. */
struct RooflinePoint
{
    std::string label;
    double intensity = 0.0;   //!< HSU ops per L2 line accessed
    double performance = 0.0; //!< HSU ops per cycle (per HSU unit)

    /** The roof at this intensity (compute bound 1 op/cycle, memory
     *  bound 1 line/cycle). */
    double
    bound() const
    {
        return intensity < 1.0 ? intensity : 1.0;
    }

    /** Fraction of the attainable roof achieved. */
    double
    utilization() const
    {
        const double b = bound();
        return b > 0.0 ? performance / b : 0.0;
    }
};

/** Build a roofline point from an HSU simulation result.
 *  @p num_hsu normalizes per-unit (one HSU per SM). */
RooflinePoint rooflinePoint(const std::string &label, const RunResult &r,
                            unsigned num_hsu);

} // namespace hsu

#endif // HSU_ANALYSIS_ROOFLINE_HH
