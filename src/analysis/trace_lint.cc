#include "analysis/trace_lint.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "sim/trace_stats.hh"

namespace hsu
{

namespace
{

/** Human-readable TraceOrigin name (finding messages). */
const char *
originName(TraceOrigin o)
{
    switch (o) {
      case TraceOrigin::Generic:
        return "Generic";
      case TraceOrigin::Distance:
        return "Distance";
      case TraceOrigin::KeyCompare:
        return "KeyCompare";
      case TraceOrigin::BoxTest:
        return "BoxTest";
      case TraceOrigin::TriTest:
        return "TriTest";
    }
    return "?";
}

std::string
loweringName(const Lowering &low)
{
    std::ostringstream os;
    switch (low.kind) {
      case Lowering::Kind::Baseline:
        os << "Baseline";
        break;
      case Lowering::Kind::Hsu:
        os << "Hsu";
        break;
      case Lowering::Kind::PartialOffload:
        if (low.policy == OffloadPolicy::ByKind)
            os << "PartialOffload(ByKind mask=0x" << std::hex
               << low.kindMask << ")";
        else
            os << "PartialOffload(f=" << low.fraction << ")";
        break;
    }
    return os.str();
}

template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Semantic ops whose lowering reads the warp's address pool. */
bool
semNeedsPool(const SemOp &op)
{
    switch (op.kind) {
      case SemKind::Distance:
      case SemKind::BoxTest:
      case SemKind::TriTest:
        return true;
      case SemKind::KeyCompare:
        return op.laneProbe;
      default:
        return false;
    }
}

// --- Rule registry ---------------------------------------------------

struct SemRule
{
    LintRuleInfo info;
    SemLintFn fn;
};

struct LoweredRule
{
    LintRuleInfo info;
    LoweredLintFn fn;
};

std::vector<SemRule> &
semRules()
{
    static std::vector<SemRule> rules;
    return rules;
}

std::vector<LoweredRule> &
loweredRules()
{
    static std::vector<LoweredRule> rules;
    return rules;
}

void
assertUniqueId(const std::string &id)
{
    for (const SemRule &r : semRules())
        hsu_assert(r.info.id != id, "duplicate lint rule id ", id);
    for (const LoweredRule &r : loweredRules())
        hsu_assert(r.info.id != id, "duplicate lint rule id ", id);
}

// --- Built-in semantic rules (IRxxx) ---------------------------------

void
ruleUnresolvedVirtToken(const SemLintContext &ctx,
                        const LintRuleInfo &rule, LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        std::vector<bool> produced(warp.numVirtTokens, false);
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            for (std::uint32_t c = 0; c < op.consumeCount; ++c) {
                const std::size_t slot = op.consumeOffset + c;
                if (slot >= warp.consumePool.size())
                    break; // IR004's finding
                const VirtToken tok = warp.consumePool[slot];
                if (tok < 0 ||
                    static_cast<std::uint32_t>(tok) >=
                        warp.numVirtTokens) {
                    report.add(rule, w, i,
                               cat("consumed virtual token ", tok,
                                   " is outside [0, ",
                                   warp.numVirtTokens, ")"));
                } else if (!produced[static_cast<std::size_t>(tok)]) {
                    report.add(rule, w, i,
                               cat("consumed virtual token ", tok,
                                   " has no producing op earlier in "
                                   "the warp"));
                }
            }
            if (op.produces != kNoVirt && op.produces >= 0 &&
                static_cast<std::uint32_t>(op.produces) <
                    warp.numVirtTokens) {
                produced[static_cast<std::size_t>(op.produces)] = true;
            }
        }
    }
}

void
ruleVirtTokenRedefined(const SemLintContext &ctx,
                       const LintRuleInfo &rule, LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        std::vector<bool> produced(warp.numVirtTokens, false);
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            if (op.produces == kNoVirt)
                continue;
            if (op.produces < 0 ||
                static_cast<std::uint32_t>(op.produces) >=
                    warp.numVirtTokens) {
                report.add(rule, w, i,
                           cat("produced virtual token ", op.produces,
                               " is outside [0, ", warp.numVirtTokens,
                               ")"));
                continue;
            }
            const auto idx = static_cast<std::size_t>(op.produces);
            if (produced[idx]) {
                report.add(rule, w, i,
                           cat("virtual token ", op.produces,
                               " produced twice (SSA form: one "
                               "producer per token)"));
            }
            produced[idx] = true;
        }
    }
}

void
ruleSemAddrPool(const SemLintContext &ctx, const LintRuleInfo &rule,
                LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            if (semNeedsPool(op) && op.addr.poolIndex < 0) {
                report.add(rule, w, i,
                           "semantic batch op carries no address-pool "
                           "block (poolIndex < 0)");
                continue;
            }
            if (op.addr.poolIndex >= 0 &&
                static_cast<std::size_t>(op.addr.poolIndex) + kWarpSize >
                    warp.addrPool.size()) {
                report.add(rule, w, i,
                           cat("address-pool block [", op.addr.poolIndex,
                               ", ", op.addr.poolIndex + kWarpSize,
                               ") overruns the pool (size ",
                               warp.addrPool.size(), ")"));
            }
        }
    }
}

void
ruleConsumePool(const SemLintContext &ctx, const LintRuleInfo &rule,
                LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            const std::uint64_t end =
                std::uint64_t(op.consumeOffset) + op.consumeCount;
            if (end > warp.consumePool.size()) {
                report.add(rule, w, i,
                           cat("consume list [", op.consumeOffset, ", ",
                               end, ") overruns the consume pool (size ",
                               warp.consumePool.size(), ")"));
            }
        }
    }
}

void
ruleDistanceBeats(const SemLintContext &ctx, const LintRuleInfo &rule,
                  LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            if (op.kind != SemKind::Distance)
                continue;
            if (op.dim == 0) {
                report.add(rule, w, i,
                           "DistanceBatch over zero-dimensional points");
                continue;
            }
            const DistanceShape &s = op.dist;
            if (s.warpCooperative) {
                // Calibration: the baseline loads the whole candidate
                // in coalesced 128B chunks (4B per lane).
                const unsigned want =
                    std::max(1u, (op.dim * 4u + 127u) / 128u);
                if (s.chunkCount != want) {
                    report.add(
                        rule, w, i,
                        cat("warp-cooperative DistanceBatch over dim=",
                            op.dim, " declares ", s.chunkCount,
                            " baseline chunks; the coalesced-load "
                            "calibration requires ", want));
                }
            } else {
                const std::uint64_t covered =
                    std::uint64_t(s.chunkCount) * s.chunkBytes;
                if (covered < std::uint64_t(op.dim) * 4) {
                    report.add(
                        rule, w, i,
                        cat("lane-parallel DistanceBatch over dim=",
                            op.dim, " fetches only ", covered,
                            " bytes per candidate (", s.chunkCount,
                            " x ", s.chunkBytes, "B); needs ",
                            op.dim * 4));
                }
            }
        }
    }
}

void
ruleDistanceShape(const SemLintContext &ctx, const LintRuleInfo &rule,
                  LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            if (op.kind != SemKind::Distance)
                continue;
            if (op.dist.warpCooperative) {
                if (op.produces != kNoVirt) {
                    report.add(rule, w, i,
                               "warp-cooperative DistanceBatch is fully "
                               "encapsulated but produces a virtual "
                               "token");
                }
                if (op.nCands < 1 || op.nCands > kWarpSize) {
                    report.add(rule, w, i,
                               cat("warp-cooperative candidate count ",
                                   op.nCands, " outside [1, ",
                                   kWarpSize, "]"));
                } else if (op.activeMask !=
                           SemBuilder::lowLanes(op.nCands)) {
                    report.add(
                        rule, w, i,
                        cat("active mask 0x", std::hex, op.activeMask,
                            std::dec,
                            " disagrees with candidate count ",
                            op.nCands, " (expected lowLanes)"));
                }
            } else {
                if (op.produces == kNoVirt) {
                    report.add(rule, w, i,
                               "lane-parallel DistanceBatch produces no "
                               "virtual token (its consumer cannot "
                               "wait on the HSU result)");
                }
                if (op.nCands != 0) {
                    report.add(rule, w, i,
                               cat("lane-parallel DistanceBatch sets "
                                   "nCands=", op.nCands,
                                   " (warp-cooperative field)"));
                }
            }
        }
    }
}

void
ruleKeyCompareFanIn(const SemLintContext &ctx, const LintRuleInfo &rule,
                    LintReport &report)
{
    const unsigned width = std::max(1u, ctx.dp.keyCompareWidth);
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            if (op.kind != SemKind::KeyCompare)
                continue;
            if (op.laneProbe) {
                if (op.bytesPerLane == 0 ||
                    op.bytesPerLane > width * 4) {
                    report.add(
                        rule, w, i,
                        cat("lane-probe KeyCompareBatch fetches ",
                            op.bytesPerLane,
                            " bytes per lane; one KEY_COMPARE handles "
                            "at most ", width * 4,
                            " (one ", width, "-key chunk per lane)"));
                }
                continue;
            }
            if (op.nKeys < 1) {
                report.add(rule, w, i,
                           "warp-scan KeyCompareBatch over zero "
                           "separators");
                continue;
            }
            const unsigned chunks = (op.nKeys + width - 1) / width;
            if (chunks > kWarpSize) {
                report.add(
                    rule, w, i,
                    cat("warp-scan KeyCompareBatch over ", op.nKeys,
                        " separators needs ", chunks, " ", width,
                        "-key chunks; one KEY_COMPARE carries at most ",
                        kWarpSize, " (one per lane)"));
            }
        }
    }
}

void
ruleEmptyActiveMask(const SemLintContext &ctx, const LintRuleInfo &rule,
                    LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            if (warp.ops[i].activeMask == 0) {
                report.add(rule, w, i,
                           "op with empty active mask (no lane "
                           "executes it; dead emission?)");
            }
        }
    }
}

void
ruleBoxShape(const SemLintContext &ctx, const LintRuleInfo &rule,
             LintReport &report)
{
    for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
        const SemWarpTrace &warp = ctx.sem.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const SemOp &op = warp.ops[i];
            if (op.kind != SemKind::BoxTest)
                continue;
            if (op.box.nodeBytes == 0) {
                report.add(rule, w, i, "BoxTestBatch over a 0-byte node");
                continue;
            }
            if (std::uint32_t(op.box.blChunks) * 16 != op.box.nodeBytes) {
                report.add(
                    rule, w, i,
                    cat("BoxTestBatch baseline fetch (", op.box.blChunks,
                        " x 16B) does not cover the ", op.box.nodeBytes,
                        "B node the CISC fetch reads"));
            }
        }
    }
}

// --- Built-in lowered-trace rules (LTxxx) ----------------------------

void
ruleScoreboardTokens(const LoweredLintContext &ctx,
                     const LintRuleInfo &rule, LintReport &report)
{
    for (std::size_t w = 0; w < ctx.trace.warps.size(); ++w) {
        const WarpTrace &warp = ctx.trace.warps[w];
        std::uint16_t produced = 0;
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const TraceOp &op = warp.ops[i];
            const std::uint16_t unknown =
                static_cast<std::uint16_t>(op.consumesMask & ~produced);
            if (unknown != 0) {
                report.add(rule, w, i,
                           cat("consume mask 0x", std::hex,
                               op.consumesMask, " waits on tokens 0x",
                               unknown, std::dec,
                               " no earlier op produced"));
            }
            if (op.produces != kNoToken && op.produces < 16)
                produced |= static_cast<std::uint16_t>(1u << op.produces);
        }
    }
}

void
ruleLoweredOpShape(const LoweredLintContext &ctx,
                   const LintRuleInfo &rule, LintReport &report)
{
    for (std::size_t w = 0; w < ctx.trace.warps.size(); ++w) {
        const WarpTrace &warp = ctx.trace.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const TraceOp &op = warp.ops[i];
            if (op.produces != kNoToken && op.produces >= 16) {
                report.add(rule, w, i,
                           cat("produced token ", unsigned(op.produces),
                               " beyond the 16-entry scoreboard"));
            }
            switch (op.type) {
              case OpType::Alu:
              case OpType::Shared:
                if (op.count == 0) {
                    report.add(rule, w, i,
                               "zero-instruction Alu/Shared block "
                               "(builders drop these)");
                }
                break;
              case OpType::Load:
              case OpType::Store:
              case OpType::HsuOp:
                if (op.bytesPerLane == 0) {
                    report.add(rule, w, i,
                               "memory op touching 0 bytes per lane");
                }
                if (op.type == OpType::HsuOp && op.count == 0) {
                    report.add(rule, w, i, "HSU op with zero beats");
                }
                break;
            }
        }
    }
}

void
ruleLoweredAddrPool(const LoweredLintContext &ctx,
                    const LintRuleInfo &rule, LintReport &report)
{
    for (std::size_t w = 0; w < ctx.trace.warps.size(); ++w) {
        const WarpTrace &warp = ctx.trace.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const TraceOp &op = warp.ops[i];
            if (op.type == OpType::HsuOp && op.addr.poolIndex < 0) {
                report.add(rule, w, i,
                           "HSU op without per-lane node addresses "
                           "(poolIndex < 0)");
                continue;
            }
            if (op.addr.poolIndex >= 0 &&
                static_cast<std::size_t>(op.addr.poolIndex) + kWarpSize >
                    warp.addrPool.size()) {
                report.add(rule, w, i,
                           cat("address-pool block [", op.addr.poolIndex,
                               ", ", op.addr.poolIndex + kWarpSize,
                               ") overruns the pool (size ",
                               warp.addrPool.size(), ")"));
            }
        }
    }
}

void
ruleOriginStamp(const LoweredLintContext &ctx, const LintRuleInfo &rule,
                LintReport &report)
{
    for (std::size_t w = 0; w < ctx.trace.warps.size(); ++w) {
        const WarpTrace &warp = ctx.trace.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const TraceOp &op = warp.ops[i];
            if (op.type != OpType::HsuOp)
                continue;
            if (static_cast<unsigned>(op.origin) >= kNumTraceOrigins)
                continue; // LT005's finding
            bool ok = false;
            switch (op.hsuOp) {
              case HsuOpcode::PointEuclid:
              case HsuOpcode::PointAngular:
                ok = op.origin == TraceOrigin::Distance;
                break;
              case HsuOpcode::KeyCompare:
                ok = op.origin == TraceOrigin::KeyCompare;
                break;
              case HsuOpcode::RayIntersect:
                ok = op.origin == TraceOrigin::BoxTest ||
                     op.origin == TraceOrigin::TriTest;
                break;
            }
            if (!ok) {
                report.add(rule, w, i,
                           cat("HSU op (", toString(op.hsuOp),
                               ") stamped with origin ",
                               originName(op.origin),
                               op.origin == TraceOrigin::Generic
                                   ? " (missing provenance stamp)"
                                   : " (wrong semantic family)"));
            }
        }
    }
}

void
ruleOriginRange(const LoweredLintContext &ctx, const LintRuleInfo &rule,
                LintReport &report)
{
    for (std::size_t w = 0; w < ctx.trace.warps.size(); ++w) {
        const WarpTrace &warp = ctx.trace.warps[w];
        for (std::size_t i = 0; i < warp.ops.size(); ++i) {
            const auto raw =
                static_cast<unsigned>(warp.ops[i].origin);
            if (raw >= kNumTraceOrigins) {
                report.add(rule, w, i,
                           cat("origin byte ", raw,
                               " outside the TraceOrigin range [0, ",
                               kNumTraceOrigins, ")"));
            }
        }
    }
}

void
registerBuiltins()
{
    auto sem = [](const char *id, LintSeverity sev, const char *summary,
                  const char *fixit, void (*fn)(const SemLintContext &,
                                                const LintRuleInfo &,
                                                LintReport &)) {
        semRules().push_back(
            SemRule{LintRuleInfo{id, sev, summary, fixit}, fn});
    };
    auto lt = [](const char *id, LintSeverity sev, const char *summary,
                 const char *fixit,
                 void (*fn)(const LoweredLintContext &,
                            const LintRuleInfo &, LintReport &)) {
        loweredRules().push_back(
            LoweredRule{LintRuleInfo{id, sev, summary, fixit}, fn});
    };

    sem("IR001", LintSeverity::Error,
        "every consumed virtual token has an earlier producer",
        "emit the producing op before its consumer, or drop the stale "
        "token from the consume list",
        ruleUnresolvedVirtToken);
    sem("IR002", LintSeverity::Error,
        "virtual tokens are produced exactly once and stay in range",
        "hand out tokens through SemBuilder only (nextVirt keeps them "
        "dense and single-assignment)",
        ruleVirtTokenRedefined);
    sem("IR003", LintSeverity::Error,
        "semantic batch ops carry a full in-bounds address-pool block",
        "push kWarpSize lane addresses via the SemBuilder batch calls; "
        "never hand-roll poolIndex",
        ruleSemAddrPool);
    sem("IR004", LintSeverity::Error,
        "consume lists stay inside the warp's consume pool",
        "build consume lists through SemBuilder::setConsumes; do not "
        "splice SemOps across warps",
        ruleConsumePool);
    sem("IR005", LintSeverity::Error,
        "DistanceBatch chunk calibration covers the point dimension",
        "derive the shape from the lower.hh factories "
        "(ggnnDistanceShape / flannDistanceShape / bvhnnLeafShape) "
        "instead of hand-writing chunk counts",
        ruleDistanceBeats);
    sem("IR006", LintSeverity::Error,
        "DistanceBatch form matches its token/mask contract",
        "warp-cooperative batches encapsulate their result (no token, "
        "lowLanes mask); lane-parallel batches must produce a token",
        ruleDistanceShape);
    sem("IR007", LintSeverity::Error,
        "KeyCompareBatch fan-in fits one KEY_COMPARE instruction",
        "split oversized separator scans into multiple "
        "keyCompareScan calls (one node each)",
        ruleKeyCompareFanIn);
    sem("IR008", LintSeverity::Warning,
        "no op is emitted with an empty active mask",
        "guard the emission on the candidate count (SemBuilder "
        "lowLanes(0) is not a valid mask)",
        ruleEmptyActiveMask);
    sem("IR009", LintSeverity::Error,
        "BoxTestBatch baseline chunks cover exactly the CISC node",
        "use the bvhBoxShape / bvh4BoxShape / rtindexBoxShape "
        "factories; blChunks * 16 must equal nodeBytes",
        ruleBoxShape);

    lt("LT001", LintSeverity::Error,
       "consume masks only wait on previously produced scoreboard "
       "tokens",
       "lower virtual tokens through WarpLowerer::bind/consumeMask; "
       "never guess concrete token masks",
       ruleScoreboardTokens);
    lt("LT002", LintSeverity::Error,
       "lowered ops are shape-valid (counts, bytes, token range)",
       "emit through TraceBuilder, which clamps and validates these "
       "fields",
       ruleLoweredOpShape);
    lt("LT003", LintSeverity::Error,
       "pool-addressed ops stay inside the warp's address pool and "
       "HSU ops carry node addresses",
       "let TraceBuilder::loadGather/hsuOp manage the pool; never "
       "reuse pool indices across warps",
       ruleLoweredAddrPool);
    lt("LT004", LintSeverity::Error,
       "every HSU op carries the provenance stamp of its semantic "
       "family",
       "WarpLowerer::stamp must run after each semantic expansion; "
       "new lowerings must stamp before returning",
       ruleOriginStamp);
    lt("LT005", LintSeverity::Error,
       "origin bytes decode to a TraceOrigin value",
       "stamp origins with the TraceOrigin enum; never memset or "
       "cast raw bytes into TraceOp",
       ruleOriginRange);
}

void
ensureBuiltins()
{
    static const bool once = []() {
        registerBuiltins();
        return true;
    }();
    (void)once;
}

// --- Cross-lowering rule descriptors (fixed functions) ---------------

const LintRuleInfo kXl001{
    "XL001", LintSeverity::Error,
    "per-origin CISC op counts match a replay of the offload decision",
    "keep lowerTrace's offloadDecision and the per-kind expansion in "
    "sync; unit-resident ops lower to the unit under every lowering"};

const LintRuleInfo kXl002{
    "XL002", LintSeverity::Error,
    "PartialOffload at f=0 / f=1 is bit-identical to Baseline / Hsu",
    "route every offload choice through offloadDecision so the "
    "fraction endpoints degenerate to the pure lowerings"};

const LintRuleInfo kXl003{
    "XL003", LintSeverity::Error,
    "ByKind offload masks offload exactly the selected kinds",
    "check Lowering::kindBit usage: the kindMask must partition "
    "offloadable ops, not drop or double-count them"};

} // namespace

// --- LintReport ------------------------------------------------------

void
LintReport::add(const LintRuleInfo &rule, std::size_t warp,
                std::size_t op, std::string message)
{
    RuleCount *rc = nullptr;
    for (RuleCount &c : counts_) {
        if (c.id == rule.id) {
            rc = &c;
            break;
        }
    }
    if (!rc) {
        counts_.push_back(RuleCount{rule.id, 0});
        rc = &counts_.back();
    }
    ++rc->count;
    if (rule.severity == LintSeverity::Error)
        ++errors_;
    else
        ++warnings_;
    if (rc->count > kMaxStoredPerRule) {
        ++suppressed_;
        return;
    }
    findings_.push_back(LintFinding{rule.id, rule.severity, warp, op,
                                    std::move(message)});
}

std::size_t
LintReport::countRule(std::string_view rule_id) const
{
    for (const RuleCount &c : counts_) {
        if (c.id == rule_id)
            return c.count;
    }
    return 0;
}

void
LintReport::merge(const LintReport &other)
{
    findings_.insert(findings_.end(), other.findings_.begin(),
                     other.findings_.end());
    for (const RuleCount &c : other.counts_) {
        bool found = false;
        for (RuleCount &mine : counts_) {
            if (mine.id == c.id) {
                mine.count += c.count;
                found = true;
                break;
            }
        }
        if (!found)
            counts_.push_back(c);
    }
    errors_ += other.errors_;
    warnings_ += other.warnings_;
    suppressed_ += other.suppressed_;
}

std::string
LintReport::str() const
{
    std::ostringstream os;
    for (const LintFinding &f : findings_) {
        os << f.ruleId << " ["
           << (f.severity == LintSeverity::Error ? "error" : "warning")
           << "] warp " << f.warp << " op " << f.op << ": " << f.message
           << "\n";
    }
    if (suppressed_ > 0)
        os << "(" << suppressed_ << " further findings suppressed)\n";
    return os.str();
}

// --- Registry --------------------------------------------------------

std::size_t
registerSemLintRule(LintRuleInfo info, SemLintFn fn)
{
    ensureBuiltins();
    assertUniqueId(info.id);
    semRules().push_back(SemRule{std::move(info), std::move(fn)});
    return semRules().size() - 1;
}

std::size_t
registerLoweredLintRule(LintRuleInfo info, LoweredLintFn fn)
{
    ensureBuiltins();
    assertUniqueId(info.id);
    loweredRules().push_back(
        LoweredRule{std::move(info), std::move(fn)});
    return loweredRules().size() - 1;
}

std::vector<LintRuleInfo>
lintRuleCatalog()
{
    ensureBuiltins();
    std::vector<LintRuleInfo> out;
    for (const SemRule &r : semRules())
        out.push_back(r.info);
    for (const LoweredRule &r : loweredRules())
        out.push_back(r.info);
    out.push_back(kXl001);
    out.push_back(kXl002);
    out.push_back(kXl003);
    return out;
}

// --- Entry points ----------------------------------------------------

LintReport
lintSemTrace(const SemKernelTrace &sem, const DatapathConfig &dp)
{
    ensureBuiltins();
    LintReport report;
    const SemLintContext ctx{sem, dp};
    for (const SemRule &r : semRules())
        r.fn(ctx, r.info, report);
    return report;
}

LintReport
lintLoweredTrace(const KernelTrace &trace)
{
    ensureBuiltins();
    LintReport report;
    const LoweredLintContext ctx{trace};
    for (const LoweredRule &r : loweredRules())
        r.fn(ctx, r.info, report);
    return report;
}

LintReport
lintLoweringAccounting(const SemKernelTrace &sem,
                       const KernelTrace &lowered, const Lowering &low)
{
    LintReport report;
    const LintRuleInfo &rule =
        (low.kind == Lowering::Kind::PartialOffload &&
         low.policy == OffloadPolicy::ByKind)
            ? kXl003
            : kXl001;

    if (sem.warps.size() != lowered.warps.size()) {
        report.add(rule, 0, 0,
                   cat("semantic trace has ", sem.warps.size(),
                       " warps but the lowered trace has ",
                       lowered.warps.size()));
        return report;
    }

    const double fraction = std::clamp(low.fraction, 0.0, 1.0);
    for (std::size_t w = 0; w < sem.warps.size(); ++w) {
        // Replay the per-warp offload decision. The site counter must
        // advance exactly when lowerTrace's offloadDecision runs —
        // unit-resident box tests short-circuit past it.
        unsigned site = 0;
        auto decide = [&](SemKind kind) -> bool {
            switch (low.kind) {
              case Lowering::Kind::Baseline:
                return false;
              case Lowering::Kind::Hsu:
                return true;
              case Lowering::Kind::PartialOffload: {
                if (low.policy == OffloadPolicy::ByKind)
                    return (low.kindMask & Lowering::kindBit(kind)) != 0;
                const double i = static_cast<double>(site++);
                return std::floor((i + 1.0) * fraction) >
                       std::floor(i * fraction);
              }
            }
            hsu_panic("unknown lowering kind");
        };

        std::array<std::size_t, kNumTraceOrigins> expected{};
        for (const SemOp &op : sem.warps[w].ops) {
            switch (op.kind) {
              case SemKind::Distance:
                if (decide(SemKind::Distance)) {
                    ++expected[static_cast<std::size_t>(
                        TraceOrigin::Distance)];
                }
                break;
              case SemKind::KeyCompare:
                if (op.laneProbe || decide(SemKind::KeyCompare)) {
                    ++expected[static_cast<std::size_t>(
                        TraceOrigin::KeyCompare)];
                }
                break;
              case SemKind::BoxTest:
                if (op.box.unitResident || decide(SemKind::BoxTest)) {
                    ++expected[static_cast<std::size_t>(
                        TraceOrigin::BoxTest)];
                }
                break;
              case SemKind::TriTest:
                ++expected[static_cast<std::size_t>(
                    TraceOrigin::TriTest)];
                break;
              default:
                break;
            }
        }

        std::array<std::size_t, kNumTraceOrigins> actual{};
        for (const TraceOp &op : lowered.warps[w].ops) {
            if (op.type != OpType::HsuOp)
                continue;
            const auto o = static_cast<std::size_t>(op.origin);
            if (o < kNumTraceOrigins)
                ++actual[o];
        }

        for (std::size_t o = 0; o < kNumTraceOrigins; ++o) {
            if (expected[o] == actual[o])
                continue;
            report.add(
                rule, w, 0,
                cat("origin ", originName(static_cast<TraceOrigin>(o)),
                    ": ", actual[o],
                    " CISC ops in the lowered trace, but a replay of ",
                    loweringName(low), " expects ", expected[o]));
        }
    }
    return report;
}

LintReport
lintEndpointEquivalence(const SemKernelTrace &sem,
                        const DatapathConfig &dp)
{
    LintReport report;
    const std::uint64_t base =
        traceFingerprint(lowerTrace(sem, Lowering::baseline(dp)));
    const std::uint64_t f0 =
        traceFingerprint(lowerTrace(sem, Lowering::partial(0.0, dp)));
    if (base != f0) {
        report.add(kXl002, 0, 0,
                   cat("PartialOffload(f=0) fingerprint 0x", std::hex,
                       f0, " differs from Baseline 0x", base));
    }
    const std::uint64_t hsu =
        traceFingerprint(lowerTrace(sem, Lowering::hsu(dp)));
    const std::uint64_t f1 =
        traceFingerprint(lowerTrace(sem, Lowering::partial(1.0, dp)));
    if (hsu != f1) {
        report.add(kXl002, 0, 0,
                   cat("PartialOffload(f=1) fingerprint 0x", std::hex,
                       f1, " differs from Hsu 0x", hsu));
    }
    return report;
}

LintReport
lintWorkload(const SemKernelTrace &sem, const DatapathConfig &dp,
             double partial_fraction)
{
    LintReport report = lintSemTrace(sem, dp);

    const Lowering lowerings[] = {
        Lowering::baseline(dp),
        Lowering::hsu(dp),
        Lowering::partial(partial_fraction, dp),
    };
    for (const Lowering &low : lowerings) {
        const KernelTrace trace = lowerTrace(sem, low);
        report.merge(lintLoweredTrace(trace));
        report.merge(lintLoweringAccounting(sem, trace, low));
    }
    report.merge(lintEndpointEquivalence(sem, dp));
    return report;
}

void
lintSemTraceOrDie(const SemKernelTrace &sem, const char *what,
                  const DatapathConfig &dp)
{
    const LintReport report = lintSemTrace(sem, dp);
    if (report.errorCount() > 0) {
        hsu_panic(what, ": semantic trace failed lint (",
                  report.errorCount(), " errors):\n", report.str());
    }
}

} // namespace hsu
