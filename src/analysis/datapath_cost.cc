#include "analysis/datapath_cost.hh"

#include <numeric>

#include "common/logging.hh"

namespace hsu
{

std::string
toString(FuClass c)
{
    switch (c) {
      case FuClass::FpAdd:
        return "fp-adders";
      case FuClass::FpMul:
        return "fp-multipliers";
      case FuClass::FpCmp:
        return "comparators";
      case FuClass::PipeReg:
        return "pipeline-registers";
      case FuClass::Control:
        return "control-mux";
    }
    hsu_panic("unknown FU class");
}

double
DatapathInventory::total(FuClass c) const
{
    double sum = 0.0;
    for (const auto &s : stages)
        sum += s.count[static_cast<unsigned>(c)];
    return sum;
}

namespace
{

StageInventory
stage(double add, double mul, double cmp, double reg_bits, double ctrl)
{
    StageInventory s;
    s.count[static_cast<unsigned>(FuClass::FpAdd)] = add;
    s.count[static_cast<unsigned>(FuClass::FpMul)] = mul;
    s.count[static_cast<unsigned>(FuClass::FpCmp)] = cmp;
    s.count[static_cast<unsigned>(FuClass::PipeReg)] = reg_bits;
    s.count[static_cast<unsigned>(FuClass::Control)] = ctrl;
    return s;
}

} // namespace

DatapathInventory
baselineInventory()
{
    // Unified ray-box (4-wide) / ray-triangle pipeline, Fig 5/6.
    // Stage regs carry ray constants + node payload + partials for the
    // two baseline operating modes.
    DatapathInventory inv;
    inv.name = "baseline-rt";
    inv.stages = {
        // translate to ray origin: 4 boxes x 6 planes subtract
        stage(24, 0, 0, 1600, 2),
        // interval / shear-scale multiplies
        stage(4, 24, 0, 1600, 2),
        // tmin/tmax + scaled barycentrics; 36-wide comparator bank
        // (the one KEY_COMPARE reuses, Section IV-C)
        stage(6, 6, 36, 1400, 3),
        // hit determination + determinant
        stage(4, 3, 12, 1200, 2),
        // closest-hit sort begins + hit-distance products
        stage(2, 3, 6, 1000, 2),
        stage(2, 1, 5, 900, 1),
        stage(1, 1, 4, 800, 1),
        // result assembly
        stage(1, 0, 2, 700, 1),
        stage(1, 0, 1, 600, 1),
    };
    return inv;
}

DatapathInventory
hsuInventory(const DatapathConfig &dp)
{
    // Start from the baseline and apply Section IV-C: "Only two
    // additional adders are required in stage 3, and one in stages 5,
    // 8 and 9". The dominant cost is the per-mode pipeline registers
    // (three extra operating modes; the euclid mode alone latches a
    // 16-lane operand + accumulator per stage) and the wider mode
    // decode / result muxing.
    DatapathInventory inv = baselineInventory();
    inv.name = "hsu";

    auto &add3 = inv.stages[2].count[static_cast<unsigned>(
        FuClass::FpAdd)];
    add3 += 2;
    inv.stages[4].count[static_cast<unsigned>(FuClass::FpAdd)] += 1;
    inv.stages[7].count[static_cast<unsigned>(FuClass::FpAdd)] += 1;
    inv.stages[8].count[static_cast<unsigned>(FuClass::FpAdd)] += 1;

    // Per-mode stage registers: euclid operands are euclidWidth lanes
    // of 32b (query chunk + candidate chunk early, partial sums later),
    // angular holds two accumulators, key-compare a 36-bit vector.
    // The prototype is deliberately unoptimized (Section VI-K): it
    // keeps INDIVIDUAL full-width registers at every stage for each
    // operating mode rather than multiplexing them, so the new modes
    // cost their full operand width at all nine stages.
    const double euclid_bits = dp.euclidWidth * 32.0 * 2.0;
    const double angular_bits = dp.angularWidth() * 32.0 * 2.0 + 64.0;
    const double key_bits = dp.keyCompareWidth + 32.0;
    for (unsigned s = 0; s < kNumStages; ++s) {
        inv.stages[s].count[static_cast<unsigned>(FuClass::PipeReg)] +=
            euclid_bits + angular_bits + key_bits;
        // Extra mode decode, per-FU enables, per-stage rounding logic
        // and result muxing for three more modes.
        inv.stages[s].count[static_cast<unsigned>(FuClass::Control)] +=
            3.2;
    }
    return inv;
}

double
fuArea(FuClass c)
{
    // um^2 per unit in a 15nm-class standard-cell library
    // (HardFloat-style single-precision FUs, non-area-optimized as the
    // paper notes).
    switch (c) {
      case FuClass::FpAdd:
        return 620.0;
      case FuClass::FpMul:
        return 2200.0;
      case FuClass::FpCmp:
        return 120.0;
      case FuClass::PipeReg:
        return 1.7; // per bit
      case FuClass::Control:
        return 950.0;
    }
    hsu_panic("unknown FU class");
}

double
fuEnergy(FuClass c)
{
    // pJ per activation (per toggled bit for PipeReg).
    switch (c) {
      case FuClass::FpAdd:
        return 0.9;
      case FuClass::FpMul:
        return 1.2;
      case FuClass::FpCmp:
        return 0.15;
      case FuClass::PipeReg:
        return 0.0015;
      case FuClass::Control:
        return 0.8;
    }
    hsu_panic("unknown FU class");
}

double
totalArea(const DatapathInventory &inv)
{
    double sum = 0.0;
    for (unsigned c = 0; c < kNumFuClasses; ++c)
        sum += inv.total(static_cast<FuClass>(c)) *
               fuArea(static_cast<FuClass>(c));
    return sum;
}

std::array<double, kNumFuClasses>
areaByClass(const DatapathInventory &inv)
{
    std::array<double, kNumFuClasses> out{};
    for (unsigned c = 0; c < kNumFuClasses; ++c)
        out[c] = inv.total(static_cast<FuClass>(c)) *
                 fuArea(static_cast<FuClass>(c));
    return out;
}

double
modeActivity(HsuMode mode, unsigned stage, FuClass c)
{
    // Fraction of the class's units a mode exercises per stage,
    // following the Fig 6 operating-mode columns. Idle FUs are
    // clock-gated but still leak a little switching (0.08).
    const double idle = 0.08;
    switch (c) {
      case FuClass::FpAdd:
        switch (mode) {
          case HsuMode::RayBox:
            return stage == 0 ? 1.0 : (stage <= 4 ? 0.5 : idle);
          case HsuMode::RayTri:
            return stage == 0 ? 0.5 : (stage <= 6 ? 0.7 : 0.3);
          case HsuMode::Euclid:
            // 16-wide subtract (s1) + full adder tree + accumulate.
            return stage == 0 ? 0.7 : (stage >= 2 ? 0.88 : idle);
          case HsuMode::Angular:
            return stage == 0 ? idle : (stage >= 2 ? 0.8 : idle);
          case HsuMode::KeyCompare:
            return idle;
        }
        break;
      case FuClass::FpMul:
        switch (mode) {
          case HsuMode::RayBox:
            return stage == 1 ? 1.0 : idle;
          case HsuMode::RayTri:
            return stage >= 1 && stage <= 4 ? 0.8 : idle;
          case HsuMode::Euclid:
            return stage == 1 ? 0.67 : idle; // 16 of 24
          case HsuMode::Angular:
            return stage == 1 ? 0.67 : idle; // 2 x 8 of 24
          case HsuMode::KeyCompare:
            return idle;
        }
        break;
      case FuClass::FpCmp:
        switch (mode) {
          case HsuMode::RayBox:
            return stage >= 2 && stage <= 6 ? 0.7 : idle;
          case HsuMode::RayTri:
            return stage >= 3 && stage <= 5 ? 0.4 : idle;
          case HsuMode::Euclid:
          case HsuMode::Angular:
            return idle;
          case HsuMode::KeyCompare:
            return stage == 2 ? 1.0 : idle;
        }
        break;
      case FuClass::PipeReg:
        // Toggle fraction of the latched bits.
        switch (mode) {
          case HsuMode::RayBox:
            return 0.42;
          case HsuMode::RayTri:
            return 0.48;
          case HsuMode::Euclid:
            return 0.40;
          case HsuMode::Angular:
            return 0.34;
          case HsuMode::KeyCompare:
            return 0.15;
        }
        break;
      case FuClass::Control:
        return 0.8;
    }
    return idle;
}

double
modePower(const DatapathInventory &inv, HsuMode mode,
          const DatapathConfig &dp, const DatapathInventory *baseline)
{
    // One operation enters per cycle at 1 GHz: mW == pJ/op.
    // Share of the HSU's added register bits belonging to each mode
    // (the rest are clock-gated when that mode runs).
    const double euclid_bits = dp.euclidWidth * 32.0 * 2.0;
    const double angular_bits = dp.angularWidth() * 32.0 * 2.0 + 64.0;
    const double key_bits = dp.keyCompareWidth + 32.0;
    const double extra_bits = euclid_bits + angular_bits + key_bits;
    double own_share = 0.0;
    switch (mode) {
      case HsuMode::Euclid:
        own_share = euclid_bits / extra_bits;
        break;
      case HsuMode::Angular:
        own_share = angular_bits / extra_bits;
        break;
      case HsuMode::KeyCompare:
        own_share = key_bits / extra_bits;
        break;
      default:
        own_share = 0.0; // ray modes use the baseline registers
        break;
    }
    const double gated = 0.10; // residual toggle of gated additions

    double pj = 0.0;
    for (unsigned s = 0; s < kNumStages; ++s) {
        for (unsigned c = 0; c < kNumFuClasses; ++c) {
            const auto cls = static_cast<FuClass>(c);
            const double act = modeActivity(mode, s, cls);
            double count = inv.stages[s].count[c];
            if (baseline != nullptr &&
                (cls == FuClass::PipeReg || cls == FuClass::Control)) {
                const double base_count = baseline->stages[s].count[c];
                const double extra = count - base_count;
                pj += base_count * fuEnergy(cls) * act;
                pj += extra * fuEnergy(cls) *
                      (own_share * act + (1.0 - own_share) * gated);
                continue;
            }
            pj += count * fuEnergy(cls) * act;
        }
    }
    return pj;
}

} // namespace hsu
