#include "analysis/schedule_lint.hh"

#include <algorithm>
#include <list>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace hsu
{

namespace
{

using Kind = ScheduleEventKind;

template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Admit outcome code (low 2 bits of c). */
std::uint64_t
admitOutcome(const ScheduleEvent &e)
{
    return e.c & 3;
}

/** Queue depth sampled at the admit decision. */
std::uint64_t
admitDepth(const ScheduleEvent &e)
{
    return e.c >> 2;
}

/** Queue depth sampled at batch formation (BatchSeal c payload). */
std::uint64_t
sealDepth(const ScheduleEvent &e)
{
    return e.c >> 1;
}

bool
sealDegraded(const ScheduleEvent &e)
{
    return (e.c & 1) != 0;
}

/** Deterministically ordered event indexes per lane (log order). */
std::map<std::uint32_t, std::vector<std::size_t>>
eventsByLane(const ScheduleLog &log)
{
    std::map<std::uint32_t, std::vector<std::size_t>> out;
    for (std::size_t i = 0; i < log.events.size(); ++i)
        out[log.events[i].lane].push_back(i);
    return out;
}

// --- Rule registry ---------------------------------------------------

struct ScheduleRule
{
    LintRuleInfo info;
    ScheduleLintFn fn;
};

std::vector<ScheduleRule> &
scheduleRules()
{
    static std::vector<ScheduleRule> rules;
    return rules;
}

// --- SV: serve-schedule rules ----------------------------------------

/** SV001: every request admitted as Queued leaves its lane exactly
 *  once — sealed into a batch or deadline-expired; nothing terminates
 *  that was never queued. */
void
ruleServeConservation(const ScheduleLintContext &ctx,
                      const LintRuleInfo &rule, LintReport &report)
{
    struct LaneFlow
    {
        std::vector<std::uint64_t> queued;
        std::vector<std::uint64_t> terminal; //!< sealed or expired
        std::size_t anchor = 0;
    };
    std::map<std::uint32_t, LaneFlow> lanes;
    for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
        const ScheduleEvent &e = ctx.log.events[i];
        LaneFlow &lane = lanes[e.lane];
        if (e.kind == Kind::Admit && admitOutcome(e) == kAdmitQueued) {
            lane.queued.push_back(e.a);
            lane.anchor = i;
        } else if (e.kind == Kind::SealMember ||
                   e.kind == Kind::Expire) {
            lane.terminal.push_back(e.a);
            lane.anchor = i;
        }
    }
    for (auto &[lane_id, lane] : lanes) {
        std::sort(lane.queued.begin(), lane.queued.end());
        std::sort(lane.terminal.begin(), lane.terminal.end());
        std::vector<std::uint64_t> lost, phantom;
        std::set_difference(lane.queued.begin(), lane.queued.end(),
                            lane.terminal.begin(), lane.terminal.end(),
                            std::back_inserter(lost));
        std::set_difference(lane.terminal.begin(), lane.terminal.end(),
                            lane.queued.begin(), lane.queued.end(),
                            std::back_inserter(phantom));
        for (const std::uint64_t id : lost) {
            report.add(rule, lane_id, lane.anchor,
                       cat("request ", id, " was queued but never "
                           "sealed into a batch or expired"));
        }
        for (const std::uint64_t id : phantom) {
            report.add(rule, lane_id, lane.anchor,
                       cat("request ", id, " was sealed or expired "
                           "more often than it was queued"));
        }
    }
}

/** SV002: batch membership is fixed at seal time and conserved —
 *  exactly one seal/dispatch/resolve per batch, the dispatch member
 *  multiset equals the seal member multiset (the ordering policy may
 *  permute, never add or drop), sizes agree. */
void
ruleBatchMembership(const ScheduleLintContext &ctx,
                    const LintRuleInfo &rule, LintReport &report)
{
    struct BatchRec
    {
        std::size_t seals = 0, dispatches = 0, resolves = 0;
        std::uint64_t sealSize = 0, dispatchSize = 0;
        std::vector<std::uint64_t> sealed, launched;
        std::size_t anchor = 0;
    };
    std::map<std::pair<std::uint32_t, std::uint64_t>, BatchRec> batches;
    for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
        const ScheduleEvent &e = ctx.log.events[i];
        switch (e.kind) {
          case Kind::BatchSeal: {
            BatchRec &b = batches[{e.lane, e.a}];
            b.seals += 1;
            b.sealSize = e.b;
            b.anchor = i;
            break;
          }
          case Kind::Dispatch: {
            BatchRec &b = batches[{e.lane, e.a}];
            b.dispatches += 1;
            b.dispatchSize = e.b;
            b.anchor = i;
            break;
          }
          case Kind::Resolve:
            batches[{e.lane, e.a}].resolves += 1;
            break;
          case Kind::SealMember:
            batches[{e.lane, e.c}].sealed.push_back(e.a);
            break;
          case Kind::DispatchMember:
            batches[{e.lane, e.c}].launched.push_back(e.a);
            break;
          default:
            break;
        }
    }
    for (auto &[key, b] : batches) {
        const std::uint32_t lane = key.first;
        const std::uint64_t seq = key.second;
        if (b.seals != 1 || b.dispatches != 1 || b.resolves != 1) {
            report.add(rule, lane, b.anchor,
                       cat("batch ", seq, " has ", b.seals, " seals, ",
                           b.dispatches, " dispatches, ", b.resolves,
                           " resolves (want exactly 1 of each)"));
            continue;
        }
        if (b.sealSize != b.sealed.size() ||
            b.dispatchSize != b.launched.size()) {
            report.add(rule, lane, b.anchor,
                       cat("batch ", seq, " sizes disagree: sealed ",
                           b.sealSize, "/", b.sealed.size(),
                           " members, dispatched ", b.dispatchSize, "/",
                           b.launched.size()));
        }
        std::vector<std::uint64_t> s = b.sealed, l = b.launched;
        std::sort(s.begin(), s.end());
        std::sort(l.begin(), l.end());
        if (s != l) {
            report.add(rule, lane, b.anchor,
                       cat("batch ", seq, " dispatch membership is not "
                           "a permutation of its sealed membership "
                           "(policy reorder must be timing-only)"));
        }
    }
}

/** SV003: the schedule is causal on the unified clock — admissions
 *  arrive in nondecreasing cycle order per lane, expiry only drops
 *  requests whose deadline has really passed, sealed members still
 *  meet their deadline at seal time, and each batch's
 *  seal -> dispatch -> resolve cycles are monotone. */
void
ruleScheduleMonotonicity(const ScheduleLintContext &ctx,
                         const LintRuleInfo &rule, LintReport &report)
{
    std::map<std::uint32_t, Cycle> lastAdmit;
    std::map<std::pair<std::uint32_t, std::uint64_t>, Cycle> sealCycle,
        dispatchCycle;
    for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
        const ScheduleEvent &e = ctx.log.events[i];
        switch (e.kind) {
          case Kind::Admit: {
            const auto it = lastAdmit.find(e.lane);
            if (it != lastAdmit.end() && e.cycle < it->second) {
                report.add(rule, e.lane, i,
                           cat("admission at cycle ", e.cycle,
                               " precedes an earlier admission at ",
                               it->second));
            }
            lastAdmit[e.lane] = std::max(
                it == lastAdmit.end() ? Cycle{0} : it->second, e.cycle);
            break;
          }
          case Kind::Expire:
            if (e.b >= e.cycle) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " expired at cycle ",
                               e.cycle, " with deadline ", e.b,
                               " still live"));
            }
            break;
          case Kind::SealMember:
            if (e.b < e.cycle) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " sealed into batch ",
                               e.c, " at cycle ", e.cycle,
                               " past its deadline ", e.b));
            }
            break;
          case Kind::BatchSeal:
            sealCycle[{e.lane, e.a}] = e.cycle;
            break;
          case Kind::Dispatch: {
            dispatchCycle[{e.lane, e.a}] = e.cycle;
            const auto it = sealCycle.find({e.lane, e.a});
            if (it != sealCycle.end() && e.cycle < it->second) {
                report.add(rule, e.lane, i,
                           cat("batch ", e.a, " dispatched at cycle ",
                               e.cycle, " before its seal at ",
                               it->second));
            }
            break;
          }
          case Kind::Resolve: {
            const auto it = dispatchCycle.find({e.lane, e.a});
            if (it != dispatchCycle.end() && e.cycle < it->second) {
                report.add(rule, e.lane, i,
                           cat("batch ", e.a, " resolved at cycle ",
                               e.cycle, " before its dispatch at ",
                               it->second));
            }
            break;
          }
          default:
            break;
        }
    }
}

/** SV004: shed and degrade decisions follow the configured
 *  watermarks: an arrival is shed iff the sampled queue depth is at
 *  shedWater, a batch runs degraded iff the formation depth is at
 *  highWater. */
void
ruleWatermarkLegality(const ScheduleLintContext &ctx,
                      const LintRuleInfo &rule, LintReport &report)
{
    struct LaneCfg
    {
        bool present = false;
        std::uint64_t highWater = 0, shedWater = 0;
    };
    std::map<std::uint32_t, LaneCfg> cfgs;
    for (const ScheduleEvent &e : ctx.log.events) {
        if (e.kind == Kind::PipelineConfig)
            cfgs[e.lane] = LaneCfg{true, e.a, e.b};
    }
    for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
        const ScheduleEvent &e = ctx.log.events[i];
        if (e.kind != Kind::Admit && e.kind != Kind::BatchSeal)
            continue;
        const LaneCfg cfg = cfgs[e.lane];
        if (!cfg.present) {
            report.add(rule, e.lane, i,
                       cat("lane has scheduling events but no "
                           "PipelineConfig to check watermarks "
                           "against"));
            continue;
        }
        if (e.kind == Kind::Admit) {
            const std::uint64_t outcome = admitOutcome(e);
            const std::uint64_t depth = admitDepth(e);
            if (outcome == kAdmitShed && depth < cfg.shedWater) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " shed at depth ",
                               depth, " below shedWater ",
                               cfg.shedWater));
            } else if (outcome == kAdmitQueued &&
                       depth >= cfg.shedWater) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " queued at depth ",
                               depth, " at/above shedWater ",
                               cfg.shedWater));
            }
        } else {
            const bool degraded = sealDegraded(e);
            const std::uint64_t depth = sealDepth(e);
            if (degraded != (depth >= cfg.highWater)) {
                report.add(rule, e.lane, i,
                           cat("batch ", e.a, " formed at depth ",
                               depth, (degraded ? " degraded"
                                                : " undegraded"),
                               " against highWater ", cfg.highWater));
            }
        }
    }
}

// --- SH: shard rules over the event log ------------------------------

/** SH003: per-request scatter/gather/join accounting balances — the
 *  routed fan-out equals gathered plus shed sub-queries, the join
 *  records those counts, and the completion cycle pays the merge cost
 *  on top of the last merge-ready sub-answer. */
void
ruleJoinAccounting(const ScheduleLintContext &ctx,
                   const LintRuleInfo &rule, LintReport &report)
{
    bool haveMerge = false;
    Cycle mergePerShard = 0;
    for (const ScheduleEvent &e : ctx.log.events) {
        if (e.kind == Kind::ClusterConfig) {
            haveMerge = true;
            mergePerShard = e.c;
        }
    }
    struct Flow
    {
        std::size_t routes = 0;
        std::uint64_t fanout = 0;
        std::size_t gathers = 0, subSheds = 0, joins = 0;
        Cycle mergeReadyMax = 0;
        std::uint64_t joinServed = 0, joinShed = 0;
        Cycle joinCycle = 0;
        std::size_t anchor = 0;
    };
    std::map<std::uint64_t, Flow> flows;
    for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
        const ScheduleEvent &e = ctx.log.events[i];
        switch (e.kind) {
          case Kind::RouterRoute: {
            Flow &f = flows[e.a];
            f.routes += 1;
            f.fanout = e.c;
            f.anchor = i;
            break;
          }
          case Kind::Gather: {
            Flow &f = flows[e.a];
            f.gathers += 1;
            f.mergeReadyMax = std::max(f.mergeReadyMax, e.c);
            break;
          }
          case Kind::SubShed:
            flows[e.a].subSheds += 1;
            break;
          case Kind::JoinDone: {
            Flow &f = flows[e.a];
            f.joins += 1;
            f.joinServed = e.b;
            f.joinShed = e.c;
            f.joinCycle = e.cycle;
            break;
          }
          default:
            break;
        }
    }
    for (const auto &[id, f] : flows) {
        if (f.routes == 0) {
            report.add(rule, kRouterLane, f.anchor,
                       cat("request ", id, " has join events but was "
                           "never routed"));
            continue;
        }
        if (f.routes > 1) {
            report.add(rule, kRouterLane, f.anchor,
                       cat("request ", id, " routed ", f.routes,
                           " times"));
            continue;
        }
        if (f.fanout == 0) {
            if (f.gathers + f.subSheds + f.joins > 0) {
                report.add(rule, kRouterLane, f.anchor,
                           cat("request ", id, " answered empty at the "
                               "router but has join events"));
            }
            continue;
        }
        if (f.gathers + f.subSheds != f.fanout) {
            report.add(rule, kRouterLane, f.anchor,
                       cat("request ", id, " fanned out to ", f.fanout,
                           " shards but resolved ", f.gathers,
                           " gathers + ", f.subSheds, " sheds"));
            continue;
        }
        if (f.joins != 1) {
            report.add(rule, kRouterLane, f.anchor,
                       cat("request ", id, " has ", f.joins,
                           " join completions (want exactly 1)"));
            continue;
        }
        if (f.joinServed != f.gathers || f.joinShed != f.subSheds) {
            report.add(rule, kRouterLane, f.anchor,
                       cat("request ", id, " join recorded ",
                           f.joinServed, " served / ", f.joinShed,
                           " shed but the log shows ", f.gathers,
                           " / ", f.subSheds));
            continue;
        }
        if (f.joinServed > 0 && haveMerge) {
            const Cycle want =
                f.mergeReadyMax + mergePerShard * f.joinServed;
            if (f.joinCycle != want) {
                report.add(rule, kRouterLane, f.anchor,
                           cat("request ", id, " completed at cycle ",
                               f.joinCycle, " but its last sub-answer "
                               "merged ready at ", f.mergeReadyMax,
                               " plus ", mergePerShard, " x ",
                               f.joinServed, " merge = ", want));
            }
        }
    }
}

/** SH004: link-hop causality — every scatter/gather hop pays exactly
 *  the configured link latency on the unified clock, a gathered
 *  sub-answer's lane saw its sub-query delivered (gather never
 *  precedes scatter), and every delivery admits at its lane at the
 *  delivery cycle. */
void
ruleLinkCausality(const ScheduleLintContext &ctx,
                  const LintRuleInfo &rule, LintReport &report)
{
    bool haveCfg = false;
    Cycle scatterHop = 0, gatherHop = 0;
    for (const ScheduleEvent &e : ctx.log.events) {
        if (e.kind == Kind::ClusterConfig) {
            haveCfg = true;
            scatterHop = e.a;
            gatherHop = e.b;
        }
    }
    // (request, lane) -> pending scatter delivery cycles / lane admits.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::vector<Cycle>>
        deliveries, admits;
    for (const ScheduleEvent &e : ctx.log.events) {
        if (e.kind == Kind::Scatter)
            deliveries[{e.a, e.b}].push_back(e.c);
        else if (e.kind == Kind::Admit)
            admits[{e.a, e.lane}].push_back(e.cycle);
    }
    auto consume = [](std::vector<Cycle> &v, Cycle value) {
        const auto it = std::find(v.begin(), v.end(), value);
        if (it == v.end())
            return false;
        v.erase(it);
        return true;
    };
    for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
        const ScheduleEvent &e = ctx.log.events[i];
        if (e.kind != Kind::Scatter && e.kind != Kind::Gather)
            continue;
        if (!haveCfg) {
            report.add(rule, e.lane, i,
                       "scatter/gather events without a ClusterConfig "
                       "to check link latency against");
            return;
        }
        if (e.kind == Kind::Scatter) {
            if (e.c != e.cycle + scatterHop) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " scattered at cycle ",
                               e.cycle, " delivers at ", e.c,
                               " instead of paying the ", scatterHop,
                               "-cycle scatter hop"));
            }
            if (!consume(admits[{e.a, e.b}], e.c)) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " delivered to lane ",
                               e.b, " at cycle ", e.c,
                               " was never admitted there at that "
                               "cycle"));
            }
        } else {
            if (e.c != e.b + gatherHop || e.cycle != e.b) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " gathered from lane "
                               "ready cycle ", e.b, " (event cycle ",
                               e.cycle, ") merges ready at ", e.c,
                               " instead of paying the ", gatherHop,
                               "-cycle gather hop"));
            }
            // The gather must consume a delivery that happened by its
            // lane-ready cycle: gather never precedes scatter.
            std::vector<Cycle> &pend = deliveries[{e.a, e.lane}];
            bool matched = false;
            for (auto it = pend.begin(); it != pend.end(); ++it) {
                if (*it <= e.cycle) {
                    pend.erase(it);
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                report.add(rule, e.lane, i,
                           cat("request ", e.a, " gathered from lane ",
                               e.lane, " at cycle ", e.cycle,
                               " with no sub-query delivered there "
                               "by then (gather precedes scatter)"));
            }
        }
    }
}

// --- CH: answer-cache rules ------------------------------------------

/** CH001: hits and misses replay exactly against a resident-set
 *  oracle rebuilt from the insert/evict sequence, and exact-key
 *  caches use keys that bit-match the query id. */
void
ruleCacheReplay(const ScheduleLintContext &ctx,
                const LintRuleInfo &rule, LintReport &report)
{
    const auto lanes = eventsByLane(ctx.log);
    for (const auto &[lane_id, indexes] : lanes) {
        bool haveCfg = false;
        bool exactOnly = false;
        std::vector<std::uint64_t> resident; //!< few entries: linear
        auto find = [&](std::uint64_t key) {
            return std::find(resident.begin(), resident.end(), key);
        };
        for (const std::size_t i : indexes) {
            const ScheduleEvent &e = ctx.log.events[i];
            switch (e.kind) {
              case Kind::CacheConfig:
                haveCfg = true;
                exactOnly = (e.b & kCacheExactOnly) != 0;
                break;
              case Kind::CacheHit:
              case Kind::CacheMiss:
              case Kind::CacheInsert: {
                if (!haveCfg) {
                    report.add(rule, lane_id, i,
                               "cache events before any CacheConfig");
                    return;
                }
                if (exactOnly && e.b != e.a) {
                    report.add(rule, lane_id, i,
                               cat("exact-only cache used key ", e.b,
                                   " for query id ", e.a,
                                   " (keys must bit-match the id)"));
                }
                const bool isResident = find(e.b) != resident.end();
                if (e.kind == Kind::CacheHit && !isResident) {
                    report.add(rule, lane_id, i,
                               cat("cache hit on key ", e.b,
                                   " which the insert/evict replay "
                                   "says is not resident"));
                } else if (e.kind == Kind::CacheMiss && isResident) {
                    report.add(rule, lane_id, i,
                               cat("cache miss on key ", e.b,
                                   " which the insert/evict replay "
                                   "says is resident"));
                } else if (e.kind == Kind::CacheInsert) {
                    if (isResident != (e.c == 1)) {
                        report.add(rule, lane_id, i,
                                   cat("cache insert of key ", e.b,
                                       (e.c == 1
                                            ? " flagged refresh but "
                                              "the key is new"
                                            : " flagged new but the "
                                              "key is resident")));
                    }
                    if (!isResident)
                        resident.push_back(e.b);
                }
                break;
              }
              case Kind::CacheEvict: {
                const auto it = find(e.a);
                if (it == resident.end()) {
                    report.add(rule, lane_id, i,
                               cat("evicted key ", e.a,
                                   " was not resident"));
                } else {
                    resident.erase(it);
                }
                break;
              }
              default:
                break;
            }
        }
    }
}

/** CH002: B+tree answers are exact values — a Keys-family cache must
 *  run exact-only regardless of the requested tolerance mode. */
void
ruleBtreeExactness(const ScheduleLintContext &ctx,
                   const LintRuleInfo &rule, LintReport &report)
{
    for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
        const ScheduleEvent &e = ctx.log.events[i];
        if (e.kind != Kind::CacheConfig)
            continue;
        if ((e.b & kCacheBtree) != 0 &&
            (e.b & kCacheExactOnly) == 0) {
            report.add(rule, e.lane, i,
                       "B+tree workload configured with recall-"
                       "tolerant cache keys; Keys datasets must "
                       "always use exact keys");
        }
    }
}

/** CH003: evictions happen in LRU order, only at capacity, and the
 *  replayed occupancy never exceeds capacity. */
void
ruleLruDiscipline(const ScheduleLintContext &ctx,
                  const LintRuleInfo &rule, LintReport &report)
{
    const auto lanes = eventsByLane(ctx.log);
    for (const auto &[lane_id, indexes] : lanes) {
        bool haveCfg = false;
        std::uint64_t capacity = 0;
        std::list<std::uint64_t> lru; //!< front = most recent
        auto touch = [&](std::uint64_t key) {
            const auto it = std::find(lru.begin(), lru.end(), key);
            if (it != lru.end())
                lru.splice(lru.begin(), lru, it);
        };
        for (std::size_t n = 0; n < indexes.size(); ++n) {
            const std::size_t i = indexes[n];
            const ScheduleEvent &e = ctx.log.events[i];
            switch (e.kind) {
              case Kind::CacheConfig:
                haveCfg = true;
                capacity = e.a;
                break;
              case Kind::CacheHit:
                touch(e.b);
                break;
              case Kind::CacheInsert:
                if (std::find(lru.begin(), lru.end(), e.b) !=
                    lru.end()) {
                    touch(e.b); // refresh (CH001 audits the flag)
                } else {
                    lru.push_front(e.b);
                }
                break;
              case Kind::CacheEvict: {
                if (lru.empty())
                    break; // CH001's finding
                if (haveCfg && lru.size() <= capacity) {
                    report.add(rule, lane_id, i,
                               cat("eviction of key ", e.a, " at "
                                   "occupancy ", lru.size(),
                                   " within capacity ", capacity));
                }
                if (lru.back() != e.a) {
                    report.add(rule, lane_id, i,
                               cat("evicted key ", e.a,
                                   " but LRU order expects key ",
                                   lru.back()));
                }
                const auto it =
                    std::find(lru.begin(), lru.end(), e.a);
                if (it != lru.end())
                    lru.erase(it);
                else
                    lru.pop_back();
                break;
              }
              default:
                break;
            }
            // An insert may transiently overflow by one entry; the
            // very next cache action on the lane must be its eviction.
            if (haveCfg && lru.size() > capacity) {
                const bool evictNext =
                    n + 1 < indexes.size() &&
                    ctx.log.events[indexes[n + 1]].kind ==
                        Kind::CacheEvict;
                if (lru.size() > capacity + 1 ||
                    (!evictNext && e.kind != Kind::CacheEvict)) {
                    report.add(rule, lane_id, i,
                               cat("cache occupancy ", lru.size(),
                                   " exceeds capacity ", capacity,
                                   " without an immediate eviction"));
                }
            }
        }
    }
}

void
registerScheduleBuiltins()
{
    auto add = [](const char *id, const char *summary, const char *fixit,
                 void (*fn)(const ScheduleLintContext &,
                            const LintRuleInfo &, LintReport &)) {
        scheduleRules().push_back(ScheduleRule{
            LintRuleInfo{id, LintSeverity::Error, summary, fixit}, fn});
    };

    add("SV001",
       "every queued request is sealed into a batch or expired, "
       "exactly once (admitted = answered + expired + shed)",
       "pop requests only through DynamicBatcher::popBatch and record "
       "seal/expiry through the pipeline recorder, never around it",
       ruleServeConservation);
    add("SV002",
       "batch membership is sealed before policy ordering and "
       "conserved through dispatch (coherent reorder is timing-only)",
       "record SealMember in FIFO pop order before orderBatch runs; "
       "dispatch exactly the FormedBatch the pipeline sealed",
       ruleBatchMembership);
    add("SV003",
       "admission/seal/dispatch/resolve cycles are monotone and "
       "expiry respects deadlines on the unified clock",
       "keep the event loop's now monotone and route every deadline "
       "check through the batcher's pop-time expiry",
       ruleScheduleMonotonicity);
    add("SV004",
       "shed and degrade decisions match the configured queue "
       "watermarks",
       "sample the queue depth once per decision (before the "
       "push/pop) and compare against DegradePolicy only",
       ruleWatermarkLegality);
    add("SH003",
       "scatter fan-out, gather/shed joins, and merge timing balance "
       "per request",
       "resolve every routed sub-query exactly once through "
       "subquery_resolved and charge mergeCyclesPerShard per served "
       "sub-answer",
       ruleJoinAccounting);
    add("SH004",
       "gather never precedes scatter and every hop pays the link "
       "latency on the unified clock",
       "put every sub-query on the wire with deliver = send + "
       "hopCycles(scatterBytes) and gather at lane-ready + "
       "hopCycles(gatherBytes)",
       ruleLinkCausality);
    add("CH001",
       "cache hits/misses replay exactly against a resident-set "
       "oracle; exact-only keys bit-match the query id",
       "drive all residency through AnswerCache::lookup/insert; never "
       "construct hit keys outside keyFor",
       ruleCacheReplay);
    add("CH002",
       "B+tree workloads never use recall-tolerant cache keys",
       "AnswerCache must force exactOnly for Algo::Btree regardless "
       "of the configured CacheMode",
       ruleBtreeExactness);
    add("CH003",
       "evictions follow LRU order, happen only at capacity, and "
       "occupancy never exceeds capacity",
       "evict exactly lru_.back() when size() > capacity inside "
       "AnswerCache::insert; never erase by key elsewhere",
       ruleLruDiscipline);
}

void
ensureScheduleBuiltins()
{
    static const bool once = []() {
        registerScheduleBuiltins();
        return true;
    }();
    (void)once;
}

// --- Fixed-function rule descriptors ---------------------------------

const LintRuleInfo kSh001{
    "SH001", LintSeverity::Error,
    "shard slices are pairwise disjoint and jointly cover every "
    "element of the dataset",
    "partitionDataset must assign each element id to exactly one "
    "shard for every (family, policy, N); fix contiguousRuns / "
    "hashShardOf, not the check"};

const LintRuleInfo kSh002{
    "SH002", LintSeverity::Error,
    "merged answers are strictly ordered by (dist2, global id) with "
    "no duplicate ids and at most k entries",
    "merge through shard/merge mergeTopK only; its comparator is the "
    "total order that makes sharded answers bit-reproducible"};

} // namespace

// --- Registry --------------------------------------------------------

std::size_t
registerScheduleLintRule(LintRuleInfo info, ScheduleLintFn fn)
{
    ensureScheduleBuiltins();
    for (const ScheduleRule &r : scheduleRules()) {
        hsu_assert(r.info.id != info.id, "duplicate schedule rule id ",
                   info.id);
    }
    hsu_assert(info.id != kSh001.id && info.id != kSh002.id,
               "duplicate schedule rule id ", info.id);
    scheduleRules().push_back(
        ScheduleRule{std::move(info), std::move(fn)});
    return scheduleRules().size() - 1;
}

std::vector<LintRuleInfo>
scheduleLintRuleCatalog()
{
    ensureScheduleBuiltins();
    std::vector<LintRuleInfo> out;
    bool fixedEmitted = false;
    for (const ScheduleRule &r : scheduleRules()) {
        // Keep the catalog in family order: the SH fixed functions
        // slot in before the registry's SH003.
        if (!fixedEmitted && r.info.id == "SH003") {
            out.push_back(kSh001);
            out.push_back(kSh002);
            fixedEmitted = true;
        }
        out.push_back(r.info);
    }
    if (!fixedEmitted) {
        out.push_back(kSh001);
        out.push_back(kSh002);
    }
    return out;
}

// --- Entry points ----------------------------------------------------

LintReport
lintScheduleLog(const ScheduleLog &log)
{
    ensureScheduleBuiltins();
    LintReport report;
    const ScheduleLintContext ctx{log};
    for (const ScheduleRule &r : scheduleRules())
        r.fn(ctx, r.info, report);
    return report;
}

LintReport
lintPartitionCoverage(
    const std::vector<std::vector<std::uint32_t>> &shard_ids,
    std::size_t total_elements)
{
    LintReport report;
    std::vector<std::uint8_t> seen(total_elements, 0);
    for (std::size_t s = 0; s < shard_ids.size(); ++s) {
        for (const std::uint32_t id : shard_ids[s]) {
            if (id >= total_elements) {
                report.add(kSh001, s, id,
                           cat("element id ", id, " outside the "
                               "dataset's ", total_elements,
                               " elements"));
            } else if (seen[id]) {
                report.add(kSh001, s, id,
                           cat("element id ", id,
                               " assigned to more than one shard"));
            } else {
                seen[id] = 1;
            }
        }
    }
    for (std::size_t id = 0; id < total_elements; ++id) {
        if (!seen[id]) {
            report.add(kSh001, 0, id,
                       cat("element id ", id, " covered by no shard"));
        }
    }
    return report;
}

LintReport
lintMergeOrder(
    const std::vector<std::pair<double, std::uint32_t>> &merged,
    std::size_t k)
{
    LintReport report;
    if (merged.size() > k) {
        report.add(kSh002, 0, 0,
                   cat("merged answer holds ", merged.size(),
                       " entries for k=", k));
    }
    std::vector<std::uint32_t> ids;
    ids.reserve(merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        ids.push_back(merged[i].second);
        if (i == 0)
            continue;
        const auto &prev = merged[i - 1];
        const auto &cur = merged[i];
        const bool ordered =
            prev.first < cur.first ||
            (prev.first == cur.first && prev.second < cur.second);
        if (!ordered) {
            report.add(kSh002, 0, i,
                       cat("entry (", cur.first, ", ", cur.second,
                           ") does not follow (", prev.first, ", ",
                           prev.second,
                           ") under the (dist2, id) total order"));
        }
    }
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 1; i < ids.size(); ++i) {
        if (ids[i] == ids[i - 1]) {
            report.add(kSh002, 0, i,
                       cat("global id ", ids[i],
                           " appears more than once in one merged "
                           "answer"));
        }
    }
    return report;
}

} // namespace hsu
