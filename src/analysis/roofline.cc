#include "analysis/roofline.hh"

namespace hsu
{

RooflinePoint
rooflinePoint(const std::string &label, const RunResult &r,
              unsigned num_hsu)
{
    RooflinePoint p;
    p.label = label;
    p.intensity = r.opsPerL2Line();
    p.performance = r.cycles
        ? r.hsuCompleted / static_cast<double>(r.cycles) /
              static_cast<double>(num_hsu ? num_hsu : 1)
        : 0.0;
    return p;
}

} // namespace hsu
