/**
 * @file
 * Compact deterministic event log of the serving schedulers.
 *
 * The serve/shard layers (serve/pipeline, serve/cache, shard/cluster)
 * can record every scheduling decision — admissions, batch
 * seal/dispatch/resolve, cache hit/miss/insert/evict, scatter/gather
 * hops and join resolutions — as a flat sequence of fixed-size events
 * stamped with the simulated cycle and a lane id. The schedule linter
 * (analysis/schedule_lint) replays that log against the scheduling
 * invariants (SV/SH/CH rule families, DESIGN.md section 11).
 *
 * Recording discipline: every event is appended from the single
 * event-loop thread that owns the simulated clock (worker-pool batch
 * simulations never record), so the log order is a pure function of
 * the request stream and the config — bit-identical across runs and
 * any HSU_JOBS / HSU_SIM_JOBS setting.
 *
 * Cost discipline: producers hold a ScheduleRecorder by value; with no
 * log attached (the default everywhere) record() is a null check and
 * nothing else, so instrumented hot paths stay within noise.
 */

#ifndef HSU_ANALYSIS_SCHEDULE_LOG_HH
#define HSU_ANALYSIS_SCHEDULE_LOG_HH

#include <cstdint>
#include <vector>

#include "common/cycletime.hh"

namespace hsu
{

/**
 * Event vocabulary. The a/b/c payload meaning per kind (ids are
 * request ids unless said otherwise; "depth" is the FIFO queue depth
 * sampled when the decision was made):
 *
 *  - PipelineConfig: a=highWater, b=shedWater, c=maxBatch (cycle 0;
 *    one per pipeline lane, before any other event of that lane).
 *  - CacheConfig: a=capacity, b=flag bits (kCacheExactOnly |
 *    kCacheBtree | kCacheTolerantMode), c=hitLatencyCycles.
 *  - ClusterConfig: a=scatterHopCycles, b=gatherHopCycles,
 *    c=mergeCyclesPerShard (router lane, cycle 0).
 *  - Admit: cycle=arrival, a=request id, b=query id,
 *    c=(outcome | depth << 2) with outcome 0=queued, 1=cache hit,
 *    2=shed; depth sampled before any queue push.
 *  - Expire: cycle=batch-formation cycle, a=request id,
 *    b=deadlineCycle.
 *  - BatchSeal: cycle=formation, a=batch seq, b=batch size,
 *    c=(degraded | depth << 1); depth sampled before the pop (the
 *    degradation signal).
 *  - SealMember: cycle=formation, a=request id, b=deadlineCycle,
 *    c=batch seq — recorded in FIFO pop order, BEFORE the ordering
 *    policy runs (the evidence that policy reorder is timing-only).
 *  - Dispatch: cycle=launch, a=batch seq, b=size, c=degraded.
 *  - DispatchMember: cycle=launch, a=request id, b=query id,
 *    c=batch seq — in launch (post-policy) order.
 *  - Resolve: cycle=readyCycle, a=batch seq, b=kernel cycles,
 *    c=readyCycle (dispatch + launch overhead + kernel).
 *  - CacheHit / CacheMiss: cycle=lookup, a=query id, b=cache key.
 *  - CacheInsert: cycle=insert, a=query id, b=cache key, c=1 when the
 *    key was already resident (recency refresh, no new entry).
 *  - CacheEvict: cycle=insert that overflowed, a=evicted cache key.
 *  - RouterRoute: cycle=arrival, a=request id, b=query id, c=fan-out
 *    (shard count targeted; 0 = answered empty at the router).
 *  - Scatter: cycle=send, a=request id, b=destination lane,
 *    c=deliverCycle (send + scatter hop).
 *  - Gather: cycle=lane readyCycle, lane=source lane, a=request id,
 *    b=lane readyCycle, c=merge-ready cycle (b + gather hop).
 *  - SubShed: a=request id — one sub-query resolved with no answer
 *    (lane admission shed or deadline expiry), router join side.
 *  - JoinDone: cycle=request completion (0 when every sub-query
 *    shed), a=request id, b=served sub-answers, c=shed sub-queries.
 */
enum class ScheduleEventKind : std::uint8_t
{
    PipelineConfig,
    CacheConfig,
    ClusterConfig,
    Admit,
    Expire,
    BatchSeal,
    SealMember,
    Dispatch,
    DispatchMember,
    Resolve,
    CacheHit,
    CacheMiss,
    CacheInsert,
    CacheEvict,
    RouterRoute,
    Scatter,
    Gather,
    SubShed,
    JoinDone,
};

/** Admit outcome codes (low 2 bits of the Admit event's c payload). */
inline constexpr std::uint64_t kAdmitQueued = 0;
inline constexpr std::uint64_t kAdmitCacheHit = 1;
inline constexpr std::uint64_t kAdmitShed = 2;

/** CacheConfig flag bits (b payload). */
inline constexpr std::uint64_t kCacheExactOnly = 1;    //!< keys == ids
inline constexpr std::uint64_t kCacheBtree = 2;        //!< Keys family
inline constexpr std::uint64_t kCacheTolerantMode = 4; //!< requested

/** The router's lane id in cluster logs (pipeline lanes count up
 *  from 0; the router never owns a pipeline). */
inline constexpr std::uint32_t kRouterLane = 0xffffffffu;

/** One scheduling decision. 32 bytes, POD. */
struct ScheduleEvent
{
    Cycle cycle = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint32_t lane = 0;
    ScheduleEventKind kind = ScheduleEventKind::Admit;
};

/** One serving run's recorded schedule, in decision order. */
struct ScheduleLog
{
    std::vector<ScheduleEvent> events;
};

/**
 * Value-type recording handle held by the instrumented schedulers.
 * Null log (the default) disables recording at the cost of one
 * branch; the log outlives every recorder pointing at it.
 */
class ScheduleRecorder
{
  public:
    ScheduleRecorder() = default;
    ScheduleRecorder(ScheduleLog *log, std::uint32_t lane)
        : log_(log), lane_(lane)
    {
    }

    bool enabled() const { return log_ != nullptr; }
    std::uint32_t lane() const { return lane_; }

    void
    record(Cycle cycle, ScheduleEventKind kind, std::uint64_t a = 0,
           std::uint64_t b = 0, std::uint64_t c = 0) const
    {
        if (log_ == nullptr)
            return;
        log_->events.push_back(ScheduleEvent{cycle, a, b, c, lane_, kind});
    }

  private:
    ScheduleLog *log_ = nullptr;
    std::uint32_t lane_ = 0;
};

} // namespace hsu

#endif // HSU_ANALYSIS_SCHEDULE_LOG_HH
