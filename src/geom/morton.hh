/**
 * @file
 * Morton (Z-order) codes for LBVH construction (Karras 2012 / Lauterbach
 * 2009 style builders sort primitives by the Morton code of their
 * centroid before emitting the hierarchy).
 */

#ifndef HSU_GEOM_MORTON_HH
#define HSU_GEOM_MORTON_HH

#include <cstdint>
#include <vector>

#include "geom/aabb.hh"
#include "geom/vec3.hh"

namespace hsu
{

/** Spread the low 10 bits of @p v so consecutive bits land 3 apart. */
std::uint32_t expandBits10(std::uint32_t v);

/** Spread the low 21 bits of @p v so consecutive bits land 3 apart. */
std::uint64_t expandBits21(std::uint64_t v);

/** 30-bit Morton code of a point with coordinates in [0, 1]. */
std::uint32_t mortonCode30(const Vec3 &unit_p);

/** 63-bit Morton code of a point with coordinates in [0, 1]. */
std::uint64_t mortonCode63(const Vec3 &unit_p);

/** Map @p p into [0,1]^3 relative to @p bounds, then take the 63-bit
 *  Morton code. Degenerate (zero-extent) axes map to 0; coordinates
 *  outside @p bounds clamp to the boundary cell. */
std::uint64_t mortonCode63(const Vec3 &p, const Aabb &bounds);

/**
 * 63-bit Morton codes for @p count points stored in an interleaved
 * float array with @p stride floats per point. Only the first three
 * components of each point are used (components past the stride read
 * as 0, so 1-D/2-D strides are legal); the normalization bounds are
 * the tight AABB of those leading components, computed internally.
 *
 * This is the spatial sort key of the serving layer's coherence-aware
 * batch policy (RTNN-style query sorting): points that are near each
 * other in the leading subspace get nearby codes, so sorting a batch
 * by code makes adjacent queries traverse the same tree nodes.
 */
std::vector<std::uint64_t> mortonCodes63(const float *coords,
                                         std::size_t count,
                                         std::size_t stride);

} // namespace hsu

#endif // HSU_GEOM_MORTON_HH
