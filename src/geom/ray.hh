/**
 * @file
 * Ray representation with the precomputed constants the RT unit expects.
 *
 * Section IV-D of the paper: "We pre-compute the inverse ray direction as
 * well as the shear and k constants in the same way as [Woop 2013]. These
 * values are constant for each ray and can be reused for each intersection
 * test performed by the ray." PreparedRay carries exactly that state and
 * is the operand format passed to RAY_INTERSECT through the register file.
 */

#ifndef HSU_GEOM_RAY_HH
#define HSU_GEOM_RAY_HH

#include <cmath>
#include <limits>

#include "geom/vec3.hh"

namespace hsu
{

/** A ray with a parametric validity interval [tmin, tmax]. */
struct Ray
{
    Vec3 origin;
    Vec3 dir;
    float tmin = 0.0f;
    float tmax = std::numeric_limits<float>::infinity();

    /** Point at parameter t. */
    Vec3 at(float t) const { return origin + dir * t; }
};

/**
 * Ray plus the per-ray constants precomputed before traversal:
 * inverse direction (slab test) and the watertight shear constants
 * (kx, ky, kz axis permutation and Sx, Sy, Sz shear scale).
 */
struct PreparedRay
{
    Ray ray;
    Vec3 invDir;
    int kx = 0;
    int ky = 1;
    int kz = 2;
    float sx = 0.0f;
    float sy = 0.0f;
    float sz = 0.0f;

    PreparedRay() = default;

    /** Compute all derived constants from @p r. */
    explicit PreparedRay(const Ray &r) : ray(r)
    {
        auto safe_inv = [](float d) {
            // Copy the sign of d into the generated infinity so the slab
            // test handles axis-parallel rays watertightly.
            if (d != 0.0f)
                return 1.0f / d;
            return std::copysign(std::numeric_limits<float>::infinity(), d);
        };
        invDir = {safe_inv(r.dir.x), safe_inv(r.dir.y), safe_inv(r.dir.z)};

        // kz is the dimension where the ray direction is maximal.
        kz = 0;
        if (std::fabs(r.dir.y) > std::fabs(r.dir[kz]))
            kz = 1;
        if (std::fabs(r.dir.z) > std::fabs(r.dir[kz]))
            kz = 2;
        kx = (kz + 1) % 3;
        ky = (kx + 1) % 3;
        // Swap kx/ky to preserve triangle winding when dir[kz] < 0.
        if (r.dir[kz] < 0.0f)
            std::swap(kx, ky);

        sx = r.dir[kx] / r.dir[kz];
        sy = r.dir[ky] / r.dir[kz];
        sz = 1.0f / r.dir[kz];
    }
};

} // namespace hsu

#endif // HSU_GEOM_RAY_HH
