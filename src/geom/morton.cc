#include "geom/morton.hh"

#include <algorithm>
#include <cmath>

namespace hsu
{

std::uint32_t
expandBits10(std::uint32_t v)
{
    v &= 0x3ffu;
    v = (v | (v << 16)) & 0x030000ffu;
    v = (v | (v << 8)) & 0x0300f00fu;
    v = (v | (v << 4)) & 0x030c30c3u;
    v = (v | (v << 2)) & 0x09249249u;
    return v;
}

std::uint64_t
expandBits21(std::uint64_t v)
{
    v &= 0x1fffffull;
    v = (v | (v << 32)) & 0x001f00000000ffffull;
    v = (v | (v << 16)) & 0x001f0000ff0000ffull;
    v = (v | (v << 8)) & 0x100f00f00f00f00full;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
    v = (v | (v << 2)) & 0x1249249249249249ull;
    return v;
}

namespace
{

std::uint32_t
quantize(float f, std::uint32_t levels)
{
    const float clamped = std::clamp(f, 0.0f, 1.0f);
    const auto q = static_cast<std::uint32_t>(
        clamped * static_cast<float>(levels));
    return std::min(q, levels - 1);
}

} // namespace

std::uint32_t
mortonCode30(const Vec3 &unit_p)
{
    const std::uint32_t x = quantize(unit_p.x, 1024);
    const std::uint32_t y = quantize(unit_p.y, 1024);
    const std::uint32_t z = quantize(unit_p.z, 1024);
    return (expandBits10(x) << 2) | (expandBits10(y) << 1) | expandBits10(z);
}

std::uint64_t
mortonCode63(const Vec3 &unit_p)
{
    const std::uint64_t x = quantize(unit_p.x, 1u << 21);
    const std::uint64_t y = quantize(unit_p.y, 1u << 21);
    const std::uint64_t z = quantize(unit_p.z, 1u << 21);
    return (expandBits21(x) << 2) | (expandBits21(y) << 1) | expandBits21(z);
}

std::uint64_t
mortonCode63(const Vec3 &p, const Aabb &bounds)
{
    const Vec3 ext = bounds.extent();
    Vec3 unit;
    for (int axis = 0; axis < 3; ++axis) {
        unit[axis] = ext[axis] > 0.0f
            ? (p[axis] - bounds.lo[axis]) / ext[axis]
            : 0.0f;
    }
    return mortonCode63(unit);
}

std::vector<std::uint64_t>
mortonCodes63(const float *coords, std::size_t count, std::size_t stride)
{
    std::vector<std::uint64_t> codes;
    if (count == 0)
        return codes;
    const std::size_t dims = std::min<std::size_t>(3, stride);
    auto component = [&](std::size_t i, std::size_t axis) {
        return axis < dims ? coords[i * stride + axis] : 0.0f;
    };
    Aabb bounds;
    for (std::size_t i = 0; i < count; ++i) {
        bounds.expand(Vec3{component(i, 0), component(i, 1),
                           component(i, 2)});
    }
    codes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        codes.push_back(mortonCode63(Vec3{component(i, 0),
                                          component(i, 1),
                                          component(i, 2)},
                                     bounds));
    }
    return codes;
}

} // namespace hsu
