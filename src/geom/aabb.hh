/**
 * @file
 * Axis-aligned bounding box.
 */

#ifndef HSU_GEOM_AABB_HH
#define HSU_GEOM_AABB_HH

#include <limits>

#include "geom/vec3.hh"

namespace hsu
{

/** An axis-aligned bounding box in 3-D. Default-constructed boxes are
 *  empty (inverted) and grow correctly under expand(). */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity()};
    Vec3 hi{-std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity()};

    Aabb() = default;
    Aabb(const Vec3 &lo_v, const Vec3 &hi_v) : lo(lo_v), hi(hi_v) {}

    /** Grow to contain a point. */
    void
    expand(const Vec3 &p)
    {
        lo = min(lo, p);
        hi = max(hi, p);
    }

    /** Grow to contain another box. */
    void
    expand(const Aabb &b)
    {
        lo = min(lo, b.lo);
        hi = max(hi, b.hi);
    }

    /** True when the box contains no points. */
    bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

    /** Geometric center. @pre !empty(). */
    Vec3 center() const { return (lo + hi) * 0.5f; }

    /** Edge-length vector. */
    Vec3 extent() const { return hi - lo; }

    /** Surface area (for SAH-style quality metrics). */
    float
    surfaceArea() const
    {
        if (empty())
            return 0.0f;
        const Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /** True when the point lies inside or on the boundary. */
    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** True when the two boxes share any volume (or touch). */
    bool
    overlaps(const Aabb &b) const
    {
        return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y &&
               hi.y >= b.lo.y && lo.z <= b.hi.z && hi.z >= b.lo.z;
    }

    /** Squared distance from a point to the box (0 when inside). */
    float
    distance2(const Vec3 &p) const
    {
        float d2 = 0.0f;
        for (int axis = 0; axis < 3; ++axis) {
            float v = p[axis];
            if (v < lo[axis]) {
                const float d = lo[axis] - v;
                d2 += d * d;
            } else if (v > hi[axis]) {
                const float d = v - hi[axis];
                d2 += d * d;
            }
        }
        return d2;
    }

    /** Box centered at @p c with half-width @p half_extent per axis. */
    static Aabb
    centered(const Vec3 &c, float half_extent)
    {
        return Aabb(c - Vec3(half_extent), c + Vec3(half_extent));
    }
};

} // namespace hsu

#endif // HSU_GEOM_AABB_HH
