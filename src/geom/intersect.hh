/**
 * @file
 * Ray-box (slab method) and watertight ray-triangle intersection kernels.
 *
 * These are the functional-unit-level computations the RT datapath
 * performs (Figures 4-6 of the paper): the ray-box test follows the slab
 * method used by production RT units, and the ray-triangle test follows
 * Woop et al. 2013 "Watertight Ray/Triangle Intersection" with the
 * double-precision tie-break fallback removed, as the paper does
 * (motivated by the Nvidia watertight-intersection patent).
 */

#ifndef HSU_GEOM_INTERSECT_HH
#define HSU_GEOM_INTERSECT_HH

#include "geom/aabb.hh"
#include "geom/ray.hh"

namespace hsu
{

/** A triangle primitive with an application-assigned id. */
struct Triangle
{
    Vec3 v0, v1, v2;
    std::uint32_t id = 0;
};

/** Result of a single ray-box slab test. */
struct BoxHit
{
    bool hit = false;
    /** Entry distance; only meaningful when hit (clamped to ray.tmin). */
    float tEnter = 0.0f;
};

/** Result of a watertight ray-triangle test. The RT unit returns the hit
 *  distance as a ratio (tNum / tDenom) to avoid a divider in the
 *  datapath (Section IV-D). */
struct TriHit
{
    bool hit = false;
    std::uint32_t triId = 0;
    float tNum = 0.0f;
    float tDenom = 1.0f;
    /** Barycentric numerators (u, v, w scaled by tDenom). */
    float u = 0.0f, v = 0.0f, w = 0.0f;

    /** Resolve the hit distance (the division the HSU does NOT do). */
    float t() const { return tNum / tDenom; }
};

/** Slab-method ray/AABB test using the precomputed inverse direction. */
BoxHit rayBoxTest(const PreparedRay &pr, const Aabb &box);

/** Watertight ray/triangle test (Woop 2013, single precision only). */
TriHit rayTriangleTest(const PreparedRay &pr, const Triangle &tri);

} // namespace hsu

#endif // HSU_GEOM_INTERSECT_HH
