/**
 * @file
 * Minimal 3-component float vector used throughout the geometry kernels.
 */

#ifndef HSU_GEOM_VEC3_HH
#define HSU_GEOM_VEC3_HH

#include <cmath>
#include <ostream>

namespace hsu
{

/** A 3-component single-precision vector. */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xv, float yv, float zv) : x(xv), y(yv), z(zv) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr float
    operator[](int i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    float &
    operator[](int i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator*(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(float s) { x *= s; y *= s; z *= s; return *this; }

    constexpr bool operator==(const Vec3 &o) const
    { return x == o.x && y == o.y && z == o.z; }
};

constexpr Vec3 operator*(float s, const Vec3 &v) { return v * s; }

/** Dot product. */
constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Cross product. */
constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

/** Squared Euclidean length. */
constexpr float length2(const Vec3 &v) { return dot(v, v); }

/** Euclidean length. */
inline float length(const Vec3 &v) { return std::sqrt(length2(v)); }

/** Unit-length copy of v. @pre length(v) > 0. */
inline Vec3 normalize(const Vec3 &v) { return v / length(v); }

/** Component-wise minimum. */
inline Vec3
min(const Vec3 &a, const Vec3 &b)
{
    return {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z)};
}

/** Component-wise maximum. */
inline Vec3
max(const Vec3 &a, const Vec3 &b)
{
    return {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z)};
}

/** Squared distance between two points. */
constexpr float
distance2(const Vec3 &a, const Vec3 &b)
{
    return length2(a - b);
}

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

} // namespace hsu

#endif // HSU_GEOM_VEC3_HH
