#include "geom/intersect.hh"

#include <algorithm>
#include <cmath>

namespace hsu
{

BoxHit
rayBoxTest(const PreparedRay &pr, const Aabb &box)
{
    BoxHit result;
    if (box.empty())
        return result;

    // Classic slab method: interval of the ray inside each axis slab,
    // intersected across axes. min/max ordering per axis handles
    // negative direction components via the sign of invDir.
    float t_enter = pr.ray.tmin;
    float t_exit = pr.ray.tmax;
    for (int axis = 0; axis < 3; ++axis) {
        const float inv = pr.invDir[axis];
        float t0 = (box.lo[axis] - pr.ray.origin[axis]) * inv;
        float t1 = (box.hi[axis] - pr.ray.origin[axis]) * inv;
        if (t0 > t1)
            std::swap(t0, t1);
        // NaNs (0 * inf from a ray on a slab boundary) must not poison
        // the interval: fmax/fmin return the non-NaN operand.
        t_enter = std::fmax(t_enter, t0);
        t_exit = std::fmin(t_exit, t1);
    }

    result.hit = t_enter <= t_exit;
    result.tEnter = t_enter;
    return result;
}

TriHit
rayTriangleTest(const PreparedRay &pr, const Triangle &tri)
{
    TriHit result;
    result.triId = tri.id;

    const int kx = pr.kx, ky = pr.ky, kz = pr.kz;

    // Translate vertices to the ray origin.
    const Vec3 a = tri.v0 - pr.ray.origin;
    const Vec3 b = tri.v1 - pr.ray.origin;
    const Vec3 c = tri.v2 - pr.ray.origin;

    // Shear/scale the vertices into ray space.
    const float ax = a[kx] - pr.sx * a[kz];
    const float ay = a[ky] - pr.sy * a[kz];
    const float bx = b[kx] - pr.sx * b[kz];
    const float by = b[ky] - pr.sy * b[kz];
    const float cx = c[kx] - pr.sx * c[kz];
    const float cy = c[ky] - pr.sy * c[kz];

    // Scaled barycentric coordinates (2-D edge equations).
    const float u = cx * by - cy * bx;
    const float v = ax * cy - ay * cx;
    const float w = bx * ay - by * ax;

    // No double-precision fallback for u/v/w == 0 edge hits; the paper
    // removes it, matching the Nvidia watertight-intersection patent.
    if ((u < 0.0f || v < 0.0f || w < 0.0f) &&
        (u > 0.0f || v > 0.0f || w > 0.0f)) {
        return result;
    }

    const float det = u + v + w;
    if (det == 0.0f)
        return result;

    // Scaled hit distance.
    const float az = pr.sz * a[kz];
    const float bz = pr.sz * b[kz];
    const float cz = pr.sz * c[kz];
    const float t_scaled = u * az + v * bz + w * cz;

    // Sign-aware interval test against [tmin, tmax] without dividing.
    const auto sign_mask = [](float f) { return std::signbit(f); };
    if (sign_mask(det)) {
        if (t_scaled > det * pr.ray.tmin || t_scaled < det * pr.ray.tmax)
            return result;
    } else {
        if (t_scaled < det * pr.ray.tmin || t_scaled > det * pr.ray.tmax)
            return result;
    }

    result.hit = true;
    result.tNum = t_scaled;
    result.tDenom = det;
    result.u = u;
    result.v = v;
    result.w = w;
    return result;
}

} // namespace hsu
