#include "mem/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

Dram::Dram(DramParams params, StatGroup &stats)
    : params_(params), banks_(params.banks),
      statAccesses_(stats.scalar("dram.accesses")),
      statActivations_(stats.scalar("dram.activations")),
      statRowHits_(stats.scalar("dram.row_hits"))
{
    hsu_assert((params_.banks & (params_.banks - 1)) == 0,
               "bank count must be a power of two");
}

unsigned
Dram::bankOf(std::uint64_t line_addr) const
{
    return static_cast<unsigned>(line_addr & (params_.banks - 1));
}

std::uint64_t
Dram::rowOf(std::uint64_t line_addr) const
{
    return (line_addr / params_.banks) / params_.linesPerRow;
}

void
Dram::enqueue(std::uint64_t line_addr, bool write, MemCompletion done,
              std::uint64_t now)
{
    Bank &bank = banks_[bankOf(line_addr)];
    bank.queue.push_back(Request{line_addr, rowOf(line_addr), write,
                                 std::move(done), now});
}

void
Dram::tick(std::uint64_t now)
{
    // Fire due completions.
    while (!ready_.empty() && ready_.top().ready <= now) {
        MemCompletion done =
            std::move(const_cast<PendingDone &>(ready_.top()).done);
        ready_.pop();
        --inService_;
        if (done)
            done();
    }

    // Start a new service on every free bank using FR-FCFS: first
    // request hitting the open row wins, else the oldest request.
    for (auto &bank : banks_) {
        if (bank.readyAt > now || bank.queue.empty())
            continue;

        auto pick = bank.queue.end();
        if (bank.rowValid) {
            for (auto it = bank.queue.begin(); it != bank.queue.end();
                 ++it) {
                if (it->row == bank.openRow) {
                    pick = it;
                    break;
                }
            }
        }
        const bool row_hit = pick != bank.queue.end();
        if (!row_hit)
            pick = bank.queue.begin();

        ++statAccesses_;
        unsigned latency;
        if (row_hit) {
            ++statRowHits_;
            latency = params_.rowHitLatency;
        } else {
            ++statActivations_;
            bank.openRow = pick->row;
            bank.rowValid = true;
            latency = params_.rowMissLatency;
        }

        // The bank is busy until the access completes (activation and
        // column access do not overlap with the next request).
        bank.readyAt =
            now + std::max<std::uint64_t>(latency,
                                          params_.bankCycleTime);
        ready_.push(PendingDone{now + latency, seq_++,
                                std::move(pick->done)});
        ++inService_;
        bank.queue.erase(pick);
    }
}

bool
Dram::idle() const
{
    if (inService_ != 0)
        return false;
    for (const auto &bank : banks_) {
        if (!bank.queue.empty())
            return false;
    }
    return true;
}

Cycle
Dram::nextEventCycle(Cycle now) const
{
    Cycle next = kNeverCycle;
    if (!ready_.empty())
        next = std::min(next, std::max(ready_.top().ready, now + 1));
    for (const auto &bank : banks_) {
        if (!bank.queue.empty())
            next = std::min(next, std::max(bank.readyAt, now + 1));
    }
    return next;
}

double
Dram::rowLocality() const
{
    const double activations = statActivations_.value();
    if (activations == 0.0)
        return 0.0;
    return statAccesses_.value() / activations;
}

} // namespace hsu
