/**
 * @file
 * A latency/bandwidth-constrained point-to-point channel.
 *
 * Models interconnect hops (L1 <-> L2, L2 <-> DRAM): every payload is
 * delivered to the sink `latency` cycles after acceptance, with at most
 * `linesPerCycle` acceptances per cycle and a bounded in-flight queue for
 * backpressure. The roofline bound in Fig 8 (one cache line per cycle of
 * L2 bandwidth) is this bandwidth cap.
 */

#ifndef HSU_MEM_CHANNEL_HH
#define HSU_MEM_CHANNEL_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/cycletime.hh"
#include "common/logging.hh"

namespace hsu
{

/** Point-to-point channel carrying payloads of type T. */
template <typename T>
class Channel
{
  public:
    /**
     * @param latency         delivery delay in cycles
     * @param lines_per_cycle acceptances (and deliveries) per cycle
     * @param capacity        max in-flight payloads (backpressure bound)
     */
    Channel(unsigned latency, unsigned lines_per_cycle, unsigned capacity)
        : latency_(latency), bandwidth_(lines_per_cycle),
          capacity_(capacity)
    {
        hsu_assert(bandwidth_ > 0, "channel bandwidth must be positive");
        hsu_assert(capacity_ > 0, "channel capacity must be positive");
    }

    /** Set the delivery callback. Must be called before the first tick. */
    void setSink(std::function<void(T &&)> sink) { sink_ = std::move(sink); }

    /** Try to accept a payload at cycle @p now. False means backpressure
     *  (bandwidth or capacity exhausted) and the caller must retry. */
    bool
    trySend(T payload, std::uint64_t now)
    {
        if (now != lastAcceptCycle_) {
            lastAcceptCycle_ = now;
            acceptedThisCycle_ = 0;
        }
        if (acceptedThisCycle_ >= bandwidth_ || queue_.size() >= capacity_)
            return false;
        ++acceptedThisCycle_;
        queue_.emplace_back(now + latency_, std::move(payload));
        return true;
    }

    /** Deliver up to `bandwidth` payloads whose time has come. */
    void
    tick(std::uint64_t now)
    {
        unsigned delivered = 0;
        while (!queue_.empty() && delivered < bandwidth_ &&
               queue_.front().first <= now) {
            sink_(std::move(queue_.front().second));
            queue_.pop_front();
            ++delivered;
        }
    }

    /**
     * Earliest future cycle at which tick() could deliver a payload,
     * assuming nothing new is sent; kNeverCycle when empty. Deliveries
     * are FIFO with a fixed latency, so the head is the earliest.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (queue_.empty())
            return kNeverCycle;
        return std::max(queue_.front().first, now + 1);
    }

    /** Number of in-flight payloads. */
    std::size_t inFlight() const { return queue_.size(); }

    /** True when nothing is in flight. */
    bool idle() const { return queue_.empty(); }

  private:
    unsigned latency_;
    unsigned bandwidth_;
    unsigned capacity_;
    std::function<void(T &&)> sink_;
    std::deque<std::pair<std::uint64_t, T>> queue_;
    std::uint64_t lastAcceptCycle_ = ~0ULL;
    unsigned acceptedThisCycle_ = 0;
};

} // namespace hsu

#endif // HSU_MEM_CHANNEL_HH
