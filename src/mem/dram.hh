/**
 * @file
 * HBM-style DRAM model with per-bank row buffers and an FR-FCFS
 * (First-Row, First-Come-First-Served) scheduler: queued accesses to the
 * currently open row are prioritized over older requests to other rows
 * (Section VI-J / Fig 14 of the paper).
 */

#ifndef HSU_MEM_DRAM_HH
#define HSU_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/cycletime.hh"
#include "common/stats.hh"
#include "mem/cache.hh" // MemCompletion

namespace hsu
{

/** DRAM geometry and timing. */
struct DramParams
{
    unsigned banks = 16;        //!< power of two
    unsigned linesPerRow = 16;  //!< 2KB rows with 128B lines
    unsigned rowHitLatency = 20;
    unsigned rowMissLatency = 60;
    /** Minimum cycles between successive services on one bank. */
    unsigned bankCycleTime = 4;
};

/**
 * The DRAM device. Requests always enqueue (the upstream channel bounds
 * outstanding traffic); banks service them FR-FCFS.
 */
class Dram
{
  public:
    Dram(DramParams params, StatGroup &stats);

    /** Queue a line access. @p done fires when data is returned (reads);
     *  writes pass an empty completion. */
    void enqueue(std::uint64_t line_addr, bool write, MemCompletion done,
                 std::uint64_t now);

    /** Advance one cycle: start bank services, fire due completions. */
    void tick(std::uint64_t now);

    /** True when all queues and in-flight services are empty. */
    bool idle() const;

    /**
     * Earliest future cycle at which tick() could fire a completion or
     * start a bank service; kNeverCycle when fully drained.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Mean row-buffer accesses per activation so far (Fig 14 metric). */
    double rowLocality() const;

  private:
    struct Request
    {
        std::uint64_t lineAddr;
        std::uint64_t row;
        bool write;
        MemCompletion done;
        std::uint64_t arrival;
    };

    struct Bank
    {
        std::deque<Request> queue;
        std::uint64_t openRow = ~0ULL;
        bool rowValid = false;
        std::uint64_t readyAt = 0;
    };

    struct PendingDone
    {
        std::uint64_t ready;
        std::uint64_t seq;
        MemCompletion done;
        bool operator>(const PendingDone &o) const
        {
            return ready != o.ready ? ready > o.ready : seq > o.seq;
        }
    };

    unsigned bankOf(std::uint64_t line_addr) const;
    std::uint64_t rowOf(std::uint64_t line_addr) const;

    DramParams params_;
    std::vector<Bank> banks_;
    std::priority_queue<PendingDone, std::vector<PendingDone>,
                        std::greater<>> ready_;
    std::uint64_t seq_ = 0;
    std::size_t inService_ = 0;

    Stat &statAccesses_;
    Stat &statActivations_;
    Stat &statRowHits_;
};

} // namespace hsu

#endif // HSU_MEM_DRAM_HH
