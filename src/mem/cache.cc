#include "mem/cache.hh"

#include <algorithm>
#include <deque>

#include "common/audit.hh"
#include "common/logging.hh"

namespace hsu
{

namespace
{

[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kMshrAudit, audit::NondetKind::UnorderedIteration, "cache.cc:mshr_",
    "hash map accessed by line key only (find/erase); never iterated "
    "into stats, traces, or event-cycle scans");

} // namespace

Cache::Cache(CacheParams params, StatGroup &stats)
    : params_(std::move(params)),
      statAccesses_(stats.scalar(params_.name + ".accesses")),
      statReadAccesses_(stats.scalar(params_.name + ".read_accesses")),
      statHits_(stats.scalar(params_.name + ".hits")),
      statHitReserved_(stats.scalar(params_.name + ".hit_reserved")),
      statMisses_(stats.scalar(params_.name + ".misses")),
      statWrites_(stats.scalar(params_.name + ".writes")),
      statRejects_(stats.scalar(params_.name + ".rejects"))
{
    hsu_assert(params_.lineBytes > 0 && params_.assoc > 0,
               "bad cache geometry");
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    hsu_assert(lines >= params_.assoc, "cache smaller than one set");
    numSets_ = static_cast<unsigned>(lines / params_.assoc);
    sets_.assign(numSets_, std::vector<Way>(params_.assoc));
}

bool
Cache::lookup(std::uint64_t line_addr, std::uint64_t now)
{
    auto &set = sets_[line_addr % numSets_];
    const std::uint64_t tag = line_addr / numSets_;
    for (auto &way : set) {
        if (way.valid && way.tag == tag) {
            way.lastUse = now;
            return true;
        }
    }
    return false;
}

void
Cache::install(std::uint64_t line_addr, std::uint64_t now)
{
    auto &set = sets_[line_addr % numSets_];
    const std::uint64_t tag = line_addr / numSets_;
    // Already present (e.g. two MSHR-free fills of the same line)?
    for (auto &way : set) {
        if (way.valid && way.tag == tag) {
            way.lastUse = now;
            return;
        }
    }
    // Prefer an invalid way, else evict LRU.
    Way *victim = &set[0];
    for (auto &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = now;
}

void
Cache::scheduleDone(MemCompletion done, std::uint64_t ready)
{
    if (done)
        ready_.push(PendingDone{ready, seq_++, std::move(done)});
}

CacheOutcome
Cache::access(std::uint64_t addr, bool write, MemCompletion done,
              std::uint64_t now)
{
    const std::uint64_t line = lineOf(addr);

    if (write) {
        // Write-through, no-allocate: the store retires after the hit
        // latency while the write packet drains toward memory.
        if (missQueue_.size() >= params_.missQueueCapacity) {
            ++statRejects_;
            return CacheOutcome::RejectQueueFull;
        }
        ++statAccesses_;
        ++statWrites_;
        lookup(line, now); // refresh LRU if present
        missQueue_.emplace_back(line, true);
        scheduleDone(std::move(done), now + params_.hitLatency);
        return CacheOutcome::Hit;
    }

    // Read path. Structural rejections are checked before counting the
    // access so a retried request is not double-counted.
    if (lookup(line, now)) {
        ++statAccesses_;
        ++statReadAccesses_;
        ++statHits_;
        scheduleDone(std::move(done), now + params_.hitLatency);
        return CacheOutcome::Hit;
    }

    auto mshr_it = mshr_.find(line);
    if (mshr_it != mshr_.end()) {
        if (mshr_it->second.waiters.size() >= params_.mshrMergesPerEntry) {
            ++statRejects_;
            return CacheOutcome::RejectMshrFull;
        }
        ++statAccesses_;
        ++statReadAccesses_;
        ++statHitReserved_;
        mshr_it->second.waiters.push_back(std::move(done));
        return CacheOutcome::HitReserved;
    }

    if (mshr_.size() >= params_.mshrEntries) {
        ++statRejects_;
        return CacheOutcome::RejectMshrFull;
    }
    if (missQueue_.size() >= params_.missQueueCapacity) {
        ++statRejects_;
        return CacheOutcome::RejectQueueFull;
    }

    ++statAccesses_;
    ++statReadAccesses_;
    ++statMisses_;
    mshr_[line].waiters.push_back(std::move(done));
    missQueue_.emplace_back(line, false);
    return CacheOutcome::Miss;
}

void
Cache::fill(std::uint64_t line_addr, std::uint64_t now)
{
    install(line_addr, now);
    auto it = mshr_.find(line_addr);
    hsu_assert(it != mshr_.end(), params_.name,
               ": fill for line with no MSHR entry");
    for (auto &waiter : it->second.waiters)
        scheduleDone(std::move(waiter), now);
    mshr_.erase(it);
}

void
Cache::tick(std::uint64_t now)
{
    // Retire due completions.
    bool fired = false;
    while (!ready_.empty() && ready_.top().ready <= now) {
        // The callback may access this cache again; pop first.
        MemCompletion done = std::move(
            const_cast<PendingDone &>(ready_.top()).done);
        ready_.pop();
        done();
        fired = true;
    }
    if (fired && completionObserver_)
        completionObserver_();
    // Drain the miss/write queue downstream while accepted.
    while (!missQueue_.empty() && sendLower_ &&
           sendLower_(missQueue_.front().first, missQueue_.front().second,
                      now)) {
        missQueue_.pop_front();
    }
}

bool
Cache::idle() const
{
    return mshr_.empty() && missQueue_.empty() && ready_.empty();
}

Cycle
Cache::nextEventCycle(Cycle now) const
{
    if (!missQueue_.empty())
        return now + 1;
    if (!ready_.empty())
        return std::max(ready_.top().ready, now + 1);
    return kNeverCycle;
}

} // namespace hsu
