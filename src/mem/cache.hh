/**
 * @file
 * Set-associative cache with MSHRs, used for both L1D and L2.
 *
 * GPU-style policy: write-through, no write-allocate, allocate on read
 * miss. Reads that hit on a pending miss merge into the MSHR entry
 * ("hit reserved") — the paper counts these as hits when reporting L1
 * miss rate (Section VI-J), and so do we.
 */

#ifndef HSU_MEM_CACHE_HH
#define HSU_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cycletime.hh"
#include "common/stats.hh"

namespace hsu
{

/** Completion callback invoked when an access's data is available. */
using MemCompletion = std::function<void()>;

/** Cache geometry and timing parameters. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 128 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 128;
    unsigned hitLatency = 28;
    unsigned mshrEntries = 32;
    unsigned mshrMergesPerEntry = 8;
    unsigned missQueueCapacity = 32;
};

/** Outcome of a cache access attempt. */
enum class CacheOutcome
{
    Hit,            //!< data present; completion after hitLatency
    HitReserved,    //!< merged into a pending MSHR entry
    Miss,           //!< MSHR allocated; miss sent toward lower level
    RejectMshrFull, //!< structural stall: retry next cycle
    RejectQueueFull //!< structural stall: miss queue full
};

/**
 * One level of cache. The owner wires `sendLower` to the downstream
 * channel and calls `fill()` when line data returns.
 */
class Cache
{
  public:
    Cache(CacheParams params, StatGroup &stats);

    /**
     * Attempt an access at cycle @p now.
     *
     * Reads: on Hit the completion fires after hitLatency; on
     * Miss/HitReserved it fires when the fill arrives. Writes are
     * write-through / no-allocate: the completion fires after
     * hitLatency and a write packet is queued downstream.
     */
    CacheOutcome access(std::uint64_t addr, bool write,
                        MemCompletion done, std::uint64_t now);

    /** Line data returned from the lower level: install, release MSHR. */
    void fill(std::uint64_t line_addr, std::uint64_t now);

    /** Deliver due completions and drain the miss queue downstream. */
    void tick(std::uint64_t now);

    /** Downstream hook: f(lineAddr, isWrite, now) -> accepted. */
    void
    setSendLower(std::function<bool(std::uint64_t, bool, std::uint64_t)> f)
    {
        sendLower_ = std::move(f);
    }

    /**
     * Observer invoked at most once per tick() after any completion
     * callbacks fired. Every cross-boundary wake an SM can receive —
     * LSU group done, store retire, HSU op done, RT-unit line arrival
     * — is delivered through this cache's completion queue, so one
     * observer per L1 lets the owning SM learn "my state changed this
     * cycle" without enumerating the callback sites. Purely a
     * host-side wake signal; no timing effect.
     */
    void
    setCompletionObserver(std::function<void()> f)
    {
        completionObserver_ = std::move(f);
    }

    /** True when no MSHR is pending and all queues are empty. */
    bool idle() const;

    /**
     * Earliest future cycle at which tick() could act on its own:
     * draining the miss queue (every cycle while non-empty) or firing a
     * scheduled completion. Pending MSHRs awaiting a fill are driven by
     * the lower level and carry no self event.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Line-align an address. */
    std::uint64_t lineOf(std::uint64_t addr) const
    { return addr / params_.lineBytes; }

    const CacheParams &params() const { return params_; }

    /** MSHR entries currently in use (for contention experiments). */
    std::size_t mshrInUse() const { return mshr_.size(); }

  private:
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    struct MshrEntry
    {
        std::vector<MemCompletion> waiters;
    };

    struct PendingDone
    {
        std::uint64_t ready;
        std::uint64_t seq;
        MemCompletion done;
        bool operator>(const PendingDone &o) const
        {
            return ready != o.ready ? ready > o.ready : seq > o.seq;
        }
    };

    bool lookup(std::uint64_t line_addr, std::uint64_t now);
    void install(std::uint64_t line_addr, std::uint64_t now);
    void scheduleDone(MemCompletion done, std::uint64_t ready);

    CacheParams params_;
    unsigned numSets_;
    std::vector<std::vector<Way>> sets_;
    std::unordered_map<std::uint64_t, MshrEntry> mshr_;
    std::deque<std::pair<std::uint64_t, bool>> missQueue_;
    std::priority_queue<PendingDone, std::vector<PendingDone>,
                        std::greater<>> ready_;
    std::function<bool(std::uint64_t, bool, std::uint64_t)> sendLower_;
    std::function<void()> completionObserver_;
    std::uint64_t seq_ = 0;

    Stat &statAccesses_;
    Stat &statReadAccesses_;
    Stat &statHits_;
    Stat &statHitReserved_;
    Stat &statMisses_;
    Stat &statWrites_;
    Stat &statRejects_;
};

} // namespace hsu

#endif // HSU_MEM_CACHE_HH
