#include "mem/memsys.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu
{

MemorySystem::MemorySystem(MemSysParams params, StatGroup &stats)
    : params_(params),
      down_(params.icntLatency, params.icntLinesPerCycle,
            params.icntCapacity),
      up_(params.icntLatency, params.icntLinesPerCycle,
          params.icntCapacity),
      toDram_(20, params.icntLinesPerCycle, params.icntCapacity),
      statL2Lines_(stats.scalar("l2.lines_accessed"))
{
    for (unsigned i = 0; i < params_.numL1; ++i) {
        CacheParams p = params_.l1;
        p.name = p.name + "." + std::to_string(i);
        l1s_.push_back(std::make_unique<Cache>(p, stats));
        // L1 misses/writes head into the shared down-channel.
        l1s_.back()->setSendLower(
            [this, i](std::uint64_t line, bool write, std::uint64_t now) {
                return down_.trySend(DownPacket{line, write, i}, now);
            });
    }

    l2_ = std::make_unique<Cache>(params_.l2, stats);
    l2_->setSendLower(
        [this](std::uint64_t line, bool write, std::uint64_t now) {
            return toDram_.trySend(DramPacket{line, write}, now);
        });

    dram_ = std::make_unique<Dram>(params_.dram, stats);

    down_.setSink([this](DownPacket &&pkt) { l2Access(pkt, now_); });
    up_.setSink([this](UpPacket &&pkt) {
        l1s_[pkt.src]->fill(pkt.lineAddr, now_);
    });
    toDram_.setSink([this](DramPacket &&pkt) {
        if (pkt.write) {
            dram_->enqueue(pkt.lineAddr, true, MemCompletion{}, now_);
        } else {
            const std::uint64_t line = pkt.lineAddr;
            dram_->enqueue(line, false,
                           [this, line]() { l2_->fill(line, now_); },
                           now_);
        }
    });
}

void
MemorySystem::l2Access(const DownPacket &pkt, std::uint64_t now)
{
    // Caches address by byte; packets carry line numbers.
    const std::uint64_t byte_addr = pkt.lineAddr * params_.l2.lineBytes;
    MemCompletion done;
    if (!pkt.write) {
        const UpPacket up{pkt.lineAddr, pkt.src};
        done = [this, up]() { upPending_.push_back(up); };
    }
    const CacheOutcome outcome =
        l2_->access(byte_addr, pkt.write, std::move(done), now);
    if (outcome == CacheOutcome::RejectMshrFull ||
        outcome == CacheOutcome::RejectQueueFull) {
        // Structural stall at the L2: retry on a later cycle. Only
        // accepted accesses count as lines accessed.
        l2Retry_.push_back(pkt);
        return;
    }
    ++statL2Lines_;
}

void
MemorySystem::tick(std::uint64_t now)
{
    // Canonical commit point for the parallel horizon loop: the SMs
    // tick concurrently but only stage traffic into their private L1
    // miss queues; those queues are drained here (the l1s_ loop below,
    // SM-index order) on the caller's thread, so the shared L2 /
    // channels / DRAM observe exactly the serial arrival order no
    // matter how the SM phase was scheduled. Time must not run
    // backwards between commits.
    hsu_contract(now >= now_, "memory system ticked backwards: ", now,
                 " after ", now_);
    now_ = now;

    // Responses first so a fill can unblock same-direction traffic.
    dram_->tick(now);
    l2_->tick(now);
    toDram_.tick(now);

    // L2 -> L1 responses.
    while (!upPending_.empty() &&
           up_.trySend(upPending_.front(), now)) {
        upPending_.pop_front();
    }
    up_.tick(now);

    // Retries of structurally-rejected L2 accesses, oldest first
    // (bounded per cycle: the L2 can only start a few accesses).
    const std::size_t retries = std::min<std::size_t>(
        l2Retry_.size(), 4);
    for (std::size_t n = retries; n > 0; --n) {
        DownPacket pkt = l2Retry_.front();
        l2Retry_.pop_front();
        l2Access(pkt, now);
    }

    // L1 -> L2 requests.
    down_.tick(now);
    for (auto &l1 : l1s_)
        l1->tick(now);
}

Cycle
MemorySystem::nextEventCycle(Cycle now) const
{
    // Pending retries and responses are attempted every cycle.
    if (!upPending_.empty() || !l2Retry_.empty())
        return now + 1;
    Cycle next = std::min({down_.nextEventCycle(now),
                           up_.nextEventCycle(now),
                           toDram_.nextEventCycle(now),
                           l2_->nextEventCycle(now),
                           dram_->nextEventCycle(now)});
    for (const auto &l1 : l1s_)
        next = std::min(next, l1->nextEventCycle(now));
    return next;
}

bool
MemorySystem::idle() const
{
    if (!down_.idle() || !up_.idle() || !toDram_.idle())
        return false;
    if (!l2Retry_.empty() || !upPending_.empty())
        return false;
    if (!l2_->idle() || !dram_->idle())
        return false;
    for (const auto &l1 : l1s_) {
        if (!l1->idle())
            return false;
    }
    return true;
}

} // namespace hsu
