/**
 * @file
 * The full memory hierarchy: per-SM L1Ds, a shared bandwidth-capped
 * interconnect, a unified L2, and FR-FCFS DRAM (Table III configuration).
 */

#ifndef HSU_MEM_MEMSYS_HH
#define HSU_MEM_MEMSYS_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/channel.hh"
#include "mem/dram.hh"

namespace hsu
{

/** Parameters for the whole hierarchy. */
struct MemSysParams
{
    unsigned numL1 = 4;
    CacheParams l1{.name = "l1d", .sizeBytes = 128 * 1024, .assoc = 8,
                   .lineBytes = 128, .hitLatency = 28, .mshrEntries = 32,
                   .mshrMergesPerEntry = 8, .missQueueCapacity = 32};
    // L2 hitLatency is the array access alone; interconnect and DRAM
    // time are modeled by the channels/device, not folded in here.
    CacheParams l2{.name = "l2", .sizeBytes = 6 * 1024 * 1024, .assoc = 24,
                   .lineBytes = 128, .hitLatency = 30, .mshrEntries = 128,
                   .mshrMergesPerEntry = 16, .missQueueCapacity = 128};
    unsigned icntLatency = 30;
    unsigned icntLinesPerCycle = 1; //!< roofline memory bound (Fig 8)
    unsigned icntCapacity = 256;
    DramParams dram{};
};

/**
 * Owns and wires every level. SMs talk to their L1 via l1(i); everything
 * below is internal. Call tick() once per cycle.
 *
 * Thread model: an SM may call l1(i).access() concurrently with other
 * SMs (each L1 is touched by exactly one SM), but everything shared —
 * channels, L2, DRAM — moves only inside tick(), which runs on one
 * thread and drains the staged L1 miss queues in SM-index order. That
 * fixed commit order is what makes the parallel SM phase bit-identical
 * to the serial loop.
 */
class MemorySystem
{
  public:
    MemorySystem(MemSysParams params, StatGroup &stats);

    /** The i-th SM's L1 data cache. */
    Cache &l1(unsigned i) { return *l1s_[i]; }

    unsigned numL1() const { return static_cast<unsigned>(l1s_.size()); }

    Cache &l2() { return *l2_; }
    Dram &dram() { return *dram_; }

    /** Advance the hierarchy one cycle. */
    void tick(std::uint64_t now);

    /** True when no request is in flight anywhere below the SMs. */
    bool idle() const;

    /**
     * Earliest future cycle at which any level of the hierarchy could
     * act on its own (channel delivery, scheduled completion, bank
     * service, queue drain); kNeverCycle when everything is idle.
     */
    Cycle nextEventCycle(Cycle now) const;

  private:
    struct DownPacket
    {
        std::uint64_t lineAddr;
        bool write;
        unsigned src;
    };

    struct UpPacket
    {
        std::uint64_t lineAddr;
        unsigned src;
    };

    struct DramPacket
    {
        std::uint64_t lineAddr;
        bool write;
    };

    void l2Access(const DownPacket &pkt, std::uint64_t now);

    MemSysParams params_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Dram> dram_;
    Channel<DownPacket> down_;
    Channel<UpPacket> up_;
    Channel<DramPacket> toDram_;
    std::deque<DownPacket> l2Retry_;
    std::deque<UpPacket> upPending_;
    std::uint64_t now_ = 0;

    Stat &statL2Lines_;
};

} // namespace hsu

#endif // HSU_MEM_MEMSYS_HH
