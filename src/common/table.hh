/**
 * @file
 * Plain-text table / CSV rendering for experiment harnesses.
 *
 * Every bench binary prints its reproduced figure/table through this class
 * so output formatting is consistent and machine-parsable.
 */

#ifndef HSU_COMMON_TABLE_HH
#define HSU_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace hsu
{

/** A simple column-aligned text table with an optional title. */
class Table
{
  public:
    /** Construct with a title and column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Append a fully-formed row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render aligned human-readable text. */
    void print(std::ostream &os) const;

    /** Render as CSV (no title line). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hsu

#endif // HSU_COMMON_TABLE_HH
