#include "common/argparse.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/logging.hh"

namespace hsu
{

namespace
{

bool
envTruthy(const char *v)
{
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

} // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::flag(bool &out, const std::string &name,
                const std::string &help)
{
    options_.push_back(Option{Type::Flag, name, "", help, &out});
}

void
ArgParser::envFlag(bool &out, const std::string &name,
                   const std::string &env_var, const std::string &help)
{
    options_.push_back(Option{Type::Flag, name, env_var, help, &out});
}

void
ArgParser::opt(std::string &out, const std::string &name,
               const std::string &help)
{
    options_.push_back(Option{Type::String, name, "", help, &out});
}

void
ArgParser::opt(unsigned &out, const std::string &name,
               const std::string &help)
{
    options_.push_back(Option{Type::Unsigned, name, "", help, &out});
}

void
ArgParser::opt(double &out, const std::string &name,
               const std::string &help)
{
    options_.push_back(Option{Type::Double, name, "", help, &out});
}

void
ArgParser::envOpt(unsigned &out, const std::string &name,
                  const std::string &env_var, const std::string &help)
{
    options_.push_back(Option{Type::Unsigned, name, env_var, help, &out});
}

void
ArgParser::envOpt(std::string &out, const std::string &name,
                  const std::string &env_var, const std::string &help)
{
    options_.push_back(Option{Type::String, name, env_var, help, &out});
}

ArgParser::Option *
ArgParser::find(const std::string &name)
{
    for (Option &o : options_) {
        if (o.name == name)
            return &o;
    }
    return nullptr;
}

void
ArgParser::applyEnvDefaults()
{
    for (Option &o : options_) {
        if (o.envVar.empty())
            continue;
        const char *v = std::getenv(o.envVar.c_str());
        if (v == nullptr)
            continue;
        switch (o.type) {
          case Type::Flag:
            *static_cast<bool *>(o.target) = envTruthy(v);
            break;
          case Type::Unsigned: {
            char *end = nullptr;
            const unsigned long parsed = std::strtoul(v, &end, 10);
            // Malformed values fall back silently, matching the
            // historical getenv() sites (threadpool.cc).
            if (end != v && *end == '\0')
                *static_cast<unsigned *>(o.target) =
                    static_cast<unsigned>(parsed);
            break;
          }
          case Type::String:
            *static_cast<std::string *>(o.target) = v;
            break;
          default:
            break;
        }
    }
}

void
ArgParser::exportEnvValues() const
{
    for (const Option &o : options_) {
        if (o.envVar.empty())
            continue;
        std::string value;
        switch (o.type) {
          case Type::Flag:
            value = *static_cast<const bool *>(o.target) ? "1" : "";
            break;
          case Type::Unsigned:
            value = std::to_string(*static_cast<const unsigned *>(
                o.target));
            break;
          case Type::String:
            value = *static_cast<const std::string *>(o.target);
            break;
          default:
            continue;
        }
        if (value.empty()) {
            ::unsetenv(o.envVar.c_str());
        } else {
            ::setenv(o.envVar.c_str(), value.c_str(), /*overwrite=*/1);
        }
    }
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    applyEnvDefaults();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage();
            exitCode_ = 0;
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            std::cerr << program_ << ": unexpected argument '" << arg
                      << "'\n"
                      << usage();
            exitCode_ = 64;
            return false;
        }

        // Split --name=value.
        std::string name = arg.substr(2);
        std::string inline_value;
        bool have_inline = false;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_inline = true;
        }

        // --no-name negates a flag.
        bool negated = false;
        Option *o = find(name);
        if (o == nullptr && name.rfind("no-", 0) == 0) {
            o = find(name.substr(3));
            negated = o != nullptr && o->type == Type::Flag;
            if (!negated)
                o = nullptr;
        }
        if (o == nullptr) {
            std::cerr << program_ << ": unknown option '--" << name
                      << "'\n"
                      << usage();
            exitCode_ = 64;
            return false;
        }

        if (o->type == Type::Flag) {
            if (have_inline) {
                std::cerr << program_ << ": flag '--" << o->name
                          << "' takes no value\n";
                exitCode_ = 64;
                return false;
            }
            *static_cast<bool *>(o->target) = !negated;
            continue;
        }

        if (!have_inline) {
            if (i + 1 >= argc) {
                std::cerr << program_ << ": option '--" << o->name
                          << "' needs a value\n";
                exitCode_ = 64;
                return false;
            }
            inline_value = argv[++i];
        }

        std::istringstream is(inline_value);
        bool ok = false;
        switch (o->type) {
          case Type::String:
            *static_cast<std::string *>(o->target) = inline_value;
            ok = true;
            break;
          case Type::Unsigned: {
            unsigned v = 0;
            ok = static_cast<bool>(is >> v) && is.eof();
            if (ok)
                *static_cast<unsigned *>(o->target) = v;
            break;
          }
          case Type::Double: {
            double v = 0.0;
            ok = static_cast<bool>(is >> v) && is.eof();
            if (ok)
                *static_cast<double *>(o->target) = v;
            break;
          }
          case Type::Flag:
            break; // handled above
        }
        if (!ok) {
            std::cerr << program_ << ": bad value '" << inline_value
                      << "' for option '--" << o->name << "'\n";
            exitCode_ = 64;
            return false;
        }
    }

    exportEnvValues();
    return true;
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [options]\n  " << description_
       << "\n\noptions:\n";
    for (const Option &o : options_) {
        std::string left = "  --" + o.name;
        switch (o.type) {
          case Type::Flag:
            left += " | --no-" + o.name;
            break;
          case Type::String:
            left += " <str>";
            break;
          case Type::Unsigned:
            left += " <n>";
            break;
          case Type::Double:
            left += " <x>";
            break;
        }
        os << left;
        if (left.size() < 28)
            os << std::string(28 - left.size(), ' ');
        else
            os << "\n" << std::string(28, ' ');
        os << o.help;
        if (!o.envVar.empty())
            os << " [env: " << o.envVar << "]";
        os << "\n";
    }
    os << "  --help | -h" << std::string(28 - 13, ' ')
       << "show this message\n";
    return os.str();
}

} // namespace hsu
