/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All dataset generators and stimulus in this repository draw from Rng so
 * that every experiment is bit-reproducible across runs and platforms.
 * The core generator is xoshiro256**, seeded via splitmix64.
 */

#ifndef HSU_COMMON_RNG_HH
#define HSU_COMMON_RNG_HH

#include <cstdint>

namespace hsu
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also feed
 * <random> distributions, though the member helpers below are preferred
 * for portability of generated streams.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Standard normal variate (Box-Muller, cached pair). */
    float gaussian();

    /** Normal variate with the given mean and standard deviation. */
    float gaussian(float mean, float stddev);

    /** Fork an independent stream (useful for parallel generators). */
    Rng split();

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    float spare_ = 0.0f;
};

/**
 * Derive the seed of child stream @p stream from @p root.
 *
 * A pure, stateless function: both inputs pass through full splitmix64
 * avalanche rounds, so unlike the naive `root + stream` scheme the
 * child families of adjacent roots are not shifted copies of each
 * other (seed r, stream i and seed r+1, stream i-1 never alias). The
 * sharded serving layer derives every per-shard/per-replica stream
 * seed through this function from one experiment root seed; the
 * scheme is registered in the hsu::audit nondeterminism registry as
 * "rng.cc:deriveSeed" and pinned by tests/common/test_rng.cc.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t stream);

} // namespace hsu

#endif // HSU_COMMON_RNG_HH
