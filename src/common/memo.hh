/**
 * @file
 * Build-once asset memoization shared by the runner and the shard
 * layer.
 *
 * cachedAssets<Assets>(key, build) returns a process-lifetime reference
 * to the Assets built for @p key, constructing them exactly once no
 * matter how many threads race on the same key. A global mutex guards
 * only the slot map; the (expensive) build itself runs under the
 * slot's once_flag outside that lock, so two threads wanting
 * *different* keys build concurrently while two wanting the same key
 * build exactly once. Slots are pinned behind unique_ptr, so returned
 * references stay valid across map rehashes.
 *
 * Extracted from search/runner.cc so the sharded-serving layer can key
 * per-shard sub-indexes through the same build-once discipline instead
 * of growing a second cache implementation.
 */

#ifndef HSU_COMMON_MEMO_HH
#define HSU_COMMON_MEMO_HH

#include <map>
#include <memory>
#include <mutex>

namespace hsu
{

template <typename Assets>
struct AssetSlot
{
    std::once_flag once;
    Assets assets;
};

template <typename Assets, typename Key, typename Build>
const Assets &
cachedAssets(const Key &key, Build build)
{
    static std::mutex mutex;
    static std::map<Key, std::unique_ptr<AssetSlot<Assets>>> cache;

    AssetSlot<Assets> *slot;
    {
        std::lock_guard lock(mutex);
        auto &entry = cache[key];
        if (!entry)
            entry = std::make_unique<AssetSlot<Assets>>();
        slot = entry.get(); // slots are pinned; the map may rehash
    }
    std::call_once(slot->once, [&] { build(slot->assets); });
    return slot->assets;
}

} // namespace hsu

#endif // HSU_COMMON_MEMO_HH
