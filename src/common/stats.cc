#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hsu
{

Histogram::Histogram(unsigned buckets_per_decade)
    : bucketsPerDecade_(buckets_per_decade)
{
    hsu_assert(buckets_per_decade >= 1, "histogram needs >= 1 bucket/decade");
}

int
Histogram::bucketIndex(double v) const
{
    return static_cast<int>(
        std::floor(std::log10(v) * bucketsPerDecade_));
}

double
Histogram::bucketLo(double v) const
{
    return std::pow(10.0, static_cast<double>(bucketIndex(v)) /
                              bucketsPerDecade_);
}

double
Histogram::bucketHi(double v) const
{
    return std::pow(10.0, static_cast<double>(bucketIndex(v) + 1) /
                              bucketsPerDecade_);
}

void
Histogram::add(double v)
{
    ++count_;
    sum_ += v;
    if (count_ == 1 || v > max_)
        max_ = v;
    if (v <= 0.0) {
        ++underflow_;
        return;
    }
    if (count_ - underflow_ == 1 || v < min_)
        min_ = v;
    ++buckets_[bucketIndex(v)];
}

void
Histogram::merge(const Histogram &other)
{
    hsu_assert(bucketsPerDecade_ == other.bucketsPerDecade_,
               "merging histograms of different resolution");
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    if (other.count_ > other.underflow_ &&
        (count_ == underflow_ || other.min_ < min_)) {
        min_ = other.min_;
    }
    count_ += other.count_;
    underflow_ += other.underflow_;
    sum_ += other.sum_;
    for (const auto &[idx, n] : other.buckets_)
        buckets_[idx] += n;
}

double
Histogram::percentile(double p) const
{
    hsu_assert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (count_ == 0)
        return 0.0;
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(count_))));
    if (rank <= underflow_)
        return 0.0;
    if (rank >= count_)
        return max_; // the top rank is tracked exactly
    std::uint64_t seen = underflow_;
    for (const auto &[idx, n] : buckets_) {
        seen += n;
        if (seen >= rank) {
            // Geometric bucket midpoint, clamped to observed extremes.
            const double mid = std::pow(
                10.0, (static_cast<double>(idx) + 0.5) /
                          bucketsPerDecade_);
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = underflow_ = 0;
    min_ = max_ = sum_ = 0.0;
}

Stat &
StatGroup::scalar(const std::string &name)
{
    return stats_[name];
}

double
StatGroup::get(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second.value();
}

bool
StatGroup::has(const std::string &name) const
{
    return stats_.find(name) != stats_.end();
}

double
StatGroup::sumPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second.value();
    }
    return total;
}

void
StatGroup::resetAll()
{
    for (auto &kv : stats_)
        kv.second.reset();
}

std::vector<std::pair<std::string, double>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    for (const auto &kv : stats_)
        out.emplace_back(kv.first, kv.second.value());
    return out;
}

Histogram &
StatGroup::histogram(const std::string &name)
{
    return histograms_[name];
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

} // namespace hsu
