#include "common/stats.hh"

namespace hsu
{

Stat &
StatGroup::scalar(const std::string &name)
{
    return stats_[name];
}

double
StatGroup::get(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second.value();
}

bool
StatGroup::has(const std::string &name) const
{
    return stats_.find(name) != stats_.end();
}

double
StatGroup::sumPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second.value();
    }
    return total;
}

void
StatGroup::resetAll()
{
    for (auto &kv : stats_)
        kv.second.reset();
}

std::vector<std::pair<std::string, double>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    for (const auto &kv : stats_)
        out.emplace_back(kv.first, kv.second.value());
    return out;
}

} // namespace hsu
