/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is approximated or suspicious but survivable.
 * inform() — normal operating status worth surfacing.
 */

#ifndef HSU_COMMON_LOGGING_HH
#define HSU_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace hsu
{

namespace detail
{

/** Concatenate any streamable arguments into a std::string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit a message and abort(); called by the panic() macro. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a message and exit(1); called by the fatal() macro. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Emit an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace detail

} // namespace hsu

#define hsu_panic(...)                                                      \
    ::hsu::detail::panicImpl(__FILE__, __LINE__,                            \
                             ::hsu::detail::concat(__VA_ARGS__))

#define hsu_fatal(...)                                                      \
    ::hsu::detail::fatalImpl(__FILE__, __LINE__,                            \
                             ::hsu::detail::concat(__VA_ARGS__))

#define hsu_warn(...)                                                       \
    ::hsu::detail::warnImpl(__FILE__, __LINE__,                             \
                            ::hsu::detail::concat(__VA_ARGS__))

#define hsu_inform(...)                                                     \
    ::hsu::detail::informImpl(::hsu::detail::concat(__VA_ARGS__))

/**
 * Discard a condition without evaluating it: the expansion of every
 * compiled-out assertion flavor below. `sizeof` leaves its operand
 * unevaluated, so a `++i` condition has no effect in any build type
 * while still being parsed and type-checked (a stale condition that no
 * longer compiles breaks the build even where the check is off).
 */
#define HSU_DETAIL_UNEVALUATED(cond) ((void)sizeof(!(cond)))

/**
 * Assert a simulator invariant; compiled in all build types. The
 * condition is evaluated exactly once (tests/common/test_contract.cc
 * pins this at compile time). Use for structural invariants whose cost
 * is off the per-cycle path; per-cycle checks belong in
 * hsu_debug_assert.
 */
#define hsu_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            hsu_panic("assertion failed: " #cond " ", ##__VA_ARGS__);       \
        }                                                                   \
    } while (0)

/**
 * Assert a hot-loop invariant; compiled out under NDEBUG (the default
 * RelWithDebInfo build), evaluated exactly once otherwise. Per-cycle
 * simulator paths (SM issue, LSU, the Gpu::run loop) use this so
 * release builds pay nothing.
 */
#ifdef NDEBUG
#define hsu_debug_assert(cond, ...) HSU_DETAIL_UNEVALUATED(cond)
#else
#define hsu_debug_assert(cond, ...)                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            hsu_panic("debug assertion failed: " #cond " ",                 \
                      ##__VA_ARGS__);                                       \
        }                                                                   \
    } while (0)
#endif

/**
 * Determinism-contract check: active only in HSU_AUDIT builds
 * (-DHSU_AUDIT=ON), where it panics on violation; compiled out (and
 * not evaluated) everywhere else. Contracts state the ordering /
 * reproducibility disciplines the bit-identical-output guarantee rests
 * on — see src/common/audit.hh for the audited-nondeterminism registry
 * and DESIGN.md "Static auditing" for the catalog.
 */
#ifdef HSU_AUDIT
#define hsu_contract(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            hsu_panic("contract violated: " #cond " ", ##__VA_ARGS__);      \
        }                                                                   \
    } while (0)
#else
#define hsu_contract(cond, ...) HSU_DETAIL_UNEVALUATED(cond)
#endif

#endif // HSU_COMMON_LOGGING_HH
