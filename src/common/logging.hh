/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is approximated or suspicious but survivable.
 * inform() — normal operating status worth surfacing.
 */

#ifndef HSU_COMMON_LOGGING_HH
#define HSU_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace hsu
{

namespace detail
{

/** Concatenate any streamable arguments into a std::string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit a message and abort(); called by the panic() macro. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a message and exit(1); called by the fatal() macro. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Emit an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace detail

} // namespace hsu

#define hsu_panic(...)                                                      \
    ::hsu::detail::panicImpl(__FILE__, __LINE__,                            \
                             ::hsu::detail::concat(__VA_ARGS__))

#define hsu_fatal(...)                                                      \
    ::hsu::detail::fatalImpl(__FILE__, __LINE__,                            \
                             ::hsu::detail::concat(__VA_ARGS__))

#define hsu_warn(...)                                                       \
    ::hsu::detail::warnImpl(__FILE__, __LINE__,                             \
                            ::hsu::detail::concat(__VA_ARGS__))

#define hsu_inform(...)                                                     \
    ::hsu::detail::informImpl(::hsu::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; compiled in all build types. */
#define hsu_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            hsu_panic("assertion failed: " #cond " ", ##__VA_ARGS__);       \
        }                                                                   \
    } while (0)

#endif // HSU_COMMON_LOGGING_HH
