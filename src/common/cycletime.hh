/**
 * @file
 * Shared simulated-time vocabulary for the event-skip machinery.
 *
 * Every timed component exposes `nextEventCycle(now)`: the earliest
 * future cycle at which ticking it could do anything, assuming no new
 * external input arrives. Components that can never act again on their
 * own return kNeverCycle; the GPU top loop fast-forwards across the gap
 * up to the global minimum (see Gpu::run).
 */

#ifndef HSU_COMMON_CYCLETIME_HH
#define HSU_COMMON_CYCLETIME_HH

#include <cstdint>

namespace hsu
{

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** "No self-scheduled future event" sentinel for nextEventCycle(). */
inline constexpr Cycle kNeverCycle = ~static_cast<Cycle>(0);

} // namespace hsu

#endif // HSU_COMMON_CYCLETIME_HH
