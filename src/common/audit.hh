/**
 * @file
 * The determinism-audit registry: every known nondeterminism source in
 * the simulator declares itself here, together with the discipline
 * that keeps it out of the bit-identical outputs.
 *
 * The repo's headline numbers rest on outputs being bit-identical
 * across HSU_JOBS, fast-forward, and the shared emission cache. Three
 * mechanism classes can silently break that: iteration over unordered
 * containers feeding stats or trace emission, float accumulation whose
 * order varies with thread interleaving, and RNG draws outside
 * hsu::Rng. Rather than hoping a diff of two full runs catches drift,
 * each such site registers a NondetSource at static initialization
 * naming its discipline ("key-lookup only, never iterated", "merged in
 * submission order", ...). Under HSU_AUDIT builds a source registered
 * without a discipline panics at init — before a single simulated
 * cycle — and tests/common/test_contract.cc pins the expected registry
 * contents so an unregistered new source is caught in review.
 *
 * The hsu_contract() macro (common/logging.hh) is the dynamic half:
 * HSU_AUDIT builds check ordering contracts inline and the full ctest
 * suite (golden fingerprints, determinism sweeps) runs under them.
 */

#ifndef HSU_COMMON_AUDIT_HH
#define HSU_COMMON_AUDIT_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hsu::audit
{

/** Classes of nondeterminism the audit tracks. */
enum class NondetKind : std::uint8_t
{
    UnorderedIteration, //!< hash-ordered container feeding output
    FloatAccumulation,  //!< float sum whose order could vary
    Rng,                //!< random draws
};

/** One registered nondeterminism source. */
struct NondetSource
{
    NondetKind kind;
    const char *site;       //!< "file.cc:member" style location
    const char *discipline; //!< why outputs stay deterministic
};

/** True in HSU_AUDIT builds (contracts checked), false otherwise. */
constexpr bool
enabled()
{
#ifdef HSU_AUDIT
    return true;
#else
    return false;
#endif
}

/**
 * Register a nondeterminism source (call at static initialization via
 * HSU_AUDIT_NONDET_SOURCE). Under HSU_AUDIT a null or empty discipline
 * panics immediately — an undisciplined source is a build error of the
 * audit mode, not a runtime roll of the dice.
 * @return a dense source id (index into sources()).
 */
std::size_t registerNondetSource(NondetKind kind, const char *site,
                                 const char *discipline);

/** All registered sources, in registration order. */
const std::vector<NondetSource> &sources();

/** Sources of one kind (test / report convenience). */
std::vector<NondetSource> sourcesOfKind(NondetKind kind);

/** True if a source with this exact site string is registered. */
bool hasSource(const char *site);

/**
 * Count a dynamic use of a registered source. Cheap (one relaxed
 * atomic add) but still only worth calling from non-per-cycle paths;
 * useCount() lets tests assert a source actually runs under audit.
 */
void noteUse(std::size_t id);

/** Dynamic use count of a source (0 if never noted). */
std::uint64_t useCount(std::size_t id);

/** Key extraction for map entries (pair) and set entries (value). */
template <typename K, typename V>
const K &
keyOf(const std::pair<const K, V> &entry)
{
    return entry.first;
}

template <typename K>
const K &
keyOf(const K &entry)
{
    return entry;
}

/**
 * Deterministically ordered key copy of an associative container —
 * the sanctioned way to iterate an unordered map/set into anything
 * that feeds stats, traces, or printed tables.
 */
template <typename Container>
std::vector<typename Container::key_type>
orderedKeys(const Container &c)
{
    std::vector<typename Container::key_type> keys;
    keys.reserve(c.size());
    for (const auto &entry : c) // audit[unordered-iteration]: sorted below
        keys.push_back(keyOf(entry));
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace hsu::audit

/**
 * Register a nondeterminism source at static initialization. Place at
 * namespace scope in the .cc that owns the source:
 *
 *   HSU_AUDIT_NONDET_SOURCE(kMshrAudit,
 *       hsu::audit::NondetKind::UnorderedIteration, "cache.cc:mshr_",
 *       "key-lookup only; never iterated into stats or traces");
 */
#define HSU_AUDIT_NONDET_SOURCE(var, kind, site, discipline)                \
    const std::size_t var =                                                 \
        ::hsu::audit::registerNondetSource(kind, site, discipline)

#endif // HSU_COMMON_AUDIT_HH
