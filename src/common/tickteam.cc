#include "common/tickteam.hh"

#include "common/logging.hh"

namespace hsu
{
namespace
{

/**
 * Spin briefly before sleeping on the futex: rounds arrive every few
 * microseconds while a simulation is hot, and a wait/notify round trip
 * costs more than the spin. The bound keeps idle teams (caller busy in
 * a long serial phase) from burning a core for more than ~a scheduler
 * quantum's worth of checks.
 */
constexpr int kSpinRounds = 4096;

} // namespace

TickTeam::TickTeam(unsigned num_threads)
{
    if (num_threads < 2)
        return;
    workers_.reserve(num_threads - 1);
    for (unsigned i = 1; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

TickTeam::~TickTeam()
{
    stop_.store(true, std::memory_order_relaxed);
    round_.fetch_add(1, std::memory_order_release);
    round_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
TickTeam::runChunk(const ChunkFn &fn, std::size_t count,
                   std::size_t worker, std::size_t total)
{
    const std::size_t begin = count * worker / total;
    const std::size_t end = count * (worker + 1) / total;
    if (begin < end)
        fn(begin, end);
}

void
TickTeam::run(const ChunkFn &fn, std::size_t count)
{
    if (workers_.empty()) {
        if (count > 0)
            fn(0, count);
        return;
    }
    fn_ = &fn;
    count_ = count;
    const std::uint64_t round =
        round_.fetch_add(1, std::memory_order_release) + 1;
    round_.notify_all();

    // Worker 0's chunk runs here, overlapping the others. A throw
    // must not escape before the barrier — the next round's fn_/count_
    // would race with workers still in this one — so it is stashed
    // like a worker's and rethrown below.
    try {
        runChunk(fn, count, 0, numThreads());
    } catch (...) {
        std::lock_guard lock(errorMutex_);
        if (!error_)
            error_ = std::current_exception();
    }

    // Wait for the cumulative arrival count this round implies. The
    // acquire load pairs with the workers' release fetch_add, making
    // their chunk writes visible before run() returns.
    const std::uint64_t target =
        round * static_cast<std::uint64_t>(workers_.size());
    std::uint64_t seen = arrived_.load(std::memory_order_acquire);
    for (int spins = 0; seen < target; ) {
        if (++spins < kSpinRounds) {
            seen = arrived_.load(std::memory_order_acquire);
        } else {
            arrived_.wait(seen, std::memory_order_acquire);
            seen = arrived_.load(std::memory_order_acquire);
            spins = 0;
        }
    }
    fn_ = nullptr;

    std::exception_ptr err;
    {
        std::lock_guard lock(errorMutex_);
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
TickTeam::workerLoop(std::size_t index)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spin briefly for the next round, then sleep on the counter.
        std::uint64_t current = round_.load(std::memory_order_acquire);
        for (int spins = 0; current == seen; ) {
            if (++spins < kSpinRounds) {
                current = round_.load(std::memory_order_acquire);
            } else {
                round_.wait(seen, std::memory_order_acquire);
                current = round_.load(std::memory_order_acquire);
                spins = 0;
            }
        }
        seen = current;
        if (stop_.load(std::memory_order_relaxed))
            return;

        try {
            runChunk(*fn_, count_, index, numThreads());
        } catch (...) {
            std::lock_guard lock(errorMutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        arrived_.fetch_add(1, std::memory_order_release);
        arrived_.notify_one();
    }
}

} // namespace hsu
