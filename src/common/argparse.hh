/**
 * @file
 * One argv parser for every tool and bench binary.
 *
 * Historically the bench fleet was configured purely through
 * environment knobs (HSU_QUICK, HSU_JOBS, ...) read ad hoc at scattered
 * getenv() sites, and each new tool grew its own flag loop. ArgParser
 * unifies both: a flag may be backed by an environment variable, in
 * which case the environment supplies the default and the command line
 * overrides it — and env-backed flags write their parsed value back
 * through setenv(), so the existing getenv() plumbing deep in the
 * runner/threadpool observes `--quick` / `--jobs N` exactly as if the
 * variable had been exported.
 *
 * Usage:
 *   ArgParser args("trace_lint", "static trace/IR linter");
 *   bool quick = false;
 *   args.envFlag(quick, "quick", "HSU_QUICK", "quarter-size queries");
 *   std::string algo = "all";
 *   args.opt(algo, "algo", "ggnn|flann|bvhnn|btree|rtindex|all");
 *   if (!args.parse(argc, argv))
 *       return args.exitCode();
 */

#ifndef HSU_COMMON_ARGPARSE_HH
#define HSU_COMMON_ARGPARSE_HH

#include <string>
#include <vector>

namespace hsu
{

class ArgParser
{
  public:
    ArgParser(std::string program, std::string description);

    /** Boolean flag: `--name` sets it true, `--no-name` false. */
    void flag(bool &out, const std::string &name, const std::string &help);

    /**
     * Env-backed boolean flag: a set, non-empty, non-"0" environment
     * variable makes the default true; `--name`/`--no-name` override
     * and write the result back to the environment.
     */
    void envFlag(bool &out, const std::string &name,
                 const std::string &env_var, const std::string &help);

    /** Value options: `--name V` or `--name=V`. */
    void opt(std::string &out, const std::string &name,
             const std::string &help);
    void opt(unsigned &out, const std::string &name,
             const std::string &help);
    void opt(double &out, const std::string &name,
             const std::string &help);

    /**
     * Env-backed unsigned option (e.g. --jobs / HSU_JOBS): the
     * environment supplies the default, the command line overrides,
     * and the parsed value is written back to the environment.
     */
    void envOpt(unsigned &out, const std::string &name,
                const std::string &env_var, const std::string &help);

    /**
     * Env-backed string option (e.g. --policy / HSU_BATCH_POLICY): the
     * environment supplies the default, the command line overrides,
     * and the parsed value is written back to the environment (an
     * empty value unsets the variable).
     */
    void envOpt(std::string &out, const std::string &name,
                const std::string &env_var, const std::string &help);

    /**
     * Parse argv. On `--help` prints usage and returns false with exit
     * code 0; on a parse error prints the error + usage to stderr and
     * returns false with exit code 64 (EX_USAGE). On success returns
     * true after pushing env-backed values into the environment.
     */
    bool parse(int argc, const char *const *argv);

    /** Exit code to use when parse() returned false. */
    int exitCode() const { return exitCode_; }

    /** Render the usage text (tests / --help). */
    std::string usage() const;

  private:
    enum class Type
    {
        Flag,
        String,
        Unsigned,
        Double,
    };

    struct Option
    {
        Type type;
        std::string name;
        std::string envVar; //!< empty: not env-backed
        std::string help;
        void *target;
    };

    Option *find(const std::string &name);
    void applyEnvDefaults();
    void exportEnvValues() const;

    std::string program_;
    std::string description_;
    std::vector<Option> options_;
    int exitCode_ = 0;
};

} // namespace hsu

#endif // HSU_COMMON_ARGPARSE_HH
