/**
 * @file
 * Fixed-size worker pool for fanning independent simulations across
 * cores.
 *
 * Design notes:
 *  - std::jthread workers woken through a condition_variable_any keyed
 *    on the pool's stop_token, so shutdown needs no sentinel tasks.
 *  - The task queue is bounded (a small multiple of the worker count);
 *    submit() blocks when the queue is full, which keeps memory flat
 *    when a caller enqueues thousands of jobs.
 *  - submit() returns a std::future of the callable's result; an
 *    exception thrown by the task is captured and rethrown at .get().
 *  - The destructor stops accepting work, finishes every task already
 *    queued, then joins — pending futures never dangle.
 */

#ifndef HSU_COMMON_THREADPOOL_HH
#define HSU_COMMON_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hsu
{

/**
 * Number of simulation jobs to run concurrently: the HSU_JOBS
 * environment variable when set to a positive integer, otherwise
 * std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultJobs();

/** Bounded-queue fixed-size thread pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 -> defaultJobs()
     * @param queue_factor queue bound = queue_factor * worker count
     */
    explicit ThreadPool(unsigned num_threads = 0,
                        unsigned queue_factor = 4);

    /** Drains queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p fn; blocks while the queue is at its bound. The
     * returned future carries the result or the thrown exception.
     */
    template <typename Fn>
    std::future<std::invoke_result_t<Fn>>
    submit(Fn fn)
    {
        using Result = std::invoke_result_t<Fn>;
        // packaged_task is move-only and std::function requires
        // copyable callables, so share it.
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::move(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void enqueue(std::function<void()> task);
    void workerLoop(std::stop_token stop);

    std::mutex mutex_;
    std::condition_variable_any taskReady_;  //!< queue gained a task
    std::condition_variable spaceFree_;      //!< queue lost a task
    std::deque<std::function<void()>> queue_;
    std::size_t queueBound_;
    bool accepting_ = true;
    std::vector<std::jthread> workers_;
};

} // namespace hsu

#endif // HSU_COMMON_THREADPOOL_HH
