/**
 * @file
 * Lightweight named statistics registry.
 *
 * Simulator components register scalar counters and distributions in a
 * StatGroup; experiment harnesses read them back by name to build the
 * rows of each reproduced table/figure. The serving subsystem records
 * per-request latencies into log-bucketed Histograms for percentile
 * (p50/p95/p99) reporting.
 */

#ifndef HSU_COMMON_STATS_HH
#define HSU_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hsu
{

/** A single scalar statistic (counter or accumulator). */
class Stat
{
  public:
    Stat() = default;

    Stat &operator++() { value_ += 1.0; return *this; }
    Stat &operator+=(double v) { value_ += v; return *this; }
    Stat &operator-=(double v) { value_ -= v; return *this; }

    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Log-bucketed distribution of positive samples.
 *
 * Buckets are geometric: sample v lands in bucket
 * floor(log10(v) * bucketsPerDecade), so relative resolution is a
 * constant factor 10^(1/bucketsPerDecade) across the whole range
 * (latencies span queue-empty microseconds to saturated milliseconds).
 * Non-positive samples are counted in a dedicated underflow bucket.
 * Storage is a sparse map, so memory tracks the occupied dynamic range,
 * not its extent.
 *
 * percentile(p) uses the nearest-rank definition: the smallest sample
 * value s such that at least ceil(p/100 * count) samples are <= s,
 * resolved to the geometric midpoint of its bucket and clamped to the
 * exact observed [min, max]. The estimate is therefore within a factor
 * 10^(1/bucketsPerDecade) of the exact order statistic; the top rank
 * (p = 100) reports the exact observed maximum.
 */
class Histogram
{
  public:
    /** @param buckets_per_decade bucket resolution (default: ~15% wide) */
    explicit Histogram(unsigned buckets_per_decade = 16);

    /** Record one sample (non-positive values hit the underflow bucket). */
    void add(double v);

    /** Fold another histogram in. @pre same bucketsPerDecade. */
    void merge(const Histogram &other);

    /** Total samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Samples in the underflow (v <= 0) bucket. */
    std::uint64_t underflow() const { return underflow_; }

    /** Exact smallest positive sample (0 when none). */
    double min() const { return count_ > underflow_ ? min_ : 0.0; }

    /** Exact largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const
    { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

    /** Nearest-rank percentile estimate; @p p in [0, 100]. */
    double percentile(double p) const;

    unsigned bucketsPerDecade() const { return bucketsPerDecade_; }

    /** Lower/upper value bounds of the bucket holding @p v (tests). */
    double bucketLo(double v) const;
    double bucketHi(double v) const;

    /** Reset to empty. */
    void reset();

  private:
    int bucketIndex(double v) const;

    unsigned bucketsPerDecade_;
    std::map<int, std::uint64_t> buckets_; //!< positive samples only
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Hierarchical collection of named statistics.
 *
 * Names are dotted paths ("sm0.l1d.accesses"). Components hold references
 * to Stat objects they bump on the fast path; lookup by name is only done
 * at registration and reporting time.
 */
class StatGroup
{
  public:
    /** Get-or-create the scalar stat with the given dotted name. */
    Stat &scalar(const std::string &name);

    /** Read a scalar's value; returns 0 for unknown names. */
    double get(const std::string &name) const;

    /** True if a stat with this exact name exists. */
    bool has(const std::string &name) const;

    /** Sum of all stats whose names match "prefix*". */
    double sumPrefix(const std::string &prefix) const;

    /** Reset every stat to zero. */
    void resetAll();

    /** Snapshot of all (name, value) pairs in name order. */
    std::vector<std::pair<std::string, double>> dump() const;

    /** Get-or-create the histogram with the given dotted name. */
    Histogram &histogram(const std::string &name);

    /** Read-only histogram lookup; nullptr for unknown names. */
    const Histogram *findHistogram(const std::string &name) const;

  private:
    std::map<std::string, Stat> stats_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace hsu

#endif // HSU_COMMON_STATS_HH
