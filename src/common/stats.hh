/**
 * @file
 * Lightweight named statistics registry.
 *
 * Simulator components register scalar counters and distributions in a
 * StatGroup; experiment harnesses read them back by name to build the
 * rows of each reproduced table/figure.
 */

#ifndef HSU_COMMON_STATS_HH
#define HSU_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hsu
{

/** A single scalar statistic (counter or accumulator). */
class Stat
{
  public:
    Stat() = default;

    Stat &operator++() { value_ += 1.0; return *this; }
    Stat &operator+=(double v) { value_ += v; return *this; }
    Stat &operator-=(double v) { value_ -= v; return *this; }

    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Hierarchical collection of named statistics.
 *
 * Names are dotted paths ("sm0.l1d.accesses"). Components hold references
 * to Stat objects they bump on the fast path; lookup by name is only done
 * at registration and reporting time.
 */
class StatGroup
{
  public:
    /** Get-or-create the scalar stat with the given dotted name. */
    Stat &scalar(const std::string &name);

    /** Read a scalar's value; returns 0 for unknown names. */
    double get(const std::string &name) const;

    /** True if a stat with this exact name exists. */
    bool has(const std::string &name) const;

    /** Sum of all stats whose names match "prefix*". */
    double sumPrefix(const std::string &prefix) const;

    /** Reset every stat to zero. */
    void resetAll();

    /** Snapshot of all (name, value) pairs in name order. */
    std::vector<std::pair<std::string, double>> dump() const;

  private:
    std::map<std::string, Stat> stats_;
};

} // namespace hsu

#endif // HSU_COMMON_STATS_HH
