#include "common/threadpool.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace hsu
{

unsigned
defaultJobs()
{
    // The process-wide default that ArgParser::envOpt write-back sets;
    // audit[env-read]: reading it here keeps library code CLI-free
    if (const char *env = std::getenv("HSU_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        // Malformed values fall through to the hardware default rather
        // than silently serialising a bench fleet.
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned num_threads, unsigned queue_factor)
{
    const unsigned n = num_threads > 0 ? num_threads : defaultJobs();
    queueBound_ = static_cast<std::size_t>(n) *
                  std::max(1u, queue_factor);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        workers_.emplace_back(
            [this](std::stop_token stop) { workerLoop(stop); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        accepting_ = false;
    }
    for (auto &w : workers_)
        w.request_stop();
    taskReady_.notify_all();
    // jthread joins on destruction; workerLoop drains the queue before
    // honouring the stop request, so queued futures still complete.
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    std::unique_lock lock(mutex_);
    hsu_assert(accepting_, "submit() on a stopped ThreadPool");
    spaceFree_.wait(lock,
                    [this] { return queue_.size() < queueBound_; });
    queue_.push_back(std::move(task));
    lock.unlock();
    taskReady_.notify_one();
}

void
ThreadPool::workerLoop(std::stop_token stop)
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            if (!taskReady_.wait(lock, stop,
                                 [this] { return !queue_.empty(); })) {
                // Stop requested and the queue is empty: done.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        spaceFree_.notify_one();
        task(); // exceptions land in the packaged_task's future
    }
}

} // namespace hsu
