#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace hsu
{

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    hsu_assert(cells.size() == headers_.size(),
               "row arity ", cells.size(), " != header arity ",
               headers_.size(), " in table '", title_, "'");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << (fraction * 100.0) << "%";
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c], '-') << "  ";
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    os.flush();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace hsu
