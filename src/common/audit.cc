#include "common/audit.hh"

#include <mutex>
#include <string_view>

#include "common/logging.hh"

namespace hsu::audit
{

namespace
{

/**
 * Registration happens from static initializers across translation
 * units, so the registry guards itself with a function-local static
 * (initialized on first use, thread-safe since C++11) rather than a
 * namespace-scope global it could race with. All accessors lock: audit
 * bookkeeping is deliberately off the per-cycle path, so a mutex is
 * simpler than juggling atomics across a growing vector.
 */
struct Registry
{
    std::mutex mutex;
    std::vector<NondetSource> sources;
    std::vector<std::uint64_t> counts; //!< one per source
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

std::size_t
registerNondetSource(NondetKind kind, const char *site,
                     const char *discipline)
{
    if (enabled() && (discipline == nullptr || discipline[0] == '\0')) {
        hsu_panic("audit: nondeterminism source '",
                  site ? site : "(null)",
                  "' registered without a discipline — state how this "
                  "source keeps outputs bit-identical");
    }
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.sources.push_back(NondetSource{kind, site, discipline});
    r.counts.push_back(0);
    return r.sources.size() - 1;
}

const std::vector<NondetSource> &
sources()
{
    // Registration is static-init-time only, so handing out a
    // reference after main() starts is safe without the lock.
    return registry().sources;
}

std::vector<NondetSource>
sourcesOfKind(NondetKind kind)
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<NondetSource> out;
    for (const NondetSource &s : r.sources) {
        if (s.kind == kind)
            out.push_back(s);
    }
    return out;
}

bool
hasSource(const char *site)
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (const NondetSource &s : r.sources) {
        if (std::string_view(s.site) == site)
            return true;
    }
    return false;
}

void
noteUse(std::size_t id)
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    hsu_assert(id < r.counts.size(), "audit: unregistered source id ",
               id);
    ++r.counts[id];
}

std::uint64_t
useCount(std::size_t id)
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    return id < r.counts.size() ? r.counts[id] : 0;
}

} // namespace hsu::audit
