/**
 * @file
 * Cycle-barrier worker team for intra-simulation parallel ticking.
 *
 * A ThreadPool is the wrong shape for per-cycle fan-out: a simulated
 * cycle is microseconds of work, and queue+future traffic per cycle
 * would dominate it. TickTeam instead keeps W-1 resident workers
 * parked on an atomic round counter; the caller participates as
 * worker 0, so `run(fn, count)` costs one release store plus one
 * acquire wait per round, and a team of one thread degenerates to a
 * plain inline loop with no atomics at all.
 *
 * Memory-ordering contract (what the simulator's bit-identity proof
 * leans on): everything the caller wrote before run() happens-before
 * the workers' chunk execution, and everything the workers wrote in
 * their chunks happens-before run() returning. Both edges go through
 * round_/arrived_ release/acquire pairs, so the serial-phase writes
 * (memory-system commit) and the parallel-phase writes (per-SM state)
 * never race even though neither takes a lock.
 */

#ifndef HSU_COMMON_TICKTEAM_HH
#define HSU_COMMON_TICKTEAM_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hsu
{

/** Resident barrier team; the constructing thread is worker 0. */
class TickTeam
{
  public:
    /** Work for one round: process items [begin, end). */
    using ChunkFn = std::function<void(std::size_t begin,
                                       std::size_t end)>;

    /**
     * @param num_threads total workers including the caller; values
     *        < 2 build an empty team (run() executes inline).
     */
    explicit TickTeam(unsigned num_threads);

    /** Releases the workers and joins them. */
    ~TickTeam();

    TickTeam(const TickTeam &) = delete;
    TickTeam &operator=(const TickTeam &) = delete;

    /**
     * Partition [0, count) into contiguous per-worker chunks, run
     * them concurrently, and return once every chunk finished. The
     * caller runs its own chunk on this thread. An exception thrown
     * by any chunk is rethrown here (first one wins), after the
     * barrier — the team stays usable.
     */
    void run(const ChunkFn &fn, std::size_t count);

    /** Total worker count including the calling thread. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

  private:
    void workerLoop(std::size_t index);
    void runChunk(const ChunkFn &fn, std::size_t count,
                  std::size_t worker, std::size_t total);

    std::atomic<std::uint64_t> round_{0};   //!< bumped to start a round
    std::atomic<std::uint64_t> arrived_{0}; //!< lifetime chunk completions
    std::atomic<bool> stop_{false};
    const ChunkFn *fn_ = nullptr;   //!< valid for the current round only
    std::size_t count_ = 0;
    std::mutex errorMutex_;
    std::exception_ptr error_;
    std::vector<std::thread> workers_;
};

} // namespace hsu

#endif // HSU_COMMON_TICKTEAM_HH
