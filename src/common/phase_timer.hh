/**
 * @file
 * Pipeline-phase instrumentation for the emit-once / lower-many trace
 * pipeline.
 *
 * The trace pipeline has three phases — semantic emission (the
 * functional search kernel), lowering (IR -> executable trace), and
 * timing simulation — and the bench binaries report how wall-clock
 * splits across them (BENCH_pipeline.json, written by
 * bench::writePipelineReport). Each phase accumulates nanoseconds into
 * a process-global atomic, so the numbers are CPU-seconds summed over
 * every worker thread, not elapsed time; with HSU_JOBS workers a phase
 * can legitimately exceed the process wall-clock.
 *
 * The counters are monotone and lock-free: a ScopedPhaseTimer on the
 * stack of a hot path costs two steady_clock reads and one fetch_add.
 */

#ifndef HSU_COMMON_PHASE_TIMER_HH
#define HSU_COMMON_PHASE_TIMER_HH

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hsu
{

/** The three trace-pipeline phases. */
enum class PipelinePhase : unsigned
{
    Emit,     //!< functional kernel run + semantic trace construction
    Lower,    //!< lowerTrace(): semantic IR -> executable warp trace
    Simulate, //!< Gpu timing simulation of a lowered trace
};

constexpr unsigned kNumPipelinePhases = 3;

namespace detail
{

struct PhaseCounters
{
    std::atomic<std::uint64_t> nanos[kNumPipelinePhases]{};
    std::atomic<std::uint64_t> calls[kNumPipelinePhases]{};
    /** emitSemanticShared() requests served from the cache. */
    std::atomic<std::uint64_t> emitCacheHits{0};
};

inline PhaseCounters &
phaseCounters()
{
    static PhaseCounters counters;
    return counters;
}

} // namespace detail

/** RAII: accumulate the enclosing scope's wall time into @p phase. */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(PipelinePhase phase)
        : phase_(static_cast<unsigned>(phase)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

    ~ScopedPhaseTimer()
    {
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        auto &c = detail::phaseCounters();
        c.nanos[phase_].fetch_add(static_cast<std::uint64_t>(ns),
                                  std::memory_order_relaxed);
        c.calls[phase_].fetch_add(1, std::memory_order_relaxed);
    }

  private:
    unsigned phase_;
    std::chrono::steady_clock::time_point start_;
};

/** Record one emission request served from the semantic-trace cache. */
inline void
notePipelineCacheHit()
{
    detail::phaseCounters().emitCacheHits.fetch_add(
        1, std::memory_order_relaxed);
}

/** Snapshot of the pipeline counters. */
struct PipelinePhaseReport
{
    double emitSeconds = 0.0;
    double lowerSeconds = 0.0;
    double simulateSeconds = 0.0;
    std::uint64_t emitCalls = 0;     //!< actual (uncached) emissions
    std::uint64_t emitCacheHits = 0; //!< requests the cache absorbed
    std::uint64_t lowerCalls = 0;
    std::uint64_t simulateCalls = 0;
};

inline PipelinePhaseReport
pipelinePhaseReport()
{
    const auto &c = detail::phaseCounters();
    const auto secs = [&](PipelinePhase p) {
        return static_cast<double>(
                   c.nanos[static_cast<unsigned>(p)].load(
                       std::memory_order_relaxed)) *
               1e-9;
    };
    const auto calls = [&](PipelinePhase p) {
        return c.calls[static_cast<unsigned>(p)].load(
            std::memory_order_relaxed);
    };
    PipelinePhaseReport r;
    r.emitSeconds = secs(PipelinePhase::Emit);
    r.lowerSeconds = secs(PipelinePhase::Lower);
    r.simulateSeconds = secs(PipelinePhase::Simulate);
    r.emitCalls = calls(PipelinePhase::Emit);
    r.emitCacheHits = c.emitCacheHits.load(std::memory_order_relaxed);
    r.lowerCalls = calls(PipelinePhase::Lower);
    r.simulateCalls = calls(PipelinePhase::Simulate);
    return r;
}

/** Process peak resident set size in bytes (0 where unsupported). */
inline std::size_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::size_t>(ru.ru_maxrss); // bytes on macOS
#else
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024; // KiB on Linux
#endif
#else
    return 0;
#endif
}

} // namespace hsu

#endif // HSU_COMMON_PHASE_TIMER_HH
