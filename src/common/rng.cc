#include "common/rng.hh"

#include <cmath>

#include "common/audit.hh"

namespace hsu
{

namespace
{

// The one sanctioned RNG: every generator below is seeded from a
// workload key, so streams are bit-reproducible across runs, platforms
// and thread counts. tools/lint.py statically bans rand()/mt19937
// outside this file; the registration makes the discipline auditable.
[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kRngAudit, audit::NondetKind::Rng, "rng.cc:Rng",
    "xoshiro256** seeded from workload keys only; no global state, no "
    "time/address seeding, streams forked via split()");

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

float
Rng::nextFloat()
{
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * nextFloat();
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Lemire-style rejection-free bounded draw is overkill here; the
    // simple modulo bias is negligible for bound << 2^64 but we still
    // reject the tail to keep generated streams unbiased.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

float
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    float u, v, s;
    do {
        u = uniform(-1.0f, 1.0f);
        v = uniform(-1.0f, 1.0f);
        s = u * u + v * v;
    } while (s >= 1.0f || s == 0.0f);
    const float factor = std::sqrt(-2.0f * std::log(s) / s);
    spare_ = v * factor;
    haveSpare_ = true;
    return u * factor;
}

float
Rng::gaussian(float mean, float stddev)
{
    return mean + stddev * gaussian();
}

Rng
Rng::split()
{
    return Rng(next());
}

namespace
{

[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kDeriveSeedAudit, audit::NondetKind::Rng, "rng.cc:deriveSeed",
    "pure stateless function of (root, stream); both inputs pass a "
    "full splitmix64 avalanche so child families of adjacent roots "
    "never alias (no seed+i collisions); values pinned by "
    "tests/common/test_rng.cc");

} // namespace

std::uint64_t
deriveSeed(std::uint64_t root, std::uint64_t stream)
{
    // Mix the root to full avalanche first, then fold in a decorrelated
    // stream index and mix again. Simply seeding from root + stream
    // would make (r, i) and (r+1, i-1) collide exactly.
    std::uint64_t sm = root;
    const std::uint64_t mixed_root = splitmix64(sm);
    std::uint64_t sm2 =
        mixed_root ^
        (0x9e3779b97f4a7c15ULL * (stream ^ 0xd1b54a32d192ed03ULL));
    return splitmix64(sm2);
}

} // namespace hsu
