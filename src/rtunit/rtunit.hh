/**
 * @file
 * Timing model of the RT unit / Hierarchical Search Unit (Figure 4).
 *
 * One unit per SM, shared by the four sub-cores through a round-robin
 * dispatch arbiter (one warp instruction sequence accepted per cycle).
 * Dispatched instructions occupy a *warp buffer* entry while a FIFO
 * memory-access queue gathers each active thread's node operands from
 * the L1D (one access per cycle, time-shared with the LSU; same-line
 * requests are merged by the fetch engine — the CISC coalescing Fig 12
 * credits). Once gathered, the entry is scheduled into the unified
 * single-lane datapath: one thread-beat per cycle, 9-stage fixed-
 * latency pipeline, inactive lanes skipped. A result buffer writes
 * back to the register file when the whole warp instruction drains.
 *
 * Multi-beat accumulate sequences (Section IV-F) are modeled as one
 * warp-buffer entry that streams its beats through the datapath
 * back-to-back. This structurally enforces the paper's constraint that
 * no other warp's instructions enter the datapath between the first
 * accumulate beat and the final accumulate=0 beat, while letting the
 * other warp-buffer entries gather operands concurrently — the
 * memory-level parallelism the warp buffer exists to provide.
 */

#ifndef HSU_RTUNIT_RTUNIT_HH
#define HSU_RTUNIT_RTUNIT_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cycletime.hh"
#include "common/stats.hh"
#include "hsu/isa.hh"
#include "mem/cache.hh"
#include "sim/trace.hh"

namespace hsu
{

/** RT/HSU unit timing parameters. */
struct RtUnitParams
{
    unsigned warpBufferSize = 8;
    unsigned pipelineDepth = 9;
    /** Merge same-line operand fetches in the CISC fetch engine
     *  (disable only for the bench/ablation_unit study). */
    bool fetchMerging = true;
    std::string name = "rtu";
};

/** Per-SM RT/HSU unit timing model. */
class RtUnit
{
  public:
    RtUnit(RtUnitParams params, Cache &l1, StatGroup &stats);

    /**
     * Attempt to dispatch one warp HSU instruction (the full multi-
     * beat sequence) into a warp buffer entry.
     *
     * @param sub_core  issuing sub-core (arbiter granularity)
     * @param warp_id   SM-unique warp slot of the issuing warp
     * @param trace     the warp's trace (for lane addresses)
     * @param op        the HSU trace op
     * @param on_done   fires at final writeback
     * @return false when rejected (no free entry / arbiter busy)
     */
    bool tryDispatch(unsigned sub_core, unsigned warp_id,
                     const WarpTrace &trace, const TraceOp &op,
                     MemCompletion on_done, std::uint64_t now);

    /** True when the FIFO memory queue wants the L1 port. */
    bool wantsAccess() const { return !fifo_.empty(); }

    /** Advance one cycle. @p port_granted gives this unit the L1 port. */
    void tick(bool port_granted, std::uint64_t now);

    /** True when no entry, request, or in-flight result remains. */
    bool drained() const;

    /**
     * Earliest future cycle at which tick() could act on its own:
     * a writeback retiring, the datapath freeing (and possibly starting
     * a Ready entry), or an Issuing slot recycling. Gathering entries
     * wait on L1 completions, which are the L1's events, not ours.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account per-cycle stats for the provably-eventless gap
     * (now, next): the datapath stays busy (or not) throughout, so the
     * busy-cycle counter advances exactly as the un-skipped loop would.
     */
    void fastForwardStats(Cycle now, Cycle next);

    /**
     * Skipped-gap counterpart of the tryDispatch reject counter: the
     * SM's fast-forward calls this once per dispatch-blocked candidate
     * with the gap length, matching the rejection the per-cycle loop
     * would have recorded on each of those cycles (no free entry — a
     * free entry would have made the dispatch an event).
     */
    void
    accountSkippedDispatchRejects(double cycles)
    {
        statRejectNoEntry_ += cycles;
    }

    /** Busy-cycle count so far (datapath issuing). */
    double busyCycles() const { return statBusyCycles_.value(); }

  private:
    enum class EntryState : std::uint8_t
    {
        Free,
        Gathering, //!< waiting for node operands from memory
        Ready,     //!< operands gathered; awaiting the datapath
        Issuing    //!< thread-beats streaming into the datapath
    };

    struct Entry
    {
        EntryState state = EntryState::Free;
        unsigned warpId = 0;
        unsigned subCore = 0;
        std::uint64_t seq = 0;
        HsuMode mode = HsuMode::RayBox;
        unsigned beats = 1;
        unsigned lanes = 0;
        unsigned pendingLines = 0;
        std::uint64_t issueEndsAt = 0;
        MemCompletion onDone;
    };

    struct Writeback
    {
        std::uint64_t ready;
        std::uint64_t seq;
        HsuMode mode;
        unsigned beats;
        MemCompletion done;
        bool operator>(const Writeback &o) const
        {
            return ready != o.ready ? ready > o.ready : seq > o.seq;
        }
    };

    struct FifoReq
    {
        std::uint64_t line;
        /** >= 0: unmerged request owned by one entry (merging off). */
        std::int32_t entryIdx = -1;
    };

    unsigned freeEntries(std::uint64_t now) const;
    int findFreeEntry(std::uint64_t now);
    int selectReadyEntry() const;
    void startIssue(std::size_t idx, std::uint64_t now);
    void lineArrived(std::uint64_t line);

    RtUnitParams params_;
    Cache &l1_;
    std::vector<Entry> entries_;
    std::deque<FifoReq> fifo_;
    std::priority_queue<Writeback, std::vector<Writeback>,
                        std::greater<>> writebacks_;
    /** In-flight node-fetch lines -> entries waiting on them. */
    std::unordered_map<std::uint64_t, std::vector<std::size_t>>
        pendingLines_;

    // Dispatch arbiter state: one acceptance per cycle.
    std::uint64_t lastDispatchCycle_ = ~0ULL;
    bool dispatchedThisCycle_ = false;

    // Datapath occupancy.
    std::uint64_t datapathBusyUntil_ = 0;

    std::uint64_t seq_ = 0;

    Stat &statDispatched_;
    Stat &statCompleted_;
    Stat &statCompletedBox_;
    Stat &statCompletedTri_;
    Stat &statCompletedEuclid_;
    Stat &statCompletedAngular_;
    Stat &statCompletedKeyCmp_;
    Stat &statBusyCycles_;
    Stat &statMemRequests_;
    Stat &statRejectNoEntry_;
    Stat &statRejectArbiter_;
};

} // namespace hsu

#endif // HSU_RTUNIT_RTUNIT_HH
