#include "rtunit/rtunit.hh"

#include <algorithm>
#include <bit>

#include "common/audit.hh"
#include "common/logging.hh"

namespace hsu
{

namespace
{

[[maybe_unused]] HSU_AUDIT_NONDET_SOURCE(
    kPendingLinesAudit, audit::NondetKind::UnorderedIteration,
    "rtunit.cc:pendingLines_",
    "hash map accessed by fetched-line key only; waiter wakeup order "
    "is the entry-index vector, not hash order");

} // namespace

RtUnit::RtUnit(RtUnitParams params, Cache &l1, StatGroup &stats)
    : params_(std::move(params)), l1_(l1),
      entries_(params_.warpBufferSize),
      statDispatched_(stats.scalar(params_.name + ".dispatched")),
      statCompleted_(stats.scalar(params_.name + ".completed")),
      statCompletedBox_(stats.scalar(params_.name + ".completed_box")),
      statCompletedTri_(stats.scalar(params_.name + ".completed_tri")),
      statCompletedEuclid_(
          stats.scalar(params_.name + ".completed_euclid")),
      statCompletedAngular_(
          stats.scalar(params_.name + ".completed_angular")),
      statCompletedKeyCmp_(
          stats.scalar(params_.name + ".completed_keycmp")),
      statBusyCycles_(stats.scalar(params_.name + ".busy_cycles")),
      statMemRequests_(stats.scalar(params_.name + ".mem_requests")),
      statRejectNoEntry_(stats.scalar(params_.name + ".reject_no_entry")),
      statRejectArbiter_(stats.scalar(params_.name + ".reject_arbiter"))
{
    hsu_assert(params_.warpBufferSize >= 1, "warp buffer needs >= 1 entry");
}

unsigned
RtUnit::freeEntries(std::uint64_t now) const
{
    unsigned n = 0;
    for (const Entry &e : entries_) {
        if (e.state == EntryState::Free ||
            (e.state == EntryState::Issuing && e.issueEndsAt <= now)) {
            ++n;
        }
    }
    return n;
}

int
RtUnit::findFreeEntry(std::uint64_t now)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.state == EntryState::Free)
            return static_cast<int>(i);
        // An issuing entry's slot recycles once its last thread-beat
        // has entered the datapath.
        if (e.state == EntryState::Issuing && e.issueEndsAt <= now) {
            e.state = EntryState::Free;
            return static_cast<int>(i);
        }
    }
    return -1;
}

bool
RtUnit::tryDispatch(unsigned sub_core, unsigned warp_id,
                    const WarpTrace &trace, const TraceOp &op,
                    MemCompletion on_done, std::uint64_t now)
{
    if (now != lastDispatchCycle_) {
        lastDispatchCycle_ = now;
        dispatchedThisCycle_ = false;
    }
    if (dispatchedThisCycle_) {
        ++statRejectArbiter_;
        return false;
    }

    const int idx = findFreeEntry(now);
    if (idx < 0) {
        ++statRejectNoEntry_;
        return false;
    }

    Entry &e = entries_[static_cast<std::size_t>(idx)];
    e.state = EntryState::Gathering;
    e.warpId = warp_id;
    e.subCore = sub_core;
    e.seq = seq_++;
    e.mode = op.hsuMode;
    e.beats = op.count;
    e.lanes = std::popcount(op.activeMask);
    e.onDone = std::move(on_done);

    // Gather every beat's node operands: each active thread pushes its
    // requests into the FIFO memory access queue. The fetch engine
    // merges duplicate lines (across beats of one point, and across
    // threads sharing a node).
    std::vector<std::uint64_t> lines;
    lines.reserve(kWarpSize * op.count);
    const unsigned line_bytes = l1_.params().lineBytes;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(op.activeMask & (1u << lane)))
            continue;
        const std::uint64_t base = trace.laneAddr(op, lane);
        for (unsigned beat = 0; beat < op.count; ++beat) {
            const std::uint64_t addr =
                base + static_cast<std::uint64_t>(beat) *
                           op.bytesPerLane;
            const std::uint64_t first = addr / line_bytes;
            const std::uint64_t last =
                (addr + op.bytesPerLane - 1) / line_bytes;
            for (std::uint64_t l = first; l <= last; ++l)
                lines.push_back(l);
        }
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

    unsigned fresh = 0;
    e.pendingLines = static_cast<unsigned>(lines.size());
    if (e.pendingLines == 0) {
        e.state = EntryState::Ready; // degenerate: no active lanes
    } else if (params_.fetchMerging) {
        for (const auto line : lines) {
            auto [it, inserted] = pendingLines_.try_emplace(line);
            it->second.push_back(static_cast<std::size_t>(idx));
            if (inserted) {
                fifo_.push_back(FifoReq{line, -1});
                ++fresh;
            }
        }
    } else {
        // Ablation: every request pays its own L1 access.
        for (const auto line : lines) {
            fifo_.push_back(FifoReq{line, idx});
            ++fresh;
        }
    }

    dispatchedThisCycle_ = true;
    ++statDispatched_;
    statMemRequests_ += static_cast<double>(fresh);
    return true;
}

int
RtUnit::selectReadyEntry() const
{
    // Warp-buffer entries enter the datapath oldest-first among Ready
    // entries, and per warp strictly in dispatch order (a warp's
    // instruction results must retire in order).
    int best = -1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        if (e.state != EntryState::Ready)
            continue;
        bool oldest = true;
        for (std::size_t j = 0; j < entries_.size(); ++j) {
            const Entry &o = entries_[j];
            if (j == i || o.warpId != e.warpId)
                continue;
            if ((o.state == EntryState::Gathering ||
                 o.state == EntryState::Ready) &&
                o.seq < e.seq) {
                oldest = false;
                break;
            }
        }
        if (!oldest)
            continue;
        if (best < 0 ||
            e.seq < entries_[static_cast<std::size_t>(best)].seq) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

void
RtUnit::startIssue(std::size_t idx, std::uint64_t now)
{
    Entry &e = entries_[idx];
    // One thread-beat per cycle: lanes x beats cycles of single-lane
    // datapath occupancy for the whole (multi-beat) instruction.
    const unsigned issue_cycles =
        std::max(1u, e.lanes) * std::max(1u, e.beats);
    e.state = EntryState::Issuing;
    e.issueEndsAt = now + issue_cycles;
    datapathBusyUntil_ = e.issueEndsAt;
    // The slot recycles at issueEndsAt, so the writeback carries
    // everything it needs by value.
    writebacks_.push(Writeback{e.issueEndsAt + params_.pipelineDepth,
                               seq_++, e.mode, e.beats,
                               std::move(e.onDone)});
    e.onDone = nullptr;
}

void
RtUnit::tick(bool port_granted, std::uint64_t now)
{
    // 1. Retire writebacks whose results exit the pipeline. Each beat
    //    counts as one completed HSU instruction (the roofline metric).
    while (!writebacks_.empty() && writebacks_.top().ready <= now) {
        Writeback wb = std::move(const_cast<Writeback &>(
            writebacks_.top()));
        writebacks_.pop();
        statCompleted_ += static_cast<double>(wb.beats);
        switch (wb.mode) {
          case HsuMode::RayBox:
            statCompletedBox_ += static_cast<double>(wb.beats);
            break;
          case HsuMode::RayTri:
            statCompletedTri_ += static_cast<double>(wb.beats);
            break;
          case HsuMode::Euclid:
            statCompletedEuclid_ += static_cast<double>(wb.beats);
            break;
          case HsuMode::Angular:
            statCompletedAngular_ += static_cast<double>(wb.beats);
            break;
          case HsuMode::KeyCompare:
            statCompletedKeyCmp_ += static_cast<double>(wb.beats);
            break;
        }
        if (wb.done)
            wb.done();
    }

    // 2. Datapath: start streaming the next ready entry.
    if (datapathBusyUntil_ <= now) {
        const int pick = selectReadyEntry();
        if (pick >= 0)
            startIssue(static_cast<std::size_t>(pick), now);
    }
    if (datapathBusyUntil_ > now)
        ++statBusyCycles_;

    // 3. FIFO memory access queue: one L1 access per granted cycle.
    if (port_granted && !fifo_.empty()) {
        const FifoReq req = fifo_.front();
        const std::uint64_t byte_addr =
            req.line * l1_.params().lineBytes;
        MemCompletion done;
        if (req.entryIdx >= 0) {
            Entry *entry = &entries_[static_cast<std::size_t>(
                req.entryIdx)];
            done = [entry]() {
                if (--entry->pendingLines == 0 &&
                    entry->state == EntryState::Gathering) {
                    entry->state = EntryState::Ready;
                }
            };
        } else {
            const std::uint64_t line = req.line;
            done = [this, line]() { lineArrived(line); };
        }
        const CacheOutcome outcome =
            l1_.access(byte_addr, false, std::move(done), now);
        if (outcome != CacheOutcome::RejectMshrFull &&
            outcome != CacheOutcome::RejectQueueFull) {
            fifo_.pop_front();
        }
    }
}

void
RtUnit::lineArrived(std::uint64_t line)
{
    auto it = pendingLines_.find(line);
    hsu_assert(it != pendingLines_.end(),
               "node-fetch completion for unknown line");
    for (const std::size_t idx : it->second) {
        Entry &e = entries_[idx];
        if (--e.pendingLines == 0 && e.state == EntryState::Gathering)
            e.state = EntryState::Ready;
    }
    pendingLines_.erase(it);
}

Cycle
RtUnit::nextEventCycle(Cycle now) const
{
    // A queued node fetch retries for the L1 port every cycle, and the
    // dispatch arbiter frees next cycle after an acceptance (a warp it
    // rejected this cycle may dispatch then).
    if (!fifo_.empty())
        return now + 1;
    if (lastDispatchCycle_ == now && dispatchedThisCycle_)
        return now + 1;

    Cycle next = kNeverCycle;
    if (!writebacks_.empty())
        next = std::min(next, std::max(writebacks_.top().ready, now + 1));
    bool any_ready = false;
    for (const Entry &e : entries_) {
        if (e.state == EntryState::Issuing)
            next = std::min(next, std::max(e.issueEndsAt, now + 1));
        else if (e.state == EntryState::Ready)
            any_ready = true;
    }
    if (any_ready)
        next = std::min(next, std::max(datapathBusyUntil_, now + 1));
    if (datapathBusyUntil_ > now) {
        // Busy-cycle accounting changes when the datapath frees.
        next = std::min(next, datapathBusyUntil_);
    }
    return next;
}

void
RtUnit::fastForwardStats(Cycle now, Cycle next)
{
    // The skipped cycles (now, next) are eventless, so the datapath is
    // busy for all of them or none: when busy, datapathBusyUntil_ is
    // itself an event bounding `next` from above.
    if (datapathBusyUntil_ > now)
        statBusyCycles_ += static_cast<double>(next - now - 1);
}

bool
RtUnit::drained() const
{
    if (!fifo_.empty() || !writebacks_.empty() || !pendingLines_.empty())
        return false;
    for (const auto &e : entries_) {
        if (e.state == EntryState::Gathering ||
            e.state == EntryState::Ready) {
            return false;
        }
    }
    return true;
}

} // namespace hsu
