#include "serve/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsu::serve
{

std::string
toString(CacheMode mode)
{
    switch (mode) {
      case CacheMode::Exact:
        return "exact";
      case CacheMode::Tolerant:
        return "tolerant";
    }
    hsu_panic("unknown cache mode");
}

AnswerCache::AnswerCache(const AnswerCacheConfig &cfg, Algo algo,
                         DatasetId dataset, std::size_t pool_size,
                         ScheduleRecorder recorder)
    : cfg_(cfg), rec_(recorder)
{
    exactOnly_ =
        cfg_.mode == CacheMode::Exact || algo == Algo::Btree;
    if (cfg_.enabled() && !exactOnly_)
        codes_ = &serveQueryCoherenceKeys(dataset, pool_size);
    if (cfg_.enabled()) {
        std::uint64_t flags = 0;
        if (exactOnly_)
            flags |= kCacheExactOnly;
        if (algo == Algo::Btree)
            flags |= kCacheBtree;
        if (cfg_.mode == CacheMode::Tolerant)
            flags |= kCacheTolerantMode;
        rec_.record(0, ScheduleEventKind::CacheConfig, cfg_.capacity,
                    flags, cfg_.hitLatencyCycles);
    }
}

std::uint64_t
AnswerCache::keyFor(std::uint32_t query_id) const
{
    if (exactOnly_)
        return query_id;
    const unsigned shift = std::min(63u, 3u * cfg_.toleranceLevels);
    return (*codes_)[query_id] >> shift;
}

void
AnswerCache::touch(std::uint64_t key)
{
    const auto it = map_.find(key);
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
}

bool
AnswerCache::lookup(std::uint32_t query_id, Cycle now)
{
    if (!cfg_.enabled())
        return false;
    const std::uint64_t key = keyFor(query_id);
    if (map_.find(key) == map_.end()) {
        misses_ += 1;
        rec_.record(now, ScheduleEventKind::CacheMiss, query_id, key);
        return false;
    }
    hits_ += 1;
    touch(key);
    rec_.record(now, ScheduleEventKind::CacheHit, query_id, key);
    return true;
}

void
AnswerCache::insert(std::uint32_t query_id, Cycle now)
{
    if (!cfg_.enabled())
        return;
    const std::uint64_t key = keyFor(query_id);
    if (map_.find(key) != map_.end()) {
        touch(key);
        rec_.record(now, ScheduleEventKind::CacheInsert, query_id, key,
                    1);
        return;
    }
    insertions_ += 1;
    lru_.push_front(key);
    map_.emplace(key, lru_.begin());
    rec_.record(now, ScheduleEventKind::CacheInsert, query_id, key, 0);
    if (map_.size() > cfg_.capacity) {
        evictions_ += 1;
        const std::uint64_t victim = lru_.back();
        map_.erase(victim);
        lru_.pop_back();
        rec_.record(now, ScheduleEventKind::CacheEvict, victim);
    }
}

} // namespace hsu::serve
