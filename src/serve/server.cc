#include "serve/server.hh"

#include <algorithm>
#include <future>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "sim/gpu.hh"

namespace hsu::serve
{

namespace
{

/** One simulated GPU instance: idle, or busy until a resolved cycle. */
struct Instance
{
    bool busy = false;
    bool resolved = false;           //!< completion cycle known
    Cycle dispatchCycle = 0;
    Cycle readyCycle = 0;            //!< valid when resolved
    std::future<std::uint64_t> pendingCycles; //!< kernel sim in flight
    std::vector<Request> batch;
    bool degradedBatch = false;
};

} // namespace

Server::Server(Algo algo, DatasetId dataset, const ServerConfig &cfg)
    : algo_(algo), dataset_(dataset), cfg_(cfg)
{
    if (cfg_.numInstances == 0)
        hsu_fatal("server needs at least one GPU instance");
    if (cfg_.queryPoolSize == 0)
        hsu_fatal("server needs a non-empty query pool");
    if (cfg_.degrade.shedWater == 0)
        hsu_fatal("shedWater 0 would shed every request");
}

ServeReport
Server::run(const std::vector<Request> &requests)
{
    const KernelVariant variant = cfg_.gpu.rtUnitEnabled
                                      ? KernelVariant::Hsu
                                      : KernelVariant::Baseline;
    ThreadPool pool(cfg_.jobs);
    DynamicBatcher batcher(cfg_.batch);
    std::vector<Instance> instances(cfg_.numInstances);

    ServeReport report;
    report.offered = requests.size();

    std::size_t nextArrival = 0;
    Cycle now = 0;

    auto any_busy = [&] {
        return std::any_of(instances.begin(), instances.end(),
                           [](const Instance &i) { return i.busy; });
    };
    auto any_idle = [&] {
        return std::any_of(instances.begin(), instances.end(),
                           [](const Instance &i) { return !i.busy; });
    };

    // Submit one batch kernel simulation to the worker pool. The task
    // is a pure function of (batch contents, knobs, config), so the
    // returned cycle count is identical no matter which worker runs it
    // or when it resolves.
    auto dispatch = [&](Instance &inst, std::vector<Request> batch,
                        bool degraded) {
        std::vector<std::uint32_t> ids;
        ids.reserve(batch.size());
        for (const Request &r : batch)
            ids.push_back(r.queryId);
        const ServeKnobs knobs =
            degraded ? cfg_.degrade.degradedKnobs : ServeKnobs{};
        const GpuConfig gpu = cfg_.gpu;
        const Algo algo = algo_;
        const DatasetId dataset = dataset_;
        const std::uint32_t pool_size = cfg_.queryPoolSize;
        inst.pendingCycles = pool.submit(
            [gpu, algo, dataset, variant, ids, pool_size, knobs]() {
                const std::shared_ptr<const KernelTrace> trace =
                    emitBatchTrace(algo, dataset, variant, gpu.datapath,
                                   ids, pool_size, knobs);
                StatGroup stats;
                return simulateKernel(gpu, trace, stats).cycles;
            });
        inst.busy = true;
        inst.resolved = false;
        inst.dispatchCycle = now;
        inst.batch = std::move(batch);
        inst.degradedBatch = degraded;
    };

    // Fill every idle instance with a ready batch. All sims dispatched
    // here were submitted before anything blocks on them, so
    // concurrently-busy instances really simulate concurrently.
    auto dispatch_ready = [&] {
        for (Instance &inst : instances) {
            if (inst.busy)
                continue;
            if (!batcher.batchReady(now))
                break;
            const bool degraded =
                batcher.pending() >= cfg_.degrade.highWater;
            std::vector<Request> expired;
            std::vector<Request> batch = batcher.popBatch(now, expired);
            report.shedExpired += expired.size();
            if (batch.empty())
                continue; // everything pending had expired
            report.batches += 1;
            report.batchSize.add(static_cast<double>(batch.size()));
            if (degraded)
                report.degraded += batch.size();
            for (const Request &r : batch) {
                report.queueWaitCycles.add(
                    static_cast<double>(now - r.arrivalCycle));
            }
            dispatch(inst, std::move(batch), degraded);
        }
    };

    // Resolve in-flight completion times. Blocking on the first future
    // lets every other in-flight simulation keep running in the pool.
    auto resolve_busy = [&] {
        for (Instance &inst : instances) {
            if (!inst.busy || inst.resolved)
                continue;
            const std::uint64_t kernel_cycles =
                inst.pendingCycles.get();
            inst.readyCycle = inst.dispatchCycle +
                              cfg_.launchOverheadCycles + kernel_cycles;
            inst.resolved = true;
        }
    };

    while (nextArrival < requests.size() || batcher.pending() > 0 ||
           any_busy()) {
        dispatch_ready();
        resolve_busy();

        // Batch formation may have drained the queue purely through
        // deadline expiry; nothing is left to schedule then.
        if (nextArrival >= requests.size() && batcher.pending() == 0 &&
            !any_busy()) {
            break;
        }

        // Next event: an arrival, a batch completion, or the batcher's
        // age trigger (only actionable while an instance sits idle).
        Cycle next = kNeverCycle;
        if (nextArrival < requests.size())
            next = std::min(next, requests[nextArrival].arrivalCycle);
        for (const Instance &inst : instances) {
            if (inst.busy)
                next = std::min(next, inst.readyCycle);
        }
        if (any_idle())
            next = std::min(next, batcher.nextForceCycle());
        hsu_assert(next != kNeverCycle, "server wedged at cycle ", now);
        now = std::max(now, next);

        // Completions first (frees instances and bounds the queue),
        // in instance order for a deterministic histogram fill.
        for (Instance &inst : instances) {
            if (!inst.busy || inst.readyCycle > now)
                continue;
            for (const Request &r : inst.batch) {
                report.latencyCycles.add(
                    static_cast<double>(inst.readyCycle -
                                        r.arrivalCycle));
            }
            report.completed += inst.batch.size();
            report.lastCompletionCycle =
                std::max(report.lastCompletionCycle, inst.readyCycle);
            inst.busy = false;
            inst.batch.clear();
        }

        // Then admissions up to the current cycle.
        while (nextArrival < requests.size() &&
               requests[nextArrival].arrivalCycle <= now) {
            const Request &req = requests[nextArrival++];
            hsu_assert(req.queryId < cfg_.queryPoolSize,
                       "request query id outside the serving pool");
            if (batcher.pending() >= cfg_.degrade.shedWater) {
                report.shedAdmission += 1;
                continue;
            }
            report.admitted += 1;
            batcher.push(req);
        }
    }

    return report;
}

} // namespace hsu::serve
