#include "serve/server.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace hsu::serve
{

Server::Server(Algo algo, DatasetId dataset, const ServerConfig &cfg)
    : algo_(algo), dataset_(dataset), cfg_(cfg)
{
    if (cfg_.numInstances == 0)
        hsu_fatal("server needs at least one GPU instance");
    if (cfg_.queryPoolSize == 0)
        hsu_fatal("server needs a non-empty query pool");
    if (cfg_.pipeline.degrade.shedWater == 0)
        hsu_fatal("shedWater 0 would shed every request");
}

ServeReport
Server::run(const std::vector<Request> &requests)
{
    const KernelVariant variant = cfg_.gpu.rtUnitEnabled
                                      ? KernelVariant::Hsu
                                      : KernelVariant::Baseline;
    ThreadPool pool(cfg_.jobs);
    // Single-lane server: every schedule event records as lane 0, all
    // from this event-loop thread (pool tasks never record).
    const ScheduleRecorder rec(cfg_.scheduleLog, 0);
    QueryPipeline pipeline(cfg_.pipeline, algo_, dataset_,
                           cfg_.queryPoolSize, rec);

    // Every instance shares one emitter binding this workload's batch
    // traces — a pure, thread-safe function of (ids, knobs).
    const GpuConfig gpu = cfg_.gpu;
    const Algo algo = algo_;
    const DatasetId dataset = dataset_;
    const std::uint32_t pool_size = cfg_.queryPoolSize;
    const BatchTraceEmitter emitter =
        [gpu, algo, dataset, variant, pool_size](
            const std::vector<std::uint32_t> &ids,
            const ServeKnobs &knobs) {
            return emitBatchTrace(algo, dataset, variant, gpu.datapath,
                                  ids, pool_size, knobs);
        };
    std::vector<BatchExecutor> instances;
    instances.reserve(cfg_.numInstances);
    for (unsigned i = 0; i < cfg_.numInstances; ++i) {
        instances.emplace_back(cfg_.gpu, cfg_.launchOverheadCycles,
                               cfg_.pipeline.degrade.degradedKnobs,
                               emitter, rec);
    }

    ServeReport report;
    report.offered = requests.size();
    SimTotals totals;

    std::size_t nextArrival = 0;
    Cycle now = 0;

    auto any_busy = [&] {
        return std::any_of(
            instances.begin(), instances.end(),
            [](const BatchExecutor &i) { return i.busy(); });
    };
    auto any_idle = [&] {
        return std::any_of(
            instances.begin(), instances.end(),
            [](const BatchExecutor &i) { return !i.busy(); });
    };

    // Fill every idle instance with a ready batch. All sims dispatched
    // here were submitted before anything blocks on them, so
    // concurrently-busy instances really simulate concurrently.
    auto dispatch_ready = [&] {
        for (BatchExecutor &inst : instances) {
            if (inst.busy())
                continue;
            if (!pipeline.batchReady(now))
                break;
            FormedBatch formed = pipeline.formBatch(
                now, report.queueWaitCycles, report.batchSize);
            if (formed.requests.empty())
                continue; // everything pending had expired
            inst.dispatch(pool, now, std::move(formed));
        }
    };

    // Resolve in-flight completion times, in instance order: blocking
    // on the first future lets every other in-flight simulation keep
    // running in the pool.
    auto resolve_busy = [&] {
        for (BatchExecutor &inst : instances)
            inst.resolve(totals);
    };

    while (nextArrival < requests.size() || pipeline.pending() > 0 ||
           any_busy()) {
        dispatch_ready();
        resolve_busy();

        // Batch formation may have drained the queue purely through
        // deadline expiry; nothing is left to schedule then.
        if (nextArrival >= requests.size() &&
            pipeline.pending() == 0 && !any_busy()) {
            break;
        }

        // Next event: an arrival, a batch completion, or the queue's
        // age trigger (only actionable while an instance sits idle).
        Cycle next = kNeverCycle;
        if (nextArrival < requests.size())
            next = std::min(next, requests[nextArrival].arrivalCycle);
        for (const BatchExecutor &inst : instances) {
            if (inst.busy())
                next = std::min(next, inst.readyCycle());
        }
        if (any_idle())
            next = std::min(next, pipeline.nextForceCycle());
        hsu_assert(next != kNeverCycle, "server wedged at cycle ", now);
        now = std::max(now, next);

        // Completions first (frees instances and bounds the queue),
        // in instance order for a deterministic histogram fill.
        for (BatchExecutor &inst : instances) {
            if (!inst.busy() || inst.readyCycle() > now)
                continue;
            for (const Request &r : inst.batch()) {
                report.latencyCycles.add(
                    static_cast<double>(inst.readyCycle() -
                                        r.arrivalCycle));
            }
            report.completed += inst.batch().size();
            report.lastCompletionCycle =
                std::max(report.lastCompletionCycle, inst.readyCycle());
            pipeline.recordServed(inst.batch(), inst.degraded(),
                                  inst.readyCycle());
            inst.finish();
        }

        // Then admissions up to the current cycle.
        while (nextArrival < requests.size() &&
               requests[nextArrival].arrivalCycle <= now) {
            const Request &req = requests[nextArrival++];
            hsu_assert(req.queryId < cfg_.queryPoolSize,
                       "request query id outside the serving pool");
            if (pipeline.admit(req) == Admission::CacheHit) {
                const Cycle done =
                    req.arrivalCycle +
                    cfg_.pipeline.cache.hitLatencyCycles;
                report.completed += 1;
                report.latencyCycles.add(
                    static_cast<double>(done - req.arrivalCycle));
                report.lastCompletionCycle =
                    std::max(report.lastCompletionCycle, done);
            }
        }
    }

    const PipelineStats &sched = pipeline.stats();
    report.admitted = sched.admitted;
    report.shedAdmission = sched.shedAdmission;
    report.shedExpired = sched.shedExpired;
    report.degraded = sched.degraded;
    report.batches = sched.batches;
    report.cacheHits = sched.cacheHits;
    report.kernelCycles = totals.kernelCycles;
    report.smCycles = totals.smCycles;
    report.l1Accesses = totals.l1Accesses;
    report.l1Misses = totals.l1Misses;
    report.rtuBusyCycles = totals.rtuBusyCycles;
    return report;
}

} // namespace hsu::serve
