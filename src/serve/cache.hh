/**
 * @file
 * Deterministic LRU answer cache for the serving frontend.
 *
 * Serving streams are skewed (serve/arrivals models Zipf query
 * popularity); a small cache in front of the scheduler answers repeat
 * queries in a fixed lookup latency instead of a queue + kernel
 * launch. Because every answer in this model is a pure function of
 * (algo, dataset, query), the cache only has to track KEYS — a hit is
 * correct by construction in Exact mode, and "close enough" by policy
 * in Tolerant mode:
 *
 *  - Exact: the key is the query id; a hit returns precisely the
 *    cached query's answer.
 *  - Tolerant: point queries map to their Morton code
 *    (serveQueryCoherenceKeys) truncated by 3 bits per tolerance
 *    level — queries landing in the same octree cell share an answer,
 *    trading recall for hit rate. B+tree lookups are exact values, so
 *    Keys datasets always use Exact keys regardless of mode.
 *
 * The replacement order is a pure function of the lookup/insert
 * sequence (std::list recency chain, no pointer ordering), so cache
 * behavior is bit-identical across runs and HSU_JOBS settings.
 */

#ifndef HSU_SERVE_CACHE_HH
#define HSU_SERVE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/schedule_log.hh"
#include "common/cycletime.hh"
#include "search/runner.hh"

namespace hsu::serve
{

/** Hit-key semantics. */
enum class CacheMode : std::uint8_t
{
    Exact,    //!< hit only on the identical query id
    Tolerant, //!< hit on any query in the same Morton cell
};

std::string toString(CacheMode mode);

/** Answer-cache knobs. */
struct AnswerCacheConfig
{
    /** Cached answers held; 0 disables the cache entirely. */
    std::size_t capacity = 0;
    /** Frontend lookup + answer-copy cost charged to a hit. */
    Cycle hitLatencyCycles = 2'000;
    CacheMode mode = CacheMode::Exact;
    /** Tolerant: Morton bits dropped per key = 3 x this (one octree
     *  refinement level each). */
    unsigned toleranceLevels = 6;
    /** Also fill the cache from degraded (reduced-quality) answers. */
    bool cacheDegraded = false;

    bool
    enabled() const
    {
        return capacity > 0;
    }
};

/** Fixed-capacity LRU set of answered query keys. */
class AnswerCache
{
  public:
    AnswerCache(const AnswerCacheConfig &cfg, Algo algo,
                DatasetId dataset, std::size_t pool_size,
                ScheduleRecorder recorder = {});

    /**
     * Probe for @p query_id's key: a hit refreshes its recency and
     * returns true. Counts one hit or miss; a disabled cache returns
     * false without counting. @p now stamps the schedule-log event.
     */
    bool lookup(std::uint32_t query_id, Cycle now = 0);

    /** Record @p query_id's answer, evicting the LRU key at capacity.
     *  Re-inserting a resident key only refreshes its recency.
     *  @p now stamps the schedule-log events. */
    void insert(std::uint32_t query_id, Cycle now = 0);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t insertions() const { return insertions_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t size() const { return map_.size(); }
    const AnswerCacheConfig &config() const { return cfg_; }

  private:
    /** The cache key of one query id under (mode, algo). */
    std::uint64_t keyFor(std::uint32_t query_id) const;

    /** Move a resident key to most-recently-used. */
    void touch(std::uint64_t key);

    AnswerCacheConfig cfg_;
    ScheduleRecorder rec_;
    bool exactOnly_ = true; //!< Exact mode, or a Keys (B+tree) dataset
    /** Tolerant point queries: per-id coherence keys (borrowed from
     *  the process-wide memoized table; null when exactOnly_). */
    const std::vector<std::uint64_t> *codes_ = nullptr;

    std::list<std::uint64_t> lru_; //!< front = most recent
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        map_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace hsu::serve

#endif // HSU_SERVE_CACHE_HH
