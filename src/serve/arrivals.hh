/**
 * @file
 * Open-loop request arrival processes for the query-serving subsystem.
 *
 * The offline benches replay pre-batched query sets (closed loop); the
 * serving model instead draws requests from a seeded stochastic arrival
 * process on the simulated clock, so offered load is independent of
 * service progress — the regime where queueing delay and saturation
 * knees exist. Two processes are modeled:
 *
 *  - Poisson: i.i.d. exponential inter-arrival gaps at a fixed rate.
 *  - Bursty: a two-state Markov-modulated Poisson process (MMPP-2);
 *    exponential sojourns in a "calm" and a "burst" state whose rates
 *    are derived so the long-run mean equals the configured rate.
 *
 * Generation is a pure function of the config (seed included): the
 * same config yields the same request stream on every run, thread
 * count, and platform that shares IEEE doubles — the serving results'
 * bit-reproducibility rests on this.
 */

#ifndef HSU_SERVE_ARRIVALS_HH
#define HSU_SERVE_ARRIVALS_HH

#include <cstdint>
#include <vector>

#include "common/cycletime.hh"
#include "common/rng.hh"
#include "search/runner.hh"

namespace hsu::serve
{

/** Nominal clock for cycle <-> wall-time conversions (matches the
 *  1 GHz operating point of the area/power model, DESIGN.md section 6). */
inline constexpr double kClockHz = 1.0e9;

/** Supported arrival processes. */
enum class ArrivalProcess : std::uint8_t
{
    Poisson, //!< memoryless, fixed rate
    Bursty,  //!< 2-state Markov-modulated Poisson
};

/**
 * Query-id popularity distribution, layered on the timing process:
 * WHICH pool query a request asks for, independent of WHEN it
 * arrives. Zipf models the skewed repeat-query traffic real serving
 * sees (and the regime where the frontend answer cache earns its
 * keep): query id r is drawn with probability proportional to
 * 1/(r+1)^s, so id 0 is the most popular (rank == id).
 */
enum class QueryDist : std::uint8_t
{
    Uniform, //!< every pool query equally likely
    Zipf,    //!< rank-r probability ~ 1/(r+1)^zipfExponent
};

/** Arrival-process parameters. */
struct ArrivalConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    /** Mean arrival rate, in requests per simulated cycle. */
    double ratePerCycle = 1.0e-5;
    /** Bursty: burst-state rate multiplier (relative to the mean). */
    double burstFactor = 4.0;
    /** Bursty: long-run fraction of time spent in the burst state. */
    double burstFraction = 0.2;
    /** Bursty: mean burst-state sojourn, in cycles. */
    double meanBurstCycles = 200'000.0;
    /** Per-request latency SLO; 0 disables deadlines. */
    Cycle deadlineCycles = 0;
    /** Serving query pool size request query-ids are drawn from. */
    std::uint32_t queryPoolSize = 1024;
    /** Query-id popularity (orthogonal to the timing process). */
    QueryDist queryDist = QueryDist::Uniform;
    /** Zipf skew s; larger = more concentrated on the head. */
    double zipfExponent = 1.0;
    /** Stream seed. */
    std::uint64_t seed = 1;

    /** Convenience: set ratePerCycle from a QPS at kClockHz. */
    static double
    ratePerCycleFromQps(double qps)
    {
        return qps / kClockHz;
    }
};

/** One in-flight request: a single query against one workload. */
struct Request
{
    std::uint64_t id = 0;        //!< stream-order sequence number
    Cycle arrivalCycle = 0;
    Algo algo = Algo::Ggnn;
    DatasetId dataset{};
    std::uint32_t queryId = 0;   //!< index into the serving query pool
    Cycle deadlineCycle = kNeverCycle; //!< absolute SLO (kNeverCycle = none)
};

/**
 * Seeded generator of one workload's request stream.
 *
 * next() returns requests in nondecreasing arrival order; generate(n)
 * materializes a prefix of the stream for open-loop replay.
 */
class ArrivalGenerator
{
  public:
    ArrivalGenerator(const ArrivalConfig &cfg, Algo algo,
                     DatasetId dataset);

    /** The next request in the stream. */
    Request next();

    /** The first @p count requests of the stream. */
    std::vector<Request> generate(std::size_t count);

    const ArrivalConfig &config() const { return cfg_; }

  private:
    /** Draw the next inter-arrival gap, in cycles (>= 1). */
    Cycle nextGapCycles();

    /** Exponential variate with the given rate (per cycle). */
    double exponential(double rate);

    /** Draw the next query id under cfg_.queryDist. */
    std::uint32_t nextQueryId();

    ArrivalConfig cfg_;
    Algo algo_;
    DatasetId dataset_;
    Rng rng_;
    std::uint64_t nextId_ = 0;
    double clockCycles_ = 0.0; //!< fractional arrival clock
    bool inBurst_ = false;
    double stateLeftCycles_ = 0.0; //!< remaining sojourn in cur. state
    double calmRate_ = 0.0;
    double burstRate_ = 0.0;
    double meanCalmCycles_ = 0.0;
    /** Zipf inverse-CDF table: zipfCum_[i] = sum of the (unnormalized)
     *  weights of ids 0..i; empty under Uniform. */
    std::vector<double> zipfCum_;
};

} // namespace hsu::serve

#endif // HSU_SERVE_ARRIVALS_HH
