#include "serve/batcher.hh"

#include "common/logging.hh"

namespace hsu::serve
{

DynamicBatcher::DynamicBatcher(const BatchPolicy &policy)
    : policy_(policy)
{
    if (policy_.maxBatch == 0)
        hsu_fatal("batcher needs maxBatch >= 1");
}

void
DynamicBatcher::push(const Request &req)
{
    hsu_assert(queue_.empty() ||
                   queue_.back().arrivalCycle <= req.arrivalCycle,
               "batcher pushes must be in arrival order");
    queue_.push_back(req);
}

bool
DynamicBatcher::batchReady(Cycle now) const
{
    if (queue_.empty())
        return false;
    if (queue_.size() >= policy_.maxBatch)
        return true;
    return now >= oldestArrival() + policy_.maxWaitCycles;
}

std::vector<Request>
DynamicBatcher::popBatch(Cycle now, std::vector<Request> &expired)
{
    std::vector<Request> batch;
    batch.reserve(std::min<std::size_t>(queue_.size(),
                                        policy_.maxBatch));
    while (!queue_.empty() && batch.size() < policy_.maxBatch) {
        const Request &front = queue_.front();
        if (front.deadlineCycle < now)
            expired.push_back(front);
        else
            batch.push_back(front);
        queue_.pop_front();
    }
    return batch;
}

Cycle
DynamicBatcher::oldestArrival() const
{
    hsu_assert(!queue_.empty(), "oldestArrival on empty batcher");
    return queue_.front().arrivalCycle;
}

Cycle
DynamicBatcher::nextForceCycle() const
{
    if (queue_.empty())
        return kNeverCycle;
    return oldestArrival() + policy_.maxWaitCycles;
}

} // namespace hsu::serve
