#include "serve/arrivals.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hsu::serve
{

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig &cfg, Algo algo,
                                   DatasetId dataset)
    : cfg_(cfg), algo_(algo), dataset_(dataset), rng_(cfg.seed)
{
    if (cfg_.ratePerCycle <= 0.0)
        hsu_fatal("arrival rate must be positive: ", cfg_.ratePerCycle);
    if (cfg_.queryPoolSize == 0)
        hsu_fatal("arrival query pool must be non-empty");

    if (cfg_.queryDist == QueryDist::Zipf) {
        if (cfg_.zipfExponent <= 0.0) {
            hsu_fatal("zipf exponent must be positive: ",
                      cfg_.zipfExponent);
        }
        // Unnormalized prefix sums of 1/(r+1)^s: inverse-CDF sampling
        // needs only one uniform draw per request, and the table is a
        // pure function of (pool size, exponent).
        zipfCum_.reserve(cfg_.queryPoolSize);
        double total = 0.0;
        for (std::uint32_t r = 0; r < cfg_.queryPoolSize; ++r) {
            total += std::pow(static_cast<double>(r) + 1.0,
                              -cfg_.zipfExponent);
            zipfCum_.push_back(total);
        }
    }

    if (cfg_.process == ArrivalProcess::Bursty) {
        const double f = cfg_.burstFraction;
        const double b = cfg_.burstFactor;
        if (f <= 0.0 || f >= 1.0)
            hsu_fatal("burst fraction must be in (0,1): ", f);
        if (b <= 1.0 || f * b >= 1.0) {
            hsu_fatal("burst factor must satisfy 1 < factor < 1/",
                      "fraction (got ", b, " with fraction ", f, ")");
        }
        if (cfg_.meanBurstCycles <= 0.0)
            hsu_fatal("mean burst length must be positive");
        // Split the mean rate into the two state rates so the long-run
        // average is exactly ratePerCycle:
        //   f * burstRate + (1 - f) * calmRate = rate.
        burstRate_ = b * cfg_.ratePerCycle;
        calmRate_ = cfg_.ratePerCycle * (1.0 - f * b) / (1.0 - f);
        meanCalmCycles_ = cfg_.meanBurstCycles * (1.0 - f) / f;
        inBurst_ = false;
        stateLeftCycles_ = exponential(1.0 / meanCalmCycles_);
    }
}

double
ArrivalGenerator::exponential(double rate)
{
    // -log(1 - U) / rate with U in [0, 1): strictly positive, finite.
    return -std::log(1.0 - rng_.nextDouble()) / rate;
}

Cycle
ArrivalGenerator::nextGapCycles()
{
    double gap = 0.0;
    if (cfg_.process == ArrivalProcess::Poisson) {
        gap = exponential(cfg_.ratePerCycle);
    } else {
        // Competing clocks: an arrival drawn at the current state's
        // rate either lands inside the remaining sojourn, or the state
        // flips and (by memorylessness) the draw restarts.
        for (;;) {
            const double rate = inBurst_ ? burstRate_ : calmRate_;
            const double e = exponential(rate);
            if (e <= stateLeftCycles_) {
                stateLeftCycles_ -= e;
                gap += e;
                break;
            }
            gap += stateLeftCycles_;
            inBurst_ = !inBurst_;
            stateLeftCycles_ = exponential(
                1.0 / (inBurst_ ? cfg_.meanBurstCycles
                                : meanCalmCycles_));
        }
    }
    return static_cast<Cycle>(std::llround(std::max(1.0, gap)));
}

Request
ArrivalGenerator::next()
{
    clockCycles_ += static_cast<double>(nextGapCycles());
    Request req;
    req.id = nextId_++;
    req.arrivalCycle = static_cast<Cycle>(clockCycles_);
    req.algo = algo_;
    req.dataset = dataset_;
    req.queryId = nextQueryId();
    req.deadlineCycle = cfg_.deadlineCycles
                            ? req.arrivalCycle + cfg_.deadlineCycles
                            : kNeverCycle;
    return req;
}

std::uint32_t
ArrivalGenerator::nextQueryId()
{
    if (cfg_.queryDist == QueryDist::Uniform) {
        return static_cast<std::uint32_t>(
            rng_.nextBounded(cfg_.queryPoolSize));
    }
    // Inverse CDF: u < total because nextDouble() < 1, but the product
    // can round up to total itself, so clamp to the last id.
    const double u = rng_.nextDouble() * zipfCum_.back();
    const auto it =
        std::upper_bound(zipfCum_.begin(), zipfCum_.end(), u);
    const auto idx = static_cast<std::uint32_t>(it - zipfCum_.begin());
    return std::min(idx, cfg_.queryPoolSize - 1);
}

std::vector<Request>
ArrivalGenerator::generate(std::size_t count)
{
    std::vector<Request> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(next());
    return out;
}

} // namespace hsu::serve
