#include "serve/arrivals.hh"

#include <cmath>

#include "common/logging.hh"

namespace hsu::serve
{

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig &cfg, Algo algo,
                                   DatasetId dataset)
    : cfg_(cfg), algo_(algo), dataset_(dataset), rng_(cfg.seed)
{
    if (cfg_.ratePerCycle <= 0.0)
        hsu_fatal("arrival rate must be positive: ", cfg_.ratePerCycle);
    if (cfg_.queryPoolSize == 0)
        hsu_fatal("arrival query pool must be non-empty");

    if (cfg_.process == ArrivalProcess::Bursty) {
        const double f = cfg_.burstFraction;
        const double b = cfg_.burstFactor;
        if (f <= 0.0 || f >= 1.0)
            hsu_fatal("burst fraction must be in (0,1): ", f);
        if (b <= 1.0 || f * b >= 1.0) {
            hsu_fatal("burst factor must satisfy 1 < factor < 1/",
                      "fraction (got ", b, " with fraction ", f, ")");
        }
        if (cfg_.meanBurstCycles <= 0.0)
            hsu_fatal("mean burst length must be positive");
        // Split the mean rate into the two state rates so the long-run
        // average is exactly ratePerCycle:
        //   f * burstRate + (1 - f) * calmRate = rate.
        burstRate_ = b * cfg_.ratePerCycle;
        calmRate_ = cfg_.ratePerCycle * (1.0 - f * b) / (1.0 - f);
        meanCalmCycles_ = cfg_.meanBurstCycles * (1.0 - f) / f;
        inBurst_ = false;
        stateLeftCycles_ = exponential(1.0 / meanCalmCycles_);
    }
}

double
ArrivalGenerator::exponential(double rate)
{
    // -log(1 - U) / rate with U in [0, 1): strictly positive, finite.
    return -std::log(1.0 - rng_.nextDouble()) / rate;
}

Cycle
ArrivalGenerator::nextGapCycles()
{
    double gap = 0.0;
    if (cfg_.process == ArrivalProcess::Poisson) {
        gap = exponential(cfg_.ratePerCycle);
    } else {
        // Competing clocks: an arrival drawn at the current state's
        // rate either lands inside the remaining sojourn, or the state
        // flips and (by memorylessness) the draw restarts.
        for (;;) {
            const double rate = inBurst_ ? burstRate_ : calmRate_;
            const double e = exponential(rate);
            if (e <= stateLeftCycles_) {
                stateLeftCycles_ -= e;
                gap += e;
                break;
            }
            gap += stateLeftCycles_;
            inBurst_ = !inBurst_;
            stateLeftCycles_ = exponential(
                1.0 / (inBurst_ ? cfg_.meanBurstCycles
                                : meanCalmCycles_));
        }
    }
    return static_cast<Cycle>(std::llround(std::max(1.0, gap)));
}

Request
ArrivalGenerator::next()
{
    clockCycles_ += static_cast<double>(nextGapCycles());
    Request req;
    req.id = nextId_++;
    req.arrivalCycle = static_cast<Cycle>(clockCycles_);
    req.algo = algo_;
    req.dataset = dataset_;
    req.queryId =
        static_cast<std::uint32_t>(rng_.nextBounded(cfg_.queryPoolSize));
    req.deadlineCycle = cfg_.deadlineCycles
                            ? req.arrivalCycle + cfg_.deadlineCycles
                            : kNeverCycle;
    return req;
}

std::vector<Request>
ArrivalGenerator::generate(std::size_t count)
{
    std::vector<Request> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(next());
    return out;
}

} // namespace hsu::serve
