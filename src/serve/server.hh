/**
 * @file
 * Simulated-time online query server over the GPU timing model.
 *
 * An open-loop request stream (serve/arrivals) feeds a query pipeline
 * (serve/pipeline: answer cache -> admission -> FIFO batcher ->
 * degradation -> batch-ordering policy); formed batches launch on one
 * or more simulated GPU instances (serve/pipeline BatchExecutor).
 * Everything advances on one unified simulated clock: a request's
 * latency is
 *
 *     completion - arrival = queueing/batching wait
 *                          + launch overhead
 *                          + simulated kernel cycles of its batch,
 *
 * (or just the cache hit latency when the answer cache has it), where
 * the kernel cycles come from simulating the batch's trace on the
 * instance's Gpu — the same emitters and timing model as the offline
 * benches, so online and offline numbers are directly comparable.
 *
 * Admission control and graceful degradation: an arrival finding the
 * queue at shedWater is shed immediately; a batch formed while the
 * queue is at highWater runs with degraded GGNN knobs (shrunk beam
 * width/k — the exact point/key kernels have no quality knob and only
 * shed). Requests whose deadline passed while queued are dropped at
 * batch formation.
 *
 * Execution: the event loop is sequential in simulated time, but the
 * batch simulations themselves fan out across an hsu::ThreadPool —
 * every instance dispatched at the current event executes its kernel
 * simulation concurrently. Service times are pure functions of batch
 * contents, so results are bit-identical for any HSU_JOBS value.
 */

#ifndef HSU_SERVE_SERVER_HH
#define HSU_SERVE_SERVER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "search/runner.hh"
#include "serve/arrivals.hh"
#include "serve/pipeline.hh"
#include "sim/config.hh"

namespace hsu::serve
{

/** Full server configuration. */
struct ServerConfig
{
    /** Per-instance GPU config; rtUnitEnabled selects the HSU or the
     *  non-RT baseline trace flavor for every batch. */
    GpuConfig gpu;
    /** Simulated GPU instances batches fan out over. */
    unsigned numInstances = 1;
    /** Scheduling stages: batching, ordering policy, degradation,
     *  answer cache. */
    PipelineConfig pipeline;
    /** Serving query pool size (must cover request query-ids). */
    std::uint32_t queryPoolSize = 1024;
    /** Fixed per-launch overhead charged before kernel cycles. */
    Cycle launchOverheadCycles = 1'000;
    /** Simulation worker threads; 0 -> HSU_JOBS / hardware. */
    unsigned jobs = 0;
    /** Optional schedule-audit sink (analysis/schedule_log); null
     *  disables recording. The log must outlive the run. */
    ScheduleLog *scheduleLog = nullptr;
};

/** Aggregate results of one open-loop serving run. */
struct ServeReport
{
    std::uint64_t offered = 0;      //!< requests in the input stream
    std::uint64_t admitted = 0;     //!< queued or cache-answered
    std::uint64_t completed = 0;    //!< served to completion
    std::uint64_t shedAdmission = 0;//!< dropped at arrival (queue full)
    std::uint64_t shedExpired = 0;  //!< dropped at batch formation (SLO)
    std::uint64_t degraded = 0;     //!< served with degraded knobs
    std::uint64_t batches = 0;      //!< kernel launches
    std::uint64_t cacheHits = 0;    //!< answered without a launch
    Cycle lastCompletionCycle = 0;  //!< simulated makespan

    Histogram latencyCycles;   //!< arrival -> completion, per request
    Histogram queueWaitCycles; //!< arrival -> dispatch, per request
    Histogram batchSize;       //!< requests per launch

    /** Memory-system sums over every batch simulation (pipeline
     *  SimTotals; deterministic resolve-order accumulation). */
    std::uint64_t kernelCycles = 0; //!< summed batch kernel cycles
    std::uint64_t smCycles = 0;     //!< kernel cycles x numSms
    double l1Accesses = 0;
    double l1Misses = 0;
    double rtuBusyCycles = 0;       //!< 0 on the non-RT baseline

    /** Fraction of offered requests dropped (either shed path). */
    double
    shedFraction() const
    {
        return offered ? static_cast<double>(shedAdmission +
                                             shedExpired) /
                             static_cast<double>(offered)
                       : 0.0;
    }

    /** Completions per second of simulated time at kClockHz. */
    double
    achievedQps() const
    {
        if (lastCompletionCycle == 0)
            return 0.0;
        return static_cast<double>(completed) /
               (static_cast<double>(lastCompletionCycle) / kClockHz);
    }

    /** Latency percentile in microseconds at kClockHz. */
    double
    latencyUs(double p) const
    {
        return latencyCycles.percentile(p) / kClockHz * 1.0e6;
    }

    /** L1 hit rate over every batch simulation (the query-coherence
     *  policy's target metric). */
    double
    l1HitRate() const
    {
        return l1Accesses > 0 ? 1.0 - l1Misses / l1Accesses : 0.0;
    }

    /** RT-unit busy fraction of the SM-cycle budget — how occupied
     *  the warp buffers were while the server ran batches. */
    double
    warpBufferResidency() const
    {
        return smCycles ? rtuBusyCycles / static_cast<double>(smCycles)
                        : 0.0;
    }

    /** Answer-cache hit rate over the offered stream. */
    double
    cacheHitRate() const
    {
        return offered ? static_cast<double>(cacheHits) /
                             static_cast<double>(offered)
                       : 0.0;
    }
};

/** The serving engine for one (algo, dataset) workload. */
class Server
{
  public:
    Server(Algo algo, DatasetId dataset, const ServerConfig &cfg);

    /**
     * Replay @p requests (nondecreasing arrival order) to completion
     * and return the aggregate report. Deterministic: depends only on
     * the request stream and the config, never on thread count.
     */
    ServeReport run(const std::vector<Request> &requests);

  private:
    Algo algo_;
    DatasetId dataset_;
    ServerConfig cfg_;
};

} // namespace hsu::serve

#endif // HSU_SERVE_SERVER_HH
