/**
 * @file
 * Dynamic batcher: packs pending requests into kernel launches.
 *
 * Requests queue in strict FIFO order and leave as batches under a
 * max-batch-size / max-wait policy: a batch forms as soon as a full
 * batch is pending, or when the oldest pending request has waited
 * maxWaitCycles (so a lone request is never parked indefinitely).
 * Requests whose deadline has already passed when their batch forms are
 * dropped at pop time instead of being launched — completing them
 * could not meet the SLO and would steal service from live requests.
 *
 * Invariants (tested in tests/serve/test_batcher.cc):
 *  - FIFO: popped requests appear in push order; nothing is reordered.
 *  - A batch never exceeds maxBatch requests.
 *  - A popped request either made its deadline check at pop time or is
 *    returned through the expired list, never silently vanishes.
 */

#ifndef HSU_SERVE_BATCHER_HH
#define HSU_SERVE_BATCHER_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "common/cycletime.hh"
#include "serve/arrivals.hh"

namespace hsu::serve
{

/** Batch-formation policy. */
struct BatchPolicy
{
    /** Max requests per kernel launch. GGNN maps one warp per query;
     *  the point/key kernels pack 32 queries per warp — 32 keeps one
     *  launch warp-shaped either way. */
    unsigned maxBatch = 32;
    /** Max cycles the oldest pending request may wait before a partial
     *  batch is forced out. */
    Cycle maxWaitCycles = 50'000;
};

/** FIFO batcher with size and age triggers. */
class DynamicBatcher
{
  public:
    explicit DynamicBatcher(const BatchPolicy &policy);

    /** Enqueue one admitted request. @pre arrivals are nondecreasing. */
    void push(const Request &req);

    /** True when popBatch(now) would return a batch. */
    bool batchReady(Cycle now) const;

    /**
     * Form the next batch: up to maxBatch requests in FIFO order.
     * Requests already past their deadline at @p now are moved to
     * @p expired instead (they do not consume batch slots).
     * May return an empty batch when every pending request expired.
     */
    std::vector<Request> popBatch(Cycle now,
                                  std::vector<Request> &expired);

    /** Pending request count. */
    std::size_t pending() const { return queue_.size(); }

    /** Arrival cycle of the oldest pending request. @pre pending()>0 */
    Cycle oldestArrival() const;

    /**
     * Earliest future cycle at which the age trigger fires (for the
     * server's event loop); kNeverCycle when the queue is empty.
     */
    Cycle nextForceCycle() const;

    const BatchPolicy &policy() const { return policy_; }

  private:
    BatchPolicy policy_;
    std::deque<Request> queue_;
};

} // namespace hsu::serve

#endif // HSU_SERVE_BATCHER_HH
