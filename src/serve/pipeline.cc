#include "serve/pipeline.hh"

#include "common/logging.hh"
#include "sim/gpu.hh"

namespace hsu::serve
{

QueryPipeline::QueryPipeline(const PipelineConfig &cfg, Algo algo,
                             DatasetId dataset, std::size_t pool_size,
                             ScheduleRecorder recorder)
    : cfg_(cfg), dataset_(dataset), poolSize_(pool_size),
      rec_(recorder), batcher_(cfg.batch),
      cache_(cfg.cache, algo, dataset, pool_size, recorder)
{
    if (cfg_.degrade.shedWater == 0)
        hsu_fatal("shedWater 0 would shed every request");
    if (pool_size == 0)
        hsu_fatal("pipeline needs a non-empty query pool");
    rec_.record(0, ScheduleEventKind::PipelineConfig,
                cfg_.degrade.highWater, cfg_.degrade.shedWater,
                cfg_.batch.maxBatch);
}

Admission
QueryPipeline::admit(const Request &req)
{
    // Queue depth sampled once: both the shed decision and the
    // schedule log's watermark evidence (SV004) use this value.
    const std::uint64_t depth = batcher_.pending();
    if (cache_.lookup(req.queryId, req.arrivalCycle)) {
        stats_.admitted += 1;
        stats_.cacheHits += 1;
        rec_.record(req.arrivalCycle, ScheduleEventKind::Admit, req.id,
                    req.queryId, kAdmitCacheHit | (depth << 2));
        return Admission::CacheHit;
    }
    if (depth >= cfg_.degrade.shedWater) {
        stats_.shedAdmission += 1;
        rec_.record(req.arrivalCycle, ScheduleEventKind::Admit, req.id,
                    req.queryId, kAdmitShed | (depth << 2));
        return Admission::Shed;
    }
    stats_.admitted += 1;
    batcher_.push(req);
    rec_.record(req.arrivalCycle, ScheduleEventKind::Admit, req.id,
                req.queryId, kAdmitQueued | (depth << 2));
    return Admission::Queued;
}

bool
QueryPipeline::batchReady(Cycle now) const
{
    return batcher_.batchReady(now);
}

Cycle
QueryPipeline::nextForceCycle() const
{
    return batcher_.nextForceCycle();
}

std::size_t
QueryPipeline::pending() const
{
    return batcher_.pending();
}

FormedBatch
QueryPipeline::formBatch(Cycle now, Histogram &queue_wait,
                         Histogram &batch_size)
{
    FormedBatch formed;
    // The degradation signal is the queue depth the batch was formed
    // under, sampled before the pop (pre-refactor server semantics).
    const std::uint64_t depth = batcher_.pending();
    formed.degraded = depth >= cfg_.degrade.highWater;
    formed.requests = batcher_.popBatch(now, formed.expired);
    stats_.shedExpired += formed.expired.size();
    for (const Request &r : formed.expired)
        rec_.record(now, ScheduleEventKind::Expire, r.id,
                    r.deadlineCycle);
    if (formed.requests.empty())
        return formed; // everything pending had expired
    stats_.batches += 1;
    formed.seq = stats_.batches;
    rec_.record(now, ScheduleEventKind::BatchSeal, formed.seq,
                formed.requests.size(),
                (formed.degraded ? 1u : 0u) | (depth << 1));
    batch_size.add(static_cast<double>(formed.requests.size()));
    if (formed.degraded)
        stats_.degraded += formed.requests.size();
    // Queue waits in FIFO pop order — the histogram's double-sum is
    // order-sensitive and must not depend on the ordering policy. The
    // seal-time membership is recorded in the same pre-policy order:
    // SV002 checks the dispatch order against it.
    for (const Request &r : formed.requests) {
        queue_wait.add(static_cast<double>(now - r.arrivalCycle));
        rec_.record(now, ScheduleEventKind::SealMember, r.id,
                    r.deadlineCycle, formed.seq);
    }
    orderBatch(cfg_.policy, dataset_, poolSize_, formed.requests);
    return formed;
}

void
QueryPipeline::recordServed(const std::vector<Request> &batch,
                            bool degraded, Cycle now)
{
    if (degraded && !cfg_.cache.cacheDegraded)
        return;
    for (const Request &r : batch)
        cache_.insert(r.queryId, now);
}

BatchExecutor::BatchExecutor(const GpuConfig &gpu,
                             Cycle launch_overhead_cycles,
                             const ServeKnobs &degraded_knobs,
                             BatchTraceEmitter emitter,
                             ScheduleRecorder recorder)
    : gpu_(gpu), launchOverheadCycles_(launch_overhead_cycles),
      degradedKnobs_(degraded_knobs), emitter_(std::move(emitter)),
      rec_(recorder)
{
    hsu_assert(emitter_, "batch executor needs a trace emitter");
}

void
BatchExecutor::dispatch(ThreadPool &pool, Cycle now,
                        FormedBatch &&formed)
{
    hsu_assert(!busy_, "dispatch on a busy instance");
    std::vector<std::uint32_t> ids;
    ids.reserve(formed.requests.size());
    for (const Request &r : formed.requests)
        ids.push_back(r.queryId);
    const ServeKnobs knobs =
        formed.degraded ? degradedKnobs_ : ServeKnobs{};
    // The task is a pure function of (batch contents, knobs, config):
    // the emitter owns no mutable state and simulateKernel() writes a
    // task-local StatGroup, so the result is identical no matter which
    // worker runs it or when it resolves.
    const GpuConfig gpu = gpu_;
    const BatchTraceEmitter emitter = emitter_;
    pendingSim_ = pool.submit([gpu, emitter, ids, knobs]() {
        const std::shared_ptr<const KernelTrace> trace =
            emitter(ids, knobs);
        StatGroup stats;
        const RunResult run = simulateKernel(gpu, trace, stats);
        BatchSim sim;
        sim.cycles = run.cycles;
        sim.l1Accesses = run.l1Accesses;
        sim.l1Misses = run.l1Misses;
        sim.rtuBusyCycles = stats.get("rtu.busy_cycles");
        return sim;
    });
    busy_ = true;
    resolved_ = false;
    dispatchCycle_ = now;
    seq_ = formed.seq;
    batch_ = std::move(formed.requests);
    degraded_ = formed.degraded;
    rec_.record(now, ScheduleEventKind::Dispatch, seq_, batch_.size(),
                degraded_ ? 1 : 0);
    // Launch-order membership (post-policy): SV002's permutation side.
    for (const Request &r : batch_)
        rec_.record(now, ScheduleEventKind::DispatchMember, r.id,
                    r.queryId, seq_);
}

void
BatchExecutor::resolve(SimTotals &totals)
{
    if (!busy_ || resolved_)
        return;
    const BatchSim sim = pendingSim_.get();
    readyCycle_ = dispatchCycle_ + launchOverheadCycles_ + sim.cycles;
    resolved_ = true;
    rec_.record(readyCycle_, ScheduleEventKind::Resolve, seq_,
                sim.cycles, readyCycle_);
    totals.kernelCycles += sim.cycles;
    totals.smCycles += sim.cycles * gpu_.numSms;
    totals.l1Accesses += sim.l1Accesses;
    totals.l1Misses += sim.l1Misses;
    totals.rtuBusyCycles += sim.rtuBusyCycles;
}

void
BatchExecutor::finish()
{
    hsu_assert(busy_ && resolved_, "finish on an idle instance");
    busy_ = false;
    batch_.clear();
}

} // namespace hsu::serve
