/**
 * @file
 * The query-scheduling pipeline shared by every serving frontend.
 *
 * serve::Server and each shard::ClusterServer lane used to carry their
 * own copy of the same wiring — admission shedding, the FIFO batcher,
 * degradation watermarks, deadline expiry, dispatch bookkeeping. This
 * layer factors that wiring into two composable pieces:
 *
 *  - QueryPipeline: the scheduling stages between "request arrives"
 *    and "batch is ready to launch":
 *
 *        admit:     answer cache probe -> shed check -> FIFO queue
 *        formBatch: deadline expiry -> degradation decision
 *                   -> batch-ordering policy (serve/policy)
 *
 *    All admission/shed/degrade/expiry accounting lives here
 *    (PipelineStats); latency/completion accounting stays with the
 *    caller, who owns the simulated clock.
 *
 *  - BatchExecutor: one simulated GPU instance. dispatch() submits the
 *    batch's kernel simulation to a worker pool (a pure function of
 *    batch contents, so cycle counts are bit-identical for any
 *    HSU_JOBS); resolve() blocks for the result and accumulates the
 *    memory-system counters (SimTotals) the serving reports surface
 *    (L1 hit rate, RT-unit/warp-buffer residency).
 *
 * Determinism contract: with the Fifo policy and a disabled cache the
 * composed pipeline reproduces the pre-refactor event loops
 * bit-identically (tests/serve/test_pipeline.cc pins golden reports).
 * Histogram fills (double sums, order-sensitive) go through
 * caller-owned sinks in FIFO pop order, BEFORE any policy reordering.
 *
 * Auditing: both pieces optionally record their decisions into a
 * ScheduleLog (analysis/schedule_log) through a by-value
 * ScheduleRecorder — a null-check no-op when no log is attached — for
 * replay by the schedule linter (analysis/schedule_lint, SV rules).
 */

#ifndef HSU_SERVE_PIPELINE_HH
#define HSU_SERVE_PIPELINE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "analysis/schedule_log.hh"
#include "common/stats.hh"
#include "common/threadpool.hh"
#include "search/runner.hh"
#include "serve/arrivals.hh"
#include "serve/batcher.hh"
#include "serve/cache.hh"
#include "serve/policy.hh"
#include "sim/config.hh"
#include "sim/trace.hh"

namespace hsu::serve
{

/** Overload-response knobs. */
struct DegradePolicy
{
    /** Queue depth at which batches switch to degraded knobs. */
    std::size_t highWater = 96;
    /** Queue depth at which new arrivals are shed outright. */
    std::size_t shedWater = 512;
    /** Degraded GGNN knobs (beam width / k under pressure). */
    ServeKnobs degradedKnobs{16, 10};
};

/** Everything the scheduling stages need, in one bundle. */
struct PipelineConfig
{
    /** Batch-formation triggers (size / age). */
    BatchPolicy batch;
    /** Batch-ordering policy applied to each formed batch. */
    BatchPolicyKind policy = BatchPolicyKind::Fifo;
    DegradePolicy degrade;
    /** Answer cache in front of the queue (capacity 0 = off). */
    AnswerCacheConfig cache;
};

/** Scheduling-side counters (u64 sums — order-independent). */
struct PipelineStats
{
    std::uint64_t admitted = 0;      //!< queued or answered by cache
    std::uint64_t shedAdmission = 0; //!< dropped at arrival (queue full)
    std::uint64_t shedExpired = 0;   //!< dropped at batch formation
    std::uint64_t degraded = 0;      //!< served with degraded knobs
    std::uint64_t batches = 0;       //!< kernel launches formed
    std::uint64_t cacheHits = 0;     //!< answered without a launch
};

/** What admit() did with one request. */
enum class Admission : std::uint8_t
{
    Queued,   //!< entered the FIFO queue
    CacheHit, //!< answered by the cache; never queued
    Shed,     //!< dropped (queue at shedWater)
};

/** One batch leaving the pipeline. */
struct FormedBatch
{
    /** Launch members, already in policy order. */
    std::vector<Request> requests;
    /** Deadline-expired requests dropped during formation (callers
     *  with per-request join state resolve these as shed). */
    std::vector<Request> expired;
    /** Formed under pressure: run with degraded knobs. */
    bool degraded = false;
    /** Pipeline-unique batch sequence number (1-based; joins the
     *  seal-time and dispatch-time schedule events). */
    std::uint64_t seq = 0;
};

/**
 * The scheduling stages of one serving lane. Pure bookkeeping on the
 * caller's simulated clock; never launches anything itself.
 */
class QueryPipeline
{
  public:
    QueryPipeline(const PipelineConfig &cfg, Algo algo,
                  DatasetId dataset, std::size_t pool_size,
                  ScheduleRecorder recorder = {});

    /**
     * Admit one request: cache probe first (a hit completes at
     * arrival + cache.hitLatencyCycles and never occupies a queue
     * slot), then the shedWater check, then the FIFO queue.
     * @pre arrivals are nondecreasing.
     */
    Admission admit(const Request &req);

    /** True when formBatch(now) would return work. */
    bool batchReady(Cycle now) const;

    /** Earliest future age-trigger cycle; kNeverCycle if queue empty. */
    Cycle nextForceCycle() const;

    /** Queued request count (the shed/degrade watermark signal). */
    std::size_t pending() const;

    /**
     * Form the next batch: FIFO pop with deadline expiry, degradation
     * decision (queue depth BEFORE the pop, matching the pre-refactor
     * servers), then policy ordering. @p queue_wait and @p batch_size
     * are caller-owned histogram sinks, filled in FIFO pop order so
     * their double-sums are policy-independent. An all-expired pop
     * returns an empty batch and touches neither histogram.
     */
    FormedBatch formBatch(Cycle now, Histogram &queue_wait,
                          Histogram &batch_size);

    /** Completion hook: fill the answer cache from a served batch
     *  (degraded batches only when cache.cacheDegraded). @p now is the
     *  completion cycle (stamps the schedule log's insert events). */
    void recordServed(const std::vector<Request> &batch, bool degraded,
                      Cycle now = 0);

    const PipelineStats &stats() const { return stats_; }
    const AnswerCache &cache() const { return cache_; }
    const PipelineConfig &config() const { return cfg_; }

  private:
    PipelineConfig cfg_;
    DatasetId dataset_;
    std::size_t poolSize_;
    ScheduleRecorder rec_;
    DynamicBatcher batcher_;
    AnswerCache cache_;
    PipelineStats stats_;
};

/** One batch kernel simulation's results (pure per batch). */
struct BatchSim
{
    std::uint64_t cycles = 0;
    double l1Accesses = 0;
    double l1Misses = 0;
    /** RT-unit busy cycles ("rtu.busy_cycles"; 0 on the baseline). */
    double rtuBusyCycles = 0;
};

/** Run-wide sums of the per-batch simulation results. Accumulated at
 *  resolve time in deterministic lane order, so the double sums are
 *  bit-identical across HSU_JOBS. */
struct SimTotals
{
    std::uint64_t kernelCycles = 0; //!< summed batch kernel cycles
    std::uint64_t smCycles = 0;     //!< kernel cycles x numSms
    double l1Accesses = 0;
    double l1Misses = 0;
    double rtuBusyCycles = 0;
};

/** Emit the kernel trace of one batch — the only per-frontend piece
 *  of the execution path (Server binds emitBatchTrace, cluster lanes
 *  bind emitShardBatchTrace with their ShardKey). Must be a pure,
 *  thread-safe function of its arguments. */
using BatchTraceEmitter =
    std::function<std::shared_ptr<const KernelTrace>(
        const std::vector<std::uint32_t> &query_ids,
        const ServeKnobs &knobs)>;

/**
 * One simulated GPU instance executing formed batches. The kernel
 * simulation runs on a worker pool; dispatch() never blocks, resolve()
 * does — callers dispatch every idle instance first so concurrently
 * busy instances really simulate concurrently.
 */
class BatchExecutor
{
  public:
    BatchExecutor(const GpuConfig &gpu, Cycle launch_overhead_cycles,
                  const ServeKnobs &degraded_knobs,
                  BatchTraceEmitter emitter,
                  ScheduleRecorder recorder = {});

    /** Launch @p formed at @p now. @pre !busy(). */
    void dispatch(ThreadPool &pool, Cycle now, FormedBatch &&formed);

    /** Block for an unresolved in-flight simulation, fix readyCycle(),
     *  and add its BatchSim into @p totals. No-op when idle/resolved. */
    void resolve(SimTotals &totals);

    bool busy() const { return busy_; }
    /** Completion cycle (dispatch + launch overhead + kernel).
     *  @pre busy() and resolved by resolve(). */
    Cycle readyCycle() const { return readyCycle_; }
    /** The in-flight batch, in launch order. @pre busy(). */
    const std::vector<Request> &batch() const { return batch_; }
    bool degraded() const { return degraded_; }

    /** Retire the completed batch and go idle. */
    void finish();

  private:
    GpuConfig gpu_;
    Cycle launchOverheadCycles_;
    ServeKnobs degradedKnobs_;
    BatchTraceEmitter emitter_;
    ScheduleRecorder rec_;

    bool busy_ = false;
    bool resolved_ = false; //!< completion cycle known
    Cycle dispatchCycle_ = 0;
    Cycle readyCycle_ = 0;
    std::uint64_t seq_ = 0; //!< in-flight batch's pipeline seq
    std::future<BatchSim> pendingSim_;
    std::vector<Request> batch_;
    bool degraded_ = false;
};

} // namespace hsu::serve

#endif // HSU_SERVE_PIPELINE_HH
