/**
 * @file
 * Pluggable batch-ordering policies for the query pipeline.
 *
 * A policy decides the ORDER of the requests inside one formed batch —
 * never its membership, timing, or accounting, which stay with the
 * FIFO batcher (serve/batcher) and the pipeline (serve/pipeline). That
 * split keeps every queueing decision bit-identical across policies
 * while letting a policy reshape what the kernel sees:
 * emitBatchTrace() assigns queries to warps in exactly the order
 * given, so sorting a batch by a spatial key packs nearby queries into
 * the same warp and their traversals onto the same index nodes
 * (RTNN-style query coherence; the paper's HSU warp buffer then merges
 * their node fetches).
 */

#ifndef HSU_SERVE_POLICY_HH
#define HSU_SERVE_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/arrivals.hh"

namespace hsu::serve
{

/** Batch-ordering policies. */
enum class BatchPolicyKind : std::uint8_t
{
    /** Arrival order — the reference policy; reports are pinned
     *  bit-identical to the pre-pipeline server. */
    Fifo,
    /** Sort by the query's coherence key (Morton code of point
     *  queries, lookup key of B+tree queries; see
     *  serveQueryCoherenceKeys), stream id as the tiebreak. */
    Coherent,
};

std::string toString(BatchPolicyKind kind);

/** Parse "fifo" / "coherent"; fatal on anything else. */
BatchPolicyKind parseBatchPolicy(const std::string &name);

/**
 * Reorder @p batch in place under @p kind. Membership is untouched;
 * Fifo is a no-op. Coherent sorts by
 * (serveQueryCoherenceKeys(dataset, pool_size)[queryId], request id) —
 * the id tiebreak keeps the order a pure function of batch contents,
 * so service times stay deterministic across HSU_JOBS.
 */
void orderBatch(BatchPolicyKind kind, DatasetId dataset,
                std::size_t pool_size, std::vector<Request> &batch);

} // namespace hsu::serve

#endif // HSU_SERVE_POLICY_HH
