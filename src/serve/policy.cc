#include "serve/policy.hh"

#include <algorithm>
#include <tuple>

#include "common/logging.hh"

namespace hsu::serve
{

std::string
toString(BatchPolicyKind kind)
{
    switch (kind) {
      case BatchPolicyKind::Fifo:
        return "fifo";
      case BatchPolicyKind::Coherent:
        return "coherent";
    }
    hsu_panic("unknown batch policy");
}

BatchPolicyKind
parseBatchPolicy(const std::string &name)
{
    if (name == "fifo")
        return BatchPolicyKind::Fifo;
    if (name == "coherent")
        return BatchPolicyKind::Coherent;
    hsu_fatal("unknown batch policy '", name, "' (fifo | coherent)");
}

void
orderBatch(BatchPolicyKind kind, DatasetId dataset,
           std::size_t pool_size, std::vector<Request> &batch)
{
    if (kind == BatchPolicyKind::Fifo || batch.size() < 2)
        return;
    const std::vector<std::uint64_t> &keys =
        serveQueryCoherenceKeys(dataset, pool_size);
    std::sort(batch.begin(), batch.end(),
              [&keys](const Request &a, const Request &b) {
                  return std::make_tuple(keys[a.queryId], a.id) <
                         std::make_tuple(keys[b.queryId], b.id);
              });
}

} // namespace hsu::serve
