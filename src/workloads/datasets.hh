/**
 * @file
 * The evaluation dataset registry (Table II of the paper) and synthetic
 * generators standing in for the original corpora.
 *
 * The paper evaluates on ANN-Benchmarks feature sets (deep1b, mnist,
 * gist, glove, ...), Stanford 3-D scans, an Abacus cosmology snapshot
 * and Rodinia B+tree key sets. None of those are available offline, so
 * each dataset is replaced by a deterministic synthetic generator that
 * preserves its *dimension, distance metric, and clustering character*,
 * with point counts scaled to simulator-friendly sizes (see DESIGN.md
 * section 5 for the substitution table).
 */

#ifndef HSU_WORKLOADS_DATASETS_HH
#define HSU_WORKLOADS_DATASETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "structures/graph.hh" // Metric
#include "structures/pointset.hh"

namespace hsu
{

/** Dataset identifiers (Table II rows). */
enum class DatasetId : std::uint8_t
{
    Deep1b,
    FashionMnist,
    Mnist,
    Gist,
    Glove,
    LastFm,
    NyTimes,
    Sift1m,
    Sift10k,
    Random10k,
    Bunny,
    Dragon,
    Buddha,
    Cosmos,
    BTree1m,
    BTree10k,
};

/** Structural category of a dataset. */
enum class DatasetKind : std::uint8_t
{
    HighDim, //!< ANN feature vectors (GGNN workloads)
    Point3d, //!< 3-D point clouds (FLANN / BVH-NN workloads)
    Keys,    //!< 1-D integer keys (B+tree workload)
};

/** Registry entry for one dataset. */
struct DatasetInfo
{
    DatasetId id;
    std::string abbr;      //!< paper abbreviation ("D1B", "FMNT", ...)
    std::string paperName; //!< original corpus name
    unsigned dim;
    std::size_t paperPoints; //!< size in the paper
    std::size_t simPoints;   //!< scaled size used here
    Metric metric;           //!< distance used during search
    DatasetKind kind;
    std::uint64_t seed;      //!< generator seed (deterministic)
};

/** The full Table II registry in paper order. */
const std::vector<DatasetInfo> &allDatasets();

/** Registry lookup by id. */
const DatasetInfo &datasetInfo(DatasetId id);

/** All datasets of one kind (e.g. the GGNN evaluation set). */
std::vector<DatasetInfo> datasetsOfKind(DatasetKind kind);

/** Generate the dataset's points. @pre kind != Keys. */
PointSet generatePoints(const DatasetInfo &info);

/**
 * Generate @p count query points for a dataset: a deterministic mix of
 * perturbed data points and fresh draws from the same distribution.
 */
PointSet generateQueries(const DatasetInfo &info, std::size_t count);

/** Generate the key set for a Keys dataset (sorted, unique). */
std::vector<std::uint32_t> generateKeys(const DatasetInfo &info);

/**
 * Generate @p count lookup keys: ~80% present in the key set, the rest
 * uniform misses.
 */
std::vector<std::uint32_t> generateKeyQueries(const DatasetInfo &info,
                                              std::size_t count);

} // namespace hsu

#endif // HSU_WORKLOADS_DATASETS_HH
