#include "workloads/datasets.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace hsu
{

const std::vector<DatasetInfo> &
allDatasets()
{
    static const std::vector<DatasetInfo> registry = {
        {DatasetId::Deep1b, "D1B", "deep1b", 96, 9'900'000, 40'000,
         Metric::Angular, DatasetKind::HighDim, 101},
        {DatasetId::FashionMnist, "FMNT", "fashion-mnist", 784, 60'000,
         8'000, Metric::Euclidean, DatasetKind::HighDim, 102},
        {DatasetId::Mnist, "MNT", "mnist", 784, 60'000, 8'000,
         Metric::Euclidean, DatasetKind::HighDim, 103},
        {DatasetId::Gist, "GST", "gist", 960, 1'000'000, 6'000,
         Metric::Euclidean, DatasetKind::HighDim, 104},
        {DatasetId::Glove, "GLV", "glove", 200, 1'180'000, 16'000,
         Metric::Angular, DatasetKind::HighDim, 105},
        {DatasetId::LastFm, "LFM", "last-fm", 65, 292'000, 16'000,
         Metric::Angular, DatasetKind::HighDim, 106},
        {DatasetId::NyTimes, "NYT", "nytimes", 256, 290'000, 12'000,
         Metric::Angular, DatasetKind::HighDim, 107},
        {DatasetId::Sift1m, "S1M", "sift1m", 128, 1'000'000, 16'000,
         Metric::Euclidean, DatasetKind::HighDim, 108},
        {DatasetId::Sift10k, "S10K", "sift10k", 128, 10'000, 10'000,
         Metric::Euclidean, DatasetKind::HighDim, 109},
        {DatasetId::Random10k, "R10K", "random10k", 3, 10'000, 10'000,
         Metric::Euclidean, DatasetKind::Point3d, 110},
        {DatasetId::Bunny, "BUN", "bunny", 3, 35'900, 9'000,
         Metric::Euclidean, DatasetKind::Point3d, 111},
        {DatasetId::Dragon, "DRG", "dragon", 3, 437'000, 20'000,
         Metric::Euclidean, DatasetKind::Point3d, 112},
        {DatasetId::Buddha, "BUD", "buddha", 3, 543'000, 24'000,
         Metric::Euclidean, DatasetKind::Point3d, 113},
        {DatasetId::Cosmos, "COS", "cosmos", 3, 100'000, 15'000,
         Metric::Euclidean, DatasetKind::Point3d, 114},
        {DatasetId::BTree1m, "B+1M", "B-Tree 1M", 1, 1'000'000, 200'000,
         Metric::Euclidean, DatasetKind::Keys, 115},
        {DatasetId::BTree10k, "B+10K", "B-Tree 10k", 1, 10'000, 10'000,
         Metric::Euclidean, DatasetKind::Keys, 116},
    };
    return registry;
}

const DatasetInfo &
datasetInfo(DatasetId id)
{
    for (const auto &info : allDatasets()) {
        if (info.id == id)
            return info;
    }
    hsu_panic("unknown dataset id ", static_cast<int>(id));
}

std::vector<DatasetInfo>
datasetsOfKind(DatasetKind kind)
{
    std::vector<DatasetInfo> out;
    for (const auto &info : allDatasets()) {
        if (info.kind == kind)
            out.push_back(info);
    }
    return out;
}

namespace
{

/**
 * Clustered high-dimensional features: a Gaussian mixture with a
 * low-rank "natural image/text" correlation structure, heavy tails for
 * embedding-style sets.
 */
void
appendHighDim(PointSet &out, const DatasetInfo &info, std::size_t count,
              Rng &rng)
{
    const unsigned dim = info.dim;
    const unsigned clusters = 32;
    const unsigned rank = std::min(dim, 24u);
    // Heavy-tailed scale for word-embedding-style corpora.
    const bool heavy = info.metric == Metric::Angular;

    // Shared low-rank basis + cluster centers (regenerated
    // deterministically from the dataset seed on every call).
    Rng basis_rng(info.seed * 0x9e37u + 1);
    std::vector<float> basis(static_cast<std::size_t>(rank) * dim);
    for (auto &v : basis)
        v = basis_rng.gaussian();
    std::vector<float> centers(static_cast<std::size_t>(clusters) * rank);
    for (auto &v : centers)
        v = basis_rng.gaussian(0.0f, 3.0f);

    std::vector<float> p(dim);
    std::vector<float> latent(rank);
    for (std::size_t i = 0; i < count; ++i) {
        const unsigned c =
            static_cast<unsigned>(rng.nextBounded(clusters));
        float scale = 1.0f;
        if (heavy) {
            // Log-normal per-point scale: a few far-out points.
            scale = std::exp(rng.gaussian(0.0f, 0.6f));
        }
        for (unsigned r = 0; r < rank; ++r)
            latent[r] = centers[c * rank + r] + rng.gaussian();
        for (unsigned d = 0; d < dim; ++d) {
            float v = 0.0f;
            for (unsigned r = 0; r < rank; ++r)
                v += latent[r] * basis[static_cast<std::size_t>(r) * dim +
                                       d];
            v = v / std::sqrt(static_cast<float>(rank)) +
                0.3f * rng.gaussian();
            p[d] = v * scale;
        }
        out.add(p.data());
    }
}

/** Bumpy-sphere surface sampler (bunny stand-in). */
Vec3
bumpySphere(float u, float v)
{
    const float theta = u * 2.0f * 3.14159265f;
    const float phi = std::acos(2.0f * v - 1.0f);
    const float r = 1.0f + 0.18f * std::sin(3.0f * theta) *
                               std::sin(5.0f * phi) +
                    0.08f * std::cos(7.0f * theta);
    return {r * std::sin(phi) * std::cos(theta),
            r * std::sin(phi) * std::sin(theta), r * std::cos(phi)};
}

/** Swept-spiral surface sampler (dragon stand-in: long thin body). */
Vec3
sweptSpiral(float u, float v, Rng &rng)
{
    const float t = u * 4.0f * 3.14159265f;
    const float body_r = 0.25f * (1.0f + 0.3f * std::sin(9.0f * t));
    const float ring = v * 2.0f * 3.14159265f;
    const Vec3 center{1.5f * std::cos(t) * (1.0f + 0.15f * t / 12.0f),
                      1.5f * std::sin(t), 0.35f * t};
    return center + Vec3{body_r * std::cos(ring),
                         body_r * std::sin(ring),
                         0.05f * rng.gaussian()};
}

/** Layered-blob sampler (buddha stand-in: stacked lobes). */
Vec3
layeredBlob(float u, float v, Rng &rng)
{
    const int lobe = static_cast<int>(u * 4.0f);
    const float lz = static_cast<float>(lobe) * 0.8f;
    const float lr = 1.0f - 0.18f * static_cast<float>(lobe);
    const float theta = v * 2.0f * 3.14159265f;
    const float phi = std::acos(2.0f * std::fmod(u * 4.0f, 1.0f) - 1.0f);
    return {lr * std::sin(phi) * std::cos(theta) +
                0.02f * rng.gaussian(),
            lr * std::sin(phi) * std::sin(theta) +
                0.02f * rng.gaussian(),
            lz + lr * 0.6f * std::cos(phi)};
}

void
appendSurface(PointSet &out, const DatasetInfo &info, std::size_t count,
              Rng &rng)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float u = rng.nextFloat();
        const float v = rng.nextFloat();
        Vec3 p;
        switch (info.id) {
          case DatasetId::Bunny:
            p = bumpySphere(u, v);
            break;
          case DatasetId::Dragon:
            p = sweptSpiral(u, v, rng);
            break;
          case DatasetId::Buddha:
            p = layeredBlob(u, v, rng);
            break;
          default:
            hsu_panic("not a surface dataset");
        }
        out.add(p);
    }
}

/** Soneira-Peebles-style hierarchical clustering (cosmology stand-in). */
void
appendCosmos(PointSet &out, std::size_t count, Rng &rng)
{
    // Three levels of clustering: superclusters -> groups -> halos.
    const unsigned super = 12, groups = 6, halos = 8;
    std::vector<Vec3> super_c(super), group_c;
    for (auto &c : super_c)
        c = {rng.uniform(-10, 10), rng.uniform(-10, 10),
             rng.uniform(-10, 10)};
    for (const auto &s : super_c) {
        for (unsigned g = 0; g < groups; ++g) {
            group_c.push_back(s + Vec3{rng.gaussian(0, 1.5f),
                                       rng.gaussian(0, 1.5f),
                                       rng.gaussian(0, 1.5f)});
        }
    }
    std::vector<Vec3> halo_c;
    for (const auto &g : group_c) {
        for (unsigned h = 0; h < halos; ++h) {
            halo_c.push_back(g + Vec3{rng.gaussian(0, 0.4f),
                                      rng.gaussian(0, 0.4f),
                                      rng.gaussian(0, 0.4f)});
        }
    }
    for (std::size_t i = 0; i < count; ++i) {
        // 85% of points in halos, 15% smooth background.
        if (rng.nextFloat() < 0.85f) {
            const auto &h = halo_c[rng.nextBounded(halo_c.size())];
            out.add(h + Vec3{rng.gaussian(0, 0.08f),
                             rng.gaussian(0, 0.08f),
                             rng.gaussian(0, 0.08f)});
        } else {
            out.add(Vec3{rng.uniform(-11, 11), rng.uniform(-11, 11),
                         rng.uniform(-11, 11)});
        }
    }
}

void
appendPoints(PointSet &out, const DatasetInfo &info, std::size_t count,
             Rng &rng)
{
    switch (info.kind) {
      case DatasetKind::HighDim:
        appendHighDim(out, info, count, rng);
        return;
      case DatasetKind::Point3d:
        switch (info.id) {
          case DatasetId::Random10k:
            for (std::size_t i = 0; i < count; ++i) {
                out.add(Vec3{rng.nextFloat(), rng.nextFloat(),
                             rng.nextFloat()});
            }
            return;
          case DatasetId::Cosmos:
            appendCosmos(out, count, rng);
            return;
          default:
            appendSurface(out, info, count, rng);
            return;
        }
      case DatasetKind::Keys:
        hsu_panic("generatePoints on a key dataset");
    }
}

} // namespace

PointSet
generatePoints(const DatasetInfo &info)
{
    hsu_assert(info.kind != DatasetKind::Keys,
               "key datasets have no points");
    PointSet out(info.dim);
    out.reserve(info.simPoints);
    Rng rng(info.seed);
    appendPoints(out, info, info.simPoints, rng);
    return out;
}

PointSet
generateQueries(const DatasetInfo &info, std::size_t count)
{
    hsu_assert(info.kind != DatasetKind::Keys,
               "key datasets have no point queries");
    PointSet out(info.dim);
    out.reserve(count);
    Rng rng(info.seed ^ 0x5eedULL);
    appendPoints(out, info, count, rng);
    return out;
}

std::vector<std::uint32_t>
generateKeys(const DatasetInfo &info)
{
    hsu_assert(info.kind == DatasetKind::Keys, "not a key dataset");
    Rng rng(info.seed);
    std::vector<std::uint32_t> keys;
    keys.reserve(info.simPoints);
    // Dense-ish key space with random gaps, like a populated index.
    std::uint32_t cur = 1000;
    for (std::size_t i = 0; i < info.simPoints; ++i) {
        cur += 1 + static_cast<std::uint32_t>(rng.nextBounded(7));
        keys.push_back(cur);
    }
    return keys;
}

std::vector<std::uint32_t>
generateKeyQueries(const DatasetInfo &info, std::size_t count)
{
    const auto keys = generateKeys(info);
    Rng rng(info.seed ^ 0xbeefULL);
    std::vector<std::uint32_t> out;
    out.reserve(count);
    const std::uint32_t hi = keys.back() + 100;
    for (std::size_t i = 0; i < count; ++i) {
        if (rng.nextFloat() < 0.8f) {
            out.push_back(keys[rng.nextBounded(keys.size())]);
        } else {
            out.push_back(
                static_cast<std::uint32_t>(rng.nextBounded(hi)));
        }
    }
    return out;
}

} // namespace hsu
