/**
 * @file
 * Classic ray tracing on the baseline RT unit: the HSU is a superset
 * of a ray-tracing unit, so the library still renders. Builds a BVH4
 * over a procedural triangle scene, traces one ray per pixel with
 * RAY_INTERSECT semantics (4-wide box tests + watertight triangle
 * tests), and writes a PPM depth image.
 *
 * Run:  ./build/examples/raytrace [--out out.ppm]
 */

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/argparse.hh"
#include "common/rng.hh"
#include "hsu/functional.hh"
#include "structures/lbvh.hh"

using namespace hsu;

namespace
{

/** Trace one ray through a BVH4 with the unit's instruction semantics. */
TriHit
traceRay(const PreparedRay &pr, const Bvh4 &bvh,
         const std::vector<Triangle> &tris)
{
    TriHit best;
    float best_t = pr.ray.tmax;
    std::vector<std::uint32_t> stack{bvh.root()};
    while (!stack.empty()) {
        const std::uint32_t node_idx = stack.back();
        stack.pop_back();
        // One RAY_INTERSECT on a box node: 4 slab tests, sorted.
        BoxNode4 node = bvh.nodes()[node_idx];
        const BoxIntersectResult r = rayIntersectBox(pr, node);
        // Push far-to-near so the nearest child pops first.
        for (int i = static_cast<int>(r.hits) - 1; i >= 0; --i) {
            const std::uint32_t ref = r.sortedChild[static_cast<unsigned>(i)];
            if (r.tEnter[static_cast<unsigned>(i)] > best_t)
                continue;
            if (childIsLeaf(ref)) {
                // One RAY_INTERSECT on a triangle node.
                TriNode leaf;
                leaf.tri = tris[childIndex(ref)];
                const TriHit h = rayIntersectTri(pr, leaf);
                if (h.hit && h.t() < best_t) {
                    best = h;
                    best_t = h.t();
                }
            } else {
                stack.push_back(childIndex(ref));
            }
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("raytrace",
                   "render a procedural scene through the RT-unit "
                   "instruction semantics, write a PPM depth image");
    std::string path = "raytrace_out.ppm";
    args.opt(path, "out", "output PPM path");
    if (!args.parse(argc, argv))
        return args.exitCode();

    // Procedural scene: a field of random triangles plus a floor fan.
    std::vector<Triangle> tris;
    Rng rng(2024);
    for (std::uint32_t i = 0; i < 600; ++i) {
        const Vec3 base{rng.uniform(-4, 4), rng.uniform(-2.5f, 2.5f),
                        rng.uniform(3, 12)};
        const Vec3 e1{rng.gaussian(0, 0.4f), rng.gaussian(0, 0.4f),
                      rng.gaussian(0, 0.2f)};
        const Vec3 e2{rng.gaussian(0, 0.4f), rng.gaussian(0, 0.4f),
                      rng.gaussian(0, 0.2f)};
        tris.push_back({base, base + e1, base + e2, i});
    }
    for (std::uint32_t i = 0; i < 16; ++i) { // floor
        const float x0 = -8.0f + i, x1 = -7.0f + i;
        tris.push_back({{x0, -2.6f, 0}, {x1, -2.6f, 0},
                        {x0, -2.6f, 14}, 600 + 2 * i});
        tris.push_back({{x1, -2.6f, 0}, {x1, -2.6f, 14},
                        {x0, -2.6f, 14}, 601 + 2 * i});
    }

    const Lbvh binary = Lbvh::buildFromTriangles(tris);
    const Bvh4 bvh = Bvh4::fromBinary(binary);
    std::printf("scene: %zu triangles, BVH4 with %zu nodes\n",
                tris.size(), bvh.size());

    const int width = 320, height = 240;
    std::vector<unsigned char> img(
        static_cast<std::size_t>(width) * height * 3, 0);
    std::size_t hits = 0;

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            Ray ray;
            ray.origin = {0, 0, -2};
            ray.dir = normalize(Vec3{
                (static_cast<float>(x) / width - 0.5f) * 1.6f,
                (0.5f - static_cast<float>(y) / height) * 1.2f, 1.0f});
            const PreparedRay pr(ray);
            const TriHit h = traceRay(pr, bvh, tris);
            auto *px = &img[(static_cast<std::size_t>(y) * width + x) *
                            3];
            if (h.hit) {
                ++hits;
                const float depth = h.t();
                const auto shade = static_cast<unsigned char>(
                    std::max(0.0f, 255.0f * (1.0f - depth / 16.0f)));
                px[0] = shade;
                px[1] = static_cast<unsigned char>(
                    40 + (h.triId * 97) % 180);
                px[2] = static_cast<unsigned char>(255 - shade);
            }
        }
    }

    std::ofstream out(path, std::ios::binary);
    out << "P6\n" << width << " " << height << "\n255\n";
    out.write(reinterpret_cast<const char *>(img.data()),
              static_cast<std::streamsize>(img.size()));
    std::printf("rendered %dx%d, %zu/%d pixels hit -> %s\n", width,
                height, hits, width * height, path.c_str());
    return hits > 0 ? 0 : 1;
}
