/**
 * @file
 * Key-value store index (the paper's 1-D search application): a
 * B+tree over integer keys probed through KEY_COMPARE, plus the
 * RTIndeX comparison — the same index expressed as ray-traced triangle
 * primitives on the baseline RT unit versus native keys on the HSU
 * (Section VI-G).
 *
 * Run:  ./build/examples/kv_store
 */

#include <cstdio>

#include "search/btree_kernel.hh"
#include "search/rtindex.hh"
#include "sim/gpu.hh"
#include "workloads/datasets.hh"

using namespace hsu;

int
main()
{
    std::printf("== key-value store on the HSU ==\n\n");

    const auto &info = datasetInfo(DatasetId::BTree10k);
    const auto keys = generateKeys(info);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        pairs.emplace_back(keys[i], static_cast<std::uint32_t>(i * 10));

    const BTree tree = BTree::build(pairs);
    std::printf("B+tree: %zu keys, order %u, height %u\n", keys.size(),
                tree.order(), tree.height());

    // Point lookups.
    std::printf("lookup(%u) -> %u\n", keys[100],
                tree.lookup(keys[100]).value());
    std::printf("lookup(1)  -> %s\n\n",
                tree.lookup(1).has_value() ? "hit" : "miss");

    // Batch lookups through the kernel, baseline vs HSU.
    const auto probes = generateKeyQueries(info, 2048);
    BtreeKernel kernel(tree);
    const auto base_run = kernel.run(probes, KernelVariant::Baseline);
    const auto hsu_run = kernel.run(probes, KernelVariant::Hsu);

    std::size_t hits = 0;
    for (const auto &r : hsu_run.results)
        hits += r.has_value();
    std::printf("batch of %zu probes: %zu hits, %llu separator "
                "comparisons\n",
                probes.size(), hits,
                static_cast<unsigned long long>(hsu_run.keyCompares));

    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;
    StatGroup sb, sh;
    const RunResult base = simulateKernel(base_cfg, base_run.trace, sb);
    const RunResult hsu = simulateKernel(cfg, hsu_run.trace, sh);
    std::printf("baseline %llu cycles vs HSU %llu cycles: %.2fx "
                "(KEY_COMPARE ops: %.0f)\n\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(hsu.cycles),
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles),
                sh.get("rtu.completed_keycmp"));

    // --- RTIndeX comparison (Section VI-G) -------------------------
    std::printf("== RTIndeX: triangle keys vs native keys ==\n");
    RtindexKernel index(keys);
    const auto probes2 = generateKeyQueries(info, 1024);
    const auto tri = index.run(probes2, KernelVariant::Baseline);
    const auto nat = index.run(probes2, KernelVariant::Hsu);
    StatGroup st, sn;
    const RunResult tri_r = simulateKernel(cfg, tri.trace, st);
    const RunResult nat_r = simulateKernel(cfg, nat.trace, sn);
    std::printf("triangle keys: %llu bytes/key leaf data, %llu cycles\n",
                static_cast<unsigned long long>(tri.leafBytesPerKey),
                static_cast<unsigned long long>(tri_r.cycles));
    std::printf("native keys:   %llu bytes/key leaf data, %llu cycles "
                "(%.2fx)\n",
                static_cast<unsigned long long>(nat.leafBytesPerKey),
                static_cast<unsigned long long>(nat_r.cycles),
                static_cast<double>(tri_r.cycles) /
                    static_cast<double>(nat_r.cycles));
    return 0;
}
