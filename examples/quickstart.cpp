/**
 * @file
 * Quickstart: the 5-minute tour of the HSU library.
 *
 * Builds a small 3-D point index, runs a nearest-neighbor search
 * through the HSU device API functionally, then simulates the same
 * kernel on the modeled GPU with and without the HSU and prints the
 * speedup — the paper's headline experiment in miniature.
 *
 * Run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "hsu/device_api.hh"
#include "search/bvhnn.hh"
#include "search/runner.hh"
#include "sim/gpu.hh"
#include "structures/lbvh.hh"
#include "workloads/datasets.hh"

using namespace hsu;

int
main()
{
    std::printf("== HSU quickstart ==\n\n");

    // 1. The device intrinsics (Section III-B): distance functions
    //    that lower to POINT_EUCLID / POINT_ANGULAR instructions.
    const float a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    const float b[8] = {8, 7, 6, 5, 4, 3, 2, 1};
    std::printf("__euclid_dist(a, b, 8)   = %.1f  (%u instruction)\n",
                euclidDist(a, b, 8), euclidInstrCount(8));
    const auto ang = angularDistRaw(a, b, 8);
    std::printf("__angular_dist(a, b, 8)  = dot %.1f, norm %.1f\n\n",
                ang.dotSum, ang.normSum);

    // 2. Build a search structure over a synthetic 3-D point cloud.
    const auto &info = datasetInfo(DatasetId::Random10k);
    const PointSet points = generatePoints(info);
    const float radius = pickRadius(points);
    const Lbvh bvh = Lbvh::buildFromPoints(points, radius);
    std::printf("built LBVH over %zu points (%zu nodes, radius %.3f)\n",
                points.size(), bvh.size(), radius);

    // 3. Run a radius nearest-neighbor kernel functionally.
    BvhnnKernel kernel(points, bvh, BvhnnConfig{radius});
    const PointSet queries = generateQueries(info, 512);
    const BvhnnRun hsu_run = kernel.run(queries, KernelVariant::Hsu);
    std::size_t found = 0;
    for (const auto &r : hsu_run.results)
        found += r.index >= 0;
    std::printf("radius search: %zu/%zu queries found a neighbor "
                "(%llu box tests)\n\n",
                found, queries.size(),
                static_cast<unsigned long long>(hsu_run.boxTests));

    // 4. Simulate on the modeled GPU: baseline vs HSU.
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();

    const BvhnnRun base_run =
        kernel.run(queries, KernelVariant::Baseline);
    StatGroup base_stats, hsu_stats;
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;
    const RunResult base =
        simulateKernel(base_cfg, base_run.trace, base_stats);
    const RunResult hsu = simulateKernel(cfg, hsu_run.trace, hsu_stats);

    std::printf("baseline GPU : %llu cycles\n",
                static_cast<unsigned long long>(base.cycles));
    std::printf("with HSU     : %llu cycles  (%.0f HSU instructions)\n",
                static_cast<unsigned long long>(hsu.cycles),
                hsu.hsuCompleted);
    std::printf("speedup      : %.2fx\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles));
    return 0;
}
