/**
 * @file
 * Minimal online ANN serving demo.
 *
 * Stands up the simulated query server over the GGNN workload and
 * pushes two open-loop traffic patterns at it — steady Poisson and a
 * bursty Markov-modulated process with the same mean rate — then
 * prints the latency distribution each one experiences. Burstiness at
 * equal mean load is exactly what batch-throughput numbers hide: the
 * burst state saturates the instances and the p99 pays for it.
 *
 * Build & run:  ./build/examples/ann_server
 */

#include <cstdio>

#include "serve/server.hh"

using namespace hsu;

namespace
{

void
report(const char *label, const serve::ServeReport &rep)
{
    std::printf("%-8s offered=%llu completed=%llu shed=%.1f%% "
                "degraded=%llu batches=%llu\n",
                label, static_cast<unsigned long long>(rep.offered),
                static_cast<unsigned long long>(rep.completed),
                100.0 * rep.shedFraction(),
                static_cast<unsigned long long>(rep.degraded),
                static_cast<unsigned long long>(rep.batches));
    std::printf("         latency p50=%.1fus p95=%.1fus p99=%.1fus "
                "max=%.1fus | achieved=%.0f qps\n",
                rep.latencyUs(50.0), rep.latencyUs(95.0),
                rep.latencyUs(99.0),
                rep.latencyCycles.max() / serve::kClockHz * 1.0e6,
                rep.achievedQps());
}

} // namespace

int
main()
{
    const Algo algo = Algo::Ggnn;
    const DatasetId dataset = DatasetId::Sift10k;

    serve::ServerConfig cfg;
    cfg.gpu.numSms = 4;
    cfg.gpu.finalize();
    cfg.numInstances = 2;
    cfg.queryPoolSize = 512;

    serve::ArrivalConfig arr;
    arr.ratePerCycle = serve::ArrivalConfig::ratePerCycleFromQps(6000.0);
    arr.queryPoolSize = cfg.queryPoolSize;
    arr.deadlineCycles = 100'000'000; // 100 ms SLO at 1 GHz
    arr.seed = 7;

    std::printf("ANN serving demo: %s on %s, %u instances, "
                "mean load 6000 qps\n\n",
                toString(algo).c_str(),
                datasetInfo(dataset).abbr.c_str(), cfg.numInstances);

    // Steady Poisson traffic.
    serve::ArrivalGenerator poisson(arr, algo, dataset);
    serve::Server server(algo, dataset, cfg);
    report("poisson", server.run(poisson.generate(128)));

    // Bursty traffic at the same mean rate.
    arr.process = serve::ArrivalProcess::Bursty;
    arr.burstFactor = 4.0;
    arr.burstFraction = 0.2;
    serve::ArrivalGenerator bursty(arr, algo, dataset);
    report("bursty", server.run(bursty.generate(128)));

    return 0;
}
