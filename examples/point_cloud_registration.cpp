/**
 * @file
 * Point-cloud correspondence search (the paper's 3-D motivation:
 * point cloud registration): for every point of a transformed scan,
 * find its nearest neighbor in the reference scan within a radius —
 * the inner loop of ICP — using the RTNN-style LBVH kernel, and
 * estimate the rigid translation from the matches.
 *
 * Run:  ./build/examples/point_cloud_registration
 */

#include <cstdio>

#include "search/bvhnn.hh"
#include "search/runner.hh"
#include "sim/gpu.hh"
#include "workloads/datasets.hh"

using namespace hsu;

int
main()
{
    std::printf("== point-cloud correspondence (ICP inner loop) ==\n\n");

    // Reference scan: the bunny-like surface cloud.
    const auto &info = datasetInfo(DatasetId::Bunny);
    const PointSet reference = generatePoints(info);

    // Moving scan: the same surface shifted by a known translation
    // plus per-point noise.
    const Vec3 true_shift{0.03f, -0.02f, 0.015f};
    PointSet moving(3);
    Rng noise(99);
    for (std::size_t i = 0; i < reference.size(); i += 8) {
        moving.add(reference.vec3(i) + true_shift +
                   Vec3{noise.gaussian(0, 0.002f),
                        noise.gaussian(0, 0.002f),
                        noise.gaussian(0, 0.002f)});
    }
    std::printf("reference: %zu points; moving scan: %zu points\n",
                reference.size(), moving.size());

    // Index the reference with an RTNN-style LBVH.
    const float radius = pickRadius(reference);
    const Lbvh bvh = Lbvh::buildFromPoints(reference, radius);
    BvhnnKernel kernel(reference, bvh, BvhnnConfig{radius});
    std::printf("LBVH: %zu nodes, search radius %.4f\n\n", bvh.size(),
                radius);

    // Correspondences for every moving point.
    const BvhnnRun run = kernel.run(moving, KernelVariant::Hsu);

    // Estimate the translation from matched pairs.
    Vec3 delta{0, 0, 0};
    std::size_t matched = 0;
    for (std::size_t i = 0; i < moving.size(); ++i) {
        const auto &hit = run.results[i];
        if (hit.index < 0)
            continue;
        delta += moving.vec3(i) -
                 reference.vec3(static_cast<std::size_t>(hit.index));
        ++matched;
    }
    if (matched > 0)
        delta = delta / static_cast<float>(matched);
    std::printf("matched %zu/%zu points\n", matched, moving.size());
    std::printf("estimated shift: (%.4f, %.4f, %.4f)\n", delta.x,
                delta.y, delta.z);
    std::printf("true shift:      (%.4f, %.4f, %.4f)\n\n", true_shift.x,
                true_shift.y, true_shift.z);

    // How much does the HSU help this kernel on the modeled GPU?
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;
    const BvhnnRun base_run = kernel.run(moving, KernelVariant::Baseline);
    StatGroup sb, sh;
    const RunResult base = simulateKernel(base_cfg, base_run.trace, sb);
    const RunResult hsu = simulateKernel(cfg, run.trace, sh);
    std::printf("baseline GPU: %llu cycles; with HSU: %llu cycles\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(hsu.cycles));
    std::printf("speedup: %.2fx (RAY_INTERSECT box tests: %.0f)\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles),
                sh.get("rtu.completed_box"));
    return 0;
}
