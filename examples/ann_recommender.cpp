/**
 * @file
 * Recommendation-style vector search (the paper's motivating GGNN
 * workload): angular-metric approximate nearest neighbors over a
 * word-embedding-like corpus with a hierarchical graph index.
 *
 * Demonstrates: HnswGraph construction, angular-metric kNN through the
 * GGNN kernel, recall measurement against brute force, and the
 * baseline-vs-HSU simulation for a high-dimensional angular workload
 * (where the multi-beat POINT_ANGULAR instructions shine).
 *
 * Run:  ./build/examples/ann_recommender
 */

#include <algorithm>
#include <cstdio>

#include "search/ggnn.hh"
#include "sim/gpu.hh"
#include "workloads/datasets.hh"

using namespace hsu;

namespace
{

double
recallAt10(const PointSet &corpus, const PointSet &queries,
           const std::vector<std::vector<Neighbor>> &got)
{
    double recall = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        // Brute force under the angular metric.
        std::vector<Neighbor> all;
        all.reserve(corpus.size());
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            all.push_back({static_cast<std::uint32_t>(i),
                           metricDist(Metric::Angular, queries[q],
                                      corpus[i], corpus.dim())});
        }
        std::sort(all.begin(), all.end());
        std::size_t hits = 0;
        for (unsigned w = 0; w < 10; ++w) {
            for (const auto &g : got[q]) {
                if (g.index == all[w].index) {
                    ++hits;
                    break;
                }
            }
        }
        recall += hits / 10.0;
    }
    return recall / static_cast<double>(queries.size());
}

} // namespace

int
main()
{
    std::printf("== item-embedding recommender (angular ANN) ==\n\n");

    // A scaled glove-like corpus: 200-dimensional angular embeddings.
    const auto &info = datasetInfo(DatasetId::Glove);
    const PointSet corpus = generatePoints(info);
    std::printf("corpus: %zu embeddings, %u dims, angular metric\n",
                corpus.size(), corpus.dim());

    std::printf("building hierarchical graph index...\n");
    const HnswGraph graph = HnswGraph::build(corpus, Metric::Angular);
    std::printf("graph: %u layers, entry point %u\n\n",
                graph.numLayers(), graph.entryPoint());

    // "Users" are fresh embeddings; recommend their 10 nearest items.
    const PointSet users = generateQueries(info, 48);
    GgnnConfig gcfg;
    gcfg.k = 10;
    GgnnKernel kernel(graph, gcfg);
    const GgnnRun run = kernel.run(users, KernelVariant::Hsu);

    std::printf("first user's top-5 items: ");
    for (unsigned i = 0; i < 5 && i < run.results[0].size(); ++i) {
        std::printf("#%u(%.3f) ", run.results[0][i].index,
                    run.results[0][i].dist2);
    }
    std::printf("\nrecall@10 vs brute force: %.1f%%\n",
                100.0 * recallAt10(corpus, users, run.results));
    std::printf("distance evaluations: %llu (%.0f per query)\n\n",
                static_cast<unsigned long long>(run.distanceTests),
                static_cast<double>(run.distanceTests) / users.size());

    // Simulate both GPU variants.
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;

    const GgnnRun base_run = kernel.run(users, KernelVariant::Baseline);
    StatGroup sb, sh;
    const RunResult base = simulateKernel(base_cfg, base_run.trace, sb);
    const RunResult hsu = simulateKernel(cfg, run.trace, sh);
    std::printf("baseline GPU: %llu cycles; with HSU: %llu cycles "
                "(POINT_ANGULAR beats: %.0f)\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(hsu.cycles),
                sh.get("rtu.completed_angular"));
    std::printf("speedup: %.2fx\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles));
    return 0;
}
