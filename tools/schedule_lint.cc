/**
 * @file
 * schedule_lint: replay golden serving workloads with schedule
 * recording on and run the schedule auditor (analysis/schedule_lint)
 * over the recorded event logs — SV rules against serve::Server runs,
 * SV+SH+CH rules against shard::ClusterServer runs — plus the SH
 * fixed-function sweeps: partition disjointness/coverage for every
 * (family, policy, N) and merge total-order over real sharded answers.
 *
 * Exit status: 0 when every workload lints clean of errors, 1
 * otherwise (warnings are printed but non-fatal). `--rules` prints the
 * SV/SH/CH rule catalog. CI runs `schedule_lint --quick` in the lint
 * job and the full sweep in the audit job.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/schedule_lint.hh"
#include "common/argparse.hh"
#include "serve/server.hh"
#include "shard/answers.hh"
#include "shard/cluster.hh"

namespace
{

using namespace hsu;

struct GoldenWorkload
{
    const char *name;
    Algo algo;
    DatasetId dataset;
};

/** The four golden serving workloads, one per kernel family. */
constexpr GoldenWorkload kGolden[] = {
    {"ggnn-sift10k", Algo::Ggnn, DatasetId::Sift10k},
    {"flann-bunny", Algo::Flann, DatasetId::Bunny},
    {"bvhnn-random10k", Algo::Bvhnn, DatasetId::Random10k},
    {"btree-btree10k", Algo::Btree, DatasetId::BTree10k},
};

constexpr std::uint32_t kPool = 64;

std::vector<serve::Request>
stream(Algo algo, DatasetId dataset, double rate_per_cycle,
       std::size_t count, Cycle deadline)
{
    serve::ArrivalConfig arr;
    arr.ratePerCycle = rate_per_cycle;
    arr.queryPoolSize = kPool;
    arr.deadlineCycles = deadline;
    arr.queryDist = serve::QueryDist::Zipf; // repeats exercise the cache
    arr.seed = 21;
    return serve::ArrivalGenerator(arr, algo, dataset).generate(count);
}

/** Tally + print one linted workload; returns the report's counts. */
std::pair<std::size_t, std::size_t>
show(const std::string &name, const LintReport &report,
     std::size_t events)
{
    std::printf("%-34s %8zu events: %s\n", name.c_str(), events,
                report.clean()
                    ? "clean"
                    : (report.errorCount() ? "FAIL" : "warnings"));
    if (!report.clean())
        std::fputs(report.str().c_str(), stdout);
    return {report.errorCount(), report.warningCount()};
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("schedule_lint",
                   "schedule auditor over recorded serve/shard/cache "
                   "event logs (SV/SH/CH rule families)");
    bool quick = false;
    bool rules = false;
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "smaller request streams and shard sweep (CI smoke)");
    args.flag(rules, "rules", "print the rule catalog and exit");
    if (!args.parse(argc, argv))
        return args.exitCode();

    if (rules) {
        std::printf("%-6s %-8s %s\n", "RULE", "SEVERITY", "SUMMARY");
        for (const LintRuleInfo &rule : scheduleLintRuleCatalog()) {
            std::printf("%-6s %-8s %s\n       fix: %s\n",
                        rule.id.c_str(),
                        rule.severity == LintSeverity::Error
                            ? "error"
                            : "warning",
                        rule.summary.c_str(), rule.fixit.c_str());
        }
        return 0;
    }

    const std::size_t nreq = quick ? 48 : 160;
    std::size_t errors = 0, warnings = 0;
    std::size_t workloads = 0;
    auto tally = [&](std::pair<std::size_t, std::size_t> counts) {
        errors += counts.first;
        warnings += counts.second;
        workloads += 1;
    };

    // --- Single-server schedules: every golden workload under both
    // ordering policies, with the answer cache off and on. Overload
    // watermarks and deadlines are tight so the log really contains
    // shed / degrade / expiry decisions for the SV rules to audit.
    for (const GoldenWorkload &w : kGolden) {
        for (const serve::BatchPolicyKind policy :
             {serve::BatchPolicyKind::Fifo,
              serve::BatchPolicyKind::Coherent}) {
            for (const bool cached : {false, true}) {
                serve::ServerConfig cfg;
                cfg.gpu.numSms = 2;
                cfg.gpu.finalize();
                cfg.numInstances = 2;
                cfg.queryPoolSize = kPool;
                cfg.pipeline.batch.maxBatch = 8;
                cfg.pipeline.batch.maxWaitCycles = 20'000;
                cfg.pipeline.policy = policy;
                cfg.pipeline.degrade.highWater = 8;
                cfg.pipeline.degrade.shedWater = 24;
                if (cached) {
                    cfg.pipeline.cache.capacity = 8;
                    cfg.pipeline.cache.mode =
                        serve::CacheMode::Tolerant;
                }
                ScheduleLog log;
                cfg.scheduleLog = &log;
                serve::Server server(w.algo, w.dataset, cfg);
                server.run(stream(w.algo, w.dataset, 2.0e-4, nreq,
                                  400'000));
                const std::string name =
                    std::string("serve/") + w.name + "/" +
                    serve::toString(policy) +
                    (cached ? "/cache" : "/nocache");
                tally(show(name, lintScheduleLog(log),
                           log.events.size()));
            }
        }
    }

    // --- Cluster schedules: both partition policies over a 2x2
    // cluster with a real link and merge cost, router cache on, so the
    // SH scatter/gather/join rules and the router-side CH rules see a
    // populated log.
    for (const GoldenWorkload &w : kGolden) {
        for (const shard::PartitionPolicy policy :
             {shard::PartitionPolicy::Spatial,
              shard::PartitionPolicy::Hash}) {
            shard::ClusterConfig cfg;
            cfg.gpu.numSms = 2;
            cfg.gpu.finalize();
            cfg.partition = policy;
            cfg.numShards = 2;
            cfg.replicasPerShard = 2;
            cfg.queryPoolSize = kPool;
            cfg.pipeline.batch.maxBatch = 8;
            cfg.pipeline.batch.maxWaitCycles = 20'000;
            cfg.pipeline.policy = serve::BatchPolicyKind::Coherent;
            cfg.pipeline.degrade.highWater = 8;
            cfg.pipeline.degrade.shedWater = 24;
            cfg.pipeline.cache.capacity = 8;
            cfg.link.latencyCycles = 500;
            cfg.link.bytesPerCycle = 16.0;
            cfg.mergeCyclesPerShard = 200;
            ScheduleLog log;
            cfg.scheduleLog = &log;
            shard::ClusterServer cluster(w.algo, w.dataset, cfg);
            cluster.run(stream(w.algo, w.dataset, 2.0e-4, nreq,
                               400'000));
            const std::string name =
                std::string("cluster/") + w.name + "/" +
                toString(policy);
            tally(show(name, lintScheduleLog(log),
                       log.events.size()));
        }
    }

    // --- SH001: partition disjointness + coverage for every golden
    // dataset x policy x shard count.
    const std::vector<unsigned> shardCounts =
        quick ? std::vector<unsigned>{1, 4}
              : std::vector<unsigned>{1, 2, 4, 8};
    for (const GoldenWorkload &w : kGolden) {
        for (const shard::PartitionPolicy policy :
             {shard::PartitionPolicy::Spatial,
              shard::PartitionPolicy::Hash}) {
            for (const unsigned n : shardCounts) {
                const shard::Partitioning part =
                    shard::partitionDataset(w.dataset, policy, n);
                std::vector<std::vector<std::uint32_t>> ids;
                ids.reserve(part.shards.size());
                for (const shard::ShardSlice &slice : part.shards)
                    ids.push_back(slice.ids);
                const std::string name =
                    std::string("partition/") + w.name + "/" +
                    toString(policy) + "/n" + std::to_string(n);
                tally(show(name,
                           lintPartitionCoverage(
                               ids, part.totalElements()),
                           part.totalElements()));
            }
        }
    }

    // --- SH002: merge total-order over real sharded top-k answers
    // (the GGNN family materializes merged candidate lists).
    {
        std::vector<std::uint32_t> qids;
        for (std::uint32_t q = 0; q < (quick ? 8u : 24u); ++q)
            qids.push_back((q * 5) % kPool);
        const unsigned k = 10;
        const shard::AnswerSet answers = shard::answerSharded(
            Algo::Ggnn, DatasetId::Sift10k,
            shard::PartitionPolicy::Spatial, 4, qids, kPool, k);
        LintReport merged;
        std::size_t entries = 0;
        for (const std::vector<Neighbor> &topk : answers.topk) {
            std::vector<std::pair<double, std::uint32_t>> pairs;
            pairs.reserve(topk.size());
            for (const Neighbor &n : topk) {
                pairs.emplace_back(
                    static_cast<double>(n.dist2),
                    static_cast<std::uint32_t>(n.index));
            }
            entries += pairs.size();
            merged.merge(lintMergeOrder(pairs, k));
        }
        tally(show("merge/ggnn-sift10k/spatial-n4", merged, entries));
    }

    std::printf(
        "schedule_lint: %zu workloads, %zu errors, %zu warnings\n",
        workloads, errors, warnings);
    return errors ? 1 : 0;
}
