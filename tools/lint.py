#!/usr/bin/env python3
"""Project lint: source-level determinism and hygiene rules.

The simulator's headline guarantee is bit-identical output across
thread counts and runs; the dynamic half of that audit lives in
hsu_contract / the nondeterminism-source registry (src/common/audit.hh),
and this linter is the static half. It bans the source patterns that
historically cause silent nondeterminism or bypass the project's
error-reporting discipline:

  HL001 banned-rng           randomness outside hsu::Rng
  HL002 unordered-iteration  naked range-for over unordered containers
  HL003 naked-assert         C assert()/abort() instead of hsu_assert
  HL004 stray-stdio          iostream/printf output from library code
  HL005 env-read             naked std::getenv outside ArgParser

Suppression: a finding is waived by an audit annotation on the same
line or the line above, naming the rule and a justification:

    for (const auto &e : map_) // audit[unordered-iteration]: sorted below

An annotation with no justification text after the colon is itself an
error. Run from the repo root:  python3 tools/lint.py  (exit 1 on any
finding). CI runs this as part of the blocking lint job.
"""

import argparse
import re
import sys
from pathlib import Path

# Directories scanned for C++ sources, relative to the repo root.
SCAN_DIRS = ["src", "tools", "bench", "examples", "tests"]
CXX_SUFFIXES = {".cc", ".hh"}

ANNOTATION_RE = re.compile(r"//\s*audit\[(?P<rule>[a-z-]+)\]:(?P<why>.*)")

RULES = {}


def rule(rule_id, name, summary):
    """Register a rule function under an ID and annotation name."""

    def wrap(fn):
        RULES[rule_id] = {"name": name, "summary": summary, "fn": fn}
        return fn

    return wrap


class Finding:
    def __init__(self, rule_id, path, line_no, message):
        self.rule_id = rule_id
        self.path = path
        self.line_no = line_no
        self.message = message

    def __str__(self):
        return (f"{self.path}:{self.line_no}: {self.rule_id} "
                f"[{RULES[self.rule_id]['name']}] {self.message}")


def annotations(lines):
    """Map line number -> (rule name, justification) for audit tags."""
    out = {}
    for i, line in enumerate(lines, start=1):
        m = ANNOTATION_RE.search(line)
        if m:
            out[i] = (m.group("rule"), m.group("why").strip())
    return out


def waived(tags, line_no, name):
    """An annotation on the flagged line or the line above waives it."""
    for at in (line_no, line_no - 1):
        tag = tags.get(at)
        if tag and tag[0] == name and tag[1]:
            return True
    return False


BANNED_RNG_RE = re.compile(
    r"\b(srand|rand|drand48|lrand48|random_device|mt19937(?:_64)?|"
    r"minstd_rand0?|default_random_engine|ranlux\w+)\b")
# The Rng implementation itself is the one sanctioned home.
RNG_HOME = {Path("src/common/rng.hh"), Path("src/common/rng.cc")}


@rule("HL001", "banned-rng",
      "all randomness flows through hsu::Rng (seeded, bit-reproducible)")
def check_banned_rng(path, lines, tags, findings):
    if path in RNG_HOME:
        return
    for i, line in enumerate(lines, start=1):
        code = strip_comment(line)
        m = BANNED_RNG_RE.search(code)
        if not m:
            continue
        if waived(tags, i, "banned-rng"):
            continue
        findings.append(Finding(
            "HL001", path, i,
            f"'{m.group(1)}' bypasses hsu::Rng; seed an hsu::Rng from "
            f"the workload key instead"))


UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(?P<name>\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?P<seq>[^)]*)\)")


@rule("HL002", "unordered-iteration",
      "no naked range-for over unordered containers (hash order leaks "
      "into traces/stats); sort via audit::orderedKeys or annotate")
def check_unordered_iteration(path, lines, tags, findings):
    declared = set()
    for line in lines:
        for m in UNORDERED_DECL_RE.finditer(strip_comment(line)):
            declared.add(m.group("name"))
    for i, line in enumerate(lines, start=1):
        code = strip_comment(line)
        m = RANGE_FOR_RE.search(code)
        if not m:
            continue
        seq = m.group("seq")
        seq_id = re.search(r"(\w+)\s*$", seq.strip())
        hits = "unordered_" in seq or (
            seq_id and seq_id.group(1) in declared)
        if not hits:
            continue
        if waived(tags, i, "unordered-iteration"):
            continue
        findings.append(Finding(
            "HL002", path, i,
            f"range-for over unordered container '{seq.strip()}': "
            f"iteration order is hash order; use audit::orderedKeys() "
            f"or annotate with the discipline that makes this safe"))


NAKED_ASSERT_RE = re.compile(r"(?<![_\w])assert\s*\(")
ABORT_RE = re.compile(r"(?<![_\w])abort\s*\(")
# logging.cc implements the panic path; its abort() is the sanctioned one.
ABORT_HOME = {Path("src/common/logging.cc")}


@rule("HL003", "naked-assert",
      "invariants use hsu_assert/hsu_debug_assert/hsu_contract, not C "
      "assert()/abort() (uniform messages, build-flavor gating)")
def check_naked_assert(path, lines, tags, findings):
    for i, line in enumerate(lines, start=1):
        code = strip_comment(line)
        if NAKED_ASSERT_RE.search(code) and "static_assert" not in code:
            if not waived(tags, i, "naked-assert"):
                findings.append(Finding(
                    "HL003", path, i,
                    "C assert(): use hsu_assert (always on) or "
                    "hsu_debug_assert (hot loops) instead"))
        if ABORT_RE.search(code) and path not in ABORT_HOME:
            if not waived(tags, i, "naked-assert"):
                findings.append(Finding(
                    "HL003", path, i,
                    "raw abort(): report through hsu_panic so the "
                    "failure site and message are uniform"))


STDIO_RE = re.compile(r"std::(?:cout|cerr)\b|\bf?printf\s*\(")
# Library code reports through common/logging.hh; binaries (tools,
# benches, examples, tests) and the designated output sites print.
STDIO_LIB_DIRS = ("src/",)
STDIO_ALLOWED = {
    Path("src/common/logging.cc"),   # the logging implementation
    Path("src/common/argparse.cc"),  # usage/error text to the console
}


@rule("HL004", "stray-stdio",
      "library code reports through common/logging.hh; direct "
      "iostream/printf output belongs to binaries and table writers")
def check_stray_stdio(path, lines, tags, findings):
    posix = path.as_posix()
    if not posix.startswith(STDIO_LIB_DIRS):
        return
    if path in STDIO_ALLOWED:
        return
    for i, line in enumerate(lines, start=1):
        code = strip_comment(line)
        m = STDIO_RE.search(code)
        if not m:
            continue
        if waived(tags, i, "stray-stdio"):
            continue
        findings.append(Finding(
            "HL004", path, i,
            "direct console output from library code: use hsu_inform/"
            "hsu_warn, or return the text and print from the binary"))


GETENV_RE = re.compile(r"(?<![_\w])(?:std::)?getenv\s*\(")
# ArgParser's envFlag/envOpt implementation is the sanctioned reader:
# it surfaces every environment knob in --help and records the value.
ENV_HOME = {Path("src/common/argparse.cc")}


@rule("HL005", "env-read",
      "environment knobs are declared through ArgParser::envFlag/"
      "envOpt (visible in --help, auditable); naked std::getenv sites "
      "hide configuration and must justify themselves")
def check_env_read(path, lines, tags, findings):
    if path in ENV_HOME:
        return
    for i, line in enumerate(lines, start=1):
        code = strip_comment(line)
        if not GETENV_RE.search(code):
            continue
        if waived(tags, i, "env-read"):
            continue
        findings.append(Finding(
            "HL005", path, i,
            "naked std::getenv: declare the knob via "
            "ArgParser::envFlag/envOpt, or annotate the site with why "
            "it must read the environment directly"))


def strip_comment(line):
    """Drop a trailing // comment and block-comment body lines (crude
    but adequate: rules match call syntax, not prose)."""
    stripped = line.lstrip()
    if stripped.startswith(("//", "/*", "*")):
        return ""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def check_annotations(path, lines, tags, findings):
    """Malformed or unknown audit annotations are themselves findings."""
    names = {info["name"] for info in RULES.values()}
    for line_no, (name, why) in tags.items():
        if name not in names:
            findings.append(Finding(
                "HL000", path, line_no,
                f"audit annotation names unknown rule '{name}'"))
        elif not why:
            findings.append(Finding(
                "HL000", path, line_no,
                f"audit[{name}] annotation has no justification text"))


RULES["HL000"] = {
    "name": "annotation",
    "summary": "audit annotations name a known rule and justify "
               "themselves",
    "fn": check_annotations,
}


def lint_file(root, rel):
    """Lint one file; rules see the repo-relative path (the allow-list
    sets above are repo-relative)."""
    findings = []
    try:
        text = (root / rel).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        findings.append(Finding("HL000", rel, 0, f"unreadable: {err}"))
        return findings
    lines = text.splitlines()
    tags = annotations(lines)
    for info in RULES.values():
        info["fn"](rel, lines, tags, findings)
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files to lint (default: the scan dirs)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args()

    if args.rules:
        for rule_id in sorted(RULES):
            info = RULES[rule_id]
            print(f"{rule_id} [{info['name']}]: {info['summary']}")
        return 0

    root = Path(__file__).resolve().parent.parent
    if args.paths:
        files = [p for p in args.paths if p.suffix in CXX_SUFFIXES]
    else:
        files = []
        for d in SCAN_DIRS:
            for suffix in CXX_SUFFIXES:
                files.extend(sorted((root / d).rglob(f"*{suffix}")))

    all_findings = []
    for f in files:
        fabs = f if f.is_absolute() else (root / f).resolve()
        try:
            rel = fabs.relative_to(root)
        except ValueError:
            rel = f
        all_findings.extend(lint_file(root, rel))

    for finding in all_findings:
        print(finding, file=sys.stderr)
    if all_findings:
        print(f"lint.py: {len(all_findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint.py: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
