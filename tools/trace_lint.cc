/**
 * @file
 * trace_lint: run the static trace/IR linter (analysis/trace_lint.hh)
 * over the five search kernels' semantic emissions and their
 * Baseline / Hsu / PartialOffload lowerings, plus the sharded
 * sub-index emissions (shard/shard_index emitShardBatchSem) that
 * otherwise only get linted in debug/HSU_AUDIT builds.
 *
 * Exit status: 0 when every selected workload lints clean of errors,
 * 1 otherwise (warnings are printed but non-fatal). `--rules` prints
 * the rule catalog. CI runs `trace_lint --quick` as the lint job's
 * trace smoke.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/trace_lint.hh"
#include "common/argparse.hh"
#include "common/rng.hh"
#include "search/btree_kernel.hh"
#include "search/bvhnn.hh"
#include "search/flann.hh"
#include "search/ggnn.hh"
#include "search/rtindex.hh"
#include "shard/shard_index.hh"
#include "structures/btree.hh"
#include "structures/graph.hh"
#include "structures/kdtree.hh"
#include "structures/lbvh.hh"

namespace
{

using namespace hsu;

PointSet
randomCloud(std::size_t n, unsigned dim, std::uint64_t seed)
{
    PointSet pts(dim);
    pts.reserve(n);
    Rng rng(seed);
    std::vector<float> p(dim);
    for (std::size_t i = 0; i < n; ++i) {
        for (auto &x : p)
            x = rng.uniform(-10.0f, 10.0f);
        pts.add(p.data());
    }
    return pts;
}

struct Workload
{
    std::string name;
    SemKernelTrace sem;
};

/** Fixed-seed miniature workloads, one per kernel (two for rtindex:
 *  the triangle and native leaf forms emit different traces). */
std::vector<Workload>
buildWorkloads(const std::string &algo, bool quick)
{
    const auto scale = [quick](std::size_t n) {
        return quick ? std::max<std::size_t>(8, n / 4) : n;
    };
    const bool all = algo == "all";
    std::vector<Workload> out;

    if (all || algo == "ggnn") {
        const PointSet pts = randomCloud(scale(600), 24, 29);
        const PointSet queries = randomCloud(scale(16), 24, 30);
        const HnswGraph g = HnswGraph::build(pts, Metric::Euclidean);
        const GgnnKernel k(g, GgnnConfig{});
        out.push_back({"ggnn-euclid", k.emit(queries).sem});

        const PointSet apts = randomCloud(scale(400), 16, 31);
        const PointSet aqueries = randomCloud(scale(8), 16, 32);
        const HnswGraph ag = HnswGraph::build(apts, Metric::Angular);
        const GgnnKernel ak(ag, GgnnConfig{});
        out.push_back({"ggnn-angular", ak.emit(aqueries).sem});
    }
    if (all || algo == "flann" || algo == "bvhnn") {
        const PointSet pts = randomCloud(scale(500), 3, 27);
        const PointSet queries = randomCloud(scale(64), 3, 28);
        const float radius = 0.6f;
        if (all || algo == "flann") {
            const KdTree tree = KdTree::build(pts, 16);
            const FlannKernel k(tree);
            out.push_back({"flann", k.emit(queries).sem});
        }
        if (all || algo == "bvhnn") {
            const Lbvh bvh = Lbvh::buildFromPoints(pts, radius);
            const BvhnnKernel k(pts, bvh, BvhnnConfig{radius});
            out.push_back({"bvhnn", k.emit(queries).sem});
            BvhnnConfig cfg4{radius};
            cfg4.useBvh4 = true;
            const BvhnnKernel k4(pts, bvh, cfg4);
            out.push_back({"bvhnn-bvh4", k4.emit(queries).sem});
        }
    }
    if (all || algo == "btree") {
        Rng rng(33);
        std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
        for (std::uint32_t i = 0; i < scale(8000); ++i) {
            pairs.emplace_back(
                static_cast<std::uint32_t>(rng.nextBounded(1u << 24)),
                i);
        }
        std::vector<std::uint32_t> probes;
        for (std::size_t i = 0; i < scale(200); ++i) {
            probes.push_back(
                static_cast<std::uint32_t>(rng.nextBounded(1u << 24)));
        }
        const BTree tree = BTree::build(std::move(pairs), 256);
        const BtreeKernel k(tree);
        out.push_back({"btree", k.emit(probes).sem});
    }
    if (all || algo == "shard") {
        // Golden serving datasets, one per kernel family, emitted
        // against a 2-way shard sub-index under both partition
        // policies — release-build coverage of emitShardBatchSem
        // (the lane emitters' emission path).
        struct ShardCase
        {
            const char *name;
            Algo algo;
            DatasetId dataset;
        };
        const ShardCase cases[] = {
            {"shard-ggnn", Algo::Ggnn, DatasetId::Sift10k},
            {"shard-flann", Algo::Flann, DatasetId::Bunny},
            {"shard-bvhnn", Algo::Bvhnn, DatasetId::Random10k},
            {"shard-btree", Algo::Btree, DatasetId::BTree10k},
        };
        const std::size_t pool_size = 256;
        std::vector<std::uint32_t> ids;
        for (std::uint32_t q = 0; q < scale(48); ++q)
            ids.push_back((q * 7) % pool_size);
        for (const ShardCase &c : cases) {
            for (const shard::PartitionPolicy policy :
                 {shard::PartitionPolicy::Spatial,
                  shard::PartitionPolicy::Hash}) {
                const shard::ShardKey key{c.dataset, policy, 2, 0};
                const std::string name =
                    std::string(c.name) +
                    (policy == shard::PartitionPolicy::Spatial
                         ? "-spatial"
                         : "-hash");
                out.push_back(
                    {name, shard::emitShardBatchSem(c.algo, key, ids,
                                                    pool_size)});
            }
        }
    }
    if (all || algo == "rtindex") {
        Rng rng(34);
        std::vector<std::uint32_t> keys;
        std::uint32_t cur = 100;
        for (std::size_t i = 0; i < scale(2000); ++i)
            keys.push_back(cur += 1 + rng.nextBounded(5));
        std::vector<std::uint32_t> probes;
        for (std::size_t i = 0; i < scale(200); ++i) {
            probes.push_back(
                static_cast<std::uint32_t>(rng.nextBounded(cur + 50)));
        }
        const RtindexKernel k(keys);
        out.push_back({"rtindex-tri",
                       k.emit(probes, RtindexForm::Tri).sem});
        out.push_back({"rtindex-native",
                       k.emit(probes, RtindexForm::Native).sem});
    }
    return out;
}

void
printCatalog()
{
    std::printf("%-6s %-8s %s\n", "RULE", "SEVERITY", "SUMMARY");
    for (const LintRuleInfo &rule : lintRuleCatalog()) {
        std::printf("%-6s %-8s %s\n       fix: %s\n", rule.id.c_str(),
                    rule.severity == LintSeverity::Error ? "error"
                                                         : "warning",
                    rule.summary.c_str(), rule.fixit.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("trace_lint",
                   "static linter over semantic kernel traces and "
                   "their lowerings");
    bool quick = false;
    bool rules = false;
    std::string algo = "all";
    double fraction = 0.5;
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "quarter-size workloads (CI smoke)");
    args.flag(rules, "rules", "print the rule catalog and exit");
    args.opt(algo, "algo",
             "ggnn|flann|bvhnn|btree|rtindex|shard|all");
    args.opt(fraction, "fraction",
             "PartialOffload fraction audited alongside the endpoints");
    if (!args.parse(argc, argv))
        return args.exitCode();

    if (rules) {
        printCatalog();
        return 0;
    }

    const std::vector<Workload> workloads = buildWorkloads(algo, quick);
    if (workloads.empty()) {
        std::fprintf(stderr, "trace_lint: unknown --algo '%s'\n",
                     algo.c_str());
        return 64;
    }

    std::size_t errors = 0, warnings = 0;
    for (const Workload &w : workloads) {
        const LintReport report =
            lintWorkload(w.sem, DatapathConfig{}, fraction);
        errors += report.errorCount();
        warnings += report.warningCount();
        std::printf("%-16s %4zu warps %8zu sem ops: %s\n",
                    w.name.c_str(), w.sem.warps.size(), w.sem.totalOps(),
                    report.clean()
                        ? "clean"
                        : (report.errorCount() ? "FAIL" : "warnings"));
        if (!report.clean())
            std::fputs(report.str().c_str(), stdout);
    }
    std::printf("trace_lint: %zu workloads, %zu errors, %zu warnings\n",
                workloads.size(), errors, warnings);
    return errors ? 1 : 0;
}
