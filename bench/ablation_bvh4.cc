/**
 * @file
 * Ablation: binary BVH vs BVH4 traversal in BVH-NN.
 *
 * Section VI-E: "the BVH-NN implementation used a binary BVH tree.
 * Thus only two child node boxes were traversed per thread at a time,
 * and the application did not fully utilize the ray-box test hardware.
 * A BVH4 tree would likely have better performance in our unit for
 * this reason." This bench implements the hypothesis: the same
 * queries run over the paper's binary tree and over the collapsed
 * 4-wide tree, both HSU-accelerated, against the common non-RT
 * baseline.
 */

#include <memory>

#include "bench_common.hh"
#include "search/bvhnn.hh"

using namespace hsu;

namespace
{

struct CaseInfo
{
    std::string label;
    double boxTestRatio = 0.0; //!< BVH4 box tests / binary box tests
};

} // namespace

int
main()
{
    const GpuConfig cfg = bench::defaultGpu();
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;

    // Emission is serial per dataset; the three sims per dataset are
    // independent and fan across the worker pool.
    std::vector<CaseInfo> cases;
    std::vector<SimJob> jobs;
    for (const DatasetId id : datasetsForAlgo(Algo::Bvhnn)) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);
        const PointSet points = generatePoints(info);
        const PointSet queries = generateQueries(info,
                                                 opts.pointQueries);
        const float radius = pickRadius(points);
        const Lbvh bvh = Lbvh::buildFromPoints(points, radius);

        BvhnnKernel binary(points, bvh, BvhnnConfig{radius, false});
        BvhnnKernel wide(points, bvh, BvhnnConfig{radius, true});

        auto base_run =
            binary.run(queries, KernelVariant::Baseline);
        auto bin_run = binary.run(queries, KernelVariant::Hsu);
        auto wide_run = wide.run(queries, KernelVariant::Hsu);

        // Results must agree between tree shapes.
        for (std::size_t q = 0; q < queries.size(); ++q) {
            if (bin_run.results[q].index != wide_run.results[q].index) {
                std::fprintf(stderr, "BVH4 result mismatch (q=%zu)\n",
                             q);
                return 1;
            }
        }

        CaseInfo c;
        c.label = workloadLabel(Algo::Bvhnn, info);
        c.boxTestRatio = static_cast<double>(wide_run.boxTests) /
                         static_cast<double>(bin_run.boxTests);
        cases.push_back(std::move(c));

        SimJob job;
        job.kind = SimJob::Kind::Trace;
        job.gpu = base_cfg;
        job.trace = std::make_shared<const KernelTrace>(
            std::move(base_run.trace));
        jobs.push_back(job);
        job.gpu = cfg;
        job.trace = std::make_shared<const KernelTrace>(
            std::move(bin_run.trace));
        jobs.push_back(job);
        job.trace = std::make_shared<const KernelTrace>(
            std::move(wide_run.trace));
        jobs.push_back(std::move(job));
    }
    const std::vector<SimJobResult> results =
        runJobsParallel(std::move(jobs));

    Table t("Ablation: BVH-NN binary vs BVH4 traversal (HSU speedup "
            "over non-RT baseline)",
            {"Dataset", "binary", "BVH4", "BVH4 box tests / binary"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const RunResult &base = results[3 * i].run;
        const RunResult &bin = results[3 * i + 1].run;
        const RunResult &w4 = results[3 * i + 2].run;
        t.addRow({cases[i].label,
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(bin.cycles),
                             3),
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(w4.cycles),
                             3),
                  Table::num(cases[i].boxTestRatio, 3)});
    }
    t.print(std::cout);
    return 0;
}
