/**
 * @file
 * Ablation: binary BVH vs BVH4 traversal in BVH-NN.
 *
 * Section VI-E: "the BVH-NN implementation used a binary BVH tree.
 * Thus only two child node boxes were traversed per thread at a time,
 * and the application did not fully utilize the ray-box test hardware.
 * A BVH4 tree would likely have better performance in our unit for
 * this reason." This bench implements the hypothesis: the same
 * queries run over the paper's binary tree and over the collapsed
 * 4-wide tree, both HSU-accelerated, against the common non-RT
 * baseline.
 */

#include "bench_common.hh"
#include "search/bvhnn.hh"
#include "sim/gpu.hh"

using namespace hsu;

int
main()
{
    const GpuConfig cfg = bench::defaultGpu();
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;

    Table t("Ablation: BVH-NN binary vs BVH4 traversal (HSU speedup "
            "over non-RT baseline)",
            {"Dataset", "binary", "BVH4", "BVH4 box tests / binary"});

    for (const DatasetId id : datasetsForAlgo(Algo::Bvhnn)) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);
        const PointSet points = generatePoints(info);
        const PointSet queries = generateQueries(info,
                                                 opts.pointQueries);
        const float radius = pickRadius(points);
        const Lbvh bvh = Lbvh::buildFromPoints(points, radius);

        BvhnnKernel binary(points, bvh, BvhnnConfig{radius, false});
        BvhnnKernel wide(points, bvh, BvhnnConfig{radius, true});

        const auto base_run =
            binary.run(queries, KernelVariant::Baseline);
        const auto bin_run = binary.run(queries, KernelVariant::Hsu);
        const auto wide_run = wide.run(queries, KernelVariant::Hsu);

        // Results must agree between tree shapes.
        for (std::size_t q = 0; q < queries.size(); ++q) {
            if (bin_run.results[q].index != wide_run.results[q].index) {
                std::fprintf(stderr, "BVH4 result mismatch (q=%zu)\n",
                             q);
                return 1;
            }
        }

        StatGroup sb, s2, s4;
        const RunResult base =
            simulateKernel(base_cfg, base_run.trace, sb);
        const RunResult bin = simulateKernel(cfg, bin_run.trace, s2);
        const RunResult w4 = simulateKernel(cfg, wide_run.trace, s4);

        t.addRow({workloadLabel(Algo::Bvhnn, info),
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(bin.cycles),
                             3),
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(w4.cycles),
                             3),
                  Table::num(static_cast<double>(wide_run.boxTests) /
                                 static_cast<double>(bin_run.boxTests),
                             3)});
    }
    t.print(std::cout);
    return 0;
}
