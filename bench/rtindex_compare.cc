/**
 * @file
 * Section VI-G reproduction: RTIndeX re-implemented over the shared
 * LBVH. Baseline RT unit stores each 32-bit key as a triangle
 * primitive (288 bits, probed with ray-triangle tests); the HSU stores
 * keys natively (probed with KEY_COMPARE). The paper reports a 36.6%
 * lookup speedup and a 9:1 leaf-memory advantage at 163,840 lookups.
 */

#include <memory>

#include "bench_common.hh"
#include "common/argparse.hh"
#include "search/rtindex.hh"
#include "workloads/datasets.hh"

using namespace hsu;

int
main(int argc, char **argv)
{
    ArgParser args("rtindex_compare",
                   "RTIndeX keys-as-triangles vs native HSU keys");
    bool quick = false;
    unsigned num_jobs = 0;
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "shrink the probe count ~4x");
    args.envOpt(num_jobs, "jobs", "HSU_JOBS",
                "worker threads for the variant simulations");
    if (!args.parse(argc, argv))
        return args.exitCode();

    // Scaled key store + lookups (paper: 163,840 lookups).
    const auto &info = datasetInfo(DatasetId::BTree1m);
    auto keys = generateKeys(info);
    const auto probes = generateKeyQueries(
        info,
        static_cast<std::size_t>(16384 * quickScale()));

    RtindexKernel index(std::move(keys));
    const GpuConfig cfg = bench::defaultGpu();

    Table t("Section VI-G: RTIndeX keys-as-triangles (RT unit) vs "
            "native keys (HSU); paper: +36.6%, 9:1 memory",
            {"Variant", "Leaf bytes/key", "Cycles", "Speedup"});

    auto run_tri = index.run(probes, KernelVariant::Baseline);
    auto run_key = index.run(probes, KernelVariant::Hsu);

    // Both variants' sims are independent: fan them across the pool.
    std::vector<SimJob> jobs(2);
    jobs[0].kind = SimJob::Kind::Trace;
    jobs[0].gpu = cfg;
    jobs[0].trace =
        std::make_shared<const KernelTrace>(std::move(run_tri.trace));
    jobs[1].kind = SimJob::Kind::Trace;
    jobs[1].gpu = cfg;
    jobs[1].trace =
        std::make_shared<const KernelTrace>(std::move(run_key.trace));
    const std::vector<SimJobResult> results =
        runJobsParallel(std::move(jobs));
    const RunResult &r_tri = results[0].run;
    const RunResult &r_key = results[1].run;

    t.addRow({"triangle keys (RT)",
              std::to_string(run_tri.leafBytesPerKey),
              std::to_string(r_tri.cycles), "1.000"});
    t.addRow({"native keys (HSU)",
              std::to_string(run_key.leafBytesPerKey),
              std::to_string(r_key.cycles),
              Table::num(static_cast<double>(r_tri.cycles) /
                             static_cast<double>(r_key.cycles),
                         3)});
    t.print(std::cout);

    // Sanity: both variants find the same keys.
    std::size_t hits = 0;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        if (run_tri.found[i] != run_key.found[i]) {
            std::fprintf(stderr, "MISMATCH at probe %zu\n", i);
            return 1;
        }
        hits += run_key.found[i];
    }
    std::printf("lookups=%zu found=%zu (variants agree)\n",
                probes.size(), hits);
    return 0;
}
