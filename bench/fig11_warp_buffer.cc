/**
 * @file
 * Figure 11 reproduction: HSU speedup at different warp buffer sizes
 * (1/4/8/16 entries) for the three hierarchical nearest-neighbor
 * algorithms. One entry permits no memory-level parallelism and is
 * worse than the baseline; 8 is the paper's sweet spot; 16 can regress
 * on high-dimensional datasets through MSHR pressure (Section VI-I).
 */

#include "bench_common.hh"

using namespace hsu;

namespace
{

void
sweep(Algo algo, const char *title)
{
    const unsigned sizes[] = {1, 4, 8, 16};
    Table t(title, {"Dataset", "wb=1", "wb=4", "wb=8", "wb=16"});
    for (const DatasetId id : datasetsForAlgo(algo)) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);
        StatGroup base_stats;
        const RunResult base = runBaseOnly(algo, id, bench::defaultGpu(),
                                           opts, base_stats);
        std::vector<std::string> row{workloadLabel(algo, info)};
        for (const unsigned wb : sizes) {
            GpuConfig cfg = bench::defaultGpu();
            cfg.warpBufferSize = wb;
            StatGroup stats;
            const RunResult hsu = runHsuOnly(algo, id, cfg, opts, stats);
            row.push_back(Table::num(
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles),
                3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    sweep(Algo::Ggnn, "Fig 11a: GGNN speedup vs warp buffer size");
    sweep(Algo::Bvhnn, "Fig 11b: BVH-NN speedup vs warp buffer size");
    sweep(Algo::Flann, "Fig 11c: FLANN speedup vs warp buffer size");
    return 0;
}
