/**
 * @file
 * Figure 11 reproduction: HSU speedup at different warp buffer sizes
 * (1/4/8/16 entries) for the three hierarchical nearest-neighbor
 * algorithms. One entry permits no memory-level parallelism and is
 * worse than the baseline; 8 is the paper's sweet spot; 16 can regress
 * on high-dimensional datasets through MSHR pressure (Section VI-I).
 */

#include "bench_common.hh"

using namespace hsu;

namespace
{

void
sweep(Algo algo, const char *title)
{
    const unsigned sizes[] = {1, 4, 8, 16};
    Table t(title, {"Dataset", "wb=1", "wb=4", "wb=8", "wb=16"});

    const std::vector<DatasetId> ids = datasetsForAlgo(algo);
    std::vector<SimJob> jobs;
    for (const DatasetId id : ids) {
        SimJob base;
        base.kind = SimJob::Kind::BaseOnly;
        base.algo = algo;
        base.dataset = id;
        base.gpu = bench::defaultGpu();
        base.opts = bench::benchOptions(datasetInfo(id));
        jobs.push_back(base);
        for (const unsigned wb : sizes) {
            SimJob job = base;
            job.kind = SimJob::Kind::HsuOnly;
            job.gpu.warpBufferSize = wb;
            jobs.push_back(std::move(job));
        }
    }
    const std::vector<SimJobResult> res =
        runJobsParallel(std::move(jobs));

    std::size_t k = 0;
    for (const DatasetId id : ids) {
        const RunResult &base = res[k++].run;
        std::vector<std::string> row{
            workloadLabel(algo, datasetInfo(id))};
        for (std::size_t s = 0; s < std::size(sizes); ++s) {
            const RunResult &hsu = res[k++].run;
            row.push_back(Table::num(
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles),
                3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    sweep(Algo::Ggnn, "Fig 11a: GGNN speedup vs warp buffer size");
    sweep(Algo::Bvhnn, "Fig 11b: BVH-NN speedup vs warp buffer size");
    sweep(Algo::Flann, "Fig 11c: FLANN speedup vs warp buffer size");
    bench::writePipelineReport("fig11_warp_buffer");
    return 0;
}
