/**
 * @file
 * Figure 16 reproduction: dynamic power of each operating mode for the
 * baseline RT datapath and the HSU datapath at 1 GHz. The paper
 * reports: HSU raises ray-box/ray-tri by ~10/8 mW; Euclid and Angular
 * cost 79 and 67 mW (Euclid only ~5 mW above the baseline ray-box
 * mode).
 */

#include "analysis/datapath_cost.hh"
#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const DatapathInventory base = baselineInventory();
    const DatapathInventory hsu = hsuInventory();

    Table t("Fig 16: Dynamic power per operating mode (mW at 1 GHz)",
            {"Mode", "Baseline RT", "HSU"});
    const DatapathConfig dp;
    const HsuMode baseline_modes[] = {HsuMode::RayBox, HsuMode::RayTri};
    for (const HsuMode m : baseline_modes) {
        t.addRow({toString(m), Table::num(modePower(base, m, dp), 1),
                  Table::num(modePower(hsu, m, dp, &base), 1)});
    }
    for (const HsuMode m :
         {HsuMode::Euclid, HsuMode::Angular, HsuMode::KeyCompare}) {
        t.addRow({toString(m), "n/a",
                  Table::num(modePower(hsu, m, dp, &base), 1)});
    }
    t.print(std::cout);
    return 0;
}
