/**
 * @file
 * Table II reproduction: the evaluation dataset registry, with both the
 * paper's sizes and the scaled synthetic stand-ins used here.
 */

#include "bench_common.hh"
#include "workloads/datasets.hh"

using namespace hsu;

int
main()
{
    Table t("Table II: Evaluation Datasets",
            {"Dataset", "Abbr", "Dim", "#Points(paper)", "#Points(sim)",
             "Dist", "Kind"});
    for (const auto &info : allDatasets()) {
        const char *dist = info.kind == DatasetKind::Keys
            ? "N/A"
            : (info.metric == Metric::Angular ? "A" : "E");
        const char *kind = info.kind == DatasetKind::HighDim
            ? "high-dim"
            : (info.kind == DatasetKind::Point3d ? "3-D" : "keys");
        t.addRow({info.paperName, info.abbr, std::to_string(info.dim),
                  std::to_string(info.paperPoints),
                  std::to_string(info.simPoints), dist, kind});
    }
    t.print(std::cout);
    return 0;
}
