/**
 * @file
 * Figure 10 reproduction: GGNN speedup at different datapath widths.
 * The legend widths refer to the Euclidean operating mode; the angular
 * width is architecturally half. Wider datapaths need fewer multi-beat
 * instructions per distance (lower latency), with diminishing returns
 * and occasional regressions from L1 contention (Section VI-H).
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const unsigned widths[] = {4, 8, 16, 32};
    Table t("Fig 10: GGNN speedup vs non-RT baseline at datapath widths",
            {"Dataset", "w=4", "w=8", "w=16", "w=32"});

    // One BaseOnly + four HsuOnly jobs per dataset, all independent:
    // fan the whole sweep across the pool and consume by index.
    const std::vector<DatasetId> ids = datasetsForAlgo(Algo::Ggnn);
    std::vector<SimJob> jobs;
    for (const DatasetId id : ids) {
        const RunnerOptions opts = bench::benchOptions(datasetInfo(id));
        SimJob base;
        base.kind = SimJob::Kind::BaseOnly;
        base.algo = Algo::Ggnn;
        base.dataset = id;
        base.gpu = bench::defaultGpu();
        base.opts = opts;
        jobs.push_back(base);
        for (const unsigned w : widths) {
            SimJob job = base;
            job.kind = SimJob::Kind::HsuOnly;
            job.gpu.datapath.euclidWidth = w;
            jobs.push_back(std::move(job));
        }
    }
    const std::vector<SimJobResult> res =
        runJobsParallel(std::move(jobs));

    std::size_t k = 0;
    for (const DatasetId id : ids) {
        const RunResult &base = res[k++].run;
        std::vector<std::string> row{datasetInfo(id).abbr};
        for (std::size_t w = 0; w < std::size(widths); ++w) {
            const RunResult &hsu = res[k++].run;
            row.push_back(Table::num(
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles),
                3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    bench::writePipelineReport("fig10_width_sweep");
    return 0;
}
