/**
 * @file
 * Figure 10 reproduction: GGNN speedup at different datapath widths.
 * The legend widths refer to the Euclidean operating mode; the angular
 * width is architecturally half. Wider datapaths need fewer multi-beat
 * instructions per distance (lower latency), with diminishing returns
 * and occasional regressions from L1 contention (Section VI-H).
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const unsigned widths[] = {4, 8, 16, 32};
    Table t("Fig 10: GGNN speedup vs non-RT baseline at datapath widths",
            {"Dataset", "w=4", "w=8", "w=16", "w=32"});

    for (const DatasetId id : datasetsForAlgo(Algo::Ggnn)) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);
        StatGroup base_stats;
        const RunResult base = runBaseOnly(Algo::Ggnn, id,
                                           bench::defaultGpu(), opts,
                                           base_stats);
        std::vector<std::string> row{info.abbr};
        for (const unsigned w : widths) {
            GpuConfig cfg = bench::defaultGpu();
            cfg.datapath.euclidWidth = w;
            StatGroup stats;
            const RunResult hsu =
                runHsuOnly(Algo::Ggnn, id, cfg, opts, stats);
            row.push_back(Table::num(
                static_cast<double>(base.cycles) /
                    static_cast<double>(hsu.cycles),
                3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    return 0;
}
