/**
 * @file
 * google-benchmark microbenchmarks of the search-structure library:
 * build and query costs of the LBVH, k-d tree, HNSW graph, and B+tree.
 */

#include <benchmark/benchmark.h>

#include "structures/btree.hh"
#include "structures/graph.hh"
#include "structures/kdtree.hh"
#include "structures/lbvh.hh"
#include "workloads/datasets.hh"

namespace
{

using namespace hsu;

const PointSet &
cloud3d()
{
    static const PointSet pts =
        generatePoints(datasetInfo(DatasetId::Random10k));
    return pts;
}

void
BM_LbvhBuild(benchmark::State &state)
{
    const PointSet &pts = cloud3d();
    for (auto _ : state) {
        benchmark::DoNotOptimize(Lbvh::buildFromPoints(pts, 0.05f));
    }
    state.SetItemsProcessed(state.iterations() * pts.size());
}
BENCHMARK(BM_LbvhBuild);

void
BM_KdTreeBuild(benchmark::State &state)
{
    const PointSet &pts = cloud3d();
    for (auto _ : state) {
        benchmark::DoNotOptimize(KdTree::build(pts, 16));
    }
    state.SetItemsProcessed(state.iterations() * pts.size());
}
BENCHMARK(BM_KdTreeBuild);

void
BM_KdTreeKnn(benchmark::State &state)
{
    const PointSet &pts = cloud3d();
    static const KdTree tree = KdTree::build(pts, 16);
    const PointSet queries =
        generateQueries(datasetInfo(DatasetId::Random10k), 256);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.knn(queries[q % queries.size()], 5));
        ++q;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeKnn);

void
BM_HnswSearch(benchmark::State &state)
{
    const auto &info = datasetInfo(DatasetId::Sift10k);
    static const PointSet pts = generatePoints(info);
    static const HnswGraph graph =
        HnswGraph::build(pts, info.metric);
    const PointSet queries = generateQueries(info, 64);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            graph.knn(queries[q % queries.size()], 10));
        ++q;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HnswSearch);

void
BM_BtreeLookup(benchmark::State &state)
{
    const auto &info = datasetInfo(DatasetId::BTree10k);
    const auto keys = generateKeys(info);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::size_t i = 0; i < keys.size(); ++i)
        pairs.emplace_back(keys[i], static_cast<std::uint32_t>(i));
    static const BTree tree = BTree::build(std::move(pairs));
    const auto probes = generateKeyQueries(info, 1024);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.lookup(probes[q % probes.size()]));
        ++q;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeLookup);

} // namespace

BENCHMARK_MAIN();
