/**
 * @file
 * Intra-simulation parallelism benchmark: simulate-phase wall time and
 * cycles/second for each fig-9 workload at HSU_SIM_JOBS in {1, 2, 4, 8}
 * (GpuConfig::simJobs; the fleet executor is bypassed so each
 * simulation owns the machine). Emits BENCH_sim.json with per-workload
 * timings and the fleet geomean speedup per job level, and verifies
 * that every job level reproduces the jobs=1 results bit-identically.
 *
 * --smoke: CI gate mode. One quick workload at jobs in {1, 8}; exits
 * nonzero when the parallel run is slower than serial beyond a slack
 * allowance (or on any bit-identity mismatch, as always).
 */

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/argparse.hh"
#include "workloads/datasets.hh"

using namespace hsu;

namespace
{

/** Simulator-throughput diagnostics: how many cycles each loop skipped
 *  depends on the execution strategy, not on the modeled machine. */
bool
isDiagnostic(const std::string &name)
{
    return name == "sim.ff_cycles" || name == "sim.horizon_cycles";
}

/** Describe the first difference between two runs, or "" when they are
 *  bit-identical (diagnostics excluded). */
std::string
firstDifference(const WorkloadResult &ref, const WorkloadResult &got)
{
    std::ostringstream why;
    const auto runDiff = [&](const char *side, const RunResult &a,
                             const RunResult &b) {
        if (a.cycles != b.cycles)
            why << side << " cycles " << a.cycles << " vs " << b.cycles;
        else if (a.instrsIssued != b.instrsIssued)
            why << side << " instrs " << a.instrsIssued << " vs "
                << b.instrsIssued;
        else if (a.hsuCompleted != b.hsuCompleted)
            why << side << " hsu ops " << a.hsuCompleted << " vs "
                << b.hsuCompleted;
    };
    runDiff("base", ref.base, got.base);
    runDiff("hsu", ref.hsu, got.hsu);
    if (!why.str().empty())
        return why.str();

    const auto statDiff = [&](const char *side, const StatGroup &a,
                              const StatGroup &b) {
        std::map<std::string, double> ma, mb;
        for (const auto &[name, value] : a.dump())
            if (!isDiagnostic(name))
                ma.emplace(name, value);
        for (const auto &[name, value] : b.dump())
            if (!isDiagnostic(name))
                mb.emplace(name, value);
        if (ma.size() != mb.size()) {
            why << side << " stat count " << ma.size() << " vs "
                << mb.size();
            return;
        }
        for (const auto &[name, value] : ma) {
            const auto it = mb.find(name);
            if (it == mb.end()) {
                why << side << " stat " << name << " missing";
                return;
            }
            if (it->second != value) {
                why << side << " stat " << name << " " << value
                    << " vs " << it->second;
                return;
            }
        }
    };
    statDiff("base", ref.baseStats, got.baseStats);
    if (why.str().empty())
        statDiff("hsu", ref.hsuStats, got.hsuStats);
    return why.str();
}

struct LevelTiming
{
    unsigned jobs = 0;
    double simSeconds = 0.0;
    double cyclesPerSec = 0.0;
};

struct WorkloadTiming
{
    std::string label;
    std::uint64_t totalCycles = 0; //!< base + hsu (identical per level)
    std::vector<LevelTiming> levels;
};

double
simSecondsNow()
{
    return pipelinePhaseReport().simulateSeconds;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("perf_sim",
                   "intra-simulation parallelism sweep over "
                   "HSU_SIM_JOBS levels, with bit-identity checks");
    bool smoke = false;
    bool quick = false;
    args.flag(smoke, "smoke",
              "CI gate: one quick workload at jobs in {1, 8}");
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "shrink per-workload query counts ~4x");
    if (!args.parse(argc, argv))
        return args.exitCode();

    const std::vector<unsigned> levels =
        smoke ? std::vector<unsigned>{1, 8}
              : std::vector<unsigned>{1, 2, 4, 8};
    const std::vector<std::pair<Algo, DatasetId>> workloads =
        smoke ? std::vector<std::pair<Algo, DatasetId>>{
                    {Algo::Btree, DatasetId::BTree10k}}
              : bench::allWorkloads();

    Table t("Intra-sim parallelism: per-workload results "
            "(identical across HSU_SIM_JOBS levels by contract)",
            {"Workload", "Base cycles", "HSU cycles", "Levels checked"});

    std::vector<WorkloadTiming> timings;
    bool identical = true;
    for (const auto &[algo, id] : workloads) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);

        WorkloadTiming wt;
        WorkloadResult ref;
        for (const unsigned jobs : levels) {
            GpuConfig cfg = bench::defaultGpu();
            cfg.simJobs = jobs;
            const double before = simSecondsNow();
            WorkloadResult res = runWorkload(algo, id, cfg, opts);
            const double secs = simSecondsNow() - before;

            const std::uint64_t cycles =
                res.base.cycles + res.hsu.cycles;
            LevelTiming lt;
            lt.jobs = jobs;
            lt.simSeconds = secs;
            lt.cyclesPerSec =
                secs > 0.0 ? static_cast<double>(cycles) / secs : 0.0;
            wt.levels.push_back(lt);

            if (jobs == levels.front()) {
                wt.label = res.label;
                wt.totalCycles = cycles;
                ref = std::move(res);
            } else {
                const std::string diff = firstDifference(ref, res);
                if (!diff.empty()) {
                    identical = false;
                    std::cerr << "[perf_sim] MISMATCH " << res.label
                              << " jobs=" << jobs << ": " << diff
                              << "\n";
                }
            }
            // Wall-clock varies run to run: stderr, not stdout.
            std::cerr << "[perf_sim] " << wt.label << " jobs=" << jobs
                      << " simulate " << Table::num(secs, 3) << "s ("
                      << Table::num(lt.cyclesPerSec / 1e6, 3)
                      << " Mcycles/s)\n";
        }
        t.addRow({wt.label, std::to_string(ref.base.cycles),
                  std::to_string(ref.hsu.cycles),
                  std::to_string(levels.size())});
        timings.push_back(std::move(wt));
    }
    t.print(std::cout);

    // Fleet geomean speedup per job level, relative to jobs=1.
    std::map<unsigned, double> geo;
    for (std::size_t li = 1; li < levels.size(); ++li) {
        std::vector<double> speedups;
        for (const WorkloadTiming &wt : timings) {
            const double serial = wt.levels[0].simSeconds;
            const double par = wt.levels[li].simSeconds;
            speedups.push_back(par > 0.0 ? serial / par : 0.0);
        }
        geo[levels[li]] = bench::geomean(speedups);
        std::cerr << "[perf_sim] geomean speedup jobs="
                  << levels[li] << ": "
                  << Table::num(geo[levels[li]], 3) << "x\n";
    }

    std::ofstream out("BENCH_sim.json");
    if (!out) {
        hsu_warn("cannot write BENCH_sim.json");
    } else {
        out.precision(6);
        out << std::fixed;
        out << "{\n  \"bench\": \"perf_sim\",\n  \"smoke\": "
            << (smoke ? "true" : "false") << ",\n  \"bit_identical\": "
            << (identical ? "true" : "false") << ",\n"
            << "  \"workloads\": [\n";
        for (std::size_t w = 0; w < timings.size(); ++w) {
            const WorkloadTiming &wt = timings[w];
            out << "    {\n      \"label\": \"" << wt.label
                << "\",\n      \"total_cycles\": " << wt.totalCycles
                << ",\n      \"levels\": [\n";
            for (std::size_t l = 0; l < wt.levels.size(); ++l) {
                const LevelTiming &lt = wt.levels[l];
                out << "        {\"jobs\": " << lt.jobs
                    << ", \"simulate_seconds\": " << lt.simSeconds
                    << ", \"cycles_per_sec\": " << lt.cyclesPerSec
                    << "}" << (l + 1 < wt.levels.size() ? "," : "")
                    << "\n";
            }
            out << "      ]\n    }"
                << (w + 1 < timings.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"geomean_speedup_vs_serial\": {";
        bool first = true;
        for (const auto &[jobs, g] : geo) {
            out << (first ? "" : ", ") << "\"" << jobs << "\": " << g;
            first = false;
        }
        out << "}\n}\n";
    }

    if (!identical) {
        std::cerr << "[perf_sim] FAIL: results differ across "
                     "HSU_SIM_JOBS levels\n";
        return 1;
    }
    if (smoke) {
        // The gate tolerates scheduling noise but catches the parallel
        // path regressing badly (e.g. barrier overhead swamping work).
        const double serial = timings[0].levels[0].simSeconds;
        const double par = timings[0].levels.back().simSeconds;
        const double allowed = serial * 1.25 + 0.05;
        if (par > allowed) {
            std::cerr << "[perf_sim] FAIL: parallel simulate "
                      << Table::num(par, 3) << "s exceeds gate "
                      << Table::num(allowed, 3) << "s (serial "
                      << Table::num(serial, 3) << "s)\n";
            return 1;
        }
        std::cerr << "[perf_sim] smoke gate passed: parallel "
                  << Table::num(par, 3) << "s vs serial "
                  << Table::num(serial, 3) << "s\n";
    }
    return 0;
}
