/**
 * @file
 * Offload-fraction ablation (a Fig-7-style sweep made executable): each
 * workload's semantic trace is emitted once and lowered at PartialOffload
 * fractions 0..1, simulating the continuum between the non-RT baseline
 * and the full HSU design. The endpoints are cross-checked against the
 * two-point runBaseOnly/runHsuOnly paths — f=0 and f=1 must reproduce
 * their cycle counts exactly (the lowerings are bit-identical and an
 * idle HSU is timing-neutral), so this bench doubles as an end-to-end
 * consistency check of the lowering layer.
 */

#include <cstdlib>
#include <memory>

#include "bench_common.hh"
#include "common/argparse.hh"
#include "sim/trace_stats.hh"

using namespace hsu;

namespace
{

constexpr double kFractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("ablation_offload",
                   "cycles vs offloaded fraction of semantic ops");
    bool quick = false;
    unsigned jobs = 0;
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "quarter-size query batches");
    args.envOpt(jobs, "jobs", "HSU_JOBS",
                "worker threads for the sweep executor");
    if (!args.parse(argc, argv))
        return args.exitCode();

    const GpuConfig gpu = bench::defaultGpu(); // RT unit enabled
    Table t("Offload ablation: cycles vs offloaded fraction of "
            "semantic ops",
            {"Workload", "f", "Realized", "Cycles", "Speedup"});

    bool endpoints_ok = true;
    for (const Algo algo :
         {Algo::Ggnn, Algo::Flann, Algo::Bvhnn, Algo::Btree}) {
        const DatasetId id = datasetsForAlgo(algo).front();
        const DatasetInfo info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);
        const std::string label = workloadLabel(algo, info);

        // One shared emission, one lowering per sweep point. The
        // lowered traces are created inside the workers (Kind::SemLower)
        // so the five sweep points hold one semantic trace between
        // them, not five pre-lowered copies.
        const std::shared_ptr<const SemKernelTrace> sem =
            emitSemanticShared(algo, id, opts);
        std::vector<SimJob> jobs;
        for (const double f : kFractions) {
            SimJob job;
            job.kind = SimJob::Kind::SemLower;
            job.gpu = gpu;
            job.sem = sem;
            job.lowering = Lowering::partial(f, gpu.datapath);
            jobs.push_back(std::move(job));
        }
        const std::vector<SimJobResult> res =
            runJobsParallel(std::move(jobs));
        std::vector<double> realized;
        for (const SimJobResult &r : res)
            realized.push_back(r.traceStats.semanticOffloadFraction());

        // Endpoint cross-check against the two-point API.
        StatGroup base_stats, hsu_stats;
        const RunResult base =
            runBaseOnly(algo, id, gpu, opts, base_stats);
        const RunResult full = runHsuOnly(algo, id, gpu, opts, hsu_stats);
        if (res.front().run.cycles != base.cycles ||
            res.back().run.cycles != full.cycles) {
            std::cerr << label
                      << ": endpoint mismatch (f=0: "
                      << res.front().run.cycles << " vs baseline "
                      << base.cycles << ", f=1: " << res.back().run.cycles
                      << " vs HSU " << full.cycles << ")\n";
            endpoints_ok = false;
        }

        for (std::size_t i = 0; i < std::size(kFractions); ++i) {
            const double speedup =
                res[i].run.cycles
                    ? static_cast<double>(base.cycles) /
                          static_cast<double>(res[i].run.cycles)
                    : 0.0;
            t.addRow({label, Table::num(kFractions[i], 2),
                      Table::pct(realized[i]),
                      std::to_string(res[i].run.cycles),
                      Table::num(speedup, 2) + "x"});
        }
    }
    t.print(std::cout);
    bench::writePipelineReport("ablation_offload");
    if (!endpoints_ok) {
        std::cerr << "FAIL: partial-offload endpoints diverge from the "
                     "baseline/HSU lowerings\n";
        return 1;
    }
    return 0;
}
