/**
 * @file
 * Figure 13 reproduction: L1 data cache miss rate for baseline and HSU
 * runs. Accesses that hit on a pending MSHR entry count as hits, so
 * workloads whose accesses the HSU coalesces away can show a *higher*
 * miss rate on fewer accesses (Section VI-J).
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    Table t("Fig 13: L1D miss rate (MSHR hits count as hits)",
            {"Workload", "Base miss rate", "HSU miss rate"});
    for (const WorkloadResult &r : bench::runAllWorkloads()) {
        t.addRow({r.label, Table::pct(r.base.l1MissRate()),
                  Table::pct(r.hsu.l1MissRate())});
    }
    t.print(std::cout);
    return 0;
}
