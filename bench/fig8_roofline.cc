/**
 * @file
 * Figure 8 reproduction: roofline analysis of the HSU. Performance is
 * HSU instructions completed per cycle per unit (compute bound: 1);
 * operational intensity is instructions per L2 line accessed (memory
 * bound: one line per cycle). Euclid instructions fetch 64B and angular
 * 32B, so intensity > 4 (euclid) or > 8 (angular) indicates inter-
 * instruction data reuse (Section VI-B).
 */

#include "analysis/roofline.hh"
#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const GpuConfig gpu = bench::defaultGpu();
    Table t("Fig 8: HSU roofline",
            {"Workload", "Ops/L2-line", "Ops/cycle", "Roof",
             "Utilization"});
    for (const auto &[algo, id] : bench::allWorkloads()) {
        const DatasetInfo &info = datasetInfo(id);
        StatGroup stats;
        const RunResult r = runHsuOnly(algo, id, gpu,
                                       bench::benchOptions(info), stats);
        const RooflinePoint p =
            rooflinePoint(workloadLabel(algo, info), r, gpu.numSms);
        t.addRow({p.label, Table::num(p.intensity, 3),
                  Table::num(p.performance, 4), Table::num(p.bound(), 3),
                  Table::pct(p.utilization())});
    }
    t.print(std::cout);
    return 0;
}
