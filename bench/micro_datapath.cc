/**
 * @file
 * google-benchmark microbenchmarks of the functional HSU operations —
 * the host-side cost of the library's device intrinsics and geometry
 * kernels (not simulated-cycle measurements).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "hsu/device_api.hh"
#include "hsu/functional.hh"

namespace
{

using namespace hsu;

std::vector<float>
randomVec(unsigned n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.gaussian();
    return v;
}

void
BM_EuclidDist(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    const auto a = randomVec(n, 1), b = randomVec(n, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(euclidDist(a.data(), b.data(), n));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EuclidDist)->Arg(3)->Arg(96)->Arg(128)->Arg(784)->Arg(960);

void
BM_AngularDist(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    const auto a = randomVec(n, 3), b = randomVec(n, 4);
    const float qn = norm2(a.data(), n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(angularDist(a.data(), b.data(), n, qn));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AngularDist)->Arg(65)->Arg(96)->Arg(200)->Arg(256);

void
BM_KeyCompare(benchmark::State &state)
{
    Rng rng(5);
    std::vector<std::uint32_t> seps(36);
    std::uint32_t cur = 0;
    for (auto &s : seps)
        s = (cur += 1 + static_cast<std::uint32_t>(rng.nextBounded(9)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            keyCompare(cur / 2, seps.data(),
                       static_cast<unsigned>(seps.size())));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyCompare);

void
BM_RayBoxIntersect(benchmark::State &state)
{
    Rng rng(6);
    PreparedRay pr(Ray{{0, 0, 0}, normalize(Vec3{1, 0.5f, 0.25f})});
    BoxNode4 node;
    for (unsigned i = 0; i < 4; ++i) {
        const Vec3 c{rng.uniform(-5, 5), rng.uniform(-5, 5),
                     rng.uniform(-5, 5)};
        node.bounds[i] = Aabb::centered(c, 1.0f);
        node.child[i] = i;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(rayIntersectBox(pr, node));
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_RayBoxIntersect);

void
BM_RayTriangleIntersect(benchmark::State &state)
{
    PreparedRay pr(Ray{{0, 0, -5}, {0, 0, 1}});
    TriNode node;
    node.tri = Triangle{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 7};
    for (auto _ : state) {
        benchmark::DoNotOptimize(rayIntersectTri(pr, node));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RayTriangleIntersect);

} // namespace

BENCHMARK_MAIN();
