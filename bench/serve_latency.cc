/**
 * @file
 * Online serving: latency vs offered load, HSU vs non-RT baseline,
 * FIFO vs coherence-aware batch ordering, and the answer cache.
 *
 * Beyond the paper: the paper (and our fig* fleet) reports closed-loop
 * batch throughput; this bench drives the same simulated hardware with
 * open-loop Poisson traffic through the src/serve pipeline and
 * reports three families of curves:
 *
 *  1. Policy sweep — p50/p99/QPS at each offered load for every
 *     (batch policy x GPU variant) pair, plus the memory-system
 *     columns that explain the gap: L1 hit rate and warp-buffer
 *     residency. The coherent policy Morton-orders point queries
 *     (key-orders B+tree lookups) inside each batch, so neighboring
 *     lanes walk neighboring subtrees — the RTNN observation applied
 *     to the serving path.
 *  2. Cache sweep — cache-hit-rate vs tail latency under a Zipf
 *     popularity stream for answer-cache capacities {0, 64, 256}.
 *  3. --smoke contract gate (CI): batch reordering is timing-only.
 *     Per-query answers for a coherently-ordered batch, un-permuted
 *     back to arrival order, must be bit-identical to the FIFO-order
 *     answers (shard::answerUnsharded oracle); at light load both
 *     policies must complete every request. Exit 1 on violation.
 *
 * Offered loads are multiples of each workload's calibrated *baseline*
 * capacity (full-batch service rate), so all variants face the same
 * absolute QPS grid. Output is bit-identical across HSU_JOBS settings
 * and repeated runs: arrivals are seeded, batch formation is
 * deterministic, and batch service times are pure functions of batch
 * contents.
 *
 * Emits BENCH_serve_latency.json. Knobs: --policy/HSU_BATCH_POLICY
 * (fifo|coherent|both), --cache-capacity/HSU_CACHE_CAPACITY (restrict
 * the cache sweep to one capacity), --cache-tolerance/
 * HSU_CACHE_TOLERANCE (>0: recall-tolerant point-query hits, in
 * coarsened Morton levels).
 */

#include <algorithm>
#include <numeric>

#include "bench_common.hh"
#include "common/argparse.hh"
#include "serve/server.hh"
#include "shard/answers.hh"

using namespace hsu;

namespace
{

/** Representative (small) dataset per algorithm class. */
const std::pair<Algo, DatasetId> kServeWorkloads[] = {
    {Algo::Ggnn, DatasetId::Sift10k},
    {Algo::Flann, DatasetId::Bunny},
    {Algo::Bvhnn, DatasetId::Random10k},
    {Algo::Btree, DatasetId::BTree10k},
};

/**
 * Calibrate one workload's baseline capacity: simulated cycles of a
 * full batch on the non-RT GPU, turned into a saturation QPS for the
 * whole server (numInstances concurrent batches).
 */
double
baselineCapacityQps(Algo algo, DatasetId dataset,
                    const serve::ServerConfig &cfg)
{
    GpuConfig base = cfg.gpu;
    base.rtUnitEnabled = false;
    std::vector<std::uint32_t> ids(cfg.pipeline.batch.maxBatch);
    std::iota(ids.begin(), ids.end(), 0u);
    const std::shared_ptr<const KernelTrace> trace =
        emitBatchTrace(algo, dataset, KernelVariant::Baseline,
                       base.datapath, ids, cfg.queryPoolSize);
    StatGroup stats;
    const std::uint64_t cycles =
        simulateKernel(base, trace, stats).cycles +
        cfg.launchOverheadCycles;
    return serve::kClockHz *
           static_cast<double>(cfg.pipeline.batch.maxBatch * cfg.numInstances) /
           static_cast<double>(cycles);
}

/**
 * Batch width per algorithm. GGNN maps one warp per query, so 32
 * requests already launch 32 warps; the point/key kernels pack 32
 * queries per warp and only show their HSU advantage once a launch is
 * tens of warps wide (the offline benches use 4096/8192 queries) —
 * batch caps are sized so a full batch meaningfully occupies the GPU.
 */
unsigned
maxBatchFor(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn:
        return 32;
      case Algo::Flann:
        return 256;
      case Algo::Bvhnn:
        return 1024;
      case Algo::Btree:
        return 512;
    }
    return 32;
}

serve::ServerConfig
serveConfig(Algo algo)
{
    serve::ServerConfig cfg;
    cfg.gpu = bench::defaultGpu();
    cfg.numInstances = 2;
    cfg.queryPoolSize = 1024;
    cfg.pipeline.batch.maxBatch = maxBatchFor(algo);
    cfg.pipeline.degrade.highWater = 2 * cfg.pipeline.batch.maxBatch;
    cfg.pipeline.degrade.shedWater = 16 * cfg.pipeline.batch.maxBatch;
    return cfg;
}

struct SweepPoint
{
    Algo algo;
    std::string dataset;
    bool hsu = false;
    serve::BatchPolicyKind policy = serve::BatchPolicyKind::Fifo;
    double loadMult = 0.0;
    double offeredQps = 0.0;
    double achievedQps = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double shedFraction = 0.0;
    double l1HitRate = 0.0;
    double warpResidency = 0.0;
};

struct CachePoint
{
    Algo algo;
    bool hsu = false;
    std::size_t capacity = 0;
    double hitRate = 0.0;
    double achievedQps = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
};

/**
 * Answer-correctness contract: coherent ordering is a timing
 * optimization only. Order a scrambled id list the way the coherent
 * policy would, answer both orders with the unsharded oracle, and
 * un-permute — the answer sets must match bit-for-bit.
 */
bool
coherentAnswersMatchFifo(Algo algo, DatasetId dataset,
                         std::size_t pool_size)
{
    // A scrambled-but-deterministic id list (reversed strided walk),
    // so the coherent sort actually permutes something.
    std::vector<std::uint32_t> fifo_ids;
    for (std::uint32_t i = 0; i < 32; ++i)
        fifo_ids.push_back(((31 - i) * 7) % 64);

    const std::vector<std::uint64_t> &keys =
        serveQueryCoherenceKeys(dataset, pool_size);
    std::vector<std::size_t> order(fifo_ids.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return keys[fifo_ids[a]] < keys[fifo_ids[b]];
                     });
    std::vector<std::uint32_t> coherent_ids(fifo_ids.size());
    for (std::size_t j = 0; j < order.size(); ++j)
        coherent_ids[j] = fifo_ids[order[j]];

    const shard::AnswerSet fifo =
        shard::answerUnsharded(algo, dataset, fifo_ids, pool_size);
    const shard::AnswerSet coherent =
        shard::answerUnsharded(algo, dataset, coherent_ids, pool_size);

    // Un-permute the coherent answers back to arrival order.
    shard::AnswerSet unpermuted = fifo; // right shape per family
    for (std::size_t j = 0; j < order.size(); ++j) {
        if (!coherent.topk.empty())
            unpermuted.topk[order[j]] = coherent.topk[j];
        if (!coherent.nearest.empty())
            unpermuted.nearest[order[j]] = coherent.nearest[j];
        if (!coherent.radius.empty())
            unpermuted.radius[order[j]] = coherent.radius[j];
        if (!coherent.values.empty())
            unpermuted.values[order[j]] = coherent.values[j];
    }
    return unpermuted == fifo;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("serve_latency",
                   "open-loop serving latency sweep: HSU vs non-RT "
                   "baseline, FIFO vs coherent batching, answer cache");
    bool quick = false;
    bool smoke = false;
    unsigned jobs = 0;
    std::string policy_arg = "both";
    unsigned cache_capacity = 0;
    unsigned cache_tolerance = 0;
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "2 sweep points / 2 batches per point");
    args.flag(smoke, "smoke",
              "CI gate: quick sweep + answer-correctness contracts");
    args.envOpt(jobs, "jobs", "HSU_JOBS",
                "worker threads for parallel phases");
    args.envOpt(policy_arg, "policy", "HSU_BATCH_POLICY",
                "batch order: fifo|coherent|both");
    args.envOpt(cache_capacity, "cache-capacity", "HSU_CACHE_CAPACITY",
                "restrict the cache sweep to one capacity");
    args.envOpt(cache_tolerance, "cache-tolerance",
                "HSU_CACHE_TOLERANCE",
                "recall-tolerant point-query hits: coarsened Morton "
                "levels (0 = exact)");
    if (!args.parse(argc, argv))
        return args.exitCode();
    if (smoke)
        quick = true;

    std::vector<serve::BatchPolicyKind> policies;
    if (policy_arg == "both") {
        policies = {serve::BatchPolicyKind::Fifo,
                    serve::BatchPolicyKind::Coherent};
    } else {
        policies = {serve::parseBatchPolicy(policy_arg)};
    }

    // ~8 full batches of traffic per sweep point (2 in quick mode).
    const std::size_t batches_per_point = quick ? 2 : 8;
    const std::vector<double> load_multipliers =
        quick ? std::vector<double>{0.5, 1.2}
              : std::vector<double>{0.3, 0.6, 0.9, 1.2, 1.5};

    bool contracts_ok = true;

    // Contract 1 (--smoke gate, cheap enough to always run): coherent
    // ordering must not change any per-query answer.
    for (const auto &[algo, dataset] : kServeWorkloads) {
        if (!coherentAnswersMatchFifo(algo, dataset, 1024)) {
            contracts_ok = false;
            std::cerr << "[serve_latency] ANSWER MISMATCH: coherent "
                         "ordering changed answers for "
                      << toString(algo) << "\n";
        }
    }

    Table t("Online serving: open-loop Poisson traffic, HSU vs non-RT "
            "baseline x FIFO vs coherent batching (p50/p99 at 1 GHz; "
            "load grid = multiples of the baseline full-batch "
            "capacity)",
            {"Algo", "Variant", "Policy", "Load x", "Offered QPS",
             "Achieved QPS", "p50 us", "p99 us", "Shed", "L1 hit",
             "WarpRes"});

    std::vector<SweepPoint> points;
    for (const auto &[algo, dataset] : kServeWorkloads) {
        const serve::ServerConfig cfg = serveConfig(algo);
        const std::size_t requests_per_point =
            batches_per_point * cfg.pipeline.batch.maxBatch;
        const double cap_qps = baselineCapacityQps(algo, dataset, cfg);

        for (const double mult : load_multipliers) {
            const double offered_qps = mult * cap_qps;

            serve::ArrivalConfig arr;
            arr.process = serve::ArrivalProcess::Poisson;
            arr.ratePerCycle =
                serve::ArrivalConfig::ratePerCycleFromQps(offered_qps);
            arr.queryPoolSize = cfg.queryPoolSize;
            // SLO: generous multiple of an unloaded baseline batch, so
            // only genuine queueing blowups shed.
            arr.deadlineCycles = static_cast<Cycle>(
                40.0 * serve::kClockHz *
                static_cast<double>(cfg.pipeline.batch.maxBatch *
                                    cfg.numInstances) /
                cap_qps);
            arr.seed = 0xbeef + static_cast<std::uint64_t>(mult * 100);
            const std::vector<serve::Request> stream =
                serve::ArrivalGenerator(arr, algo, dataset)
                    .generate(requests_per_point);

            for (const serve::BatchPolicyKind policy : policies) {
                for (const bool hsu_on : {false, true}) {
                    serve::ServerConfig point = cfg;
                    point.gpu.rtUnitEnabled = hsu_on;
                    point.pipeline.policy = policy;
                    point.jobs = jobs;
                    serve::Server server(algo, dataset, point);
                    const serve::ServeReport rep = server.run(stream);

                    SweepPoint pt;
                    pt.algo = algo;
                    pt.dataset = datasetInfo(dataset).paperName;
                    pt.hsu = hsu_on;
                    pt.policy = policy;
                    pt.loadMult = mult;
                    pt.offeredQps = offered_qps;
                    pt.achievedQps = rep.achievedQps();
                    pt.p50Us = rep.latencyUs(50.0);
                    pt.p99Us = rep.latencyUs(99.0);
                    pt.shedFraction = rep.shedFraction();
                    pt.l1HitRate = rep.l1HitRate();
                    pt.warpResidency = rep.warpBufferResidency();
                    points.push_back(pt);

                    t.addRow({toString(algo), hsu_on ? "HSU" : "base",
                              serve::toString(policy),
                              Table::num(mult, 2),
                              Table::num(offered_qps, 0),
                              Table::num(pt.achievedQps, 0),
                              Table::num(pt.p50Us, 1),
                              Table::num(pt.p99Us, 1),
                              Table::pct(pt.shedFraction),
                              Table::pct(pt.l1HitRate),
                              Table::pct(pt.warpResidency)});

                    // Contract 2: request conservation, and at light
                    // load (no shedding possible) both policies
                    // complete every request.
                    if (rep.completed + rep.shedAdmission +
                            rep.shedExpired !=
                        rep.offered) {
                        contracts_ok = false;
                        std::cerr << "[serve_latency] CONSERVATION "
                                     "VIOLATION "
                                  << toString(algo) << " policy="
                                  << serve::toString(policy) << "\n";
                    }
                    if (mult < 0.55 && rep.completed != rep.offered) {
                        contracts_ok = false;
                        std::cerr
                            << "[serve_latency] LIGHT-LOAD LOSS "
                            << toString(algo) << " policy="
                            << serve::toString(policy) << ": completed "
                            << rep.completed << "/" << rep.offered
                            << "\n";
                    }
                }
            }
        }
    }
    t.print(std::cout);

    // Cache sweep: hit rate vs tail latency under a Zipf popularity
    // stream. Half the baseline capacity, so completions interleave
    // arrivals and the cache actually warms: a hit needs its query
    // answered (and inserted) before the repeat arrives — at
    // saturation the whole stream is in flight before the first
    // insert. Twice the policy sweep's stream length gives the warm
    // cache a tail to serve.
    std::vector<std::size_t> capacities = {0, 64, 256};
    if (cache_capacity > 0)
        capacities = {cache_capacity};
    Table ct("Answer cache under a Zipf(1.3) stream at 0.5x baseline "
             "capacity: hit rate vs tail latency",
             {"Algo", "Variant", "Cache", "Hit rate", "Achieved QPS",
              "p50 us", "p99 us"});
    std::vector<CachePoint> cache_points;
    for (const auto &[algo, dataset] : kServeWorkloads) {
        const serve::ServerConfig cfg = serveConfig(algo);
        const double cap_qps = baselineCapacityQps(algo, dataset, cfg);
        serve::ArrivalConfig arr;
        arr.ratePerCycle =
            serve::ArrivalConfig::ratePerCycleFromQps(0.5 * cap_qps);
        arr.queryPoolSize = cfg.queryPoolSize;
        arr.queryDist = serve::QueryDist::Zipf;
        arr.zipfExponent = 1.3;
        arr.seed = 0xf00d;
        const std::vector<serve::Request> stream =
            serve::ArrivalGenerator(arr, algo, dataset)
                .generate(2 * batches_per_point *
                          cfg.pipeline.batch.maxBatch);

        for (const std::size_t capacity : capacities) {
            for (const bool hsu_on : {false, true}) {
                serve::ServerConfig point = cfg;
                point.gpu.rtUnitEnabled = hsu_on;
                point.jobs = jobs;
                point.pipeline.cache.capacity = capacity;
                if (cache_tolerance > 0) {
                    point.pipeline.cache.mode =
                        serve::CacheMode::Tolerant;
                    point.pipeline.cache.toleranceLevels =
                        cache_tolerance;
                }
                serve::Server server(algo, dataset, point);
                const serve::ServeReport rep = server.run(stream);

                CachePoint cp;
                cp.algo = algo;
                cp.hsu = hsu_on;
                cp.capacity = capacity;
                cp.hitRate = rep.cacheHitRate();
                cp.achievedQps = rep.achievedQps();
                cp.p50Us = rep.latencyUs(50.0);
                cp.p99Us = rep.latencyUs(99.0);
                cache_points.push_back(cp);

                ct.addRow({toString(algo), hsu_on ? "HSU" : "base",
                           std::to_string(capacity),
                           Table::pct(cp.hitRate),
                           Table::num(cp.achievedQps, 0),
                           Table::num(cp.p50Us, 1),
                           Table::num(cp.p99Us, 1)});
            }
        }
    }
    ct.print(std::cout);

    std::ofstream out("BENCH_serve_latency.json");
    if (!out) {
        hsu_warn("cannot write BENCH_serve_latency.json");
    } else {
        out.precision(6);
        out << std::fixed;
        out << "{\n  \"bench\": \"serve_latency\",\n  \"smoke\": "
            << (smoke ? "true" : "false") << ",\n  \"contracts_ok\": "
            << (contracts_ok ? "true" : "false")
            << ",\n  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const SweepPoint &p = points[i];
            out << "    {\"algo\": \"" << toString(p.algo)
                << "\", \"dataset\": \"" << p.dataset
                << "\", \"variant\": \"" << (p.hsu ? "hsu" : "base")
                << "\", \"policy\": \"" << serve::toString(p.policy)
                << "\", \"load_mult\": " << p.loadMult
                << ", \"offered_qps\": " << p.offeredQps
                << ", \"achieved_qps\": " << p.achievedQps
                << ", \"p50_us\": " << p.p50Us
                << ", \"p99_us\": " << p.p99Us
                << ", \"shed_fraction\": " << p.shedFraction
                << ", \"l1_hit_rate\": " << p.l1HitRate
                << ", \"warp_residency\": " << p.warpResidency << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"cache_points\": [\n";
        for (std::size_t i = 0; i < cache_points.size(); ++i) {
            const CachePoint &p = cache_points[i];
            out << "    {\"algo\": \"" << toString(p.algo)
                << "\", \"variant\": \"" << (p.hsu ? "hsu" : "base")
                << "\", \"capacity\": " << p.capacity
                << ", \"hit_rate\": " << p.hitRate
                << ", \"achieved_qps\": " << p.achievedQps
                << ", \"p50_us\": " << p.p50Us
                << ", \"p99_us\": " << p.p99Us << "}"
                << (i + 1 < cache_points.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }

    std::printf("batches/point=%zu instances=2 "
                "maxBatch=32(GGNN)/256(FLANN)/1024(BVH-NN)/512(B+tree) "
                "policies=%s\n",
                batches_per_point, policy_arg.c_str());

    if (!contracts_ok) {
        std::cerr << "[serve_latency] FAIL: contract violation\n";
        return 1;
    }
    if (smoke)
        std::cerr << "[serve_latency] smoke gate passed\n";
    return 0;
}
