/**
 * @file
 * Online serving: latency vs offered load, HSU vs non-RT baseline.
 *
 * Beyond the paper: the paper (and our fig* fleet) reports closed-loop
 * batch throughput; this bench drives the same simulated hardware with
 * open-loop Poisson traffic through the src/serve subsystem and
 * reports the latency/QPS curve — p50/p99 and shed fraction at each
 * offered load, for the HSU GPU and the non-RT baseline on identical
 * request streams.
 *
 * Offered loads are multiples of each workload's calibrated *baseline*
 * capacity (full-batch service rate), so both variants face the same
 * absolute QPS grid. Expected shape: both variants track offered load
 * when unsaturated; the baseline's p99 blows up and its achieved QPS
 * flattens near multiplier 1.0, while the HSU — whose service time per
 * batch is smaller by the paper's speedup — keeps a low p99 and bends
 * only at correspondingly higher offered load (knee shifts right).
 *
 * Output is bit-identical across HSU_JOBS settings and repeated runs:
 * arrivals are seeded, batching is FIFO-deterministic, and batch
 * service times are pure functions of batch contents.
 */

#include "bench_common.hh"
#include "common/argparse.hh"
#include "serve/server.hh"

using namespace hsu;

namespace
{

/** Representative (small) dataset per algorithm class. */
const std::pair<Algo, DatasetId> kServeWorkloads[] = {
    {Algo::Ggnn, DatasetId::Sift10k},
    {Algo::Flann, DatasetId::Bunny},
    {Algo::Bvhnn, DatasetId::Random10k},
    {Algo::Btree, DatasetId::BTree10k},
};

/**
 * Calibrate one workload's baseline capacity: simulated cycles of a
 * full batch on the non-RT GPU, turned into a saturation QPS for the
 * whole server (numInstances concurrent batches).
 */
double
baselineCapacityQps(Algo algo, DatasetId dataset,
                    const serve::ServerConfig &cfg)
{
    GpuConfig base = cfg.gpu;
    base.rtUnitEnabled = false;
    std::vector<std::uint32_t> ids(cfg.batch.maxBatch);
    for (std::uint32_t i = 0; i < ids.size(); ++i)
        ids[i] = i;
    const std::shared_ptr<const KernelTrace> trace =
        emitBatchTrace(algo, dataset, KernelVariant::Baseline,
                       base.datapath, ids, cfg.queryPoolSize);
    StatGroup stats;
    const std::uint64_t cycles =
        simulateKernel(base, trace, stats).cycles +
        cfg.launchOverheadCycles;
    return serve::kClockHz *
           static_cast<double>(cfg.batch.maxBatch * cfg.numInstances) /
           static_cast<double>(cycles);
}

/**
 * Batch width per algorithm. GGNN maps one warp per query, so 32
 * requests already launch 32 warps; the point/key kernels pack 32
 * queries per warp and only show their HSU advantage once a launch is
 * tens of warps wide (the offline benches use 4096/8192 queries) —
 * batch caps are sized so a full batch meaningfully occupies the GPU.
 */
unsigned
maxBatchFor(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn:
        return 32;
      case Algo::Flann:
        return 256;
      case Algo::Bvhnn:
        return 1024;
      case Algo::Btree:
        return 512;
    }
    return 32;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("serve_latency",
                   "open-loop serving latency sweep, HSU vs non-RT "
                   "baseline");
    bool quick = false;
    unsigned jobs = 0;
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "2 sweep points / 2 batches per point");
    args.envOpt(jobs, "jobs", "HSU_JOBS",
                "worker threads for parallel phases");
    if (!args.parse(argc, argv))
        return args.exitCode();

    // ~8 full batches of traffic per sweep point (2 in quick mode).
    const std::size_t batches_per_point = quick ? 2 : 8;
    const std::vector<double> load_multipliers =
        quick ? std::vector<double>{0.5, 1.2}
              : std::vector<double>{0.3, 0.6, 0.9, 1.2, 1.5};

    Table t("Online serving: open-loop Poisson traffic, HSU vs non-RT "
            "baseline (p50/p99 at 1 GHz; load grid = multiples of the "
            "baseline full-batch capacity)",
            {"Algo", "Variant", "Load x", "Offered QPS", "Achieved QPS",
             "p50 us", "p99 us", "Shed", "Degraded"});

    for (const auto &[algo, dataset] : kServeWorkloads) {
        serve::ServerConfig cfg;
        cfg.gpu = bench::defaultGpu();
        cfg.numInstances = 2;
        cfg.queryPoolSize = 1024;
        cfg.batch.maxBatch = maxBatchFor(algo);
        cfg.degrade.highWater = 2 * cfg.batch.maxBatch;
        cfg.degrade.shedWater = 16 * cfg.batch.maxBatch;

        const std::size_t requests_per_point =
            batches_per_point * cfg.batch.maxBatch;
        const double cap_qps = baselineCapacityQps(algo, dataset, cfg);

        for (const double mult : load_multipliers) {
            const double offered_qps = mult * cap_qps;

            serve::ArrivalConfig arr;
            arr.process = serve::ArrivalProcess::Poisson;
            arr.ratePerCycle =
                serve::ArrivalConfig::ratePerCycleFromQps(offered_qps);
            arr.queryPoolSize = cfg.queryPoolSize;
            // SLO: generous multiple of an unloaded baseline batch, so
            // only genuine queueing blowups shed.
            arr.deadlineCycles = static_cast<Cycle>(
                40.0 * serve::kClockHz *
                static_cast<double>(cfg.batch.maxBatch *
                                    cfg.numInstances) /
                cap_qps);
            arr.seed = 0xbeef + static_cast<std::uint64_t>(mult * 100);
            const std::vector<serve::Request> stream =
                serve::ArrivalGenerator(arr, algo, dataset)
                    .generate(requests_per_point);

            for (const bool hsu_on : {false, true}) {
                serve::ServerConfig point = cfg;
                point.gpu.rtUnitEnabled = hsu_on;
                serve::Server server(algo, dataset, point);
                const serve::ServeReport rep = server.run(stream);

                t.addRow({toString(algo), hsu_on ? "HSU" : "base",
                          Table::num(mult, 2),
                          Table::num(offered_qps, 0),
                          Table::num(rep.achievedQps(), 0),
                          Table::num(rep.latencyUs(50.0), 1),
                          Table::num(rep.latencyUs(99.0), 1),
                          Table::pct(rep.shedFraction()),
                          Table::pct(
                              rep.offered
                                  ? static_cast<double>(rep.degraded) /
                                        static_cast<double>(rep.offered)
                                  : 0.0)});
            }
        }
    }
    t.print(std::cout);
    std::printf("batches/point=%zu instances=2 "
                "maxBatch=32(GGNN)/256(FLANN)/1024(BVH-NN)/512(B+tree) "
                "maxWait=50000\n",
                batches_per_point);
    return 0;
}
