/**
 * @file
 * Figure 14 reproduction: average DRAM row access locality (accesses
 * per row activation) under the FR-FCFS memory scheduler, baseline vs
 * HSU. The CISC fetches reorder traffic slightly but most locality is
 * already captured by coalescing and the MSHRs (Section VI-J).
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    Table t("Fig 14: DRAM row access locality (FR-FCFS)",
            {"Workload", "Base acc/activation", "HSU acc/activation"});
    for (const WorkloadResult &r : bench::runAllWorkloads()) {
        t.addRow({r.label, Table::num(r.base.dramRowLocality, 2),
                  Table::num(r.hsu.dramRowLocality, 2)});
    }
    t.print(std::cout);
    return 0;
}
