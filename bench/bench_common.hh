/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench prints its reproduced rows through hsu::Table so output
 * is uniform and machine-parsable. Set HSU_QUICK=1 to shrink query
 * counts ~4x for a fast smoke pass.
 */

#ifndef HSU_BENCH_BENCH_COMMON_HH
#define HSU_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "search/runner.hh"

namespace hsu::bench
{

/** The HSU-enabled GPU configuration every experiment runs under
 *  (Table III, with the SM count scaled as documented in DESIGN.md). */
inline GpuConfig
defaultGpu()
{
    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.finalize();
    return cfg;
}

/** Per-dataset runner options honoring HSU_QUICK. */
inline RunnerOptions
benchOptions(const DatasetInfo &info)
{
    return optionsFor(info, quickScale());
}

/** The (algo, dataset) pairs of the paper's evaluation, Fig 9 order. */
inline std::vector<std::pair<Algo, DatasetId>>
allWorkloads()
{
    std::vector<std::pair<Algo, DatasetId>> out;
    for (const Algo algo :
         {Algo::Ggnn, Algo::Flann, Algo::Bvhnn, Algo::Btree}) {
        for (const DatasetId id : datasetsForAlgo(algo))
            out.emplace_back(algo, id);
    }
    return out;
}

/**
 * Run the paper's full workload fleet (Fig 9 order) through the
 * parallel executor under the default GPU, honoring HSU_QUICK and
 * HSU_JOBS. Results come back in allWorkloads() order.
 */
inline std::vector<WorkloadResult>
runAllWorkloads()
{
    return runWorkloadsParallel(allWorkloads(), defaultGpu(),
                                quickScale());
}

/** Geometric-mean helper for summary rows. Non-positive entries have
 *  no logarithm; they are skipped (with a warning) rather than poisoning
 *  the whole mean with a NaN, which matters when a degenerate sweep
 *  point reports a 0.0 speedup. */
inline double
geomean(const std::vector<double> &vals)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (const double v : vals) {
        if (v <= 0.0 || !std::isfinite(v)) {
            hsu_warn("geomean: skipping non-positive value ", v);
            continue;
        }
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace hsu::bench

#endif // HSU_BENCH_BENCH_COMMON_HH
