/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench prints its reproduced rows through hsu::Table so output
 * is uniform and machine-parsable. Set HSU_QUICK=1 to shrink query
 * counts ~4x for a fast smoke pass.
 */

#ifndef HSU_BENCH_BENCH_COMMON_HH
#define HSU_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/phase_timer.hh"
#include "common/table.hh"
#include "search/runner.hh"

namespace hsu::bench
{

/** Process-start timestamp for total-wall-clock reporting (captured at
 *  static initialization, before main). */
inline const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

/** The HSU-enabled GPU configuration every experiment runs under
 *  (Table III, with the SM count scaled as documented in DESIGN.md). */
inline GpuConfig
defaultGpu()
{
    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.finalize();
    return cfg;
}

/** Per-dataset runner options honoring HSU_QUICK. */
inline RunnerOptions
benchOptions(const DatasetInfo &info)
{
    return optionsFor(info, quickScale());
}

/** The (algo, dataset) pairs of the paper's evaluation, Fig 9 order. */
inline std::vector<std::pair<Algo, DatasetId>>
allWorkloads()
{
    std::vector<std::pair<Algo, DatasetId>> out;
    for (const Algo algo :
         {Algo::Ggnn, Algo::Flann, Algo::Bvhnn, Algo::Btree}) {
        for (const DatasetId id : datasetsForAlgo(algo))
            out.emplace_back(algo, id);
    }
    return out;
}

/**
 * Run the paper's full workload fleet (Fig 9 order) through the
 * parallel executor under the default GPU, honoring HSU_QUICK and
 * HSU_JOBS. Results come back in allWorkloads() order.
 */
inline std::vector<WorkloadResult>
runAllWorkloads()
{
    return runWorkloadsParallel(allWorkloads(), defaultGpu(),
                                quickScale());
}

/** Geometric-mean helper for summary rows. Non-positive entries have
 *  no logarithm; they are skipped (with a warning) rather than poisoning
 *  the whole mean with a NaN, which matters when a degenerate sweep
 *  point reports a 0.0 speedup. */
inline double
geomean(const std::vector<double> &vals)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (const double v : vals) {
        if (v <= 0.0 || !std::isfinite(v)) {
            hsu_warn("geomean: skipping non-positive value ", v);
            continue;
        }
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

/**
 * Write the per-phase pipeline breakdown of this bench run to
 * BENCH_pipeline.json in the working directory (CI uploads it as an
 * artifact and gates on the emit phase). Phase seconds are CPU-seconds
 * summed over worker threads — with HSU_JOBS > 1 they can exceed
 * total_wall_seconds. Call once, at the end of main.
 */
inline void
writePipelineReport(const std::string &bench_name)
{
    const PipelinePhaseReport r = pipelinePhaseReport();
    const double wall =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - kProcessStart)
            .count();
    std::ofstream out("BENCH_pipeline.json");
    if (!out) {
        hsu_warn("cannot write BENCH_pipeline.json");
        return;
    }
    out.precision(6);
    out << std::fixed;
    out << "{\n"
        << "  \"bench\": \"" << bench_name << "\",\n"
        << "  \"total_wall_seconds\": " << wall << ",\n"
        << "  \"emit_seconds\": " << r.emitSeconds << ",\n"
        << "  \"lower_seconds\": " << r.lowerSeconds << ",\n"
        << "  \"simulate_seconds\": " << r.simulateSeconds << ",\n"
        << "  \"emit_calls\": " << r.emitCalls << ",\n"
        << "  \"emit_cache_hits\": " << r.emitCacheHits << ",\n"
        << "  \"lower_calls\": " << r.lowerCalls << ",\n"
        << "  \"simulate_calls\": " << r.simulateCalls << ",\n"
        << "  \"peak_rss_bytes\": " << peakRssBytes() << "\n"
        << "}\n";
    // stderr, not stdout: wall-clock varies run to run, and stdout
    // tables are bit-identical by contract (diffable across knobs).
    std::cerr << "[pipeline] wall " << Table::num(wall, 2)
              << "s | emit " << Table::num(r.emitSeconds, 2) << "s ("
              << r.emitCalls << " emissions, " << r.emitCacheHits
              << " cache hits) | lower " << Table::num(r.lowerSeconds, 2)
              << "s | simulate " << Table::num(r.simulateSeconds, 2)
              << "s | peak RSS "
              << (peakRssBytes() >> 20) << " MiB\n";
}

} // namespace hsu::bench

#endif // HSU_BENCH_BENCH_COMMON_HH
