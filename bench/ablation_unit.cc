/**
 * @file
 * Ablation: the two RT-unit design choices DESIGN.md calls out —
 * CISC fetch line-merging and warp-scheduler policy — evaluated on one
 * representative workload per algorithm class.
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const std::pair<Algo, DatasetId> cases[] = {
        {Algo::Ggnn, DatasetId::Sift10k},
        {Algo::Bvhnn, DatasetId::Random10k},
        {Algo::Btree, DatasetId::BTree10k},
    };

    GpuConfig no_merge = bench::defaultGpu();
    no_merge.rtFetchMerging = false;
    GpuConfig rr = bench::defaultGpu();
    rr.scheduler = SchedulerPolicy::RoundRobin;
    const GpuConfig variants[] = {bench::defaultGpu(), no_merge, rr};

    // One baseline + three HSU-variant sims per workload, all
    // independent: fan the whole grid across the worker pool.
    std::vector<SimJob> jobs;
    for (const auto &[algo, id] : cases) {
        const RunnerOptions opts = bench::benchOptions(datasetInfo(id));
        SimJob job;
        job.algo = algo;
        job.dataset = id;
        job.opts = opts;
        job.gpu = bench::defaultGpu();
        job.kind = SimJob::Kind::BaseOnly;
        jobs.push_back(job);
        job.kind = SimJob::Kind::HsuOnly;
        for (const GpuConfig &cfg : variants) {
            job.gpu = cfg;
            jobs.push_back(job);
        }
    }
    const std::vector<SimJobResult> results =
        runJobsParallel(std::move(jobs));

    Table t("Ablation: fetch merging and scheduler policy (HSU speedup "
            "over the matching non-RT baseline)",
            {"Workload", "GTO+merge (default)", "GTO, no merge",
             "RR+merge"});

    std::size_t slot = 0;
    for (const auto &[algo, id] : cases) {
        const RunResult &base = results[slot++].run;
        auto speedup = [&](const RunResult &r) {
            return static_cast<double>(base.cycles) /
                   static_cast<double>(r.cycles);
        };
        const double dflt = speedup(results[slot++].run);
        const double merge_off = speedup(results[slot++].run);
        const double round_robin = speedup(results[slot++].run);
        t.addRow({workloadLabel(algo, datasetInfo(id)),
                  Table::num(dflt, 3), Table::num(merge_off, 3),
                  Table::num(round_robin, 3)});
    }
    t.print(std::cout);
    return 0;
}
