/**
 * @file
 * Ablation: the two RT-unit design choices DESIGN.md calls out —
 * CISC fetch line-merging and warp-scheduler policy — evaluated on one
 * representative workload per algorithm class.
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const std::pair<Algo, DatasetId> cases[] = {
        {Algo::Ggnn, DatasetId::Sift10k},
        {Algo::Bvhnn, DatasetId::Random10k},
        {Algo::Btree, DatasetId::BTree10k},
    };

    Table t("Ablation: fetch merging and scheduler policy (HSU speedup "
            "over the matching non-RT baseline)",
            {"Workload", "GTO+merge (default)", "GTO, no merge",
             "RR+merge"});

    for (const auto &[algo, id] : cases) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);

        StatGroup sb;
        const RunResult base = runBaseOnly(algo, id, bench::defaultGpu(),
                                           opts, sb);
        auto speedup_with = [&](GpuConfig cfg) {
            StatGroup s;
            const RunResult r = runHsuOnly(algo, id, cfg, opts, s);
            return static_cast<double>(base.cycles) /
                   static_cast<double>(r.cycles);
        };

        GpuConfig dflt = bench::defaultGpu();
        GpuConfig no_merge = dflt;
        no_merge.rtFetchMerging = false;
        GpuConfig rr = dflt;
        rr.scheduler = SchedulerPolicy::RoundRobin;

        t.addRow({workloadLabel(algo, info),
                  Table::num(speedup_with(dflt), 3),
                  Table::num(speedup_with(no_merge), 3),
                  Table::num(speedup_with(rr), 3)});
    }
    t.print(std::cout);
    return 0;
}
