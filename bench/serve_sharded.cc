/**
 * @file
 * Sharded multi-GPU serving: QPS-vs-p99 knee as a function of shard
 * count x replica count, HSU vs non-RT baseline lowering.
 *
 * Beyond the paper: serve_latency drives ONE simulated GPU with
 * open-loop traffic; this bench drives a cluster (src/shard) — each of
 * the four index families partitioned over N simulated GPUs (spatial
 * policy), R replicas per shard, scatter-gather routing across a
 * latency+bandwidth interconnect, and a deterministic top-k merge at
 * the router. The offered-load grid is expressed in multiples of the
 * calibrated single-GPU baseline capacity, so the saturation knee's
 * rightward shift with shard/replica count is read directly off the
 * "Load x" column: single-owner workloads (B+tree) scale ~linearly
 * with GPU count, broadcast workloads (GGNN/FLANN) pay the fan-out
 * tax, and range-pruned radius queries (BVH-NN) sit in between.
 *
 * Contracts checked inline (exit 1 on violation, the CI smoke gate):
 *  - merged sharded answers are bit-identical to the unsharded oracle
 *    for every family at every swept shard count;
 *  - cluster reports are bit-identical across HSU_JOBS worker counts.
 *
 * Emits BENCH_serve_sharded.json. HSU_SHARDS=N (or --shards N)
 * restricts the sweep to one shard count.
 */

#include <numeric>

#include "bench_common.hh"
#include "common/argparse.hh"
#include "shard/answers.hh"
#include "shard/cluster.hh"

using namespace hsu;

namespace
{

const std::pair<Algo, DatasetId> kWorkloads[] = {
    {Algo::Ggnn, DatasetId::Sift10k},
    {Algo::Flann, DatasetId::Random10k},
    {Algo::Bvhnn, DatasetId::Random10k},
    {Algo::Btree, DatasetId::BTree10k},
};

unsigned
maxBatchFor(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn:
        return 32;
      case Algo::Flann:
        return 256;
      case Algo::Bvhnn:
        return 512;
      case Algo::Btree:
        return 512;
    }
    return 32;
}

/** Single-GPU baseline capacity (full batch on the non-RT GPU), the
 *  common denominator of the load grid across cluster shapes. */
double
singleGpuCapacityQps(Algo algo, DatasetId dataset,
                     const shard::ClusterConfig &cfg)
{
    GpuConfig base = cfg.gpu;
    base.rtUnitEnabled = false;
    std::vector<std::uint32_t> ids(cfg.pipeline.batch.maxBatch);
    std::iota(ids.begin(), ids.end(), 0u);
    const std::shared_ptr<const KernelTrace> trace =
        emitBatchTrace(algo, dataset, KernelVariant::Baseline,
                       base.datapath, ids, cfg.queryPoolSize);
    StatGroup stats;
    const std::uint64_t cycles =
        simulateKernel(base, trace, stats).cycles +
        cfg.launchOverheadCycles;
    return serve::kClockHz * static_cast<double>(cfg.pipeline.batch.maxBatch) /
           static_cast<double>(cycles);
}

struct SweepPoint
{
    Algo algo;
    std::string dataset;
    bool hsu = false;
    serve::BatchPolicyKind policy = serve::BatchPolicyKind::Fifo;
    unsigned shards = 1;
    unsigned replicas = 1;
    double loadMult = 0.0;
    double offeredQps = 0.0;
    double achievedQps = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double shedFraction = 0.0;
    double meanFanout = 0.0;
    std::uint64_t subqueries = 0;
};

bool
sameReport(const shard::ClusterReport &a, const shard::ClusterReport &b)
{
    return a.completed == b.completed &&
           a.partialAnswers == b.partialAnswers &&
           a.shedRequests == b.shedRequests &&
           a.subqueries == b.subqueries &&
           a.lastCompletionCycle == b.lastCompletionCycle &&
           a.latencyCycles.count() == b.latencyCycles.count() &&
           a.latencyCycles.sum() == b.latencyCycles.sum() &&
           a.latencyCycles.max() == b.latencyCycles.max();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("serve_sharded",
                   "sharded multi-GPU serving sweep: QPS-vs-p99 knee "
                   "over shard x replica count, HSU vs baseline");
    bool quick = false;
    bool smoke = false;
    unsigned jobs = 0;
    unsigned shards_override = 0;
    std::string policy_arg = "fifo";
    args.envFlag(quick, "quick", "HSU_QUICK",
                 "2 load points / 2 batches per point");
    args.flag(smoke, "smoke",
              "CI gate: quick sweep + hard contract checks");
    args.envOpt(jobs, "jobs", "HSU_JOBS",
                "worker threads for batch simulations");
    args.envOpt(shards_override, "shards", "HSU_SHARDS",
                "restrict the sweep to one shard count");
    args.envOpt(policy_arg, "policy", "HSU_BATCH_POLICY",
                "per-lane batch order: fifo|coherent|both");
    if (!args.parse(argc, argv))
        return args.exitCode();
    if (smoke)
        quick = true;

    std::vector<serve::BatchPolicyKind> policies;
    if (policy_arg == "both") {
        policies = {serve::BatchPolicyKind::Fifo,
                    serve::BatchPolicyKind::Coherent};
    } else {
        policies = {serve::parseBatchPolicy(policy_arg)};
    }

    std::vector<unsigned> shard_counts =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4};
    if (shards_override > 0)
        shard_counts = {shards_override};
    const std::vector<unsigned> replica_counts =
        quick ? std::vector<unsigned>{1} : std::vector<unsigned>{1, 2};
    const std::vector<double> load_multipliers =
        quick ? std::vector<double>{0.8, 2.0}
              : std::vector<double>{0.5, 1.0, 2.0, 4.0};
    const std::size_t batches_per_point = quick ? 2 : 6;

    bool contracts_ok = true;

    // Contract 1: scatter-gather merge correctness. The merged sharded
    // answer set must be bit-identical to the unsharded oracle for
    // every family at every swept shard count.
    for (const auto &[algo, dataset] : kWorkloads) {
        std::vector<std::uint32_t> queries(32);
        std::iota(queries.begin(), queries.end(), 0u);
        const shard::AnswerSet golden =
            shard::answerUnsharded(algo, dataset, queries, 64);
        for (const unsigned n : shard_counts) {
            const shard::AnswerSet merged = shard::answerSharded(
                algo, dataset, shard::PartitionPolicy::Spatial, n,
                queries, 64);
            if (!(merged == golden)) {
                contracts_ok = false;
                std::cerr << "[serve_sharded] MERGE MISMATCH "
                          << toString(algo) << " shards=" << n << "\n";
            }
        }
    }

    Table t("Sharded serving: open-loop Poisson traffic over N shards "
            "x R replicas (spatial partitioning; load grid = multiples "
            "of the single-GPU baseline full-batch capacity)",
            {"Algo", "Variant", "Policy", "SxR", "Load x",
             "Offered QPS", "Achieved QPS", "p50 us", "p99 us", "Shed",
             "Fanout"});

    std::vector<SweepPoint> points;
    for (const auto &[algo, dataset] : kWorkloads) {
        shard::ClusterConfig proto;
        proto.gpu = bench::defaultGpu();
        proto.queryPoolSize = 1024;
        proto.pipeline.batch.maxBatch = maxBatchFor(algo);
        proto.pipeline.degrade.highWater = 2 * proto.pipeline.batch.maxBatch;
        proto.pipeline.degrade.shedWater = 16 * proto.pipeline.batch.maxBatch;
        // NVLink-class hop: fixed latency plus a bandwidth term.
        proto.link.latencyCycles = 2'000;
        proto.link.bytesPerCycle = 16.0;
        proto.mergeCyclesPerShard = 200;

        const double cap_qps =
            singleGpuCapacityQps(algo, dataset, proto);
        const std::size_t requests_per_point =
            batches_per_point * proto.pipeline.batch.maxBatch;

        for (const unsigned shards : shard_counts) {
            for (const unsigned replicas : replica_counts) {
                for (const double mult : load_multipliers) {
                    const double offered_qps = mult * cap_qps;
                    serve::ArrivalConfig arr;
                    arr.process = serve::ArrivalProcess::Poisson;
                    arr.ratePerCycle =
                        serve::ArrivalConfig::ratePerCycleFromQps(
                            offered_qps);
                    arr.queryPoolSize = proto.queryPoolSize;
                    arr.deadlineCycles = static_cast<Cycle>(
                        40.0 * serve::kClockHz *
                        static_cast<double>(proto.pipeline.batch.maxBatch) /
                        cap_qps);
                    arr.seed = 0xcafe +
                               static_cast<std::uint64_t>(mult * 100);
                    const std::vector<serve::Request> stream =
                        serve::ArrivalGenerator(arr, algo, dataset)
                            .generate(requests_per_point);

                    for (const serve::BatchPolicyKind policy :
                         policies)
                    for (const bool hsu_on : {false, true}) {
                        shard::ClusterConfig cfg = proto;
                        cfg.numShards = shards;
                        cfg.replicasPerShard = replicas;
                        cfg.gpu.rtUnitEnabled = hsu_on;
                        cfg.pipeline.policy = policy;
                        cfg.jobs = jobs;
                        shard::ClusterServer cluster(algo, dataset,
                                                     cfg);
                        const shard::ClusterReport rep =
                            cluster.run(stream);

                        SweepPoint pt;
                        pt.algo = algo;
                        pt.dataset =
                            datasetInfo(dataset).paperName;
                        pt.hsu = hsu_on;
                        pt.policy = policy;
                        pt.shards = shards;
                        pt.replicas = replicas;
                        pt.loadMult = mult;
                        pt.offeredQps = offered_qps;
                        pt.achievedQps = rep.achievedQps();
                        pt.p50Us = rep.latencyUs(50.0);
                        pt.p99Us = rep.latencyUs(99.0);
                        pt.shedFraction = rep.shedFraction();
                        pt.meanFanout =
                            rep.fanout.count()
                                ? rep.fanout.sum() /
                                      static_cast<double>(
                                          rep.fanout.count())
                                : 0.0;
                        pt.subqueries = rep.subqueries;
                        points.push_back(pt);

                        t.addRow({toString(algo),
                                  hsu_on ? "HSU" : "base",
                                  serve::toString(policy),
                                  std::to_string(shards) + "x" +
                                      std::to_string(replicas),
                                  Table::num(mult, 2),
                                  Table::num(offered_qps, 0),
                                  Table::num(pt.achievedQps, 0),
                                  Table::num(pt.p50Us, 1),
                                  Table::num(pt.p99Us, 1),
                                  Table::pct(pt.shedFraction),
                                  Table::num(pt.meanFanout, 2)});
                    }
                }
            }
        }
    }
    t.print(std::cout);

    // Contract 2: cluster reports are bit-identical across worker
    // counts (the determinism contract the whole repo rides on).
    {
        shard::ClusterConfig cfg;
        cfg.gpu = bench::defaultGpu();
        cfg.numShards = shard_counts.back();
        cfg.replicasPerShard = replica_counts.back();
        cfg.pipeline.batch.maxBatch = 32;
        cfg.queryPoolSize = 64;
        cfg.link.latencyCycles = 1'000;
        serve::ArrivalConfig arr;
        arr.ratePerCycle = 1.0e-4;
        arr.queryPoolSize = 64;
        arr.seed = 7;
        const auto stream =
            serve::ArrivalGenerator(arr, Algo::Btree,
                                    DatasetId::BTree10k)
                .generate(64);
        cfg.jobs = 1;
        const shard::ClusterReport serial =
            shard::ClusterServer(Algo::Btree, DatasetId::BTree10k, cfg)
                .run(stream);
        cfg.jobs = 4;
        const shard::ClusterReport parallel =
            shard::ClusterServer(Algo::Btree, DatasetId::BTree10k, cfg)
                .run(stream);
        if (!sameReport(serial, parallel)) {
            contracts_ok = false;
            std::cerr << "[serve_sharded] JOBS MISMATCH: cluster "
                         "report differs between jobs=1 and jobs=4\n";
        }
    }

    std::ofstream out("BENCH_serve_sharded.json");
    if (!out) {
        hsu_warn("cannot write BENCH_serve_sharded.json");
    } else {
        out.precision(6);
        out << std::fixed;
        out << "{\n  \"bench\": \"serve_sharded\",\n  \"smoke\": "
            << (smoke ? "true" : "false") << ",\n  \"contracts_ok\": "
            << (contracts_ok ? "true" : "false")
            << ",\n  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const SweepPoint &p = points[i];
            out << "    {\"algo\": \"" << toString(p.algo)
                << "\", \"dataset\": \"" << p.dataset
                << "\", \"variant\": \"" << (p.hsu ? "hsu" : "base")
                << "\", \"policy\": \"" << serve::toString(p.policy)
                << "\", \"shards\": " << p.shards
                << ", \"replicas\": " << p.replicas
                << ", \"load_mult\": " << p.loadMult
                << ", \"offered_qps\": " << p.offeredQps
                << ", \"achieved_qps\": " << p.achievedQps
                << ", \"p50_us\": " << p.p50Us
                << ", \"p99_us\": " << p.p99Us
                << ", \"shed_fraction\": " << p.shedFraction
                << ", \"mean_fanout\": " << p.meanFanout
                << ", \"subqueries\": " << p.subqueries << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }

    if (!contracts_ok) {
        std::cerr << "[serve_sharded] FAIL: contract violation\n";
        return 1;
    }
    if (smoke)
        std::cerr << "[serve_sharded] smoke gate passed\n";
    return 0;
}
