/**
 * @file
 * Figure 15 reproduction: area of the HSU datapath normalized to a
 * baseline RT datapath that only supports ray-box and ray-triangle
 * tests, broken down by functional-unit class. The paper measures a
 * 37% total increase from Chisel RTL synthesized at 15nm; here the
 * analytical FU model of src/analysis reproduces the breakdown.
 */

#include "analysis/datapath_cost.hh"
#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const DatapathInventory base = baselineInventory();
    const DatapathInventory hsu = hsuInventory();
    const auto base_area = areaByClass(base);
    const auto hsu_area = areaByClass(hsu);

    Table t("Fig 15: HSU datapath area normalized to baseline RT "
            "datapath (paper total: 1.37x)",
            {"Resource class", "Baseline um^2", "HSU um^2",
             "Normalized"});
    for (unsigned c = 0; c < kNumFuClasses; ++c) {
        const double n =
            base_area[c] > 0 ? hsu_area[c] / base_area[c] : 0.0;
        t.addRow({toString(static_cast<FuClass>(c)),
                  Table::num(base_area[c], 0),
                  Table::num(hsu_area[c], 0), Table::num(n, 3)});
    }
    const double bt = totalArea(base);
    const double ht = totalArea(hsu);
    t.addRow({"TOTAL", Table::num(bt, 0), Table::num(ht, 0),
              Table::num(ht / bt, 3)});
    t.print(std::cout);
    return 0;
}
