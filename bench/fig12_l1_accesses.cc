/**
 * @file
 * Figure 12 reproduction: HSU L1D cache accesses normalized to the
 * non-RT baseline. The CISC node fetch coalesces what the baseline
 * issues as several sequential loads; BVH-NN shows the effect most
 * prominently (Section VI-J).
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    Table t("Fig 12: HSU L1D accesses normalized to non-RT baseline",
            {"Workload", "Base accesses", "HSU accesses", "Normalized"});
    for (const WorkloadResult &r : bench::runAllWorkloads()) {
        const double norm = r.base.l1Accesses > 0
            ? r.hsu.l1Accesses / r.base.l1Accesses
            : 0.0;
        t.addRow({r.label, Table::num(r.base.l1Accesses, 0),
                  Table::num(r.hsu.l1Accesses, 0), Table::num(norm, 3)});
    }
    t.print(std::cout);
    return 0;
}
