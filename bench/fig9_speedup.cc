/**
 * @file
 * Figure 9 reproduction: simulated speedup with HSU over a baseline GPU
 * without ray-tracing hardware, for all four search algorithms across
 * their datasets. The paper reports average improvements of 24.8%
 * (GGNN), 16.4% (FLANN), 33.9% (BVH-NN), and 13.5% (B+tree).
 */

#include <map>

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    Table t("Fig 9: Speedup with HSU over non-RT baseline",
            {"Workload", "Base cycles", "HSU cycles", "Speedup"});
    std::map<Algo, std::vector<double>> per_algo;

    for (const WorkloadResult &r : bench::runAllWorkloads()) {
        t.addRow({r.label, std::to_string(r.base.cycles),
                  std::to_string(r.hsu.cycles),
                  Table::num(r.speedup(), 3)});
        per_algo[r.algo].push_back(r.speedup());
    }
    t.print(std::cout);

    Table s("Fig 9 summary: average speedup per algorithm (paper: GGNN "
            "1.248, FLANN 1.164, BVH-NN 1.339, B+ 1.135)",
            {"Algorithm", "Geomean speedup"});
    for (const auto &[algo, vals] : per_algo) {
        s.addRow({toString(algo),
                  Table::num(bench::geomean(vals), 3)});
    }
    s.print(std::cout);
    return 0;
}
