/**
 * @file
 * Table III reproduction: the simulator configuration actually used
 * (paper values, with the documented SM-count scaling).
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const GpuConfig cfg = bench::defaultGpu();
    Table t("Table III: Simulator Configuration",
            {"Parameter", "Paper", "This run"});
    t.addRow({"# SMs", "80", std::to_string(cfg.numSms) + " (scaled)"});
    t.addRow({"Sub-cores / SM", "4", std::to_string(cfg.subCoresPerSm)});
    t.addRow({"Warp Scheduler Policy", "GTO",
              cfg.scheduler == SchedulerPolicy::Gto ? "GTO" : "RR"});
    t.addRow({"Max Warps / SM", "64", std::to_string(cfg.maxWarpsPerSm)});
    t.addRow({"RT Units / SM", "1", std::to_string(cfg.rtUnitsPerSm)});
    t.addRow({"Warp Buffer Size", "8",
              std::to_string(cfg.warpBufferSize)});
    t.addRow({"L1 / Shared Memory Cache", "128 KB",
              std::to_string(cfg.mem.l1.sizeBytes / 1024) + " KB"});
    t.addRow({"L2 Cache", "24-way 6MB",
              std::to_string(cfg.mem.l2.assoc) + "-way " +
                  std::to_string(cfg.mem.l2.sizeBytes / (1024 * 1024)) +
                  "MB"});
    t.addRow({"Euclid datapath width", "16",
              std::to_string(cfg.datapath.euclidWidth)});
    t.addRow({"Angular datapath width", "8",
              std::to_string(cfg.datapath.angularWidth())});
    t.addRow({"Key-compare width", "36",
              std::to_string(cfg.datapath.keyCompareWidth)});
    t.addRow({"Pipeline depth", "9",
              std::to_string(cfg.datapath.pipelineDepth)});
    t.print(std::cout);
    return 0;
}
