/**
 * @file
 * Ablation: LBVH (fast Morton build) vs binned-SAH BVH quality.
 *
 * Section VI-E: "Our BVH-NN implementation used a BVH construction
 * algorithm known for its fast construction time but not for its
 * quality [Karras 2012] ... A more optimized BVH that uses surface
 * area heuristic to determine partitioning would further improve
 * performance." This bench builds both trees over the 3-D datasets and
 * compares SAH cost, traversal work, and end-to-end HSU speedup.
 */

#include "bench_common.hh"
#include "search/bvhnn.hh"
#include "sim/gpu.hh"

using namespace hsu;

int
main()
{
    const GpuConfig cfg = bench::defaultGpu();
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;

    Table t("Ablation: Morton LBVH vs binned-SAH BVH (BVH-NN, HSU)",
            {"Dataset", "SAH cost (LBVH)", "SAH cost (SAH)",
             "box tests ratio", "speedup LBVH", "speedup SAH"});

    for (const DatasetId id : datasetsForAlgo(Algo::Bvhnn)) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);
        const PointSet points = generatePoints(info);
        const PointSet queries =
            generateQueries(info, opts.pointQueries);
        const float radius = pickRadius(points);

        const Lbvh morton = Lbvh::buildFromPoints(points, radius);
        const Lbvh sah = Lbvh::buildSahFromPoints(points, radius);

        BvhnnKernel morton_kernel(points, morton, BvhnnConfig{radius});
        BvhnnKernel sah_kernel(points, sah, BvhnnConfig{radius});

        const auto base_run =
            morton_kernel.run(queries, KernelVariant::Baseline);
        const auto morton_run =
            morton_kernel.run(queries, KernelVariant::Hsu);
        const auto sah_run =
            sah_kernel.run(queries, KernelVariant::Hsu);

        for (std::size_t q = 0; q < queries.size(); ++q) {
            if (morton_run.results[q].index !=
                sah_run.results[q].index) {
                std::fprintf(stderr, "SAH result mismatch (q=%zu)\n",
                             q);
                return 1;
            }
        }

        StatGroup sb, sm, ss;
        const RunResult base =
            simulateKernel(base_cfg, base_run.trace, sb);
        const RunResult mr =
            simulateKernel(cfg, morton_run.trace, sm);
        const RunResult sr = simulateKernel(cfg, sah_run.trace, ss);

        t.addRow({workloadLabel(Algo::Bvhnn, info),
                  Table::num(morton.sahCost(), 1),
                  Table::num(sah.sahCost(), 1),
                  Table::num(static_cast<double>(sah_run.boxTests) /
                                 static_cast<double>(
                                     morton_run.boxTests),
                             3),
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(mr.cycles),
                             3),
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(sr.cycles),
                             3)});
    }
    t.print(std::cout);
    return 0;
}
