/**
 * @file
 * Ablation: LBVH (fast Morton build) vs binned-SAH BVH quality.
 *
 * Section VI-E: "Our BVH-NN implementation used a BVH construction
 * algorithm known for its fast construction time but not for its
 * quality [Karras 2012] ... A more optimized BVH that uses surface
 * area heuristic to determine partitioning would further improve
 * performance." This bench builds both trees over the 3-D datasets and
 * compares SAH cost, traversal work, and end-to-end HSU speedup.
 */

#include <memory>

#include "bench_common.hh"
#include "search/bvhnn.hh"

using namespace hsu;

namespace
{

/** Per-dataset facts gathered at emission time (tree quality and
 *  traversal work are properties of the trace, not the simulation). */
struct CaseInfo
{
    std::string label;
    double mortonSah = 0.0;
    double sahSah = 0.0;
    double boxTestRatio = 0.0;
};

} // namespace

int
main()
{
    const GpuConfig cfg = bench::defaultGpu();
    GpuConfig base_cfg = cfg;
    base_cfg.rtUnitEnabled = false;

    // Tree builds and trace emission run serially per dataset (the
    // kernels are bench-local, not memoized); the three sims per
    // dataset are independent and fan across the worker pool.
    std::vector<CaseInfo> cases;
    std::vector<SimJob> jobs;
    for (const DatasetId id : datasetsForAlgo(Algo::Bvhnn)) {
        const DatasetInfo &info = datasetInfo(id);
        const RunnerOptions opts = bench::benchOptions(info);
        const PointSet points = generatePoints(info);
        const PointSet queries =
            generateQueries(info, opts.pointQueries);
        const float radius = pickRadius(points);

        const Lbvh morton = Lbvh::buildFromPoints(points, radius);
        const Lbvh sah = Lbvh::buildSahFromPoints(points, radius);

        BvhnnKernel morton_kernel(points, morton, BvhnnConfig{radius});
        BvhnnKernel sah_kernel(points, sah, BvhnnConfig{radius});

        auto base_run =
            morton_kernel.run(queries, KernelVariant::Baseline);
        auto morton_run =
            morton_kernel.run(queries, KernelVariant::Hsu);
        auto sah_run = sah_kernel.run(queries, KernelVariant::Hsu);

        for (std::size_t q = 0; q < queries.size(); ++q) {
            if (morton_run.results[q].index !=
                sah_run.results[q].index) {
                std::fprintf(stderr, "SAH result mismatch (q=%zu)\n",
                             q);
                return 1;
            }
        }

        CaseInfo c;
        c.label = workloadLabel(Algo::Bvhnn, info);
        c.mortonSah = morton.sahCost();
        c.sahSah = sah.sahCost();
        c.boxTestRatio = static_cast<double>(sah_run.boxTests) /
                         static_cast<double>(morton_run.boxTests);
        cases.push_back(std::move(c));

        SimJob job;
        job.kind = SimJob::Kind::Trace;
        job.gpu = base_cfg;
        job.trace = std::make_shared<const KernelTrace>(
            std::move(base_run.trace));
        jobs.push_back(job);
        job.gpu = cfg;
        job.trace = std::make_shared<const KernelTrace>(
            std::move(morton_run.trace));
        jobs.push_back(job);
        job.trace = std::make_shared<const KernelTrace>(
            std::move(sah_run.trace));
        jobs.push_back(std::move(job));
    }
    const std::vector<SimJobResult> results =
        runJobsParallel(std::move(jobs));

    Table t("Ablation: Morton LBVH vs binned-SAH BVH (BVH-NN, HSU)",
            {"Dataset", "SAH cost (LBVH)", "SAH cost (SAH)",
             "box tests ratio", "speedup LBVH", "speedup SAH"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const RunResult &base = results[3 * i].run;
        const RunResult &mr = results[3 * i + 1].run;
        const RunResult &sr = results[3 * i + 2].run;
        t.addRow({cases[i].label, Table::num(cases[i].mortonSah, 1),
                  Table::num(cases[i].sahSah, 1),
                  Table::num(cases[i].boxTestRatio, 3),
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(mr.cycles),
                             3),
                  Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(sr.cycles),
                             3)});
    }
    t.print(std::cout);
    return 0;
}
