/**
 * @file
 * Figure 7 reproduction: the proportion of a non-RT V100's execution
 * that consists of operations the HSU could execute (distance tests,
 * box tests, key compares — including their operand loads). This is the
 * theoretical ceiling on HSU benefit per workload.
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const GpuConfig gpu = bench::defaultGpu();
    Table t("Fig 7: Proportion of baseline execution offloadable to HSU",
            {"Workload", "Offloadable fraction"});

    const auto work = bench::allWorkloads();
    std::vector<SimJob> jobs;
    jobs.reserve(work.size());
    for (const auto &[algo, id] : work) {
        SimJob job;
        job.kind = SimJob::Kind::BaseOnly;
        job.algo = algo;
        job.dataset = id;
        job.gpu = gpu;
        job.opts = bench::benchOptions(datasetInfo(id));
        jobs.push_back(std::move(job));
    }
    const std::vector<SimJobResult> res =
        runJobsParallel(std::move(jobs));

    for (std::size_t i = 0; i < work.size(); ++i) {
        const auto &[algo, id] = work[i];
        t.addRow({workloadLabel(algo, datasetInfo(id)),
                  Table::pct(res[i].run.offloadableFraction)});
    }
    t.print(std::cout);
    return 0;
}
