/**
 * @file
 * Figure 7 reproduction: the proportion of a non-RT V100's execution
 * that consists of operations the HSU could execute (distance tests,
 * box tests, key compares — including their operand loads). This is the
 * theoretical ceiling on HSU benefit per workload.
 */

#include "bench_common.hh"

using namespace hsu;

int
main()
{
    const GpuConfig gpu = bench::defaultGpu();
    Table t("Fig 7: Proportion of baseline execution offloadable to HSU",
            {"Workload", "Offloadable fraction"});
    for (const auto &[algo, id] : bench::allWorkloads()) {
        const DatasetInfo &info = datasetInfo(id);
        StatGroup stats;
        const RunResult r = runBaseOnly(algo, id, gpu,
                                        bench::benchOptions(info), stats);
        t.addRow({workloadLabel(algo, info),
                  Table::pct(r.offloadableFraction)});
    }
    t.print(std::cout);
    return 0;
}
