/**
 * @file
 * ThreadPool unit tests: submission-order results, exception
 * propagation, shutdown draining, and HSU_JOBS parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/threadpool.hh"

namespace hsu
{
namespace
{

TEST(ThreadPool, ResultsComeBackInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, MoreJobsThanQueueBound)
{
    // 2 workers x queue_factor 1 = queue bound 2; submit() must block
    // and resume rather than drop or deadlock.
    ThreadPool pool(2, 1);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            ++ran;
        }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++ran;
            }));
        }
        // Destroy the pool with most tasks still queued.
    }
    EXPECT_EQ(ran.load(), 32);
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, DefaultJobsHonorsEnvVar)
{
    ASSERT_EQ(setenv("HSU_JOBS", "7", 1), 0);
    EXPECT_EQ(defaultJobs(), 7u);
    EXPECT_EQ(ThreadPool(0).numThreads(), 7u);

    // Malformed or non-positive values fall back to the hardware
    // default instead of serialising (or crashing) the fleet.
    ASSERT_EQ(setenv("HSU_JOBS", "banana", 1), 0);
    EXPECT_GE(defaultJobs(), 1u);
    ASSERT_EQ(setenv("HSU_JOBS", "0", 1), 0);
    EXPECT_GE(defaultJobs(), 1u);

    ASSERT_EQ(unsetenv("HSU_JOBS"), 0);
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(ThreadPool, ExplicitThreadCountWins)
{
    ASSERT_EQ(setenv("HSU_JOBS", "7", 1), 0);
    EXPECT_EQ(ThreadPool(3).numThreads(), 3u);
    ASSERT_EQ(unsetenv("HSU_JOBS"), 0);
}

} // namespace
} // namespace hsu
