/**
 * @file
 * ArgParser: flag/option parsing, env-backed defaults and write-back,
 * and the --help / error exit-code protocol the tools and benches rely
 * on. Env-var tests use names private to this binary so parallel ctest
 * runs cannot interfere.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/argparse.hh"

namespace hsu
{
namespace
{

/** argv adapter (argv[0] is the program name, as in main()). */
bool
parseArgs(ArgParser &args, const std::vector<const char *> &rest)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), rest.begin(), rest.end());
    return args.parse(static_cast<int>(argv.size()), argv.data());
}

/** Scoped env var: set/unset on entry, always unset on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv() { unsetenv(name_); }

  private:
    const char *name_;
};

TEST(ArgParser, FlagDefaultsAndSet)
{
    ArgParser args("t", "d");
    bool verbose = false;
    args.flag(verbose, "verbose", "say more");
    EXPECT_TRUE(parseArgs(args, {}));
    EXPECT_FALSE(verbose);

    ArgParser args2("t", "d");
    args2.flag(verbose, "verbose", "say more");
    EXPECT_TRUE(parseArgs(args2, {"--verbose"}));
    EXPECT_TRUE(verbose);
}

TEST(ArgParser, FlagNegation)
{
    ArgParser args("t", "d");
    bool verbose = true;
    args.flag(verbose, "verbose", "say more");
    EXPECT_TRUE(parseArgs(args, {"--no-verbose"}));
    EXPECT_FALSE(verbose);
}

TEST(ArgParser, ValueOptionForms)
{
    ArgParser args("t", "d");
    std::string algo = "all";
    unsigned jobs = 0;
    double fraction = 0.5;
    args.opt(algo, "algo", "which kernel");
    args.opt(jobs, "jobs", "worker threads");
    args.opt(fraction, "fraction", "offload share");
    EXPECT_TRUE(parseArgs(
        args, {"--algo=ggnn", "--jobs", "4", "--fraction=0.25"}));
    EXPECT_EQ(algo, "ggnn");
    EXPECT_EQ(jobs, 4u);
    EXPECT_DOUBLE_EQ(fraction, 0.25);
}

TEST(ArgParser, EnvFlagSuppliesDefault)
{
    ScopedEnv env("HSU_TEST_ARGPARSE_Q", "1");
    ArgParser args("t", "d");
    bool quick = false;
    args.envFlag(quick, "quick", "HSU_TEST_ARGPARSE_Q", "smaller");
    EXPECT_TRUE(parseArgs(args, {}));
    EXPECT_TRUE(quick);
}

TEST(ArgParser, EnvFlagZeroAndEmptyMeanFalse)
{
    for (const char *v : {"0", ""}) {
        ScopedEnv env("HSU_TEST_ARGPARSE_Q", v);
        ArgParser args("t", "d");
        bool quick = false;
        args.envFlag(quick, "quick", "HSU_TEST_ARGPARSE_Q", "smaller");
        EXPECT_TRUE(parseArgs(args, {}));
        EXPECT_FALSE(quick) << "env value '" << v << "'";
    }
}

TEST(ArgParser, CommandLineOverridesEnvAndWritesBack)
{
    ScopedEnv env("HSU_TEST_ARGPARSE_Q", "1");
    ArgParser args("t", "d");
    bool quick = false;
    args.envFlag(quick, "quick", "HSU_TEST_ARGPARSE_Q", "smaller");
    EXPECT_TRUE(parseArgs(args, {"--no-quick"}));
    EXPECT_FALSE(quick);
    // Downstream getenv() plumbing must observe the parsed value.
    // audit[env-read]: asserting on the write-back is the test's point.
    const char *after = getenv("HSU_TEST_ARGPARSE_Q");
    EXPECT_TRUE(after == nullptr || std::string(after) == "0")
        << "env left as '" << (after ? after : "(unset)") << "'";
}

TEST(ArgParser, EnvOptDefaultOverrideAndWriteBack)
{
    ScopedEnv env("HSU_TEST_ARGPARSE_J", "3");
    ArgParser args("t", "d");
    unsigned jobs = 0;
    args.envOpt(jobs, "jobs", "HSU_TEST_ARGPARSE_J", "workers");
    EXPECT_TRUE(parseArgs(args, {}));
    EXPECT_EQ(jobs, 3u);

    ArgParser args2("t", "d");
    args2.envOpt(jobs, "jobs", "HSU_TEST_ARGPARSE_J", "workers");
    EXPECT_TRUE(parseArgs(args2, {"--jobs", "8"}));
    EXPECT_EQ(jobs, 8u);
    // audit[env-read]: asserting on the write-back is the test's point.
    const char *after = getenv("HSU_TEST_ARGPARSE_J");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(std::string(after), "8");
}

TEST(ArgParser, EnvStringOptDefaultOverrideAndWriteBack)
{
    ScopedEnv env("HSU_TEST_ARGPARSE_P", "coherent");
    ArgParser args("t", "d");
    std::string policy = "fifo";
    args.envOpt(policy, "policy", "HSU_TEST_ARGPARSE_P", "batch order");
    EXPECT_TRUE(parseArgs(args, {}));
    EXPECT_EQ(policy, "coherent");

    ArgParser args2("t", "d");
    args2.envOpt(policy, "policy", "HSU_TEST_ARGPARSE_P", "batch order");
    EXPECT_TRUE(parseArgs(args2, {"--policy=fifo"}));
    EXPECT_EQ(policy, "fifo");
    // audit[env-read]: asserting on the write-back is the test's point.
    const char *after = getenv("HSU_TEST_ARGPARSE_P");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(std::string(after), "fifo");
}

TEST(ArgParser, HelpReturnsFalseWithExitZero)
{
    ArgParser args("t", "d");
    bool quick = false;
    args.flag(quick, "quick", "smaller");
    EXPECT_FALSE(parseArgs(args, {"--help"}));
    EXPECT_EQ(args.exitCode(), 0);
}

TEST(ArgParser, ErrorsReturnExUsage)
{
    {
        ArgParser args("t", "d");
        EXPECT_FALSE(parseArgs(args, {"--no-such-option"}));
        EXPECT_EQ(args.exitCode(), 64);
    }
    {
        ArgParser args("t", "d");
        unsigned jobs = 0;
        args.opt(jobs, "jobs", "workers");
        EXPECT_FALSE(parseArgs(args, {"--jobs"})); // missing value
        EXPECT_EQ(args.exitCode(), 64);
    }
    {
        ArgParser args("t", "d");
        unsigned jobs = 0;
        args.opt(jobs, "jobs", "workers");
        EXPECT_FALSE(parseArgs(args, {"--jobs", "banana"}));
        EXPECT_EQ(args.exitCode(), 64);
    }
}

TEST(ArgParser, UsageNamesEveryOption)
{
    ArgParser args("lint_tool", "checks things");
    bool quick = false;
    unsigned jobs = 0;
    args.flag(quick, "quick", "smaller");
    args.opt(jobs, "jobs", "workers");
    const std::string usage = args.usage();
    EXPECT_NE(usage.find("lint_tool"), std::string::npos);
    EXPECT_NE(usage.find("--quick"), std::string::npos);
    EXPECT_NE(usage.find("--jobs"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
}

} // namespace
} // namespace hsu
